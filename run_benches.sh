#!/bin/bash
# Runs every bench binary in sequence (fast ones first), mirroring
# `for b in build/bench/*; do $b; done` but ordered for early signal.
#
#   --quick   smoke profile: the fast benches only, with reduced op counts —
#             seconds instead of minutes, for CI and pre-commit sanity.
set -u
cd /root/repo

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown flag: $arg (supported: --quick)" >&2; exit 2 ;;
  esac
done

if [ "$QUICK" -eq 1 ]; then
  BENCHES=(bench_table2_params bench_fig2_rns bench_micro_primitives)
else
  BENCHES=(bench_table2_params bench_sec3c_errors bench_fig2_rns \
           bench_fig34_arch bench_fig1_pipeline bench_batch_throughput \
           bench_table3_cnn1 bench_table4_cnn1_moduli bench_fig5_parallel \
           bench_table5_cnn2 bench_table6_cnn2_moduli bench_table1_sota \
           bench_micro_primitives)
fi

quick_args() {
  # Per-bench reduced workloads for --quick.
  case "$1" in
    bench_fig2_rns) echo "--ops=20000 --reps=5" ;;
    bench_micro_primitives)
      # RNS op rows plus the word-level NTT/dyadic kernel rows; --json drops
      # BENCH_micro.json at the repo root (we cd there above) for CI diffing.
      echo "--benchmark_min_time=0.05 --benchmark_filter=rns|Ntt|Dyadic|Shoup --json" ;;
    *) echo "" ;;
  esac
}

for b in "${BENCHES[@]}"; do
  echo "==================================================================="
  echo "=== $b"
  echo "==================================================================="
  if [ "$QUICK" -eq 1 ]; then
    # shellcheck disable=SC2046
    ./build/bench/$b $(quick_args "$b") 2>&1
  else
    ./build/bench/$b 2>&1
  fi
  echo
done

if [ "$QUICK" -eq 1 ]; then
  # Trace smoke: one CNN1-HE-RNS inference with --trace-out, then verify the
  # emitted Chrome trace JSON parses and carries per-layer level/scale spans.
  echo "==================================================================="
  echo "=== trace smoke (quickstart --trace-out)"
  echo "==================================================================="
  TRACE_JSON=$(mktemp /tmp/ppcnn-trace.XXXXXX.json)
  trap 'rm -f "$TRACE_JSON"' EXIT
  ./build/examples/quickstart --train-size=300 --epochs=1 \
      --trace-out="$TRACE_JSON" 2>&1 || { echo "trace smoke: quickstart failed" >&2; exit 1; }
  python3 - "$TRACE_JSON" <<'EOF' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
events = d["traceEvents"]
assert events, "trace has no events"
layers = [e for e in events if e.get("cat") == "layer"]
assert layers, "trace has no per-layer spans"
for e in layers:
    args = e.get("args", {})
    assert "level" in args and "scale_log2" in args, f"layer span missing level/scale: {e}"
he = [e for e in events if e.get("cat") == "he"]
assert he, "trace has no homomorphic-op spans"
print(f"trace smoke OK: {len(events)} events, {len(layers)} layer spans, "
      f"{len(he)} he-op spans, dropped={d['otherData']['dropped']}")
EOF
  echo
fi
