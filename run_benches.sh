#!/bin/bash
# Runs every bench binary in sequence (fast ones first), mirroring
# `for b in build/bench/*; do $b; done` but ordered for early signal.
set -u
cd /root/repo
for b in bench_table2_params bench_sec3c_errors bench_fig2_rns \
         bench_fig34_arch bench_fig1_pipeline bench_batch_throughput \
         bench_table3_cnn1 bench_table4_cnn1_moduli bench_fig5_parallel \
         bench_table5_cnn2 bench_table6_cnn2_moduli bench_table1_sota \
         bench_micro_primitives; do
  echo "==================================================================="
  echo "=== $b"
  echo "==================================================================="
  ./build/bench/$b 2>&1
  echo
done
