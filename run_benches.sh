#!/bin/bash
# Runs every bench binary in sequence (fast ones first), mirroring
# `for b in build/bench/*; do $b; done` but ordered for early signal.
#
#   --quick   smoke profile: the fast benches only, with reduced op counts —
#             seconds instead of minutes, for CI and pre-commit sanity.
set -u
cd /root/repo

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown flag: $arg (supported: --quick)" >&2; exit 2 ;;
  esac
done

if [ "$QUICK" -eq 1 ]; then
  BENCHES=(bench_table2_params bench_fig2_rns bench_serving \
           bench_micro_primitives)
  # Snapshot the previous run's numbers before they are overwritten: the
  # drift reports below compare against them.
  BASELINE_JSON=""
  if [ -f BENCH_micro.json ]; then
    BASELINE_JSON=$(mktemp /tmp/ppcnn-bench-baseline.XXXXXX.json)
    cp BENCH_micro.json "$BASELINE_JSON"
  fi
  SERVING_BASELINE_JSON=""
  if [ -f BENCH_serving.json ]; then
    SERVING_BASELINE_JSON=$(mktemp /tmp/ppcnn-serving-baseline.XXXXXX.json)
    cp BENCH_serving.json "$SERVING_BASELINE_JSON"
  fi
else
  BENCHES=(bench_table2_params bench_sec3c_errors bench_fig2_rns \
           bench_fig34_arch bench_fig1_pipeline bench_batch_throughput \
           bench_serving bench_table3_cnn1 bench_table4_cnn1_moduli \
           bench_fig5_parallel bench_table5_cnn2 bench_table6_cnn2_moduli \
           bench_table1_sota bench_micro_primitives)
fi

quick_args() {
  # Per-bench reduced workloads for --quick.
  case "$1" in
    bench_fig2_rns) echo "--ops=20000 --reps=5" ;;
    bench_serving)
      # Small load; --json drops BENCH_serving.json at the repo root for the
      # amortization gate and the drift report below, --net adds the loopback
      # TCP sweep and BENCH_net.json for the socket-overhead/metrics gate.
      echo "--images=16 --json --net" ;;
    bench_micro_primitives)
      # RNS op rows plus the word-level NTT/dyadic kernel rows; --json drops
      # BENCH_micro.json at the repo root (we cd there above) for CI diffing.
      echo "--benchmark_min_time=0.05 --benchmark_filter=rns|Ntt|Dyadic|Shoup|Bsgs --json" ;;
    *) echo "" ;;
  esac
}

for b in "${BENCHES[@]}"; do
  echo "==================================================================="
  echo "=== $b"
  echo "==================================================================="
  if [ "$QUICK" -eq 1 ]; then
    # shellcheck disable=SC2046
    ./build/bench/$b $(quick_args "$b") 2>&1
  else
    ./build/bench/$b 2>&1
  fi
  echo
done

if [ "$QUICK" -eq 1 ]; then
  # Guard-overhead gate: with fault injection compiled in but disarmed, the
  # guarded eval path (input validation + noise-budget projection) must add
  # <2% over the unguarded path. The assertion is an in-process interleaved
  # A/B (tests/core/guard_overhead_test.cpp, min over repetitions) because
  # cross-run wall-clock diffs on a shared 1-core host swing by ~20% from
  # load alone; tune with OVERHEAD_TOLERANCE_PCT (default 2 here).
  echo "==================================================================="
  echo "=== guard overhead gate (faults compiled in, disarmed)"
  echo "==================================================================="
  OVERHEAD_TOLERANCE_PCT="${OVERHEAD_TOLERANCE_PCT:-2}" \
    ./build/tests/test_robustness --gtest_filter='GuardOverhead.*' \
    --gtest_brief=1 2>&1 || { echo "guard overhead gate FAILED" >&2; exit 1; }
  echo "guard overhead gate OK"
  echo

  # Serving amortization gate: a batch-8 slot-packed evaluation classifies 8
  # images for roughly the cost of one, so server throughput at batch 8 must
  # be at least 3x batch 1 — far below the ~8x ideal, so host noise cannot
  # trip it, but far above anything a broken batching path could produce.
  echo "==================================================================="
  echo "=== serving amortization gate (BENCH_serving.json)"
  echo "==================================================================="
  python3 - BENCH_serving.json <<'EOF' || { echo "serving gate FAILED" >&2; exit 1; }
import json, sys
d = json.load(open(sys.argv[1]))
speedup = d["speedup_batch8_vs_batch1"]
by_batch = {b["name"]: b["images_per_second"] for b in d["benchmarks"]}
print(f"batch=8 throughput is {speedup:.2f}x batch=1 "
      f"({by_batch.get('serving/batch:8', 0):.2f} vs "
      f"{by_batch.get('serving/batch:1', 0):.2f} img/s)")
assert speedup >= 3.0, f"slot-packing amortization collapsed: {speedup:.2f}x < 3x"
EOF
  echo "serving gate OK"
  echo

  # Network serving gate: the framed TCP loopback path must cost <15% in
  # batch-8 throughput against the identical in-process point measured
  # back-to-back in the same bench run (frame codecs + checksums + loopback
  # copies are noise next to the HE evaluation — anything above that bound
  # means a serialization or batching-alignment regression in the net
  # stack). The same JSON carries the /metrics payload scraped over real
  # HTTP; validate the Prometheus exposition line-by-line.
  echo "==================================================================="
  echo "=== network serving gate (BENCH_net.json)"
  echo "==================================================================="
  python3 - BENCH_net.json <<'EOF' || { echo "network serving gate FAILED" >&2; exit 1; }
import json, math, re, sys
d = json.load(open(sys.argv[1]))
overhead = d["socket_overhead_pct"]
rows = {b["name"]: b["images_per_second"] for b in d["benchmarks"]}
print(f"socket overhead at batch 8: {overhead:+.1f}% "
      f"({rows.get('net/batch:8', 0):.2f} img/s over TCP vs "
      f"{rows.get('inproc/batch:8', 0):.2f} in-process)")
assert overhead < 15.0, f"socket overhead {overhead:.1f}% >= 15%"

text = d["metrics_payload"]
assert text, "scraped /metrics payload is empty"
sample_re = re.compile(
    r'^(pphe_[a-z0-9_]+)(\{[a-z0-9_]+="[^"]*"(,[a-z0-9_]+="[^"]*")*\})? '
    r'(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|nan|[+-]?inf)$')
typed, samples = {}, {}
for line in text.splitlines():
    if not line.strip():
        continue
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split(" ", 3)
        assert kind in ("counter", "gauge", "summary"), f"bad TYPE: {line}"
        typed[name] = kind
        continue
    if line.startswith("#"):
        continue
    m = sample_re.match(line)
    assert m, f"malformed sample line: {line!r}"
    value = float(m.group(4))
    assert math.isfinite(value) and value >= 0.0, f"bad value: {line!r}"
    samples.setdefault(m.group(1), 0)
    samples[m.group(1)] += 1
for name in typed:
    assert any(s == name or s.startswith(name + "_") for s in samples), \
        f"TYPE-declared family {name} has no samples"
required = ["pphe_requests_submitted_total", "pphe_requests_completed_total",
            "pphe_latency_seconds", "pphe_net_handshakes_total",
            "pphe_net_connections_total", "pphe_net_bytes_total",
            "pphe_key_bytes_pinned", "pphe_key_quota_bytes",
            "pphe_queue_capacity", "pphe_backend_ops_total"]
missing = [n for n in required if n not in samples]
assert not missing, f"required series missing from /metrics: {missing}"
print(f"/metrics exposition OK: {sum(samples.values())} samples across "
      f"{len(samples)} series, {len(typed)} TYPE-declared families")
EOF
  echo "network serving gate OK"
  echo

  # Serving drift report (informational, same noise caveat as the kernel
  # rows): per-image real_time vs the previous quick run.
  if [ -n "$SERVING_BASELINE_JSON" ]; then
    python3 - "$SERVING_BASELINE_JSON" BENCH_serving.json <<'EOF'
import json, math, sys
base = {b["name"]: b["real_time"]
        for b in json.load(open(sys.argv[1]))["benchmarks"]
        if b.get("run_type") == "iteration"}
cur = {b["name"]: b["real_time"]
       for b in json.load(open(sys.argv[2]))["benchmarks"]
       if b.get("run_type") == "iteration"}
common = sorted(set(base) & set(cur))
if common:
    ratios = {n: cur[n] / base[n] for n in common}
    geomean = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
    worst = max(common, key=lambda n: ratios[n])
    print(f"serving drift vs previous run: geomean {100 * (geomean - 1):+.2f}% "
          f"over {len(common)} rows "
          f"(worst row {worst}: {100 * (ratios[worst] - 1):+.2f}%)")
EOF
    rm -f "$SERVING_BASELINE_JSON"
  fi
  echo

  # Kernel-row drift report (informational): the microbench kernels contain
  # no guard hooks, so any cross-run delta here is host noise or a real
  # kernel regression worth eyeballing — but it is not gated, for the same
  # noise reason as above. Tolerant of older/newer BENCH_micro.json schemas
  # (missing keys, absent rows), and when the two runs dispatched different
  # ISAs it compares only the ISA-pinned rows so the report stays
  # like-for-like.
  if [ -n "$BASELINE_JSON" ]; then
    python3 - "$BASELINE_JSON" BENCH_micro.json <<'EOF'
import json, math, sys

def load(path):
    # Previous runs may predate (or postdate) this schema: missing context,
    # missing run_type, renamed fields. Skip what we cannot read instead of
    # erroring out of the whole report.
    try:
        with open(path) as f:
            d = json.load(f)
    except (OSError, ValueError):
        return {}, "unknown"
    isa = d.get("context", {}).get("isa_dispatched", "unknown")
    rows = {}
    for b in d.get("benchmarks", []):
        name, rt = b.get("name"), b.get("real_time")
        if name is None or rt is None:
            continue
        if b.get("run_type", "iteration") != "iteration":
            continue
        rows[name] = rt
    return rows, isa

base, base_isa = load(sys.argv[1])
cur, cur_isa = load(sys.argv[2])
common = sorted(set(base) & set(cur))
if base_isa != cur_isa:
    pinned = tuple(f"_{i}/" for i in ("scalar", "avx2", "avx512"))
    common = [n for n in common if any(t in n for t in pinned)]
    print(f"note: dispatched ISA changed ({base_isa} -> {cur_isa}); "
          f"comparing only the ISA-pinned kernel rows")
if common:
    ratios = {n: cur[n] / base[n] for n in common}
    geomean = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
    worst = max(common, key=lambda n: ratios[n])
    print(f"kernel drift vs previous run: geomean {100 * (geomean - 1):+.2f}% "
          f"over {len(common)} rows "
          f"(worst row {worst}: {100 * (ratios[worst] - 1):+.2f}%)")
else:
    print("kernel drift: no comparable rows (first run or schema change)")
EOF
    rm -f "$BASELINE_JSON"
  fi
  echo

  # SIMD NTT speedup gate: on hosts where the dispatcher picked a SIMD ISA,
  # the dispatched forward+inverse N=2^14 row must be at least 1.5x faster
  # than the scalar-pinned row from the SAME run (same fixture, same host
  # load). Hosts without SIMD kernels skip — a missing CPU feature is not a
  # regression.
  echo "==================================================================="
  echo "=== SIMD NTT speedup gate (BENCH_micro.json)"
  echo "==================================================================="
  python3 - BENCH_micro.json <<'EOF' || { echo "SIMD NTT gate FAILED" >&2; exit 1; }
import json, sys
try:
    with open(sys.argv[1]) as f:
        d = json.load(f)
except (OSError, ValueError) as e:
    print(f"SIMD NTT gate skipped: cannot read BENCH_micro.json ({e})")
    raise SystemExit(0)
isa = d.get("context", {}).get("isa_dispatched", "unknown")
# cpu_time, not real_time: the 1-core host gets scheduled out under load
# and real_time charges that to whichever row was running.
rows = {b.get("name"): (b.get("cpu_time") or b.get("real_time"))
        for b in d.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"}
if isa in ("scalar", "unknown"):
    print(f"SIMD NTT gate skipped: dispatched ISA is '{isa}' "
          f"(no SIMD kernels on this host)")
    raise SystemExit(0)
scalar = rows.get("BM_NttForwardInverse_scalar/16384")
# The dispatched row and the ISA-pinned row time the SAME kernel; host
# noise only ever inflates one, so the faster measurement is the truer one.
simd_rows = [rows.get("BM_NttForwardInverse/16384"),
             rows.get(f"BM_NttForwardInverse_{isa}/16384")]
simd_rows = [t for t in simd_rows if t]
if not scalar or not simd_rows:
    print("SIMD NTT gate skipped: N=16384 rows missing from BENCH_micro.json")
    raise SystemExit(0)
speedup = scalar / min(simd_rows)
print(f"{isa} NTT forward+inverse at N=16384: {speedup:.2f}x scalar")
assert speedup >= 1.5, f"SIMD NTT speedup {speedup:.2f}x < 1.5x scalar"
EOF
  echo "SIMD NTT gate OK"
  echo

  # Hoisted BSGS gate: the double-hoisted dense-layer path (one digit
  # decomposition per unique operand, one mod-down per giant group) must be
  # at least 1.5x faster than the legacy per-rotation key-switch schedule
  # measured in the SAME run (same fixture, same host load). Skips when the
  # rows are absent (older binary, filtered run) — schema-tolerant like the
  # drift report above.
  echo "==================================================================="
  echo "=== hoisted BSGS speedup gate (BENCH_micro.json)"
  echo "==================================================================="
  python3 - BENCH_micro.json <<'EOF' || { echo "hoisted BSGS gate FAILED" >&2; exit 1; }
import json, sys
try:
    with open(sys.argv[1]) as f:
        d = json.load(f)
except (OSError, ValueError) as e:
    print(f"hoisted BSGS gate skipped: cannot read BENCH_micro.json ({e})")
    raise SystemExit(0)
# cpu_time, not real_time: same 1-core scheduling caveat as the NTT gate.
rows = {b.get("name"): (b.get("cpu_time") or b.get("real_time"))
        for b in d.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"}
fused = rows.get("BM_DenseBsgsLayer/fused")
unfused = rows.get("BM_DenseBsgsLayer/unfused")
if not fused or not unfused:
    print("hoisted BSGS gate skipped: dense-layer rows missing from "
          "BENCH_micro.json")
    raise SystemExit(0)
speedup = unfused / fused
print(f"dense BSGS layer: hoisted path is {speedup:.2f}x the unfused schedule")
assert speedup >= 1.5, f"hoisted BSGS speedup {speedup:.2f}x < 1.5x unfused"
EOF
  echo "hoisted BSGS gate OK"
  echo

  # Trace smoke: one CNN1-HE-RNS inference with --trace-out, then verify the
  # emitted Chrome trace JSON parses and carries per-layer level/scale spans.
  echo "==================================================================="
  echo "=== trace smoke (quickstart --trace-out)"
  echo "==================================================================="
  TRACE_JSON=$(mktemp /tmp/ppcnn-trace.XXXXXX.json)
  trap 'rm -f "$TRACE_JSON"' EXIT
  ./build/examples/quickstart --train-size=300 --epochs=1 \
      --trace-out="$TRACE_JSON" 2>&1 || { echo "trace smoke: quickstart failed" >&2; exit 1; }
  python3 - "$TRACE_JSON" <<'EOF' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
events = d["traceEvents"]
assert events, "trace has no events"
layers = [e for e in events if e.get("cat") == "layer"]
assert layers, "trace has no per-layer spans"
for e in layers:
    args = e.get("args", {})
    assert "level" in args and "scale_log2" in args, f"layer span missing level/scale: {e}"
he = [e for e in events if e.get("cat") == "he"]
assert he, "trace has no homomorphic-op spans"
print(f"trace smoke OK: {len(events)} events, {len(layers)} layer spans, "
      f"{len(he)} he-op spans, dropped={d['otherData']['dropped']}")
EOF
  echo
fi
