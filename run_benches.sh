#!/bin/bash
# Runs every bench binary in sequence (fast ones first), mirroring
# `for b in build/bench/*; do $b; done` but ordered for early signal.
#
#   --quick   smoke profile: the fast benches only, with reduced op counts —
#             seconds instead of minutes, for CI and pre-commit sanity.
set -u
cd /root/repo

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown flag: $arg (supported: --quick)" >&2; exit 2 ;;
  esac
done

if [ "$QUICK" -eq 1 ]; then
  BENCHES=(bench_table2_params bench_fig2_rns bench_micro_primitives)
else
  BENCHES=(bench_table2_params bench_sec3c_errors bench_fig2_rns \
           bench_fig34_arch bench_fig1_pipeline bench_batch_throughput \
           bench_table3_cnn1 bench_table4_cnn1_moduli bench_fig5_parallel \
           bench_table5_cnn2 bench_table6_cnn2_moduli bench_table1_sota \
           bench_micro_primitives)
fi

quick_args() {
  # Per-bench reduced workloads for --quick.
  case "$1" in
    bench_fig2_rns) echo "--ops=20000 --reps=5" ;;
    bench_micro_primitives)
      echo "--benchmark_min_time=0.05 --benchmark_filter=rns" ;;
    *) echo "" ;;
  esac
}

for b in "${BENCHES[@]}"; do
  echo "==================================================================="
  echo "=== $b"
  echo "==================================================================="
  if [ "$QUICK" -eq 1 ]; then
    # shellcheck disable=SC2046
    ./build/bench/$b $(quick_args "$b") 2>&1
  else
    ./build/bench/$b 2>&1
  fi
  echo
done
