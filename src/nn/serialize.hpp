#pragma once

#include <string>

#include "nn/network.hpp"

namespace pphe {

/// Binary weight (de)serialization: parameter tensors in network order plus
/// batch-norm running statistics. Format: magic, count, then per tensor
/// rank/shape/float data. Used to cache trained models between bench runs.
void save_weights(const Network& net, const std::string& path);

/// Returns false if the file is missing or its shapes do not match `net`.
bool load_weights(Network& net, const std::string& path);

}  // namespace pphe
