#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pphe {

/// Dense row-major float tensor for the plaintext training stack.
/// Deliberately minimal: the training side of the paper (§V.D) is a small
/// CNN on 28x28 inputs, so clarity beats BLAS here.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);

  static Tensor zeros(std::vector<std::size_t> shape);
  static Tensor full(std::vector<std::size_t> shape, float value);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t size() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Indexed accessors (checked in debug via the shape product only).
  float& at2(std::size_t i, std::size_t j) {
    return data_[i * shape_[1] + j];
  }
  float at2(std::size_t i, std::size_t j) const {
    return data_[i * shape_[1] + j];
  }
  float& at4(std::size_t b, std::size_t c, std::size_t h, std::size_t w) {
    return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float at4(std::size_t b, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// Reinterprets the same data under a new shape (sizes must match).
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float value);
  std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace pphe
