#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"

namespace pphe {

/// Sequential container over Layer.
class Network {
 public:
  Network() = default;

  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  Tensor forward(const Tensor& x, bool train = false);
  /// Backpropagates from the loss gradient at the output.
  void backward(const Tensor& grad_out);

  std::vector<Param*> params();
  const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }
  std::vector<std::unique_ptr<Layer>>& layers_mut() { return layers_; }
  std::string describe() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Softmax cross-entropy on logits. Returns mean loss; writes d(loss)/d(logits)
/// into `grad` (same shape as logits).
float cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                    std::size_t offset, Tensor& grad);

/// SGD with momentum (§V.D: momentum 0.9).
class Sgd {
 public:
  explicit Sgd(float momentum = 0.9f) : momentum_(momentum) {}
  void zero_grad(const std::vector<Param*>& params) const;
  void step(const std::vector<Param*>& params, float lr) const;

 private:
  float momentum_;
};

/// 1-cycle learning-rate policy [40]: linear warm-up to lr_max over the first
/// `pct_start` of training, then cosine annealing down to lr_max/final_div.
class OneCycleLr {
 public:
  OneCycleLr(float lr_max, std::size_t total_steps, float pct_start = 0.3f,
             float div = 25.0f, float final_div = 1e4f);
  float lr(std::size_t step) const;

 private:
  float lr_max_;
  std::size_t total_steps_;
  float pct_start_, div_, final_div_;
};

/// Training configuration mirroring §V.D: SGD momentum 0.9, batch 64,
/// cross-entropy, 1-cycle LR, Kaiming init (done at layer construction).
struct TrainConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  float lr_max = 0.05f;
  float momentum = 0.9f;
  std::uint64_t shuffle_seed = 17;
  bool verbose = false;
  /// Global-norm gradient clipping (0 disables). Stabilizes the SLAF
  /// re-training phase, whose coefficient gradients scale like x^degree.
  float clip_norm = 5.0f;
  /// If non-empty, only parameters in this set are updated (used for the
  /// SLAF-only fine-tuning variant of the CNN-HE-SLAF protocol).
  std::vector<Param*> restrict_to;
};

/// Runs the §V.D training loop; returns final training accuracy (%).
float train(Network& net, const Dataset& data, const TrainConfig& cfg);

/// Classification accuracy (%) over a dataset (batched forward, eval mode).
float evaluate(Network& net, const Dataset& data, std::size_t batch_size = 256);

/// Argmax prediction for a single (1,1,28,28) image.
int predict(Network& net, const Tensor& image);

}  // namespace pphe
