#include "nn/data.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {

Tensor Dataset::image(std::size_t i) const {
  PPHE_CHECK(i < size(), "dataset index out of range");
  Tensor out({1, 1, 28, 28});
  const float* src = images.data() + i * 28 * 28;
  std::copy(src, src + 28 * 28, out.data());
  return out;
}

namespace {

struct Point {
  float x, y;
};
struct Segment {
  Point a, b;
};

// Seven-segment style skeletons in [0,1]^2 (y grows downward):
//     A
//   F   B
//     G
//   E   C
//     D
constexpr Point kA0{0.25f, 0.15f}, kA1{0.75f, 0.15f};
constexpr Point kG0{0.25f, 0.50f}, kG1{0.75f, 0.50f};
constexpr Point kD0{0.25f, 0.85f}, kD1{0.75f, 0.85f};

const std::array<Segment, 7> kSegments = {{
    {kA0, kA1},          // A (top)
    {kA1, kG1},          // B (top right)
    {kG1, kD1},          // C (bottom right)
    {kD0, kD1},          // D (bottom)
    {kG0, kD0},          // E (bottom left)
    {kA0, kG0},          // F (top left)
    {kG0, kG1},          // G (middle)
}};

// Which segments light up per digit (A B C D E F G).
constexpr std::array<std::uint8_t, 10> kDigitMask = {
    0b1111110,  // 0: ABCDEF
    0b0110000,  // 1: BC
    0b1101101,  // 2: ABDEG
    0b1111001,  // 3: ABCDG
    0b0110011,  // 4: BCFG
    0b1011011,  // 5: ACDFG
    0b1011111,  // 6: ACDEFG
    0b1110000,  // 7: ABC
    0b1111111,  // 8: all
    0b1111011,  // 9: ABCDFG
};

float segment_distance(Point p, const Segment& s) {
  const float dx = s.b.x - s.a.x, dy = s.b.y - s.a.y;
  const float len2 = dx * dx + dy * dy;
  float t = len2 == 0.0f
                ? 0.0f
                : ((p.x - s.a.x) * dx + (p.y - s.a.y) * dy) / len2;
  t = std::clamp(t, 0.0f, 1.0f);
  const float px = s.a.x + t * dx - p.x;
  const float py = s.a.y + t * dy - p.y;
  return std::sqrt(px * px + py * py);
}

}  // namespace

Dataset generate_synthetic_mnist(std::size_t count, std::uint64_t seed) {
  Prng prng(seed ^ 0x6d6e697374ull);  // "mnist"
  Dataset ds;
  ds.images = Tensor({count, 1, 28, 28});
  ds.labels.resize(count);

  for (std::size_t n = 0; n < count; ++n) {
    const int digit = static_cast<int>(prng.uniform_below(10));
    ds.labels[n] = digit;

    // Random affine jitter applied to the skeleton control points.
    const float angle =
        static_cast<float>((prng.uniform_double() - 0.5) * 2.0 * 0.21);  // ~±12°
    const float shear = static_cast<float>((prng.uniform_double() - 0.5) * 0.3);
    const float scale =
        static_cast<float>(0.85 + prng.uniform_double() * 0.3);
    const float tx = static_cast<float>((prng.uniform_double() - 0.5) * 4.0);
    const float ty = static_cast<float>((prng.uniform_double() - 0.5) * 4.0);
    const float thickness =
        static_cast<float>(1.1 + prng.uniform_double() * 1.1);
    const float intensity =
        static_cast<float>(0.75 + prng.uniform_double() * 0.25);
    const float noise_sigma =
        static_cast<float>(0.02 + prng.uniform_double() * 0.05);
    const float ca = std::cos(angle), sa = std::sin(angle);

    auto map_point = [&](Point p) -> Point {
      // Center, shear, rotate, scale to a ~20px box, translate into 28x28.
      float x = p.x - 0.5f, y = p.y - 0.5f;
      x += shear * y;
      const float xr = ca * x - sa * y;
      const float yr = sa * x + ca * y;
      return {xr * 20.0f * scale + 14.0f + tx, yr * 20.0f * scale + 14.0f + ty};
    };

    std::vector<Segment> strokes;
    const std::uint8_t mask = kDigitMask[static_cast<std::size_t>(digit)];
    for (std::size_t s = 0; s < kSegments.size(); ++s) {
      if ((mask >> (6 - s)) & 1) {
        Segment seg{map_point(kSegments[s].a), map_point(kSegments[s].b)};
        // Small per-segment endpoint jitter breaks the LCD regularity.
        seg.a.x += static_cast<float>((prng.uniform_double() - 0.5) * 1.2);
        seg.a.y += static_cast<float>((prng.uniform_double() - 0.5) * 1.2);
        seg.b.x += static_cast<float>((prng.uniform_double() - 0.5) * 1.2);
        seg.b.y += static_cast<float>((prng.uniform_double() - 0.5) * 1.2);
        strokes.push_back(seg);
      }
    }

    float* img = ds.images.data() + n * 28 * 28;
    for (int y = 0; y < 28; ++y) {
      for (int x = 0; x < 28; ++x) {
        const Point p{static_cast<float>(x), static_cast<float>(y)};
        float d = 1e9f;
        for (const auto& seg : strokes) {
          d = std::min(d, segment_distance(p, seg));
        }
        float v = std::clamp(thickness * 0.5f + 0.5f - d, 0.0f, 1.0f) *
                  intensity;
        v += static_cast<float>(prng.normal()) * noise_sigma;
        img[y * 28 + x] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return ds;
}

namespace {

std::uint32_t read_be32(std::ifstream& in) {
  std::array<unsigned char, 4> b{};
  in.read(reinterpret_cast<char*>(b.data()), 4);
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

}  // namespace

std::optional<Dataset> load_mnist_idx(const std::string& dir, bool train) {
  const std::string img_path =
      dir + (train ? "/train-images-idx3-ubyte" : "/t10k-images-idx3-ubyte");
  const std::string lbl_path =
      dir + (train ? "/train-labels-idx1-ubyte" : "/t10k-labels-idx1-ubyte");
  std::ifstream img(img_path, std::ios::binary);
  std::ifstream lbl(lbl_path, std::ios::binary);
  if (!img || !lbl) return std::nullopt;

  PPHE_CHECK(read_be32(img) == 0x803, "bad IDX image magic");
  const std::uint32_t n = read_be32(img);
  PPHE_CHECK(read_be32(img) == 28 && read_be32(img) == 28,
             "expected 28x28 images");
  PPHE_CHECK(read_be32(lbl) == 0x801, "bad IDX label magic");
  PPHE_CHECK(read_be32(lbl) == n, "image/label count mismatch");

  Dataset ds;
  ds.images = Tensor({n, 1, 28, 28});
  ds.labels.resize(n);
  std::vector<unsigned char> buf(28 * 28);
  for (std::uint32_t i = 0; i < n; ++i) {
    img.read(reinterpret_cast<char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
    float* dst = ds.images.data() + static_cast<std::size_t>(i) * 28 * 28;
    for (std::size_t j = 0; j < buf.size(); ++j) {
      dst[j] = static_cast<float>(buf[j]) / 255.0f;
    }
    char c = 0;
    lbl.read(&c, 1);
    ds.labels[i] = static_cast<int>(static_cast<unsigned char>(c));
  }
  PPHE_CHECK(static_cast<bool>(img) && static_cast<bool>(lbl),
             "truncated IDX files");
  return ds;
}

}  // namespace pphe
