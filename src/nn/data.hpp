#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace pphe {

/// A labelled image set: images (N, 1, 28, 28) in [0, 1], labels in [0, 10).
struct Dataset {
  Tensor images;
  std::vector<int> labels;

  std::size_t size() const { return labels.size(); }
  /// Copies example i as a (1, 1, 28, 28) batch.
  Tensor image(std::size_t i) const;
};

/// Synthetic MNIST substitute (see DESIGN.md §3): 28x28 grayscale digits
/// rendered procedurally from per-digit stroke skeletons (a seven-segment
/// style glyph set), with random affine jitter (rotation, shear, scale,
/// translation), stroke-thickness variation, intensity variation and pixel
/// noise. Same tensor format and value range as MNIST, so the entire
/// training / encryption / encrypted-inference pipeline is exercised
/// identically; drop real IDX files in via load_mnist_idx to use MNIST
/// itself.
Dataset generate_synthetic_mnist(std::size_t count, std::uint64_t seed);

/// Loads MNIST from IDX files (train-images-idx3-ubyte etc.) if present in
/// `dir`; returns nullopt when the files are missing. `train` selects the
/// 60k training or the 10k test split.
std::optional<Dataset> load_mnist_idx(const std::string& dir, bool train);

}  // namespace pphe
