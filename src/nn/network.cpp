#include "nn/network.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace pphe {

Tensor Network::forward(const Tensor& x, bool train) {
  Tensor t = x;
  for (auto& layer : layers_) t = layer->forward(t, train);
  return t;
}

void Network::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

std::vector<Param*> Network::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::string Network::describe() const {
  std::ostringstream os;
  for (const auto& layer : layers_) os << layer->describe() << "\n";
  return os.str();
}

float cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                    std::size_t offset, Tensor& grad) {
  const std::size_t b = logits.dim(0), k = logits.dim(1);
  grad = Tensor({b, k});
  float loss = 0.0f;
  for (std::size_t bi = 0; bi < b; ++bi) {
    const float* row = logits.data() + bi * k;
    const float maxv = *std::max_element(row, row + k);
    float denom = 0.0f;
    for (std::size_t j = 0; j < k; ++j) denom += std::exp(row[j] - maxv);
    const int y = labels[offset + bi];
    loss += -(row[static_cast<std::size_t>(y)] - maxv - std::log(denom));
    for (std::size_t j = 0; j < k; ++j) {
      const float p = std::exp(row[j] - maxv) / denom;
      grad.at2(bi, j) =
          (p - (static_cast<int>(j) == y ? 1.0f : 0.0f)) / static_cast<float>(b);
    }
  }
  return loss / static_cast<float>(b);
}

void Sgd::zero_grad(const std::vector<Param*>& params) const {
  for (Param* p : params) p->grad.fill(0.0f);
}

void Sgd::step(const std::vector<Param*>& params, float lr) const {
  for (Param* p : params) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->velocity[i] = momentum_ * p->velocity[i] - lr * p->grad[i];
      p->value[i] += p->velocity[i];
    }
  }
}

OneCycleLr::OneCycleLr(float lr_max, std::size_t total_steps, float pct_start,
                       float div, float final_div)
    : lr_max_(lr_max),
      total_steps_(std::max<std::size_t>(total_steps, 2)),
      pct_start_(pct_start),
      div_(div),
      final_div_(final_div) {}

float OneCycleLr::lr(std::size_t step) const {
  const auto warm =
      static_cast<std::size_t>(pct_start_ * static_cast<float>(total_steps_));
  const float lr_start = lr_max_ / div_;
  const float lr_final = lr_max_ / final_div_;
  if (step < warm && warm > 0) {
    const float t = static_cast<float>(step) / static_cast<float>(warm);
    return lr_start + t * (lr_max_ - lr_start);
  }
  const auto rem = static_cast<float>(total_steps_ - warm);
  const float t =
      rem <= 0 ? 1.0f : static_cast<float>(step - warm) / rem;
  const float cos_t = 0.5f * (1.0f + std::cos(static_cast<float>(M_PI) * t));
  return lr_final + (lr_max_ - lr_final) * cos_t;
}

float train(Network& net, const Dataset& data, const TrainConfig& cfg) {
  PPHE_CHECK(data.size() > 0, "empty dataset");
  auto params =
      cfg.restrict_to.empty() ? net.params() : cfg.restrict_to;
  Sgd sgd(cfg.momentum);
  const std::size_t batches =
      (data.size() + cfg.batch_size - 1) / cfg.batch_size;
  OneCycleLr schedule(cfg.lr_max, cfg.epochs * batches);
  Prng prng(cfg.shuffle_seed);

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  std::size_t step = 0;
  float last_acc = 0.0f;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic PRNG.
    for (std::size_t i = order.size(); i-- > 1;) {
      std::swap(order[i], order[prng.uniform_below(i + 1)]);
    }
    float epoch_loss = 0.0f;
    std::size_t correct = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t begin = b * cfg.batch_size;
      const std::size_t end = std::min(begin + cfg.batch_size, data.size());
      const std::size_t bsz = end - begin;
      Tensor batch({bsz, 1, 28, 28});
      std::vector<int> labels(bsz);
      for (std::size_t i = 0; i < bsz; ++i) {
        const std::size_t src = order[begin + i];
        std::copy(data.images.data() + src * 784,
                  data.images.data() + (src + 1) * 784,
                  batch.data() + i * 784);
        labels[i] = data.labels[src];
      }
      sgd.zero_grad(net.params());
      const Tensor logits = net.forward(batch, /*train=*/true);
      Tensor grad;
      epoch_loss += cross_entropy(logits, labels, 0, grad);
      for (std::size_t i = 0; i < bsz; ++i) {
        const float* row = logits.data() + i * logits.dim(1);
        const auto pred = static_cast<int>(
            std::max_element(row, row + logits.dim(1)) - row);
        if (pred == labels[i]) ++correct;
      }
      net.backward(grad);
      if (cfg.clip_norm > 0.0f) {
        double norm2 = 0.0;
        for (Param* p : params) {
          for (std::size_t i = 0; i < p->grad.size(); ++i) {
            norm2 += static_cast<double>(p->grad[i]) * p->grad[i];
          }
        }
        const double norm = std::sqrt(norm2);
        if (norm > cfg.clip_norm) {
          const float f = cfg.clip_norm / static_cast<float>(norm);
          for (Param* p : params) {
            for (std::size_t i = 0; i < p->grad.size(); ++i) p->grad[i] *= f;
          }
        }
      }
      sgd.step(params, schedule.lr(step++));
    }
    last_acc = 100.0f * static_cast<float>(correct) /
               static_cast<float>(data.size());
    if (cfg.verbose) {
      std::printf("  epoch %zu/%zu loss %.4f train-acc %.2f%%\n", epoch + 1,
                  cfg.epochs, epoch_loss / static_cast<float>(batches),
                  static_cast<double>(last_acc));
    }
  }
  return last_acc;
}

float evaluate(Network& net, const Dataset& data, std::size_t batch_size) {
  std::size_t correct = 0;
  for (std::size_t begin = 0; begin < data.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, data.size());
    const std::size_t bsz = end - begin;
    Tensor batch({bsz, 1, 28, 28});
    std::copy(data.images.data() + begin * 784, data.images.data() + end * 784,
              batch.data());
    const Tensor logits = net.forward(batch, /*train=*/false);
    for (std::size_t i = 0; i < bsz; ++i) {
      const float* row = logits.data() + i * logits.dim(1);
      const auto pred = static_cast<int>(
          std::max_element(row, row + logits.dim(1)) - row);
      if (pred == data.labels[begin + i]) ++correct;
    }
  }
  return 100.0f * static_cast<float>(correct) / static_cast<float>(data.size());
}

int predict(Network& net, const Tensor& image) {
  const Tensor logits = net.forward(image, /*train=*/false);
  const float* row = logits.data();
  return static_cast<int>(
      std::max_element(row, row + logits.dim(1)) - row);
}

}  // namespace pphe
