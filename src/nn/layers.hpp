#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "nn/tensor.hpp"

namespace pphe {

/// Trainable parameter: value, accumulated gradient and SGD-momentum state.
struct Param {
  Tensor value;
  Tensor grad;
  Tensor velocity;

  explicit Param(std::vector<std::size_t> shape)
      : value(shape), grad(shape), velocity(shape) {}
};

/// Base class for the plaintext layers of §V.D. Layers cache whatever they
/// need in forward(train=true) for the subsequent backward().
class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor forward(const Tensor& x, bool train) = 0;
  /// grad w.r.t. this layer's input; accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad_out) = 0;
  virtual std::vector<Param*> params() { return {}; }
  virtual std::string describe() const = 0;
};

/// Valid (no padding) 2D convolution, stride `stride`, Kaiming-normal init
/// [41] as §V.D specifies. Input (B, C, H, W) -> (B, F, H', W').
class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, Prng& prng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string describe() const override;

  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }

 private:
  std::size_t in_channels_, out_channels_, kernel_, stride_;
  Param weight_;  // (F, C, K, K)
  Param bias_;    // (F)
  Tensor cached_input_;
};

/// Fully connected layer, Kaiming-normal init. Input (B, D) -> (B, M).
class Dense final : public Layer {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim, Prng& prng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string describe() const override;

  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

 private:
  std::size_t in_dim_, out_dim_;
  Param weight_;  // (M, D)
  Param bias_;    // (M)
  Tensor cached_input_;
};

/// Per-channel batch normalization over (B, H, W), as CNN2 places before each
/// activation (§V.D: zero mean, unit variance inputs shrink the polynomial
/// approximation interval). Tracks running statistics for inference, where it
/// is a fixed affine map that the HE compiler folds into adjacent layers.
class BatchNorm2D final : public Layer {
 public:
  explicit BatchNorm2D(std::size_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::string describe() const override;

  /// Inference-time per-channel affine: y = scale[c] * x + shift[c].
  std::vector<float> fold_scale() const;
  std::vector<float> fold_shift() const;
  std::size_t channels() const { return channels_; }
  std::vector<float>& running_mean() { return running_mean_; }
  std::vector<float>& running_var() { return running_var_; }

 private:
  std::size_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  std::vector<float> running_mean_, running_var_;
  // Cached batch statistics for backward.
  Tensor cached_input_;
  std::vector<float> batch_mean_, batch_inv_std_;
};

/// Flattens (B, ...) to (B, D).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string describe() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> cached_shape_;
};

/// Reshapes (B, C*H*W) back to (B, C, H, W) — lets an activation that
/// operates on flattened features sit between two convolutions (CNN2).
class Reshape4D final : public Layer {
 public:
  Reshape4D(std::size_t c, std::size_t h, std::size_t w)
      : c_(c), h_(h), w_(w) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string describe() const override { return "Reshape4D"; }

 private:
  std::size_t c_, h_, w_;
};

/// ReLU — used only for the pre-training phase of the CNN-HE-SLAF protocol;
/// it has no homomorphic counterpart (§III.C).
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string describe() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// x^2 — CryptoNets' activation [20], kept as the historical baseline.
class Square final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string describe() const override { return "Square"; }

 private:
  Tensor cached_input_;
};

/// Self-Learning Activation Function (eq. (2) of the paper): a polynomial
/// f_k(x) = a_0^k + a_1^k x + ... + a_d^k x^d with trainable coefficients,
/// independent per neuron k (per feature position), learned jointly with the
/// model by backpropagation [11], [13]. Zero-initialized per the paper.
class Slaf final : public Layer {
 public:
  /// `features` = number of neurons this activation covers (product of the
  /// non-batch dims of its input); degree d (paper: 3).
  Slaf(std::size_t features, std::size_t degree);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&coeffs_}; }
  std::string describe() const override;

  std::size_t degree() const { return degree_; }
  std::size_t features() const { return features_; }
  /// Coefficient a_j of neuron k.
  float coeff(std::size_t neuron, std::size_t power) const {
    return coeffs_.value.at2(neuron, power);
  }
  Param& coeffs() { return coeffs_; }
  const Param& coeffs() const { return coeffs_; }

 private:
  std::size_t features_, degree_;
  Param coeffs_;  // (features, degree + 1)
  Tensor cached_input_;
};

}  // namespace pphe
