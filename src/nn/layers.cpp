#include "nn/layers.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace pphe {
namespace {

void kaiming_init(Tensor& t, std::size_t fan_in, Prng& prng) {
  const float std_dev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (auto& v : t.vec()) v = static_cast<float>(prng.normal()) * std_dev;
}

}  // namespace

// ---------------------------------------------------------------------------
// Conv2D
// ---------------------------------------------------------------------------

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, Prng& prng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}) {
  PPHE_CHECK(kernel >= 1 && stride >= 1, "invalid conv geometry");
  kaiming_init(weight_.value, in_channels * kernel * kernel, prng);
}

Tensor Conv2D::forward(const Tensor& x, bool train) {
  PPHE_CHECK(x.rank() == 4 && x.dim(1) == in_channels_,
             "Conv2D input shape mismatch");
  const std::size_t b = x.dim(0), h = x.dim(2), w = x.dim(3);
  PPHE_CHECK(h >= kernel_ && w >= kernel_, "input smaller than kernel");
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  Tensor y({b, out_channels_, oh, ow});
  for (std::size_t bi = 0; bi < b; ++bi) {
    for (std::size_t f = 0; f < out_channels_; ++f) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = bias_.value[f];
          for (std::size_t c = 0; c < in_channels_; ++c) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                acc += weight_.value.at4(f, c, ky, kx) *
                       x.at4(bi, c, oy * stride_ + ky, ox * stride_ + kx);
              }
            }
          }
          y.at4(bi, f, oy, ox) = acc;
        }
      }
    }
  }
  if (train) cached_input_ = x;
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t b = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  Tensor grad_in({b, in_channels_, h, w});
  for (std::size_t bi = 0; bi < b; ++bi) {
    for (std::size_t f = 0; f < out_channels_; ++f) {
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = grad_out.at4(bi, f, oy, ox);
          bias_.grad[f] += g;
          for (std::size_t c = 0; c < in_channels_; ++c) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::size_t iy = oy * stride_ + ky;
                const std::size_t ix = ox * stride_ + kx;
                weight_.grad.at4(f, c, ky, kx) += g * x.at4(bi, c, iy, ix);
                grad_in.at4(bi, c, iy, ix) +=
                    g * weight_.value.at4(f, c, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::string Conv2D::describe() const {
  std::ostringstream os;
  os << "Conv2D(" << in_channels_ << "->" << out_channels_ << ", " << kernel_
     << "x" << kernel_ << ", stride " << stride_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Prng& prng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_({out_dim, in_dim}),
      bias_({out_dim}) {
  kaiming_init(weight_.value, in_dim, prng);
}

Tensor Dense::forward(const Tensor& x, bool train) {
  PPHE_CHECK(x.rank() == 2 && x.dim(1) == in_dim_, "Dense input mismatch");
  const std::size_t b = x.dim(0);
  Tensor y({b, out_dim_});
  for (std::size_t bi = 0; bi < b; ++bi) {
    for (std::size_t m = 0; m < out_dim_; ++m) {
      float acc = bias_.value[m];
      const float* wrow = weight_.value.data() + m * in_dim_;
      const float* xrow = x.data() + bi * in_dim_;
      for (std::size_t d = 0; d < in_dim_; ++d) acc += wrow[d] * xrow[d];
      y.at2(bi, m) = acc;
    }
  }
  if (train) cached_input_ = x;
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t b = x.dim(0);
  Tensor grad_in({b, in_dim_});
  for (std::size_t bi = 0; bi < b; ++bi) {
    const float* xrow = x.data() + bi * in_dim_;
    const float* grow = grad_out.data() + bi * out_dim_;
    float* girow = grad_in.data() + bi * in_dim_;
    for (std::size_t m = 0; m < out_dim_; ++m) {
      const float g = grow[m];
      bias_.grad[m] += g;
      float* wgrow = weight_.grad.data() + m * in_dim_;
      const float* wrow = weight_.value.data() + m * in_dim_;
      for (std::size_t d = 0; d < in_dim_; ++d) {
        wgrow[d] += g * xrow[d];
        girow[d] += g * wrow[d];
      }
    }
  }
  return grad_in;
}

std::string Dense::describe() const {
  std::ostringstream os;
  os << "Dense(" << in_dim_ << "->" << out_dim_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// BatchNorm2D
// ---------------------------------------------------------------------------

BatchNorm2D::BatchNorm2D(std::size_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}),
      beta_({channels}),
      running_mean_(channels, 0.0f),
      running_var_(channels, 1.0f) {
  gamma_.value.fill(1.0f);
}

Tensor BatchNorm2D::forward(const Tensor& x, bool train) {
  PPHE_CHECK(x.rank() == 4 && x.dim(1) == channels_,
             "BatchNorm2D input mismatch");
  const std::size_t b = x.dim(0), h = x.dim(2), w = x.dim(3);
  const auto count = static_cast<float>(b * h * w);
  Tensor y(x.shape());

  std::vector<float> mean(channels_), inv_std(channels_);
  if (train) {
    for (std::size_t c = 0; c < channels_; ++c) {
      float sum = 0.0f;
      for (std::size_t bi = 0; bi < b; ++bi)
        for (std::size_t i = 0; i < h; ++i)
          for (std::size_t j = 0; j < w; ++j) sum += x.at4(bi, c, i, j);
      mean[c] = sum / count;
      float var = 0.0f;
      for (std::size_t bi = 0; bi < b; ++bi)
        for (std::size_t i = 0; i < h; ++i)
          for (std::size_t j = 0; j < w; ++j) {
            const float d = x.at4(bi, c, i, j) - mean[c];
            var += d * d;
          }
      var /= count;
      inv_std[c] = 1.0f / std::sqrt(var + eps_);
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * var;
    }
  } else {
    for (std::size_t c = 0; c < channels_; ++c) {
      mean[c] = running_mean_[c];
      inv_std[c] = 1.0f / std::sqrt(running_var_[c] + eps_);
    }
  }

  for (std::size_t bi = 0; bi < b; ++bi)
    for (std::size_t c = 0; c < channels_; ++c)
      for (std::size_t i = 0; i < h; ++i)
        for (std::size_t j = 0; j < w; ++j) {
          const float xn = (x.at4(bi, c, i, j) - mean[c]) * inv_std[c];
          y.at4(bi, c, i, j) = gamma_.value[c] * xn + beta_.value[c];
        }

  if (train) {
    cached_input_ = x;
    batch_mean_ = std::move(mean);
    batch_inv_std_ = std::move(inv_std);
  }
  return y;
}

Tensor BatchNorm2D::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t b = x.dim(0), h = x.dim(2), w = x.dim(3);
  const auto count = static_cast<float>(b * h * w);
  Tensor grad_in(x.shape());

  for (std::size_t c = 0; c < channels_; ++c) {
    // Standard batchnorm backward per channel.
    float sum_dy = 0.0f, sum_dy_xn = 0.0f;
    for (std::size_t bi = 0; bi < b; ++bi)
      for (std::size_t i = 0; i < h; ++i)
        for (std::size_t j = 0; j < w; ++j) {
          const float dy = grad_out.at4(bi, c, i, j);
          const float xn =
              (x.at4(bi, c, i, j) - batch_mean_[c]) * batch_inv_std_[c];
          sum_dy += dy;
          sum_dy_xn += dy * xn;
        }
    gamma_.grad[c] += sum_dy_xn;
    beta_.grad[c] += sum_dy;
    const float g = gamma_.value[c];
    for (std::size_t bi = 0; bi < b; ++bi)
      for (std::size_t i = 0; i < h; ++i)
        for (std::size_t j = 0; j < w; ++j) {
          const float dy = grad_out.at4(bi, c, i, j);
          const float xn =
              (x.at4(bi, c, i, j) - batch_mean_[c]) * batch_inv_std_[c];
          grad_in.at4(bi, c, i, j) =
              g * batch_inv_std_[c] *
              (dy - sum_dy / count - xn * sum_dy_xn / count);
        }
  }
  return grad_in;
}

std::vector<float> BatchNorm2D::fold_scale() const {
  std::vector<float> s(channels_);
  for (std::size_t c = 0; c < channels_; ++c) {
    s[c] = gamma_.value[c] / std::sqrt(running_var_[c] + eps_);
  }
  return s;
}

std::vector<float> BatchNorm2D::fold_shift() const {
  std::vector<float> s(channels_);
  const auto scale = fold_scale();
  for (std::size_t c = 0; c < channels_; ++c) {
    s[c] = beta_.value[c] - scale[c] * running_mean_[c];
  }
  return s;
}

std::string BatchNorm2D::describe() const {
  std::ostringstream os;
  os << "BatchNorm2D(" << channels_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Flatten / ReLU / Square
// ---------------------------------------------------------------------------

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  cached_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_shape_);
}

Tensor Reshape4D::forward(const Tensor& x, bool /*train*/) {
  return x.reshaped({x.dim(0), c_, h_, w_});
}

Tensor Reshape4D::backward(const Tensor& grad_out) {
  return grad_out.reshaped({grad_out.dim(0), c_ * h_ * w_});
}

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0 ? x[i] : 0.0f;
  if (train) cached_input_ = x;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor g(grad_out.shape());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = cached_input_[i] > 0 ? grad_out[i] : 0.0f;
  }
  return g;
}

Tensor Square::forward(const Tensor& x, bool train) {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] * x[i];
  if (train) cached_input_ = x;
  return y;
}

Tensor Square::backward(const Tensor& grad_out) {
  Tensor g(grad_out.shape());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = 2.0f * cached_input_[i] * grad_out[i];
  }
  return g;
}

// ---------------------------------------------------------------------------
// SLAF
// ---------------------------------------------------------------------------

Slaf::Slaf(std::size_t features, std::size_t degree)
    : features_(features), degree_(degree), coeffs_({features, degree + 1}) {
  PPHE_CHECK(degree >= 1, "SLAF degree must be at least 1");
  // Coefficients start at zero (paper §III.B); they are learned during the
  // short SLAF re-training phase of the CNN-HE-SLAF protocol.
}

Tensor Slaf::forward(const Tensor& x, bool train) {
  const std::size_t b = x.dim(0);
  PPHE_CHECK(x.size() == b * features_, "SLAF feature count mismatch");
  Tensor y(x.shape());
  for (std::size_t bi = 0; bi < b; ++bi) {
    for (std::size_t k = 0; k < features_; ++k) {
      const float v = x[bi * features_ + k];
      // Horner evaluation of the per-neuron polynomial.
      float acc = coeffs_.value.at2(k, degree_);
      for (std::size_t d = degree_; d-- > 0;) {
        acc = acc * v + coeffs_.value.at2(k, d);
      }
      y[bi * features_ + k] = acc;
    }
  }
  if (train) cached_input_ = x;
  return y;
}

Tensor Slaf::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t b = x.dim(0);
  Tensor grad_in(x.shape());
  for (std::size_t bi = 0; bi < b; ++bi) {
    for (std::size_t k = 0; k < features_; ++k) {
      const float v = x[bi * features_ + k];
      const float dy = grad_out[bi * features_ + k];
      float power = 1.0f;   // v^d
      float dx = 0.0f;
      for (std::size_t d = 0; d <= degree_; ++d) {
        coeffs_.grad.at2(k, d) += dy * power;
        if (d + 1 <= degree_) {
          dx += static_cast<float>(d + 1) * coeffs_.value.at2(k, d + 1) * power;
        }
        power *= v;
      }
      grad_in[bi * features_ + k] = dx * dy;
    }
  }
  return grad_in;
}

std::string Slaf::describe() const {
  std::ostringstream os;
  os << "SLAF(degree " << degree_ << ", " << features_ << " neurons)";
  return os.str();
}

}  // namespace pphe
