#include "nn/tensor.hpp"

#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace pphe {

namespace {
std::size_t shape_product(const std::vector<std::size_t>& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
  PPHE_CHECK(!shape_.empty(), "tensor needs at least one dimension");
  data_.assign(shape_product(shape_), 0.0f);
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  PPHE_CHECK(shape_product(new_shape) == data_.size(),
             "reshape size mismatch");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace pphe
