#include "nn/serialize.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "common/check.hpp"

namespace pphe {
namespace {

constexpr std::uint32_t kMagic = 0x70706e6e;  // "ppnn"

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool read_u32(std::ifstream& in, std::uint32_t& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(in);
}

void write_floats(std::ofstream& out, const std::vector<float>& v) {
  write_u32(out, static_cast<std::uint32_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool read_floats(std::ifstream& in, std::vector<float>& v) {
  std::uint32_t n = 0;
  if (!read_u32(in, n)) return false;
  if (n != v.size()) return false;  // shape mismatch
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
  if (!in) return false;
  // Bit rot / partial writes can produce NaN/Inf payloads that would train
  // fine-looking garbage; reject them so the caller treats the file as a
  // cache miss and retrains.
  for (const float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// Gathers every float vector a network owns: parameter tensors in order,
/// then batch-norm running statistics.
std::vector<std::vector<float>*> all_buffers(Network& net) {
  std::vector<std::vector<float>*> out;
  for (auto& layer : net.layers_mut()) {
    for (Param* p : layer->params()) out.push_back(&p->value.vec());
    if (auto* bn = dynamic_cast<BatchNorm2D*>(layer.get())) {
      out.push_back(&bn->running_mean());
      out.push_back(&bn->running_var());
    }
  }
  return out;
}

}  // namespace

void save_weights(const Network& net, const std::string& path) {
  auto& mut = const_cast<Network&>(net);
  const auto buffers = all_buffers(mut);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PPHE_CHECK(static_cast<bool>(out), "cannot open " + path + " for writing");
  write_u32(out, kMagic);
  write_u32(out, static_cast<std::uint32_t>(buffers.size()));
  for (const auto* buf : buffers) write_floats(out, *buf);
  PPHE_CHECK(static_cast<bool>(out), "failed writing " + path);
}

bool load_weights(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint32_t magic = 0, count = 0;
  if (!read_u32(in, magic) || magic != kMagic) return false;
  if (!read_u32(in, count)) return false;
  const auto buffers = all_buffers(net);
  if (count != buffers.size()) return false;
  for (auto* buf : buffers) {
    if (!read_floats(in, *buf)) return false;
  }
  return true;
}

}  // namespace pphe
