#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace pphe::serve {

/// Bounded multi-producer/multi-consumer queue — the admission-control edge
/// of the batch server. Two producer disciplines coexist:
///
///  * push()      — never blocks. A full queue REJECTS the item with a typed
///                  Error(ErrorCode::kOverloaded): backpressure surfaces to
///                  the client at submit time instead of stalling it, so the
///                  caller can shed load or resubmit later (the front door).
///  * push_wait() — blocks until space frees up. Used on internal handoff
///                  lanes (batcher -> workers) where the producer is our own
///                  thread and stalling IT is exactly the backpressure we
///                  want to propagate upstream.
///
/// close() stops producers and lets consumers drain what is already queued;
/// pop_until() reports kClosed only once the queue is closed AND empty, so a
/// shutdown never drops accepted work.
template <typename T>
class RequestQueue {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  enum class PopStatus {
    kItem,     ///< an item was dequeued into `out`
    kTimeout,  ///< the deadline expired with the queue still empty
    kClosed,   ///< closed and fully drained — no item will ever arrive
  };

  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {
    PPHE_CHECK(capacity > 0, "RequestQueue: capacity must be positive");
  }

  /// Admission-control producer: rejects instead of blocking. Throws
  /// Error(kOverloaded) when full, Error(kGeneric) when closed.
  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      PPHE_CHECK(!closed_, "RequestQueue: push on a closed queue");
      PPHE_CHECK_CODE(items_.size() < capacity_, ErrorCode::kOverloaded,
                      "queue full (" + std::to_string(capacity_) +
                          " pending requests) — backpressure, resubmit later");
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
  }

  /// Blocking producer for internal lanes: waits for space. Returns false
  /// (dropping the item) only when the queue is closed.
  bool push_wait(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking consumer; false when nothing is immediately available.
  bool try_pop(T& out) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return false;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Blocking consumer. With a deadline, gives up at that instant
  /// (kTimeout); with nullopt it waits indefinitely for an item or close.
  PopStatus pop_until(T& out, std::optional<TimePoint> deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto ready = [this] { return closed_ || !items_.empty(); };
    if (deadline) {
      if (!not_empty_.wait_until(lock, *deadline, ready)) {
        return PopStatus::kTimeout;
      }
    } else {
      not_empty_.wait(lock, ready);
    }
    if (items_.empty()) return PopStatus::kClosed;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return PopStatus::kItem;
  }

  /// Stops producers and wakes every waiter; queued items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pphe::serve
