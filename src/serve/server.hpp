#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "core/serving.hpp"
#include "serve/batcher.hpp"
#include "serve/model_set.hpp"
#include "serve/request_queue.hpp"

namespace pphe::serve {

/// Knobs of the batch server (CLI flags map onto these 1:1).
struct ServerOptions {
  /// Evaluation worker threads. Each worker owns one batch at a time; the
  /// homomorphic kernels inside an evaluation still parallelize through the
  /// process-wide ThreadPool, so workers add pipeline overlap (a batch
  /// evaluates while the next one coalesces), not kernel parallelism.
  std::size_t workers = 1;
  /// Largest SIMD batch to coalesce (clamped to the model set's max_batch).
  std::size_t max_batch = 8;
  /// How long the oldest queued request may wait for companions before its
  /// partial batch is cut anyway (latency bound of micro-batching).
  double linger_ms = 2.0;
  /// Admission-control capacity: requests beyond this many pending are
  /// rejected with Error(kOverloaded) at submit().
  std::size_t queue_capacity = 64;
  /// Per-batch recovery knobs (retries, watchdog) — the PR 4 loop.
  ServingOptions serving;
};

/// What a client's future resolves to: the per-request slice of the batch
/// outcome, with the batch-level fault history attributed to this request
/// (every member of a slot-packed batch shares one ciphertext, so a fault
/// hit them all identically).
struct ServeReply {
  std::vector<double> logits;
  int predicted = -1;
  bool ok = false;
  /// Noise-budget refusal: typed degraded outcome, never garbage logits.
  bool degraded = false;
  /// Code of the final failure when !ok (kGeneric when ok).
  ErrorCode error = ErrorCode::kGeneric;
  std::string message;
  /// Full attempt history of the batch this request rode in.
  std::vector<ServeAttempt> faults;
  int attempts = 0;
  /// Size of the dispatched batch (before padding to a power of two).
  std::size_t batch_size = 0;
  double queue_seconds = 0.0;  ///< submit -> batch cut
  double eval_seconds = 0.0;   ///< batch round trip (shared across the batch)
};

/// One consistent scalar read of the server telemetry, for exporters and
/// stat prints: every counter and every derived latency quantile comes from
/// the SAME locked copy of the stats, so a scrape can never pair an ok-count
/// from one instant with a percentile from another. Produced by
/// ServerStats::snapshot() (and BatchServer::snapshot(), which takes the
/// stats lock exactly once).
struct StatsSnapshot {
  std::size_t queue_depth = 0;
  std::size_t batches_in_flight = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t retries = 0;
  std::array<std::uint64_t, kErrorCodeCount> rejected{};
  std::uint64_t rejected_total = 0;
  std::map<std::size_t, std::uint64_t> batch_sizes;
  /// Derived latency series (nanoseconds), all from the same histograms.
  std::uint64_t queue_count = 0;
  double queue_p50_ns = 0.0, queue_p99_ns = 0.0, queue_avg_ns = 0.0;
  std::uint64_t linger_count = 0;
  double linger_p50_ns = 0.0, linger_p99_ns = 0.0;
  std::uint64_t eval_count = 0;
  double eval_p50_ns = 0.0, eval_p99_ns = 0.0, eval_avg_ns = 0.0;
  double eval_total_ns = 0.0;
};

/// Point-in-time server telemetry (copy, safe to read after the server is
/// gone). Latency histograms use the tracer's log2-ns buckets.
struct ServerStats {
  std::size_t queue_depth = 0;      ///< requests awaiting batching
  std::size_t batches_in_flight = 0;  ///< cut but not yet completed
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< replies delivered (ok + degraded + failed)
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  /// Extra attempts beyond the first, summed over batches (retry pressure).
  std::uint64_t retries = 0;
  /// submit()-time rejections by ErrorCode (kOverloaded = queue full,
  /// kInvalidArgument = bad image dimension).
  std::array<std::uint64_t, kErrorCodeCount> rejected{};
  /// Dispatched batch size -> count (the coalescing histogram).
  std::map<std::size_t, std::uint64_t> batch_sizes;
  Histogram queue_ns;   ///< per request: submit -> batch cut
  Histogram linger_ns;  ///< per batch: oldest arrival -> cut
  Histogram eval_ns;    ///< per batch: hardened round trip wall time

  /// Flattens this copy into the exporter-facing scalar view. Pure derived
  /// read — call it on the copy stats()/snapshot() handed out.
  StatsSnapshot snapshot() const;
};

/// Deadline-aware batch-serving front end over the hardened round trip:
///
///   submit() ──RequestQueue──▶ batcher thread ──batch lane──▶ N workers
///   (admission control)        (MicroBatcher:                 (serve_classify_batch:
///    kOverloaded when full)     coalesce ≤ max_batch           retry-by-recompute,
///                               within linger_ms)              watchdog, noise guard)
///
/// Each cut batch is ONE slot-packed homomorphic evaluation on the model
/// compiled for the batch's size (padded to the next power of two); the
/// per-request logits are de-interleaved back out and delivered through the
/// futures submit() returned. Stages are traced as serve.enqueue /
/// serve.batch / serve.eval / serve.reply spans in category "serve".
class BatchServer {
 public:
  BatchServer(BatchModelSet& models, ServerOptions options);
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueues one image for classification. Returns the future its reply
  /// will arrive on. Throws Error(kOverloaded) when the queue is full,
  /// Error(kInvalidArgument) on a wrong-dimension image (both counted in
  /// stats().rejected), Error(kGeneric) after shutdown().
  std::future<ServeReply> submit(std::vector<float> image);

  /// Stops admissions, drains everything already accepted (every returned
  /// future resolves), joins all threads. Idempotent; the destructor calls
  /// it.
  void shutdown();

  ServerStats stats() const;

  /// One-lock consistent scalar snapshot (stats().snapshot() fused): what
  /// the metrics endpoint and the CLI stat prints read.
  StatsSnapshot snapshot() const { return stats().snapshot(); }

  /// Requests currently awaiting batching — the admission-control signal
  /// tiered shedding reads on every request (cheap: one queue mutex, no
  /// histogram copies).
  std::size_t queue_depth() const { return queue_.size(); }

  /// Image dimension submit() accepts (forwarded from the model set, so the
  /// network handshake can advertise it).
  std::size_t input_dim() const { return models_.input_dim(); }

  const ServerOptions& options() const { return options_; }

 private:
  struct Pending {
    std::vector<float> image;
    std::promise<ServeReply> promise;
    RequestQueue<int>::TimePoint enqueue_time;
  };
  struct ReadyBatch {
    std::vector<Pending> requests;
    RequestQueue<int>::TimePoint oldest_arrival;
    RequestQueue<int>::TimePoint cut_time;
  };

  void batcher_main();
  void worker_main();
  void dispatch(MicroBatch<Pending> batch);
  void process(ReadyBatch batch);

  BatchModelSet& models_;
  ServerOptions options_;
  RequestQueue<Pending> queue_;
  RequestQueue<ReadyBatch> batch_lane_;
  std::thread batcher_thread_;
  std::vector<std::thread> workers_;
  bool shut_down_ = false;
  std::mutex shutdown_mutex_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace pphe::serve
