#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>

#include "core/he_model.hpp"

namespace pphe {
class RnsBackend;
}

namespace pphe::serve {

/// The family of compiled models the batch server evaluates on: ONE
/// ModelSpec compiled at every power-of-two SIMD batch size the backend's
/// slots can hold, lazily and on demand. All members share a single
/// WeightOperandCache, so the weight encodings — the dominant compile
/// cost — are paid once; a batch-8 model reuses the batch-1 model's
/// operands wherever scale/level line up.
///
/// model_for() is thread-safe: workers evaluating on already-compiled
/// members proceed while another thread compiles a new size (compilation
/// takes the set's mutex; backend-level shared state is internally
/// synchronized).
class BatchModelSet {
 public:
  /// `base` is the option template; its `batch` field is overridden per
  /// member and its weight_cache (if null) is replaced by the shared cache.
  BatchModelSet(RnsBackend& backend, const ModelSpec& spec,
                HeModelOptions base);

  /// Largest power-of-two batch the spec fits on this backend
  /// (HeModel::validate_batch accepts exactly the powers of two in
  /// [1, max_batch()]).
  std::size_t max_batch() const { return max_batch_; }

  /// Model for `n` requests: compiled at the next power of two >= n
  /// (partial batches pad up). Compiles and caches on first use. Throws
  /// Error(kInvalidArgument) when n is 0 or exceeds max_batch().
  const HeModel& model_for(std::size_t n);

  RnsBackend& backend() const { return backend_; }
  const ModelSpec& spec() const { return spec_; }
  /// Input dimension a request's image must have.
  std::size_t input_dim() const;
  const std::shared_ptr<WeightOperandCache>& weight_cache() const {
    return cache_;
  }

 private:
  RnsBackend& backend_;
  ModelSpec spec_;
  HeModelOptions base_;
  std::shared_ptr<WeightOperandCache> cache_;
  std::size_t max_batch_ = 1;
  std::mutex mutex_;
  std::map<std::size_t, std::unique_ptr<HeModel>> models_;  // by batch size
};

}  // namespace pphe::serve
