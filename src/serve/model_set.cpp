#include "serve/model_set.hpp"

#include <string>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"

namespace pphe::serve {

namespace {
std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

BatchModelSet::BatchModelSet(RnsBackend& backend, const ModelSpec& spec,
                             HeModelOptions base)
    : backend_(backend), spec_(spec), base_(std::move(base)) {
  cache_ = base_.weight_cache ? base_.weight_cache
                              : std::make_shared<WeightOperandCache>();
  base_.weight_cache = cache_;
  // Probe upward through the powers of two the validator accepts; the spec
  // and slot count bound this, not a config guess.
  while (max_batch_ * 2 <= backend_.slot_count()) {
    try {
      HeModel::validate_batch(backend_, spec_, max_batch_ * 2);
    } catch (const Error&) {
      break;
    }
    max_batch_ *= 2;
  }
}

std::size_t BatchModelSet::input_dim() const {
  PPHE_CHECK(!spec_.stages.empty() &&
                 spec_.stages.front().kind == ModelSpec::Stage::Kind::kLinear,
             "BatchModelSet: spec must start with a linear stage");
  return spec_.stages.front().linear.in_dim;
}

const HeModel& BatchModelSet::model_for(std::size_t n) {
  PPHE_CHECK_CODE(n >= 1 && n <= max_batch_, ErrorCode::kInvalidArgument,
                  "batch of " + std::to_string(n) +
                      " images outside [1, " + std::to_string(max_batch_) +
                      "] for this model on " + backend_.name());
  const std::size_t batch = next_pow2(n);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = models_.find(batch);
  if (it == models_.end()) {
    HeModelOptions options = base_;
    options.batch = batch;
    it = models_
             .emplace(batch,
                      std::make_unique<HeModel>(backend_, spec_, options))
             .first;
  }
  return *it->second;
}

}  // namespace pphe::serve
