#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace pphe::serve {

/// A batch the micro-batcher cut: items of ONE compatibility group, in
/// arrival order, plus the arrival time of its oldest member (the linger
/// latency of the batch is cut_time - oldest_arrival).
template <typename T>
struct MicroBatch {
  std::uint64_t key = 0;
  std::vector<T> items;
  std::chrono::steady_clock::time_point oldest_arrival{};
};

/// Deadline-aware micro-batching DECISION logic — no threads, no clock of
/// its own, every method a pure function of its arguments and prior calls,
/// which is what makes the linger/dispatch policy deterministically
/// testable with fabricated time points.
///
/// Requests accumulate per compatibility key (the server keys on the model
/// set identity — only requests for the same compiled model/params may
/// share a slot-packed ciphertext). The driving thread feeds arrivals with
/// add(), asks next_deadline() how long it may sleep, and drains cut():
///
///  * a group that reached `max_batch` is cut immediately (a full batch
///    never waits out its linger);
///  * otherwise a group is cut once its OLDEST member has waited
///    `max_linger` — bounded latency for the first request in line;
///  * cut_any() force-cuts regardless of deadlines (shutdown drain).
template <typename T>
class MicroBatcher {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  MicroBatcher(std::size_t max_batch, Clock::duration max_linger)
      : max_batch_(max_batch), linger_(max_linger) {
    PPHE_CHECK(max_batch > 0, "MicroBatcher: max_batch must be positive");
  }

  void add(std::uint64_t key, T item, TimePoint arrival) {
    Group& g = groups_[key];
    g.items.push_back(std::move(item));
    g.arrivals.push_back(arrival);
    ++pending_;
  }

  /// Earliest linger expiry over all pending groups; nullopt when idle.
  /// The driver sleeps until this instant (or a new arrival) and calls
  /// cut() again. A full group makes the CURRENT time the deadline, but
  /// drivers cut full groups immediately after add() anyway.
  std::optional<TimePoint> next_deadline() const {
    std::optional<TimePoint> earliest;
    for (const auto& [key, g] : groups_) {
      const TimePoint expiry = g.arrivals.front() + linger_;
      if (!earliest || expiry < *earliest) earliest = expiry;
    }
    return earliest;
  }

  /// Cuts one ready batch: any FULL group first (taking exactly max_batch
  /// items, oldest first — the remainder keeps waiting with a fresh
  /// deadline), else the expired group whose oldest member arrived first.
  /// nullopt when nothing is ready at `now`; drain with repeated calls.
  std::optional<MicroBatch<T>> cut(TimePoint now) {
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
      if (it->second.items.size() >= max_batch_) return take(it, max_batch_);
    }
    auto best = groups_.end();
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
      if (it->second.arrivals.front() + linger_ > now) continue;
      if (best == groups_.end() ||
          it->second.arrivals.front() < best->second.arrivals.front()) {
        best = it;
      }
    }
    if (best == groups_.end()) return std::nullopt;
    return take(best, best->second.items.size());
  }

  /// Force-cuts the group with the oldest member (shutdown drain), at most
  /// max_batch items at a time. nullopt when empty.
  std::optional<MicroBatch<T>> cut_any() {
    auto best = groups_.end();
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
      if (best == groups_.end() ||
          it->second.arrivals.front() < best->second.arrivals.front()) {
        best = it;
      }
    }
    if (best == groups_.end()) return std::nullopt;
    return take(best, std::min(best->second.items.size(), max_batch_));
  }

  std::size_t pending() const { return pending_; }
  std::size_t max_batch() const { return max_batch_; }
  Clock::duration max_linger() const { return linger_; }

 private:
  struct Group {
    std::vector<T> items;
    std::vector<TimePoint> arrivals;  // parallel to items, non-decreasing
  };

  MicroBatch<T> take(typename std::map<std::uint64_t, Group>::iterator it,
                     std::size_t n) {
    Group& g = it->second;
    MicroBatch<T> batch;
    batch.key = it->first;
    batch.oldest_arrival = g.arrivals.front();
    batch.items.assign(std::make_move_iterator(g.items.begin()),
                       std::make_move_iterator(g.items.begin() +
                                               static_cast<long>(n)));
    g.items.erase(g.items.begin(), g.items.begin() + static_cast<long>(n));
    g.arrivals.erase(g.arrivals.begin(),
                     g.arrivals.begin() + static_cast<long>(n));
    pending_ -= n;
    if (g.items.empty()) groups_.erase(it);
    return batch;
  }

  const std::size_t max_batch_;
  const Clock::duration linger_;
  // std::map for deterministic iteration order (tests replay exact cuts).
  std::map<std::uint64_t, Group> groups_;
  std::size_t pending_ = 0;
};

}  // namespace pphe::serve
