#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace pphe::serve::net {

/// Thin RAII layer over POSIX TCP sockets — everything the transport needs
/// and nothing more. All failures surface as typed pphe::Error:
///
///   * kSerialization    — the peer closed mid-object (EOF inside a read)
///   * kTimeout          — a deadline expired with bytes still outstanding
///   * kGeneric          — OS-level failures (bind, connect, send)
///
/// Reads are deadline-driven (poll + recv loops), so a stalled or malicious
/// peer can never wedge a server thread; writes are full-delivery
/// (send_all loops over short writes with SIGPIPE suppressed).

/// One connected TCP stream. Move-only owner of the fd.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn() { close(); }

  TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `bytes`, looping over short writes. Throws Error(kGeneric)
  /// when the peer is gone (EPIPE/ECONNRESET) or the OS rejects the write.
  void send_all(const void* data, std::size_t bytes) const;
  void send_all(const std::string& bytes) const {
    send_all(bytes.data(), bytes.size());
  }

  /// Reads exactly `bytes` within `timeout_seconds` (<=0 waits forever).
  /// Throws Error(kTimeout) on deadline expiry, Error(kSerialization) when
  /// the peer closes with the object incomplete ("truncated stream").
  void recv_exact(void* data, std::size_t bytes, double timeout_seconds) const;

  /// Reads 1..`max_bytes` within the deadline. Returns 0 on clean EOF
  /// BEFORE any byte arrived (a peer hanging up between objects is not an
  /// error); throws Error(kTimeout) on deadline expiry.
  std::size_t recv_some(void* data, std::size_t max_bytes,
                        double timeout_seconds) const;

  /// Half-close both directions (wakes a peer blocked in recv) without
  /// releasing the fd — shutdown() is how another thread interrupts this
  /// connection's blocking reads safely.
  void shutdown_both() const;

  void close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 binds an ephemeral port;
/// port() reports the one the kernel picked.
class TcpListener {
 public:
  /// Binds and listens; throws Error(kGeneric) when the port is taken.
  explicit TcpListener(std::uint16_t port, int backlog = 64);
  ~TcpListener() { close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }

  /// Waits up to `timeout_seconds` for a connection. Returns an invalid
  /// TcpConn on timeout or when the listener was closed from another thread
  /// (the accept-loop poll pattern: check a running flag, accept again).
  TcpConn accept(double timeout_seconds) const;

  /// Unblocks any accept() in progress and releases the port. Safe to call
  /// from a different thread than the one blocked in accept(): the fd slot
  /// is atomic, and close() claims it before releasing the descriptor.
  void close();

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

/// Connects to host:port within the deadline; throws Error(kGeneric) on
/// refusal/unreachability, Error(kTimeout) on expiry. Only numeric IPv4
/// hosts ("127.0.0.1") are accepted — the serving demo is loopback-scoped.
TcpConn tcp_connect(const std::string& host, std::uint16_t port,
                    double timeout_seconds);

}  // namespace pphe::serve::net
