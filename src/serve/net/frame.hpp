#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "serve/net/socket.hpp"

namespace pphe {
struct CkksParams;
}

namespace pphe::serve::net {

/// Streaming frame layer of the network serving protocol (DESIGN.md §15).
///
/// Every message on the wire is one frame:
///
///   header (32 bytes, little-endian):
///     u32  magic            'PPN1'
///     u8   protocol version (kProtocolVersion)
///     u8   frame type       (FrameType)
///     u16  reserved (0)
///     u64  payload length   (bounded by the receiver's max_frame_bytes)
///     u64  payload checksum (wire_checksum of the payload bytes)
///     u64  header checksum  (wire_checksum of the 24 bytes above)
///   payload (payload-length bytes)
///
/// The checksums are the SAME splitmix64 section checksums the v2 ciphertext
/// wire format uses (ckks/serialize.hpp) — one trust boundary, two framings.
/// The header is self-checking so a corrupted length can never cause an
/// over-allocation or a desynchronized read: header damage is detected
/// before any payload byte is trusted. Detection is typed:
///
///   * kSerialization    — bad magic, truncation/EOF mid-frame, oversize
///   * kChecksumMismatch — header or payload checksum failed
///   * kProtocol         — right frame, wrong protocol version
///   * kTimeout          — read deadline expired mid-frame
///
/// A payload-checksum failure leaves the stream FRAMED (the header was
/// intact, the right number of bytes was consumed), so a server can reject
/// the message and keep the connection. Header damage loses framing — the
/// connection must be dropped after the typed error is recorded.

inline constexpr std::uint32_t kFrameMagic = 0x314E5050u;  // "PPN1"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 32;
/// Default ceiling a receiver imposes on one frame's payload.
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,      // client -> server: version, params digest, tier
  kHelloAck = 2,   // server -> client: session id, limits, model identity
  kKeyUpload = 3,  // client -> server: evaluation-key registration
  kKeyAck = 4,     // server -> client: registry accounting for the upload
  kRequest = 5,    // client -> server: one classification request
  kReply = 6,      // server -> client: the request's outcome
  kError = 7,      // server -> client: connection-level typed error
  kBye = 8,        // either side: graceful close
};
const char* frame_type_name(FrameType type);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Encodes a frame into raw wire bytes (header + payload).
std::string encode_frame(FrameType type, const std::string& payload);

/// The value both sides compare in the handshake: the v2 wire checksum of
/// the serialized parameter block. Equal digests mean byte-identical
/// parameter sets — a client compiled against different moduli is refused
/// at hello time, before any ciphertext allocation.
std::uint64_t params_digest(const CkksParams& params);

/// Reads exactly one frame off `conn` within `timeout_seconds`, enforcing
/// `max_frame_bytes` on the payload. Throws the typed errors listed above.
/// Returns false on a clean EOF at a frame boundary (peer hung up).
/// `framing_intact`, when given, reports whether the stream is still
/// aligned on a frame boundary after a throw: true for payload-level
/// corruption (reject the message, keep the connection), false for header
/// damage / truncation / timeout (drop the connection).
bool read_frame(const TcpConn& conn, Frame& out, double timeout_seconds,
                std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                bool* framing_intact = nullptr);

/// Same, but the first `preread` bytes of the header were already consumed
/// by the caller (the HTTP-vs-frame sniff on a fresh connection).
bool read_frame_after_sniff(const TcpConn& conn, const char* sniffed,
                            std::size_t preread, Frame& out,
                            double timeout_seconds,
                            std::size_t max_frame_bytes,
                            bool* framing_intact = nullptr);

// --- bounds-checked little-endian payload codecs --------------------------

/// Append-only payload builder. All integers little-endian fixed-width.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void f32(float v);
  /// Length-prefixed (u32) byte string.
  void str(const std::string& s);

  std::string take() { return std::move(bytes_); }
  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

/// Cursor-based reader; every overrun throws Error(kSerialization) with the
/// field name, so a malformed payload is rejected with a typed error instead
/// of read out of bounds.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& bytes) : bytes_(bytes) {}

  std::uint8_t u8(const char* field);
  std::uint16_t u16(const char* field);
  std::uint32_t u32(const char* field);
  std::uint64_t u64(const char* field);
  std::int32_t i32(const char* field) {
    return static_cast<std::int32_t>(u32(field));
  }
  double f64(const char* field);
  float f32(const char* field);
  std::string str(const char* field);

  std::size_t remaining() const { return bytes_.size() - pos_; }
  /// Asserts the payload was fully consumed (trailing garbage is a typed
  /// protocol error, not silently ignored).
  void expect_done(const char* what) const;

 private:
  const void* need(std::size_t n, const char* field);
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace pphe::serve::net
