#include "serve/net/net_client.hpp"

#include "ckks/params.hpp"
#include "common/fault.hpp"

namespace pphe::serve::net {

namespace {

[[noreturn]] void rethrow_error_frame(const Frame& frame) {
  PayloadReader r(frame.payload);
  const auto code = static_cast<ErrorCode>(r.u8("error_code"));
  const std::string message = r.str("message");
  throw Error(code, "server: " + message);
}

}  // namespace

NetClient::NetClient(const CkksParams& params, NetClientOptions options)
    : options_(std::move(options)),
      conn_(tcp_connect(options_.host, options_.port,
                        options_.timeout_seconds)) {
  PayloadWriter hello;
  hello.u32(kProtocolVersion);
  hello.u64(params_digest(params));
  hello.u8(static_cast<std::uint8_t>(options_.tier));
  hello.str(options_.name);
  const Frame ack = transact(FrameType::kHello, hello.take(), false);
  PPHE_CHECK_CODE(ack.type == FrameType::kHelloAck, ErrorCode::kProtocol,
                  std::string("handshake: expected hello_ack, got '") +
                      frame_type_name(ack.type) + "'");
  PayloadReader r(ack.payload);
  session_.session_id = r.u64("session_id");
  session_.input_dim = r.u32("input_dim");
  session_.max_frame_bytes = r.u64("max_frame_bytes");
  session_.key_quota_bytes = r.u64("key_quota_bytes");
  r.expect_done("hello_ack");
}

NetClient::~NetClient() {
  try {
    bye();
  } catch (...) {
  }
}

Frame NetClient::transact(FrameType type, const std::string& payload,
                          bool upload_fault) {
  std::string bytes = encode_frame(type, payload);
  // The chaos harness's client->cloud wire site, applied to the actual
  // socket bytes of request frames.
  if (upload_fault && fault::armed()) {
    fault::corrupt_wire(fault::Site::kWireUpload, bytes);
  }
  conn_.send_all(bytes);
  Frame reply;
  PPHE_CHECK_CODE(read_frame(conn_, reply, options_.timeout_seconds,
                             options_.max_frame_bytes),
                  ErrorCode::kSerialization,
                  "server closed the connection mid-transaction");
  if (reply.type == FrameType::kError) rethrow_error_frame(reply);
  return reply;
}

void NetClient::upload_keys(const std::vector<int>& steps,
                            std::uint64_t declared_bytes) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(steps.size()));
  for (const int s : steps) w.i32(s);
  w.u64(declared_bytes);
  const Frame ack = transact(FrameType::kKeyUpload, w.take(), false);
  PPHE_CHECK_CODE(ack.type == FrameType::kKeyAck, ErrorCode::kProtocol,
                  std::string("key upload: expected key_ack, got '") +
                      frame_type_name(ack.type) + "'");
  PayloadReader r(ack.payload);
  r.u64("session_bytes");
  r.u64("registry_bytes");
  r.u64("quota_bytes");
  r.u32("evicted_count");
  r.expect_done("key_ack");
  remembered_steps_ = steps;
  remembered_declared_bytes_ = declared_bytes;
  keys_uploaded_ = true;
}

NetReply NetClient::roundtrip(const std::vector<float>& image) {
  PayloadWriter w;
  const std::uint64_t request_id = next_request_++;
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(image.size()));
  for (const float v : image) w.f32(v);
  const Frame frame = transact(FrameType::kRequest, w.take(), true);
  PPHE_CHECK_CODE(frame.type == FrameType::kReply, ErrorCode::kProtocol,
                  std::string("classify: expected reply, got '") +
                      frame_type_name(frame.type) + "'");
  PayloadReader r(frame.payload);
  NetReply out;
  out.request_id = r.u64("request_id");
  PPHE_CHECK_CODE(out.request_id == request_id, ErrorCode::kProtocol,
                  "classify: reply correlates to request " +
                      std::to_string(out.request_id) + ", expected " +
                      std::to_string(request_id));
  const std::uint8_t status = r.u8("status");
  PPHE_CHECK_CODE(status <= 3, ErrorCode::kProtocol,
                  "classify: unknown reply status " + std::to_string(status));
  out.ok = status == 0;
  out.degraded = status == 1;
  out.rejected = status == 3;
  out.error = static_cast<ErrorCode>(r.u8("error_code"));
  out.predicted = r.i32("predicted");
  out.attempts = static_cast<int>(r.u32("attempts"));
  out.batch_size = r.u32("batch_size");
  out.queue_seconds = r.f64("queue_seconds");
  out.eval_seconds = r.f64("eval_seconds");
  const std::uint32_t n_logits = r.u32("n_logits");
  PPHE_CHECK_CODE(
      static_cast<std::size_t>(n_logits) * 8 <= r.remaining(),
      ErrorCode::kSerialization,
      "classify: reply claims more logits than the payload holds");
  out.logits.resize(n_logits);
  for (std::uint32_t i = 0; i < n_logits; ++i) out.logits[i] = r.f64("logit");
  out.message = r.str("message");
  r.expect_done("reply");
  return out;
}

NetReply NetClient::classify(const std::vector<float>& image) {
  NetReply reply = roundtrip(image);
  if (reply.rejected && reply.error == ErrorCode::kKeyEvicted &&
      options_.auto_resend_keys && keys_uploaded_) {
    // The server shed us from the key registry under quota pressure: the
    // typed recovery path is re-send keys, resubmit once.
    upload_keys(remembered_steps_, remembered_declared_bytes_);
    reply = roundtrip(image);
  }
  return reply;
}

void NetClient::bye() {
  if (!conn_.valid()) return;
  try {
    conn_.send_all(encode_frame(FrameType::kBye, std::string()));
  } catch (...) {
  }
  conn_.close();
}

}  // namespace pphe::serve::net
