#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "serve/net/key_registry.hpp"
#include "serve/net/net_server.hpp"
#include "serve/server.hpp"

namespace pphe::serve::net {

/// Renders the Prometheus text-exposition payload (`GET /metrics`) from one
/// consistent StatsSnapshot of the batch server plus the transport, key-
/// registry, and backend OpKind counters. Pure function of its inputs so
/// tests and benches can validate the payload without a socket.
///
/// Conventions: counters end in `_total`, gauges don't; latency series are
/// seconds with a `quantile` label (derived from the log2-ns histograms of
/// the snapshot — approximate, like the histograms themselves).
std::string render_prometheus(
    const StatsSnapshot& batch, const NetServerStats& net,
    const KeyRegistry::Stats& keys,
    const std::map<std::string, std::uint64_t>& backend_ops,
    std::size_t queue_capacity);

}  // namespace pphe::serve::net
