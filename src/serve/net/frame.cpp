#include "serve/net/frame.hpp"

#include <cstring>
#include <sstream>

#include "ckks/params.hpp"
#include "ckks/serialize.hpp"

namespace pphe::serve::net {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kKeyUpload: return "key_upload";
    case FrameType::kKeyAck: return "key_ack";
    case FrameType::kRequest: return "request";
    case FrameType::kReply: return "reply";
    case FrameType::kError: return "error";
    case FrameType::kBye: return "bye";
  }
  return "?";
}

std::uint64_t params_digest(const CkksParams& params) {
  std::ostringstream os;
  write_params(os, params);
  const std::string bytes = os.str();
  return wire_checksum(bytes.data(), bytes.size());
}

std::string encode_frame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  put_u16(out, 0);  // reserved
  put_u64(out, payload.size());
  put_u64(out, wire_checksum(payload.data(), payload.size()));
  // Header checksum covers everything above it.
  put_u64(out, wire_checksum(out.data(), 24));
  out += payload;
  return out;
}

namespace {

bool decode_header(const unsigned char* h, Frame& out,
                   std::size_t max_frame_bytes, std::uint64_t& payload_len,
                   std::uint64_t& payload_checksum) {
  PPHE_CHECK_CODE(get_u32(h) == kFrameMagic, ErrorCode::kSerialization,
                  "frame: bad magic (not a PPN1 stream)");
  PPHE_CHECK_CODE(get_u64(h + 24) == wire_checksum(h, 24),
                  ErrorCode::kChecksumMismatch,
                  "frame: header checksum mismatch (header corrupted in "
                  "transit; framing lost)");
  PPHE_CHECK_CODE(h[4] == kProtocolVersion, ErrorCode::kProtocol,
                  "frame: protocol version " + std::to_string(h[4]) +
                      ", this side speaks " +
                      std::to_string(kProtocolVersion));
  const std::uint8_t type = h[5];
  PPHE_CHECK_CODE(type >= static_cast<std::uint8_t>(FrameType::kHello) &&
                      type <= static_cast<std::uint8_t>(FrameType::kBye),
                  ErrorCode::kProtocol,
                  "frame: unknown frame type " + std::to_string(type));
  payload_len = get_u64(h + 8);
  PPHE_CHECK_CODE(payload_len <= max_frame_bytes, ErrorCode::kSerialization,
                  "frame: payload of " + std::to_string(payload_len) +
                      " bytes exceeds the " +
                      std::to_string(max_frame_bytes) + "-byte frame limit");
  payload_checksum = get_u64(h + 16);
  out.type = static_cast<FrameType>(type);
  return true;
}

}  // namespace

bool read_frame_after_sniff(const TcpConn& conn, const char* sniffed,
                            std::size_t preread, Frame& out,
                            double timeout_seconds,
                            std::size_t max_frame_bytes,
                            bool* framing_intact) {
  if (framing_intact) *framing_intact = false;
  unsigned char header[kFrameHeaderBytes];
  PPHE_CHECK(preread <= kFrameHeaderBytes, "sniff larger than a header");
  std::memcpy(header, sniffed, preread);
  conn.recv_exact(header + preread, kFrameHeaderBytes - preread,
                  timeout_seconds);
  std::uint64_t payload_len = 0, payload_checksum = 0;
  decode_header(header, out, max_frame_bytes, payload_len, payload_checksum);
  out.payload.resize(payload_len);
  if (payload_len > 0) {
    conn.recv_exact(out.payload.data(), payload_len, timeout_seconds);
  }
  // Every advertised byte was consumed, so the stream is aligned on the
  // next frame even if this payload turns out corrupt.
  if (framing_intact) *framing_intact = true;
  // The v2 trust boundary: payload bytes are only handed to a decoder after
  // their section checksum matches.
  PPHE_CHECK_CODE(
      wire_checksum(out.payload.data(), out.payload.size()) ==
          payload_checksum,
      ErrorCode::kChecksumMismatch,
      std::string("frame: payload checksum mismatch on a '") +
          frame_type_name(out.type) + "' frame (payload corrupted in transit)");
  return true;
}

bool read_frame(const TcpConn& conn, Frame& out, double timeout_seconds,
                std::size_t max_frame_bytes, bool* framing_intact) {
  if (framing_intact) *framing_intact = false;
  unsigned char first;
  const std::size_t n = conn.recv_some(&first, 1, timeout_seconds);
  if (n == 0) return false;  // clean EOF at a frame boundary
  return read_frame_after_sniff(conn, reinterpret_cast<const char*>(&first), 1,
                                out, timeout_seconds, max_frame_bytes,
                                framing_intact);
}

// --- payload codecs -------------------------------------------------------

void PayloadWriter::u16(std::uint16_t v) { put_u16(bytes_, v); }
void PayloadWriter::u32(std::uint32_t v) { put_u32(bytes_, v); }
void PayloadWriter::u64(std::uint64_t v) { put_u64(bytes_, v); }
void PayloadWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}
void PayloadWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}
void PayloadWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_ += s;
}

const void* PayloadReader::need(std::size_t n, const char* field) {
  PPHE_CHECK_CODE(pos_ + n <= bytes_.size(), ErrorCode::kSerialization,
                  std::string("payload: truncated while reading '") + field +
                      "' (" + std::to_string(bytes_.size() - pos_) + " of " +
                      std::to_string(n) + " bytes left)");
  const void* p = bytes_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t PayloadReader::u8(const char* field) {
  return *static_cast<const unsigned char*>(need(1, field));
}
std::uint16_t PayloadReader::u16(const char* field) {
  const auto* p = static_cast<const unsigned char*>(need(2, field));
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t PayloadReader::u32(const char* field) {
  return get_u32(static_cast<const unsigned char*>(need(4, field)));
}
std::uint64_t PayloadReader::u64(const char* field) {
  return get_u64(static_cast<const unsigned char*>(need(8, field)));
}
double PayloadReader::f64(const char* field) {
  const std::uint64_t bits = u64(field);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
float PayloadReader::f32(const char* field) {
  const std::uint32_t bits = u32(field);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
std::string PayloadReader::str(const char* field) {
  const std::uint32_t len = u32(field);
  PPHE_CHECK_CODE(len <= remaining(), ErrorCode::kSerialization,
                  std::string("payload: string '") + field + "' claims " +
                      std::to_string(len) + " bytes, " +
                      std::to_string(remaining()) + " remain");
  const char* p = static_cast<const char*>(need(len, field));
  return std::string(p, len);
}
void PayloadReader::expect_done(const char* what) const {
  PPHE_CHECK_CODE(pos_ == bytes_.size(), ErrorCode::kProtocol,
                  std::string(what) + ": " +
                      std::to_string(bytes_.size() - pos_) +
                      " trailing payload bytes");
}

}  // namespace pphe::serve::net
