#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace pphe::serve::net {

/// Per-client evaluation-key registry with LRU eviction under a byte quota.
///
/// Every session that wants evaluation must first register its key material
/// (relin + Galois keys); the registry pins those bytes in the server's RAM
/// budget. Millions of clients cannot all stay pinned, so when a new
/// registration would exceed the quota, the least-recently-USED sessions are
/// evicted to make room. An evicted session's next request fails with the
/// typed, recoverable Error(kKeyEvicted) — "re-send keys" — never a crash or
/// a silent mis-evaluation; re-registering the same session id is always
/// legal and re-pins it as most recently used.
///
/// Thread-safe: connection handlers register/touch concurrently. In this
/// reproduction the HE key material itself is process-shared (one demo
/// keyset), so the registry manages the admission-layer pinning budget; a
/// multi-key deployment would hang the per-client KswKey handles off
/// Entry.
class KeyRegistry {
 public:
  struct Entry {
    std::uint64_t session = 0;
    std::size_t bytes = 0;
    std::uint64_t registered_at = 0;  ///< monotonic tick of registration
  };

  struct Stats {
    std::size_t sessions = 0;        ///< currently registered
    std::size_t bytes_pinned = 0;    ///< sum of registered key bytes
    std::size_t quota_bytes = 0;
    std::uint64_t registrations = 0;  ///< register_session calls that stuck
    std::uint64_t evictions = 0;      ///< sessions displaced by quota
    std::uint64_t rejected_oversize = 0;  ///< uploads larger than the quota
  };

  explicit KeyRegistry(std::size_t quota_bytes);

  /// Pins `bytes` of key material for `session`, evicting least-recently-
  /// used OTHER sessions until it fits. Re-registration replaces the
  /// session's previous accounting. Returns the ids evicted to make room
  /// (so the caller can tear down their state). Throws
  /// Error(kInvalidArgument) when `bytes` alone exceeds the whole quota —
  /// no amount of eviction could admit it.
  std::vector<std::uint64_t> register_session(std::uint64_t session,
                                              std::size_t bytes);

  /// Marks `session` most recently used. False when it is not registered
  /// (never was, or evicted) — the caller must fail the request with
  /// ErrorCode::kKeyEvicted and ask the client to re-send keys.
  bool touch(std::uint64_t session);

  /// True without promoting — peek for tests/metrics.
  bool contains(std::uint64_t session) const;

  /// Drops a session voluntarily (connection close); no-op if absent.
  void release(std::uint64_t session);

  Stats stats() const;

 private:
  // LRU list front = most recently used. The map points into the list.
  mutable std::mutex mutex_;
  std::size_t quota_bytes_;
  std::size_t bytes_pinned_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t registrations_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejected_oversize_ = 0;
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace pphe::serve::net
