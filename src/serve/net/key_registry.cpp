#include "serve/net/key_registry.hpp"

#include <string>

namespace pphe::serve::net {

KeyRegistry::KeyRegistry(std::size_t quota_bytes)
    : quota_bytes_(quota_bytes) {
  PPHE_CHECK(quota_bytes > 0, "KeyRegistry: quota must be positive");
}

std::vector<std::uint64_t> KeyRegistry::register_session(std::uint64_t session,
                                                         std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > quota_bytes_) {
    ++rejected_oversize_;
    throw Error(ErrorCode::kInvalidArgument,
                "key registry: upload of " + std::to_string(bytes) +
                    " bytes exceeds the whole " +
                    std::to_string(quota_bytes_) +
                    "-byte quota — no eviction can admit it");
  }
  // Re-registration: drop the old accounting first so the fit check below
  // sees only OTHER sessions' bytes.
  if (auto it = index_.find(session); it != index_.end()) {
    bytes_pinned_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  std::vector<std::uint64_t> evicted;
  while (bytes_pinned_ + bytes > quota_bytes_) {
    // Evict from the LRU tail; the loop terminates because bytes <= quota.
    const Entry victim = lru_.back();
    lru_.pop_back();
    index_.erase(victim.session);
    bytes_pinned_ -= victim.bytes;
    ++evictions_;
    evicted.push_back(victim.session);
  }
  lru_.push_front(Entry{session, bytes, ++tick_});
  index_[session] = lru_.begin();
  bytes_pinned_ += bytes;
  ++registrations_;
  return evicted;
}

bool KeyRegistry::touch(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(session);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return true;
}

bool KeyRegistry::contains(std::uint64_t session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(session) > 0;
}

void KeyRegistry::release(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(session);
  if (it == index_.end()) return;
  bytes_pinned_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

KeyRegistry::Stats KeyRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.sessions = index_.size();
  s.bytes_pinned = bytes_pinned_;
  s.quota_bytes = quota_bytes_;
  s.registrations = registrations_;
  s.evictions = evictions_;
  s.rejected_oversize = rejected_oversize_;
  return s;
}

}  // namespace pphe::serve::net
