#include "serve/net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pphe::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Remaining whole-milliseconds until `deadline` for poll(); -1 = infinite,
/// clamped to >= 1 so a not-yet-expired deadline never degenerates to a
/// busy-spin 0ms poll.
int poll_timeout_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, 1000 * 3600));
}

/// poll() for readability, retrying EINTR. True = readable (or error/EOF
/// pending, which the following recv will report), false = deadline hit.
bool wait_readable(int fd, bool has_deadline, Clock::time_point deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int timeout = poll_timeout_ms(has_deadline, deadline);
    if (has_deadline && timeout == 0) return false;
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return true;
    if (rc == 0) {
      if (has_deadline) continue;  // re-derive; poll_timeout_ms clamps
      return false;
    }
    if (errno == EINTR) continue;
    return true;  // let recv surface the error with its errno
  }
}

}  // namespace

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConn::send_all(const void* data, std::size_t bytes) const {
  PPHE_CHECK(valid(), "send_all on a closed connection");
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < bytes) {
    // MSG_NOSIGNAL: a vanished peer must surface as a typed Error on THIS
    // thread, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, p + sent, bytes - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw Error(errno_text("send"));
  }
}

void TcpConn::recv_exact(void* data, std::size_t bytes,
                         double timeout_seconds) const {
  PPHE_CHECK(valid(), "recv_exact on a closed connection");
  const bool has_deadline = timeout_seconds > 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             has_deadline ? timeout_seconds : 0.0));
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < bytes) {
    if (!wait_readable(fd_, has_deadline, deadline)) {
      throw Error(ErrorCode::kTimeout,
                  "recv: deadline expired with " + std::to_string(bytes - got) +
                      " of " + std::to_string(bytes) + " bytes outstanding");
    }
    const ssize_t n = ::recv(fd_, p + got, bytes - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      throw Error(ErrorCode::kSerialization,
                  "recv: peer closed with " + std::to_string(bytes - got) +
                      " of " + std::to_string(bytes) +
                      " bytes outstanding (truncated stream)");
    }
    if (errno == EINTR) continue;
    throw Error(errno_text("recv"));
  }
}

std::size_t TcpConn::recv_some(void* data, std::size_t max_bytes,
                               double timeout_seconds) const {
  PPHE_CHECK(valid(), "recv_some on a closed connection");
  const bool has_deadline = timeout_seconds > 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             has_deadline ? timeout_seconds : 0.0));
  for (;;) {
    if (!wait_readable(fd_, has_deadline, deadline)) {
      throw Error(ErrorCode::kTimeout, "recv: idle deadline expired");
    }
    const ssize_t n = ::recv(fd_, data, max_bytes, 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // clean EOF between objects
    if (errno == EINTR) continue;
    throw Error(errno_text("recv"));
  }
}

void TcpConn::shutdown_both() const {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PPHE_CHECK(fd_ >= 0, errno_text("socket"));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string msg = errno_text("bind");
    close();
    throw Error(msg + " (port " + std::to_string(port) + ")");
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string msg = errno_text("listen");
    close();
    throw Error(msg);
  }
  socklen_t len = sizeof(addr);
  PPHE_CHECK(::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                           &len) == 0,
             errno_text("getsockname"));
  port_ = ntohs(addr.sin_port);
}

TcpConn TcpListener::accept(double timeout_seconds) const {
  // One atomic load for the whole call: close() from another thread claims
  // the slot first, so a stale descriptor here polls as POLLNVAL/EBADF and
  // falls through to the invalid-conn return.
  const int listen_fd = fd_.load(std::memory_order_acquire);
  if (listen_fd < 0) return TcpConn();
  struct pollfd pfd;
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int timeout =
      timeout_seconds <= 0.0 ? -1
                             : static_cast<int>(timeout_seconds * 1000.0);
  const int rc = ::poll(&pfd, 1, timeout);
  if (rc <= 0 || (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    return TcpConn();  // timeout, or closed under us
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return TcpConn();
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd);
}

void TcpListener::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() first so a thread parked in poll()/accept() wakes with an
    // error instead of racing the fd number being reused.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

TcpConn tcp_connect(const std::string& host, std::uint16_t port,
                    double timeout_seconds) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  PPHE_CHECK_CODE(inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                  ErrorCode::kInvalidArgument,
                  "tcp_connect: '" + host +
                      "' is not a numeric IPv4 address (loopback demo)");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PPHE_CHECK(fd >= 0, errno_text("socket"));
  TcpConn conn(fd);  // owns the fd from here; throws below close it

  // Non-blocking connect + poll so the deadline applies to the handshake.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    throw Error(errno_text("connect") + " (" + host + ":" +
                std::to_string(port) + ")");
  }
  if (rc != 0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int timeout =
        timeout_seconds <= 0.0 ? -1
                               : static_cast<int>(timeout_seconds * 1000.0);
    rc = ::poll(&pfd, 1, timeout);
    if (rc == 0) {
      throw Error(ErrorCode::kTimeout,
                  "connect: deadline expired (" + host + ":" +
                      std::to_string(port) + ")");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (rc < 0 || err != 0) {
      throw Error("connect: " + std::string(std::strerror(err ? err : errno)) +
                  " (" + host + ":" + std::to_string(port) + ")");
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; reads poll explicitly
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

}  // namespace pphe::serve::net
