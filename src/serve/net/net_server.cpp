#include "serve/net/net_server.hpp"

#include <sys/socket.h>

#include <cmath>
#include <cstring>
#include <future>
#include <utility>

#include "ckks/rns_backend.hpp"
#include "common/fault.hpp"
#include "common/trace.hpp"
#include "serve/net/metrics.hpp"

namespace pphe::serve::net {

namespace {

/// Server-side accounting of one rotation step's key-switch key: two
/// polynomials per decomposition digit, one digit per chain prime, each
/// over the raised basis (chain + special channel), 8 bytes a coefficient.
/// Clients may declare their real upload size instead; this is the default
/// the registry charges when they don't.
std::size_t galois_key_bytes_per_step(const CkksParams& p) {
  const std::size_t ch = p.chain_length();
  return 2 * ch * (ch + 1) * p.degree * 8;
}

std::string error_frame_payload(ErrorCode code, const std::string& message) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(code));
  w.str(message);
  return w.take();
}

/// Completes a reply payload (request_id already written) as a typed
/// rejection: same field layout as a normal reply so one decoder serves
/// both, with status 3 and zeroed timing/logits.
void finish_rejected_reply(PayloadWriter& reply, ErrorCode code,
                           const std::string& message) {
  reply.u8(3);  // status: rejected
  reply.u8(static_cast<std::uint8_t>(code));
  reply.i32(-1);   // predicted
  reply.u32(0);    // attempts
  reply.u32(0);    // batch_size
  reply.f64(0.0);  // queue_seconds
  reply.f64(0.0);  // eval_seconds
  reply.u32(0);    // n_logits
  reply.str(message);
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kBatch: return "batch";
    case Tier::kStandard: return "standard";
    case Tier::kPremium: return "premium";
  }
  return "?";
}

NetServer::NetServer(BatchServer& server, const RnsBackend& backend,
                     NetServerOptions options)
    : batch_server_(server),
      backend_(backend),
      options_(options),
      listener_(options.port, static_cast<int>(options.max_connections)),
      registry_(options.key_quota_bytes) {
  for (const double f : options_.admit_fill) {
    PPHE_CHECK(f > 0.0 && f <= 1.0,
               "NetServer: admit_fill fractions must be in (0, 1]");
  }
  accept_thread_ = std::thread([this] { accept_main(); });
}

NetServer::~NetServer() { shutdown(); }

void NetServer::accept_main() {
  while (running_.load(std::memory_order_relaxed)) {
    TcpConn conn = listener_.accept(0.1);
    if (!conn.valid()) continue;  // timeout tick or listener closed
    reap_handlers();

    std::size_t active;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
      active = ++stats_.active_connections;
    }
    if (active > options_.max_connections) {
      // Accept-then-refuse keeps the refusal TYPED instead of letting the
      // backlog silently swallow the connection.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.refused_connections;
        --stats_.active_connections;
      }
      try {
        conn.send_all(encode_frame(
            FrameType::kError,
            error_frame_payload(ErrorCode::kOverloaded,
                                "server at max_connections — retry later")));
      } catch (...) {
      }
      continue;
    }

    auto handler = std::make_shared<Handler>();
    {
      std::lock_guard<std::mutex> lock(handlers_mutex_);
      handler->fd = conn.fd();
      handlers_.push_back(handler);
    }
    handler->thread = std::thread(
        [this, handler, c = std::move(conn)]() mutable {
          handle_connection(handler, std::move(c));
        });
  }
}

void NetServer::reap_handlers() {
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if ((*it)->done.load(std::memory_order_acquire) &&
        (*it)->thread.joinable()) {
      (*it)->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetServer::count_frame_reject(ErrorCode code) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.frame_rejects[static_cast<std::size_t>(code)];
}

void NetServer::send_frame(TcpConn& conn, FrameType type,
                           const std::string& payload,
                           bool allow_download_fault) {
  std::string bytes = encode_frame(type, payload);
  // The chaos harness's cloud->client wire site, applied to the actual
  // socket bytes of reply frames (handshake/control frames stay clean so a
  // fault plan tests the data path, not the session setup).
  if (allow_download_fault && fault::armed()) {
    fault::corrupt_wire(fault::Site::kWireDownload, bytes);
  }
  conn.send_all(bytes);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.frames_out;
  stats_.bytes_out += bytes.size();
}

void NetServer::handle_connection(std::shared_ptr<Handler> self,
                                  TcpConn conn) {
  try {
    // Sniff: a metrics scrape ("GET ") and a protocol stream ('PPN1') are
    // told apart by their first four bytes on the same port.
    char sniff[4];
    conn.recv_exact(sniff, 4, options_.idle_timeout_seconds);
    if (std::memcmp(sniff, "GET ", 4) == 0) {
      handle_http(conn, sniff);
    } else {
      // --- handshake ---
      Frame hello;
      read_frame_after_sniff(conn, sniff, 4, hello,
                             options_.read_timeout_seconds,
                             options_.max_frame_bytes);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.frames_in;
        stats_.bytes_in += kFrameHeaderBytes + hello.payload.size();
      }
      PPHE_CHECK_CODE(hello.type == FrameType::kHello, ErrorCode::kProtocol,
                      std::string("handshake: expected a hello frame, got '") +
                          frame_type_name(hello.type) + "'");
      PayloadReader r(hello.payload);
      const std::uint32_t client_proto = r.u32("protocol");
      const std::uint64_t digest = r.u64("params_digest");
      const std::uint8_t tier_raw = r.u8("tier");
      r.str("client_name");  // informational; traced, not stored
      r.expect_done("hello");
      PPHE_CHECK_CODE(client_proto == kProtocolVersion, ErrorCode::kProtocol,
                      "handshake: client speaks protocol " +
                          std::to_string(client_proto) + ", server " +
                          std::to_string(kProtocolVersion));
      PPHE_CHECK_CODE(digest == params_digest(backend_.params()),
                      ErrorCode::kProtocol,
                      "handshake: CKKS parameter digest mismatch — client "
                      "and server are compiled against different parameter "
                      "sets");
      PPHE_CHECK_CODE(tier_raw < kTierCount, ErrorCode::kProtocol,
                      "handshake: unknown admission tier " +
                          std::to_string(tier_raw));

      const std::uint64_t session =
          next_session_.fetch_add(1, std::memory_order_relaxed);
      PayloadWriter ack;
      ack.u64(session);
      ack.u32(static_cast<std::uint32_t>(batch_server_.input_dim()));
      ack.u64(options_.max_frame_bytes);
      ack.u64(options_.key_quota_bytes);
      // Count BEFORE the ack ships: a client that has seen hello_ack must
      // already observe the handshake in stats().
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.handshakes;
      }
      send_frame(conn, FrameType::kHelloAck, ack.take());
      serve_session(conn, session, static_cast<Tier>(tier_raw));
    }
  } catch (const Error& e) {
    count_frame_reject(e.code());
    try {
      send_frame(conn, FrameType::kError,
                 error_frame_payload(e.code(), e.what()));
    } catch (...) {
    }
  } catch (...) {
    count_frame_reject(ErrorCode::kGeneric);
  }

  {
    // Unregister the fd BEFORE closing it so shutdown() never touches a
    // recycled descriptor.
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    self->fd = -1;
  }
  conn.close();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --stats_.active_connections;
  }
  self->done.store(true, std::memory_order_release);
}

void NetServer::handle_http(TcpConn& conn, const char* sniffed) {
  // Minimal HTTP/1.0 for scrapers: read the request head (bounded), answer,
  // close. Anything beyond GET /metrics is a 404.
  std::string head(sniffed, 4);
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
    const std::size_t n =
        conn.recv_some(buf, sizeof(buf), options_.read_timeout_seconds);
    if (n == 0) break;  // client sent head then shut down its write side
    head.append(buf, n);
  }
  const std::size_t path_begin = 4;  // past "GET "
  const std::size_t path_end = head.find(' ', path_begin);
  const std::string path = path_end == std::string::npos
                               ? std::string()
                               : head.substr(path_begin,
                                             path_end - path_begin);
  std::string body, status;
  if (path == "/metrics") {
    body = metrics_text();
    status = "200 OK";
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.http_scrapes;
  } else {
    body = "only /metrics lives here\n";
    status = "404 Not Found";
  }
  std::string resp = "HTTP/1.0 " + status +
                     "\r\nContent-Type: text/plain; version=0.0.4; "
                     "charset=utf-8\r\nContent-Length: " +
                     std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n" + body;
  conn.send_all(resp);
}

void NetServer::serve_session(TcpConn& conn, std::uint64_t session,
                              Tier tier) {
  const std::size_t queue_cap = batch_server_.options().queue_capacity;
  // This tier's admission ceiling on queue occupancy (at least 1 so a tier
  // can always use an empty queue).
  const std::size_t tier_cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(options_.admit_fill[static_cast<std::size_t>(tier)] *
                       static_cast<double>(queue_cap))));

  for (;;) {
    Frame frame;
    bool framed = false;
    try {
      if (!read_frame(conn, frame, options_.idle_timeout_seconds,
                      options_.max_frame_bytes, &framed)) {
        return;  // peer hung up at a frame boundary
      }
    } catch (const Error& e) {
      // Typed rejection of a damaged frame. Payload-level corruption leaves
      // the stream framed — reject the message, KEEP the connection; header
      // damage / truncation / timeout loses framing — drop this connection
      // (the server and every other connection stay up).
      count_frame_reject(e.code());
      try {
        send_frame(conn, FrameType::kError,
                   error_frame_payload(e.code(), e.what()));
      } catch (...) {
        return;
      }
      if (!framed) return;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.frames_in;
      stats_.bytes_in += kFrameHeaderBytes + frame.payload.size();
    }

    try {
      switch (frame.type) {
        case FrameType::kBye:
          registry_.release(session);
          return;

        case FrameType::kKeyUpload: {
          PayloadReader r(frame.payload);
          const std::uint32_t n_steps = r.u32("n_steps");
          std::size_t bytes = 0;
          for (std::uint32_t i = 0; i < n_steps; ++i) {
            r.i32("step");
            bytes += galois_key_bytes_per_step(backend_.params());
          }
          const std::uint64_t declared = r.u64("declared_bytes");
          r.expect_done("key_upload");
          if (declared > 0) bytes = declared;
          // Relin key rides along with any upload (one key, step-free).
          if (bytes == 0) bytes = galois_key_bytes_per_step(backend_.params());
          const auto evicted = registry_.register_session(session, bytes);
          const auto ks = registry_.stats();
          PayloadWriter ack;
          ack.u64(bytes);
          ack.u64(ks.bytes_pinned);
          ack.u64(ks.quota_bytes);
          ack.u32(static_cast<std::uint32_t>(evicted.size()));
          send_frame(conn, FrameType::kKeyAck, ack.take());
          break;
        }

        case FrameType::kRequest: {
          trace::Span span("net.request", "serve");
          PayloadReader r(frame.payload);
          const std::uint64_t request_id = r.u64("request_id");
          const std::uint32_t n = r.u32("n_values");
          PPHE_CHECK_CODE(
              static_cast<std::size_t>(n) * 4 <= r.remaining(),
              ErrorCode::kSerialization,
              "request: image claims more floats than the payload holds");
          std::vector<float> image(n);
          for (std::uint32_t i = 0; i < n; ++i) image[i] = r.f32("pixel");
          r.expect_done("request");
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.requests;
          }

          PayloadWriter reply;
          reply.u64(request_id);

          // Typed "re-send keys": an unregistered or LRU-evicted session
          // must re-upload before evaluation.
          if (!registry_.touch(session)) {
            {
              std::lock_guard<std::mutex> lock(stats_mutex_);
              ++stats_.key_evicted_rejects;
              ++stats_.replies_rejected;
            }
            finish_rejected_reply(
                reply, ErrorCode::kKeyEvicted,
                "evaluation keys for this session are not registered "
                "(evicted under the key-registry quota) — re-send keys and "
                "resubmit");
            send_frame(conn, FrameType::kReply, reply.take(), true);
            break;
          }

          // Tiered admission: shed by client class while the queue fills,
          // before the queue's own kOverloaded backstop.
          if (batch_server_.queue_depth() >= tier_cap) {
            {
              std::lock_guard<std::mutex> lock(stats_mutex_);
              ++stats_.sheds[static_cast<std::size_t>(tier)];
              ++stats_.replies_rejected;
            }
            finish_rejected_reply(
                reply, ErrorCode::kOverloaded,
                std::string("admission: ") + tier_name(tier) +
                    "-tier traffic sheds at " + std::to_string(tier_cap) +
                    "/" + std::to_string(queue_cap) +
                    " queue fill — resubmit later");
            send_frame(conn, FrameType::kReply, reply.take(), true);
            break;
          }

          std::future<ServeReply> future;
          try {
            future = batch_server_.submit(std::move(image));
          } catch (const Error& e) {
            {
              std::lock_guard<std::mutex> lock(stats_mutex_);
              ++stats_.replies_rejected;
            }
            finish_rejected_reply(reply, e.code(), e.what());
            send_frame(conn, FrameType::kReply, reply.take(), true);
            break;
          }
          const ServeReply sr = future.get();
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            if (sr.ok) {
              ++stats_.replies_ok;
            } else if (sr.degraded) {
              ++stats_.replies_degraded;
            } else {
              ++stats_.replies_failed;
            }
          }
          reply.u8(sr.ok ? 0 : sr.degraded ? 1 : 2);
          reply.u8(static_cast<std::uint8_t>(sr.error));
          reply.i32(sr.predicted);
          reply.u32(static_cast<std::uint32_t>(sr.attempts));
          reply.u32(static_cast<std::uint32_t>(sr.batch_size));
          reply.f64(sr.queue_seconds);
          reply.f64(sr.eval_seconds);
          reply.u32(static_cast<std::uint32_t>(sr.logits.size()));
          for (const double v : sr.logits) reply.f64(v);
          reply.str(sr.message);
          send_frame(conn, FrameType::kReply, reply.take(), true);
          break;
        }

        default:
          throw Error(ErrorCode::kProtocol,
                      std::string("session: unexpected '") +
                          frame_type_name(frame.type) + "' frame");
      }
    } catch (const Error& e) {
      // Malformed-but-framed payloads and registry refusals: typed error
      // frame, connection kept.
      count_frame_reject(e.code());
      try {
        send_frame(conn, FrameType::kError,
                   error_frame_payload(e.code(), e.what()));
      } catch (...) {
        return;
      }
    }
  }
}

NetServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::string NetServer::metrics_text() const {
  return render_prometheus(batch_server_.snapshot(), stats(),
                           registry_.stats(), backend_.op_counts(),
                           batch_server_.options().queue_capacity);
}

void NetServer::shutdown() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Interrupt every blocked read; handlers unwind with typed errors/EOF.
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    for (const auto& h : handlers_) {
      if (h->fd >= 0) ::shutdown(h->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::shared_ptr<Handler> h;
    {
      std::lock_guard<std::mutex> lock(handlers_mutex_);
      if (handlers_.empty()) break;
      h = handlers_.front();
      handlers_.pop_front();
    }
    if (h->thread.joinable()) h->thread.join();
  }
}

}  // namespace pphe::serve::net
