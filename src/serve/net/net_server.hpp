#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/net/frame.hpp"
#include "serve/net/key_registry.hpp"
#include "serve/net/socket.hpp"
#include "serve/server.hpp"

namespace pphe {
class RnsBackend;
}

namespace pphe::serve::net {

/// Client admission classes, negotiated in the hello frame. Lower tiers are
/// shed FIRST as the batch queue fills: each tier may only occupy its
/// fraction of the queue, so premium traffic still lands when background
/// load has saturated admission (the queue's own kOverloaded path remains
/// the terminal backstop for everyone).
enum class Tier : std::uint8_t {
  kBatch = 0,     // offline/bulk traffic — shed earliest
  kStandard = 1,  // interactive default
  kPremium = 2,   // sheds only when the queue is truly full
};
inline constexpr std::size_t kTierCount = 3;
const char* tier_name(Tier tier);

struct NetServerOptions {
  /// 0 binds an ephemeral port; NetServer::port() reports the real one.
  std::uint16_t port = 0;
  /// Deadline for the remainder of a frame once its first byte arrived (a
  /// half-sent frame must not wedge the handler).
  double read_timeout_seconds = 10.0;
  /// Deadline waiting for the NEXT frame on an idle connection.
  double idle_timeout_seconds = 60.0;
  /// Ceiling on one frame's payload (checked before any allocation).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Key-registry byte quota shared by all sessions (LRU evicts past it).
  std::size_t key_quota_bytes = std::size_t{1} << 30;
  /// Per-tier admission: a tier-t request is shed with kOverloaded once the
  /// batch queue holds >= admit_fill[t] * queue_capacity requests.
  std::array<double, kTierCount> admit_fill = {0.5, 0.8, 1.0};
  /// Listener backlog + soft cap on live connections (excess connections
  /// are accepted and immediately refused with a typed error frame).
  std::size_t max_connections = 256;
};

/// Transport-level telemetry (separate from the BatchServer's StatsSnapshot;
/// the metrics endpoint exports both).
struct NetServerStats {
  std::uint64_t connections = 0;         ///< accepted, lifetime
  std::uint64_t active_connections = 0;  ///< currently handled
  std::uint64_t refused_connections = 0; ///< over max_connections
  std::uint64_t http_scrapes = 0;        ///< GET /metrics hits
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t handshakes = 0;          ///< completed hellos
  std::uint64_t requests = 0;            ///< request frames admitted
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_degraded = 0;
  std::uint64_t replies_failed = 0;
  std::uint64_t replies_rejected = 0;    ///< typed pre-submit rejections
  /// Connection-level typed rejections (bad frames, protocol violations),
  /// by ErrorCode — the chaos matrix asserts these stay TYPED.
  std::array<std::uint64_t, kErrorCodeCount> frame_rejects{};
  /// Admission sheds by tier (kOverloaded replies before submit()).
  std::array<std::uint64_t, kTierCount> sheds{};
  /// Requests refused because the session's keys were LRU-evicted.
  std::uint64_t key_evicted_rejects = 0;
};

/// TCP front end over a BatchServer: a listener thread accepts loopback
/// connections and hands each to its own handler thread (thread-per-
/// connection), which speaks the framed protocol of DESIGN.md §15:
///
///   hello/hello_ack  version + parameter-digest negotiation, session id
///   key_upload       registers evaluation keys in the LRU KeyRegistry
///   request/reply    framed classification through BatchServer::submit
///   GET /metrics     same port: Prometheus text exposition, then close
///
/// Typed failure semantics: a payload-checksum failure rejects the message
/// and KEEPS the connection (the stream is still framed); header corruption
/// or truncation records the typed code, sends a best-effort error frame,
/// and drops only that connection — the server always stays up.
class NetServer {
 public:
  NetServer(BatchServer& server, const RnsBackend& backend,
            NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  const NetServerOptions& options() const { return options_; }

  NetServerStats stats() const;
  KeyRegistry::Stats key_stats() const { return registry_.stats(); }

  /// The Prometheus text payload `GET /metrics` serves — exposed directly
  /// so benches/tests can validate it without a socket.
  std::string metrics_text() const;

  /// Stops accepting, unblocks and joins every connection handler. The
  /// underlying BatchServer is NOT shut down (the caller owns it).
  void shutdown();

 private:
  struct Handler {
    std::thread thread;
    std::atomic<bool> done{false};
    int fd = -1;  ///< for shutdown() to interrupt a blocked read
  };

  void accept_main();
  void handle_connection(std::shared_ptr<Handler> self, TcpConn conn);
  void handle_http(TcpConn& conn, const char* sniffed);
  void serve_session(TcpConn& conn, std::uint64_t session, Tier tier);
  void reap_handlers();

  void send_frame(TcpConn& conn, FrameType type, const std::string& payload,
                  bool allow_download_fault = false);
  void count_frame_reject(ErrorCode code);

  BatchServer& batch_server_;
  const RnsBackend& backend_;
  NetServerOptions options_;
  TcpListener listener_;
  KeyRegistry registry_;
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> next_session_{1};
  std::thread accept_thread_;

  mutable std::mutex handlers_mutex_;
  std::list<std::shared_ptr<Handler>> handlers_;

  mutable std::mutex stats_mutex_;
  NetServerStats stats_;
};

}  // namespace pphe::serve::net
