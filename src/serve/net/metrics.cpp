#include "serve/net/metrics.hpp"

#include <cstdio>

namespace pphe::serve::net {

namespace {

void line_u64(std::string& out, const char* name, std::uint64_t v,
              const std::string& labels = "") {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s%s %llu\n", name, labels.c_str(),
                static_cast<unsigned long long>(v));
  out += buf;
}

void line_f64(std::string& out, const char* name, double v,
              const std::string& labels = "") {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s%s %.9g\n", name, labels.c_str(), v);
  out += buf;
}

void head(std::string& out, const char* name, const char* type,
          const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string render_prometheus(
    const StatsSnapshot& batch, const NetServerStats& net,
    const KeyRegistry::Stats& keys,
    const std::map<std::string, std::uint64_t>& backend_ops,
    std::size_t queue_capacity) {
  std::string out;
  out.reserve(4096);

  // --- request outcomes ---------------------------------------------------
  head(out, "pphe_requests_submitted_total", "counter",
       "requests accepted into the batch queue");
  line_u64(out, "pphe_requests_submitted_total", batch.submitted);
  head(out, "pphe_requests_completed_total", "counter",
       "replies delivered, by result");
  line_u64(out, "pphe_requests_completed_total", batch.ok,
           "{result=\"ok\"}");
  line_u64(out, "pphe_requests_completed_total", batch.degraded,
           "{result=\"degraded\"}");
  line_u64(out, "pphe_requests_completed_total", batch.failed,
           "{result=\"failed\"}");
  head(out, "pphe_requests_rejected_total", "counter",
       "submit-time rejections by typed error code");
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    const auto code = static_cast<ErrorCode>(i);
    // Always expose the admission-relevant codes so dashboards can rate()
    // them from zero; other codes appear once they fire.
    if (batch.rejected[i] == 0 && code != ErrorCode::kOverloaded &&
        code != ErrorCode::kInvalidArgument) {
      continue;
    }
    line_u64(out, "pphe_requests_rejected_total", batch.rejected[i],
             std::string("{code=\"") + error_code_name(code) + "\"}");
  }

  // --- queue / batching ---------------------------------------------------
  head(out, "pphe_queue_depth", "gauge", "requests awaiting batching");
  line_u64(out, "pphe_queue_depth", batch.queue_depth);
  head(out, "pphe_queue_capacity", "gauge", "admission-control capacity");
  line_u64(out, "pphe_queue_capacity", queue_capacity);
  head(out, "pphe_batches_in_flight", "gauge", "batches cut but not replied");
  line_u64(out, "pphe_batches_in_flight", batch.batches_in_flight);
  head(out, "pphe_batches_total", "counter", "batches dispatched");
  line_u64(out, "pphe_batches_total", batch.batches);
  head(out, "pphe_batch_retries_total", "counter",
       "extra evaluation attempts beyond the first, summed over batches");
  line_u64(out, "pphe_batch_retries_total", batch.retries);
  head(out, "pphe_batch_size_total", "counter",
       "batches dispatched, by coalesced size");
  for (const auto& [size, count] : batch.batch_sizes) {
    line_u64(out, "pphe_batch_size_total", count,
             "{size=\"" + std::to_string(size) + "\"}");
  }

  // --- latency series (seconds) -------------------------------------------
  head(out, "pphe_latency_seconds", "summary",
       "serving latency by stage (from log2-ns histograms)");
  const struct {
    const char* stage;
    double p50_ns, p99_ns;
  } stages[] = {
      {"queue", batch.queue_p50_ns, batch.queue_p99_ns},
      {"linger", batch.linger_p50_ns, batch.linger_p99_ns},
      {"eval", batch.eval_p50_ns, batch.eval_p99_ns},
  };
  for (const auto& s : stages) {
    line_f64(out, "pphe_latency_seconds", s.p50_ns * 1e-9,
             std::string("{stage=\"") + s.stage + "\",quantile=\"0.5\"}");
    line_f64(out, "pphe_latency_seconds", s.p99_ns * 1e-9,
             std::string("{stage=\"") + s.stage + "\",quantile=\"0.99\"}");
  }
  head(out, "pphe_eval_seconds_sum", "counter",
       "total wall time spent in batch evaluations");
  line_f64(out, "pphe_eval_seconds_sum", batch.eval_total_ns * 1e-9);
  head(out, "pphe_eval_batches_count", "counter",
       "batch evaluations timed into pphe_eval_seconds_sum");
  line_u64(out, "pphe_eval_batches_count", batch.eval_count);

  // --- transport ----------------------------------------------------------
  head(out, "pphe_net_connections_total", "counter", "connections accepted");
  line_u64(out, "pphe_net_connections_total", net.connections);
  head(out, "pphe_net_active_connections", "gauge",
       "connections currently handled");
  line_u64(out, "pphe_net_active_connections", net.active_connections);
  head(out, "pphe_net_refused_connections_total", "counter",
       "connections refused over max_connections");
  line_u64(out, "pphe_net_refused_connections_total",
           net.refused_connections);
  head(out, "pphe_net_handshakes_total", "counter", "completed hellos");
  line_u64(out, "pphe_net_handshakes_total", net.handshakes);
  head(out, "pphe_net_frames_total", "counter", "frames by direction");
  line_u64(out, "pphe_net_frames_total", net.frames_in, "{dir=\"in\"}");
  line_u64(out, "pphe_net_frames_total", net.frames_out, "{dir=\"out\"}");
  head(out, "pphe_net_bytes_total", "counter", "frame bytes by direction");
  line_u64(out, "pphe_net_bytes_total", net.bytes_in, "{dir=\"in\"}");
  line_u64(out, "pphe_net_bytes_total", net.bytes_out, "{dir=\"out\"}");
  head(out, "pphe_net_http_scrapes_total", "counter", "GET /metrics hits");
  line_u64(out, "pphe_net_http_scrapes_total", net.http_scrapes);
  head(out, "pphe_net_frame_rejects_total", "counter",
       "connection-level typed rejections (corrupt/oversize/late frames)");
  // Every code always appears (zeros included): a scraper's rate() needs
  // the series to exist BEFORE the first reject, and the quick gate checks
  // that no declared family is sample-less.
  for (std::size_t i = 0; i < kErrorCodeCount; ++i) {
    line_u64(out, "pphe_net_frame_rejects_total", net.frame_rejects[i],
             std::string("{code=\"") +
                 error_code_name(static_cast<ErrorCode>(i)) + "\"}");
  }
  head(out, "pphe_net_sheds_total", "counter",
       "requests shed by tiered admission control");
  for (std::size_t t = 0; t < kTierCount; ++t) {
    line_u64(out, "pphe_net_sheds_total", net.sheds[t],
             std::string("{tier=\"") + tier_name(static_cast<Tier>(t)) +
                 "\"}");
  }

  // --- key registry -------------------------------------------------------
  head(out, "pphe_key_sessions", "gauge", "sessions with registered keys");
  line_u64(out, "pphe_key_sessions", keys.sessions);
  head(out, "pphe_key_bytes_pinned", "gauge",
       "evaluation-key bytes pinned in the registry");
  line_u64(out, "pphe_key_bytes_pinned", keys.bytes_pinned);
  head(out, "pphe_key_quota_bytes", "gauge", "registry byte quota");
  line_u64(out, "pphe_key_quota_bytes", keys.quota_bytes);
  head(out, "pphe_key_registrations_total", "counter",
       "key uploads accepted");
  line_u64(out, "pphe_key_registrations_total", keys.registrations);
  head(out, "pphe_key_evictions_total", "counter",
       "sessions LRU-evicted under quota pressure");
  line_u64(out, "pphe_key_evictions_total", keys.evictions);
  head(out, "pphe_key_evicted_rejects_total", "counter",
       "requests refused with key_evicted (client must re-send keys)");
  line_u64(out, "pphe_key_evicted_rejects_total", net.key_evicted_rejects);

  // --- homomorphic-op counters (HeBackend OpKind) -------------------------
  head(out, "pphe_backend_ops_total", "counter",
       "homomorphic primitive invocations by OpKind");
  for (const auto& [op, count] : backend_ops) {
    line_u64(out, "pphe_backend_ops_total", count,
             "{op=\"" + op + "\"}");
  }
  return out;
}

}  // namespace pphe::serve::net
