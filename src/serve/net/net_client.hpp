#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "serve/net/frame.hpp"
#include "serve/net/net_server.hpp"
#include "serve/net/socket.hpp"

namespace pphe {
struct CkksParams;
}

namespace pphe::serve::net {

struct NetClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  Tier tier = Tier::kStandard;
  /// Deadline for connect and for every frame read.
  double timeout_seconds = 30.0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// When a request is rejected with kKeyEvicted, transparently re-upload
  /// the remembered rotation steps and resubmit once.
  bool auto_resend_keys = true;
  /// Informational name sent in the hello (shows up in server traces).
  std::string name = "pphe-client";
};

/// One classification outcome as seen over the wire (the network mirror of
/// ServeReply, minus the batch-internal fault history which stays
/// server-side).
struct NetReply {
  std::uint64_t request_id = 0;
  bool ok = false;
  bool degraded = false;
  /// True when the server refused before evaluation (shed, evicted keys,
  /// queue full); `error` carries the typed code.
  bool rejected = false;
  ErrorCode error = ErrorCode::kGeneric;
  int predicted = -1;
  int attempts = 0;
  std::size_t batch_size = 0;
  double queue_seconds = 0.0;
  double eval_seconds = 0.0;
  std::vector<double> logits;
  std::string message;
};

/// What the server advertised in its hello_ack.
struct SessionInfo {
  std::uint64_t session_id = 0;
  std::size_t input_dim = 0;
  std::size_t max_frame_bytes = 0;
  std::size_t key_quota_bytes = 0;
};

/// Blocking protocol client for the NetServer (DESIGN.md §15): connects and
/// completes the versioned hello in the constructor, uploads evaluation-key
/// registrations, then issues framed classify() round trips. Not
/// thread-safe — one NetClient per connection per thread (the load
/// generators open one each).
///
/// Error frames from the server re-throw locally as pphe::Error with the
/// server's code, so a network client fails exactly as typed as an
/// in-process caller. When chaos injection is armed, request frames pass
/// through the Site::kWireUpload byte-corruption hook before send — the
/// same trust boundary the ciphertext wire format exercises.
class NetClient {
 public:
  NetClient(const CkksParams& params, NetClientOptions options);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  const SessionInfo& session() const { return session_; }

  /// Registers this session's evaluation keys: the rotation steps the
  /// server-side model needs, plus the relinearization key that always
  /// rides along. `declared_bytes` overrides the server's size estimate
  /// (0 = let the server charge its own accounting). The steps are
  /// remembered for kKeyEvicted auto-recovery.
  void upload_keys(const std::vector<int>& steps,
                   std::uint64_t declared_bytes = 0);

  /// One framed classification round trip. Throws typed pphe::Error on
  /// transport/protocol failure; server-side refusals come back as
  /// NetReply{rejected=true} (after one transparent key re-upload when the
  /// cause was kKeyEvicted and auto_resend_keys is on).
  NetReply classify(const std::vector<float>& image);

  /// Graceful bye (releases the server-side key registration) and close.
  /// Idempotent; the destructor calls it.
  void bye();

 private:
  NetReply roundtrip(const std::vector<float>& image);
  Frame transact(FrameType type, const std::string& payload,
                 bool upload_fault);

  NetClientOptions options_;
  TcpConn conn_;
  SessionInfo session_;
  std::vector<int> remembered_steps_;
  std::uint64_t remembered_declared_bytes_ = 0;
  bool keys_uploaded_ = false;
  std::uint64_t next_request_ = 1;
};

}  // namespace pphe::serve::net
