#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "ckks/rns_backend.hpp"
#include "common/trace.hpp"

namespace pphe::serve {

namespace {
using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}
}  // namespace

BatchServer::BatchServer(BatchModelSet& models, ServerOptions options)
    : models_(models),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      // Shallow lane: one cut batch waiting per worker is enough pipeline
      // overlap; a deeper lane would only hide backpressure from clients.
      batch_lane_(std::max<std::size_t>(1, options_.workers)) {
  PPHE_CHECK(options_.workers >= 1, "BatchServer: need at least one worker");
  options_.max_batch = std::min(options_.max_batch, models_.max_batch());
  PPHE_CHECK(options_.max_batch >= 1, "BatchServer: max_batch must be >= 1");
  batcher_thread_ = std::thread([this] { batcher_main(); });
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

BatchServer::~BatchServer() { shutdown(); }

std::future<ServeReply> BatchServer::submit(std::vector<float> image) {
  trace::Span span("serve.enqueue", "serve");
  const std::size_t expect = models_.input_dim();
  if (image.size() != expect) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected[static_cast<std::size_t>(ErrorCode::kInvalidArgument)];
    }
    throw Error(ErrorCode::kInvalidArgument,
                "submit: image has " + std::to_string(image.size()) +
                    " values, model expects " + std::to_string(expect));
  }
  Pending pending;
  pending.image = std::move(image);
  pending.enqueue_time = Clock::now();
  std::future<ServeReply> future = pending.promise.get_future();
  try {
    queue_.push(std::move(pending));
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kOverloaded) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected[static_cast<std::size_t>(ErrorCode::kOverloaded)];
    }
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  span.attr("depth", static_cast<double>(queue_.size()));
  return future;
}

void BatchServer::batcher_main() {
  MicroBatcher<Pending> batcher(
      options_.max_batch,
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(options_.linger_ms)));
  // All requests of this server target one model set, so they share one
  // compatibility key; a multi-model server would key on the model identity.
  constexpr std::uint64_t kKey = 0;
  for (;;) {
    // Slurp everything immediately available, then cut whatever is ready
    // (full batches first, then expired lingers).
    Pending req;
    while (queue_.try_pop(req)) batcher.add(kKey, std::move(req), Clock::now());
    const auto now = Clock::now();
    while (auto batch = batcher.cut(now)) dispatch(std::move(*batch));
    // Sleep until the earliest linger deadline or the next arrival.
    const auto status = queue_.pop_until(req, batcher.next_deadline());
    if (status == RequestQueue<Pending>::PopStatus::kItem) {
      batcher.add(kKey, std::move(req), Clock::now());
    } else if (status == RequestQueue<Pending>::PopStatus::kClosed) {
      break;
    }
    // kTimeout falls through: the next cut() pass dispatches the expired
    // group.
  }
  // Shutdown drain: force-cut every remaining group so no accepted request
  // is ever dropped, then close the lane so workers exit once it is empty.
  while (auto batch = batcher.cut_any()) dispatch(std::move(*batch));
  batch_lane_.close();
}

void BatchServer::dispatch(MicroBatch<Pending> batch) {
  trace::Span span("serve.batch", "serve");
  const auto cut_time = Clock::now();
  ReadyBatch ready;
  ready.requests = std::move(batch.items);
  ready.oldest_arrival = batch.oldest_arrival;
  ready.cut_time = cut_time;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    ++stats_.batches_in_flight;
    ++stats_.batch_sizes[ready.requests.size()];
    stats_.linger_ns.add_ns(ns_between(ready.oldest_arrival, cut_time));
    for (const Pending& p : ready.requests) {
      stats_.queue_ns.add_ns(ns_between(p.enqueue_time, cut_time));
    }
  }
  span.attr("size", static_cast<double>(ready.requests.size()));
  span.attr("linger_ns",
            static_cast<double>(ns_between(ready.oldest_arrival, cut_time)));
  // Blocking push: when every worker is busy and the lane is full, the
  // batcher stalls here, the request queue fills, and submit() starts
  // rejecting with kOverloaded — backpressure end to end.
  batch_lane_.push_wait(std::move(ready));
}

void BatchServer::worker_main() {
  for (;;) {
    ReadyBatch batch;
    const auto status = batch_lane_.pop_until(batch, std::nullopt);
    if (status != RequestQueue<ReadyBatch>::PopStatus::kItem) break;
    process(std::move(batch));
  }
}

void BatchServer::process(ReadyBatch batch) {
  const std::size_t n = batch.requests.size();
  std::vector<std::vector<float>> images;
  images.reserve(n);
  for (Pending& p : batch.requests) images.push_back(std::move(p.image));

  ServeBatchOutcome outcome;
  Stopwatch sw;
  try {
    trace::Span span("serve.eval", "serve");
    span.attr("size", static_cast<double>(n));
    const HeModel& model = models_.model_for(n);
    outcome = serve_classify_batch(models_.backend(), model, images,
                                   options_.serving);
  } catch (const Error& e) {
    // serve_classify_batch only throws on caller bugs (wrong backend/shape);
    // surface it through the replies rather than killing the worker.
    outcome.ok = false;
    outcome.attempts = std::max(outcome.attempts, 1);
    outcome.faults.push_back({e.code(), e.what()});
  }
  const double eval_seconds = sw.seconds();

  // Account BEFORE fulfilling the promises: a client that observes its
  // future resolved must also observe the stats that include its request.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --stats_.batches_in_flight;
    stats_.completed += n;
    if (outcome.ok) {
      stats_.ok += n;
    } else if (outcome.degraded) {
      stats_.degraded += n;
    } else {
      stats_.failed += n;
    }
    stats_.retries +=
        static_cast<std::uint64_t>(std::max(0, outcome.attempts - 1));
    stats_.eval_ns.add_ns(static_cast<std::uint64_t>(eval_seconds * 1e9));
  }

  trace::Span reply_span("serve.reply", "serve");
  reply_span.attr("size", static_cast<double>(n));
  reply_span.attr("ok", outcome.ok ? 1.0 : 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    ServeReply reply;
    reply.ok = outcome.ok;
    reply.degraded = outcome.degraded;
    reply.faults = outcome.faults;  // batch-level history, attributed to each
    reply.attempts = outcome.attempts;
    reply.batch_size = n;
    reply.queue_seconds =
        static_cast<double>(
            ns_between(batch.requests[i].enqueue_time, batch.cut_time)) *
        1e-9;
    reply.eval_seconds = eval_seconds;
    if (outcome.ok) {
      reply.logits = std::move(outcome.logits[i]);
      reply.predicted = outcome.predicted[i];
    } else if (!outcome.faults.empty()) {
      reply.error = outcome.faults.back().code;
      reply.message = outcome.faults.back().message;
    }
    batch.requests[i].promise.set_value(std::move(reply));
  }
}

void BatchServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

ServerStats BatchServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServerStats out = stats_;
  out.queue_depth = queue_.size();
  return out;
}

StatsSnapshot ServerStats::snapshot() const {
  StatsSnapshot s;
  s.queue_depth = queue_depth;
  s.batches_in_flight = batches_in_flight;
  s.submitted = submitted;
  s.completed = completed;
  s.ok = ok;
  s.degraded = degraded;
  s.failed = failed;
  s.batches = batches;
  s.retries = retries;
  s.rejected = rejected;
  for (const std::uint64_t n : rejected) s.rejected_total += n;
  s.batch_sizes = batch_sizes;
  s.queue_count = queue_ns.count();
  s.queue_p50_ns = queue_ns.percentile_ns(0.5);
  s.queue_p99_ns = queue_ns.percentile_ns(0.99);
  s.queue_avg_ns = queue_ns.avg_ns();
  s.linger_count = linger_ns.count();
  s.linger_p50_ns = linger_ns.percentile_ns(0.5);
  s.linger_p99_ns = linger_ns.percentile_ns(0.99);
  s.eval_count = eval_ns.count();
  s.eval_p50_ns = eval_ns.percentile_ns(0.5);
  s.eval_p99_ns = eval_ns.percentile_ns(0.99);
  s.eval_avg_ns = eval_ns.avg_ns();
  s.eval_total_ns = eval_ns.total_ns();
  return s;
}

}  // namespace pphe::serve
