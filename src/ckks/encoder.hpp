#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "math/fft.hpp"

namespace pphe {

/// CKKS encoder: the canonical embedding τ of §II of the paper.
///
/// A vector of N/2 complex (here: real) slot values is mapped to the unique
/// real polynomial m ∈ R[X]/(X^N+1) with m(ζ^{5^j}) = z_j for the primitive
/// 2N-th root ζ = exp(iπ/N) (conjugate slots are implied by realness), then
/// scaled by Δ and rounded to integer coefficients: encode(z) = ⌈Δ·τ⁻¹(z)⌋.
///
/// The orbit of 5 in (Z/2N)* together with negation covers every odd residue,
/// so the N/2 evaluation constraints plus conjugate symmetry pin all N real
/// coefficients; rotating slots left by r corresponds to the ring
/// automorphism X → X^{5^r mod 2N}, and conjugation to X → X^{2N-1}.
///
/// Evaluation at the special points is done with one size-N complex FFT on a
/// ζ^k-twisted sequence (O(N log N)), not the O(N²) Vandermonde product.
class CkksEncoder {
 public:
  explicit CkksEncoder(std::size_t degree);

  std::size_t degree() const { return n_; }
  std::size_t slot_count() const { return n_ / 2; }

  /// Encodes at the given scale Δ. `values` may be shorter than slot_count();
  /// missing slots are zero. Throws if any rounded coefficient would exceed
  /// 2^62 in magnitude (the backends then could not represent it exactly).
  std::vector<std::int64_t> encode(std::span<const double> values,
                                   double scale) const;
  std::vector<std::int64_t> encode(std::span<const std::complex<double>> values,
                                   double scale) const;

  /// Inverse map: centered real coefficients (already divided by nothing) and
  /// the scale they carry; returns the slot values m(ζ^{5^j}) / Δ.
  std::vector<std::complex<double>> decode(std::span<const double> coefficients,
                                           double scale) const;
  /// Convenience: real parts only.
  std::vector<double> decode_real(std::span<const double> coefficients,
                                  double scale) const;

  /// Exact (unrounded) embedding τ⁻¹ — exposed for the §III.C error analysis,
  /// which studies the gap between Δ·τ⁻¹(z) and its rounding.
  std::vector<double> embed_unrounded(std::span<const std::complex<double>> values,
                                      double scale) const;

 private:
  std::size_t n_;
  Fft fft_;
  std::vector<std::size_t> slot_to_bin_;       // f_j with 5^j = 2 f_j + 1
  std::vector<std::size_t> conj_slot_to_bin_;  // bin of -5^j mod 2N
  std::vector<std::complex<double>> twist_;    // ζ^k
  std::vector<std::complex<double>> untwist_;  // ζ^{-k}
};

}  // namespace pphe
