#include "ckks/rns_backend.hpp"

#include <cmath>
#include <cstring>

#include "ckks/serialize.hpp"
#include "common/check.hpp"
#include "common/parallel_sim.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "math/primes.hpp"
#include "math/sampling.hpp"

namespace pphe {
namespace {

/// Runs fn(c) for every channel through the global pool and records the
/// section in ParallelSim (fan-out = channel count): residue channels are
/// the independent work units of the RNS representation.
void parallel_channels(std::size_t k, const std::function<void(std::size_t)>& fn) {
  Stopwatch sw;
  ThreadPool::global().parallel_for(k, fn);
  ParallelSim::global().record_parallel(k, sw.seconds());
}

double relative_diff(double a, double b) {
  const double m = std::max(std::abs(a), std::abs(b));
  return m == 0.0 ? 0.0 : std::abs(a - b) / m;
}

const RnsCtBody& body(const Ciphertext& ct) {
  PPHE_CHECK(ct.valid(), "invalid ciphertext handle");
  return *static_cast<const RnsCtBody*>(ct.impl().get());
}

const RnsPtBody& body(const Plaintext& pt) {
  PPHE_CHECK(pt.valid(), "invalid plaintext handle");
  return *static_cast<const RnsPtBody*>(pt.impl().get());
}

}  // namespace

RnsBackend::RnsBackend(const CkksParams& params)
    : params_(params), encoder_(params.degree),
      pool_(std::make_shared<PolyPool>()), special_(2), prng_(params.seed) {
  params_.validate();

  // One downward prime sweep covering the ciphertext chain AND the
  // key-switching prime, so all moduli are distinct even at equal widths.
  std::vector<int> sizes = params_.q_bit_sizes;
  sizes.push_back(params_.special_bit_size);
  const auto primes = generate_moduli_chain(params_.degree, sizes);
  for (std::size_t i = 0; i < params_.q_bit_sizes.size(); ++i) {
    q_moduli_.emplace_back(primes[i]);
    q_ntt_.emplace_back(params_.degree, q_moduli_.back());
  }
  special_ = Modulus(primes.back());
  special_ntt_ = std::make_unique<NttTable>(params_.degree, special_);

  p_mod_q_.resize(q_moduli_.size());
  inv_p_mod_q_.resize(q_moduli_.size());
  for (std::size_t i = 0; i < q_moduli_.size(); ++i) {
    p_mod_q_[i] = q_moduli_[i].reduce(special_.value());
    inv_p_mod_q_[i] = q_moduli_[i].inv(p_mod_q_[i]);
  }
  inv_q_mod_q_.resize(q_moduli_.size());
  for (std::size_t l = 1; l < q_moduli_.size(); ++l) {
    inv_q_mod_q_[l].resize(l);
    for (std::size_t i = 0; i < l; ++i) {
      inv_q_mod_q_[l][i] =
          q_moduli_[i].inv(q_moduli_[i].reduce(q_moduli_[l].value()));
    }
  }
  for (std::size_t l = 0; l < q_moduli_.size(); ++l) {
    std::vector<std::uint64_t> mods(l + 1);
    for (std::size_t i = 0; i <= l; ++i) mods[i] = q_moduli_[i].value();
    level_bases_.push_back(std::make_unique<RnsBase>(mods));
  }

  generate_keys();
}

// ---------------------------------------------------------------------------
// Poly helpers
// ---------------------------------------------------------------------------

const Modulus& RnsBackend::mod_for(const RnsPoly& p, std::size_t c) const {
  return (p.has_special && c == p.channels() - 1) ? special_ : q_moduli_[c];
}

const NttTable& RnsBackend::ntt_for(const RnsPoly& p, std::size_t c) const {
  return (p.has_special && c == p.channels() - 1) ? *special_ntt_ : q_ntt_[c];
}

RnsPoly RnsBackend::zero_poly(int level, bool with_special, bool ntt) const {
  RnsPoly p;
  const std::size_t channels =
      static_cast<std::size_t>(level) + 1 + (with_special ? 1 : 0);
  p.buf = PolyBuffer(pool_, channels, params_.degree, /*zero_fill=*/true);
  p.ntt = ntt;
  p.has_special = with_special;
  return p;
}

namespace {

/// Channel c of `a` and channel c of `b` must refer to the same modulus:
/// plain channels align positionally, and a special channel can only meet a
/// special channel. `b` may have more (higher) channels than `a`.
void check_channel_compat(const RnsPoly& a, const RnsPoly& b,
                          std::size_t channels_used) {
  for (std::size_t c = 0; c < channels_used; ++c) {
    const bool a_special = a.has_special && c == a.channels() - 1;
    const bool b_special = b.has_special && c == b.channels() - 1;
    PPHE_CHECK(a_special == b_special, "RNS channel layout mismatch");
  }
}

}  // namespace

void RnsBackend::to_ntt(RnsPoly& p) const {
  if (p.ntt) return;
  OpScope op(*this, OpKind::kNttForward);
  op.attr("channels", static_cast<double>(p.channels()));
  parallel_channels(p.channels(),
                    [&](std::size_t c) { ntt_for(p, c).forward(p.ch(c)); });
  p.ntt = true;
}

void RnsBackend::to_coeff(RnsPoly& p) const {
  if (!p.ntt) return;
  OpScope op(*this, OpKind::kNttInverse);
  op.attr("channels", static_cast<double>(p.channels()));
  parallel_channels(p.channels(),
                    [&](std::size_t c) { ntt_for(p, c).inverse(p.ch(c)); });
  p.ntt = false;
}

RnsPoly RnsBackend::lift_signed(std::span<const std::int64_t> coeffs,
                                int level, bool with_special) const {
  PPHE_CHECK(coeffs.size() == params_.degree, "coefficient count mismatch");
  RnsPoly p = zero_poly(level, with_special, /*ntt=*/false);
  parallel_channels(p.channels(), [&](std::size_t c) {
    const Modulus& mod = mod_for(p, c);
    auto dst = p.ch(c);
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      const std::int64_t v = coeffs[i];
      dst[i] = v >= 0
                   ? mod.reduce(static_cast<std::uint64_t>(v))
                   : mod.neg(mod.reduce(static_cast<std::uint64_t>(-v)));
    }
  });
  return p;
}

RnsPoly RnsBackend::uniform_poly(int level, bool with_special) const {
  RnsPoly p = zero_poly(level, with_special, /*ntt=*/true);
  std::lock_guard<std::mutex> lock(prng_mutex_);
  for (std::size_t c = 0; c < p.channels(); ++c) {
    const Modulus& mod = mod_for(p, c);
    for (auto& v : p.ch(c)) v = prng_.uniform_below(mod.value());
  }
  return p;
}

RnsPoly RnsBackend::automorphism(const RnsPoly& p,
                                 std::uint64_t exponent) const {
  PPHE_CHECK(!p.ntt, "automorphism expects coefficient form");
  const std::size_t n = params_.degree;
  const std::size_t two_n = 2 * n;
  PPHE_CHECK(exponent % 2 == 1 && exponent < two_n, "bad Galois exponent");
  RnsPoly out;
  out.buf = PolyBuffer(pool_, p.channels(), n, /*zero_fill=*/false);
  out.ntt = p.ntt;
  out.has_special = p.has_special;
  parallel_channels(p.channels(), [&](std::size_t c) {
    const Modulus& mod = mod_for(p, c);
    const auto src = p.ch(c);
    auto dst = out.ch(c);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (i * exponent) % two_n;
      if (j < n) {
        dst[j] = src[i];
      } else {
        dst[j - n] = mod.neg(src[i]);
      }
    }
  });
  return out;
}

void RnsBackend::add_inplace(RnsPoly& a, const RnsPoly& b) const {
  PPHE_CHECK(a.ntt == b.ntt, "representation mismatch in add");
  const std::size_t k = std::min(a.channels(), b.channels());
  check_channel_compat(a, b, k);
  parallel_channels(k, [&](std::size_t c) {
    dyadic::add(a.ch(c), b.ch(c), a.ch(c), mod_for(a, c));
  });
}

void RnsBackend::sub_inplace(RnsPoly& a, const RnsPoly& b) const {
  PPHE_CHECK(a.ntt == b.ntt, "representation mismatch in sub");
  const std::size_t k = std::min(a.channels(), b.channels());
  check_channel_compat(a, b, k);
  parallel_channels(k, [&](std::size_t c) {
    dyadic::sub(a.ch(c), b.ch(c), a.ch(c), mod_for(a, c));
  });
}

void RnsBackend::negate_inplace(RnsPoly& a) const {
  parallel_channels(a.channels(), [&](std::size_t c) {
    dyadic::neg(a.ch(c), a.ch(c), mod_for(a, c));
  });
}

void RnsBackend::pointwise_inplace(RnsPoly& a, const RnsPoly& b) const {
  PPHE_CHECK(a.ntt && b.ntt, "pointwise product expects NTT form");
  const std::size_t k = std::min(a.channels(), b.channels());
  check_channel_compat(a, b, k);
  parallel_channels(k, [&](std::size_t c) {
    dyadic::mul(a.ch(c), b.ch(c), a.ch(c), mod_for(a, c));
  });
}

RnsPoly RnsBackend::pointwise(const RnsPoly& a, const RnsPoly& b) const {
  PPHE_CHECK(a.ntt && b.ntt, "pointwise product expects NTT form");
  // Fused truncate-and-multiply: the output covers the common channel prefix
  // (truncation removes a's trailing special channel, if there was one) and
  // is written directly into a fresh slab instead of copying a first.
  const std::size_t k = std::min(a.channels(), b.channels());
  RnsPoly out;
  out.buf = PolyBuffer(pool_, k, params_.degree, /*zero_fill=*/false);
  out.ntt = true;
  out.has_special = a.has_special && k == a.channels();
  check_channel_compat(out, b, k);
  parallel_channels(k, [&](std::size_t c) {
    dyadic::mul(a.ch(c), b.ch(c), out.ch(c), mod_for(out, c));
  });
  return out;
}

PolyBuffer RnsBackend::shoup_form(const RnsPoly& p) const {
  PolyBuffer q(pool_, p.channels(), params_.degree, /*zero_fill=*/false);
  for (std::size_t c = 0; c < p.channels(); ++c) {
    dyadic::shoup_precompute(p.ch(c), q[c], mod_for(p, c));
  }
  return q;
}

const PolyBuffer& RnsBackend::pt_shoup(const RnsPtBody& pt) const {
  std::call_once(pt.shoup_once, [&] { pt.shoup = shoup_form(pt.poly); });
  return pt.shoup;
}

RnsPoly RnsBackend::pointwise_shoup(const RnsPoly& w, const PolyBuffer& wq,
                                    const RnsPoly& b) const {
  PPHE_CHECK(w.ntt && b.ntt, "pointwise product expects NTT form");
  const std::size_t k = std::min(w.channels(), b.channels());
  RnsPoly out;
  out.buf = PolyBuffer(pool_, k, params_.degree, /*zero_fill=*/false);
  out.ntt = true;
  out.has_special = w.has_special && k == w.channels();
  check_channel_compat(out, b, k);
  parallel_channels(k, [&](std::size_t c) {
    dyadic::mul_shoup(b.ch(c), w.ch(c), wq[c], out.ch(c), mod_for(out, c));
  });
  return out;
}

// ---------------------------------------------------------------------------
// Key generation
// ---------------------------------------------------------------------------

void RnsBackend::generate_keys() {
  const int top = max_level();
  // Secret key s <- HW(h), lifted to every channel (q primes + special).
  const auto s = sample_hwt(prng_, params_.degree, params_.hamming_weight);
  std::vector<std::int64_t> s64(s.begin(), s.end());
  sk_coeff_ = lift_signed(s64, top, /*with_special=*/true);
  sk_ntt_ = sk_coeff_;
  to_ntt(sk_ntt_);

  // Public key (b, a): b = -a s + e over the q primes.
  pk_a_ = uniform_poly(top, /*with_special=*/false);
  const auto e = sample_gaussian(prng_, params_.degree, params_.noise_sigma);
  RnsPoly e_poly = lift_signed(e, top, /*with_special=*/false);
  to_ntt(e_poly);
  pk_b_ = pointwise(pk_a_, sk_ntt_);
  negate_inplace(pk_b_);
  add_inplace(pk_b_, e_poly);
  pk_b_shoup_ = shoup_form(pk_b_);
  pk_a_shoup_ = shoup_form(pk_a_);

  // Relinearization key: targets s^2.
  RnsPoly s2 = pointwise(sk_ntt_, sk_ntt_);
  relin_key_ = make_ksw_key(s2);
}

RnsBackend::KswKey RnsBackend::make_ksw_key(const RnsPoly& target_ntt) const {
  PPHE_CHECK(target_ntt.ntt && target_ntt.channels() == q_moduli_.size() + 1,
             "key-switch target must be NTT over all channels");
  const int top = max_level();
  KswKey key;
  key.digits.resize(q_moduli_.size());
  key.shoup.resize(q_moduli_.size());
  for (std::size_t j = 0; j < q_moduli_.size(); ++j) {
    RnsPoly a_j = uniform_poly(top, /*with_special=*/true);
    const auto e = [this] {
      std::lock_guard<std::mutex> lock(prng_mutex_);
      return sample_gaussian(prng_, params_.degree, params_.noise_sigma);
    }();
    RnsPoly e_j = lift_signed(e, top, /*with_special=*/true);
    to_ntt(e_j);
    // b_j = -a_j s + e_j + (p mod q_j) * target  [only on channel j].
    RnsPoly b_j = pointwise(a_j, sk_ntt_);
    negate_inplace(b_j);
    add_inplace(b_j, e_j);
    const Modulus& mod_j = q_moduli_[j];
    const std::uint64_t p_j = p_mod_q_[j];
    auto bch = b_j.ch(j);
    const auto tch = target_ntt.ch(j);
    for (std::size_t i = 0; i < bch.size(); ++i) {
      bch[i] = mod_j.add(bch[i], mod_j.mul(p_j, tch[i]));
    }
    key.shoup[j] = {shoup_form(b_j), shoup_form(a_j)};
    key.digits[j] = {std::move(b_j), std::move(a_j)};
  }
  return key;
}

// ---------------------------------------------------------------------------
// Key switching, phased (DESIGN.md §14): digit decompose -> raised-basis
// inner product -> mod-down epilogue. The split exists so hoisted paths can
// share one decomposition across many inner products, and — double hoisting —
// accumulate many inner products in the raised basis and pay ONE mod-down
// for the whole sum instead of one per rotation.
// ---------------------------------------------------------------------------

RnsBackend::KswDigits RnsBackend::ksw_decompose(const RnsPoly& d,
                                                int level) const {
  PPHE_CHECK(!d.ntt, "ksw_decompose expects coefficient form");
  const std::size_t q_channels = static_cast<std::size_t>(level) + 1;
  PPHE_CHECK(d.channels() >= q_channels, "digit source too small");
  const std::size_t n = params_.degree;

  KswDigits out;
  out.q_channels = q_channels;
  out.channels = q_channels + 1;  // + special
  out.level = level;
  out.rows =
      PolyBuffer(pool_, q_channels * out.channels, n, /*zero_fill=*/false);

  // One digit per prime (the RNS gadget of Cheon et al. [9] / SEAL): digit j
  // is the residue of d mod q_j, lifted to every channel (q primes plus the
  // special prime p) and NTT'd. Digit rows over channels are the parallel
  // units.
  trace::Span span("ksw_decompose", "kernel");
  span.attr("digits", static_cast<double>(q_channels));
  const std::size_t channels = out.channels;
  Stopwatch sw;
  for (std::size_t j = 0; j < q_channels; ++j) {
    const auto digit = d.ch(j);
    ThreadPool::global().parallel_for(channels, [&](std::size_t c) {
      const bool is_special = c == channels - 1;
      const Modulus& mod = is_special ? special_ : q_moduli_[c];
      const NttTable& ntt = is_special ? *special_ntt_ : q_ntt_[c];
      auto lift = out.rows[j * channels + c];
      if (!is_special && c == j) {
        std::memcpy(lift.data(), digit.data(), n * sizeof(std::uint64_t));
      } else {
        for (std::size_t i = 0; i < n; ++i) lift[i] = mod.reduce(digit[i]);
      }
      ntt.forward(lift);
    });
  }
  ParallelSim::global().record_parallel(q_channels * channels, sw.seconds());
  return out;
}

ExtAccumulator RnsBackend::ext_zero(int level) const {
  ExtAccumulator acc;
  acc.c0 = zero_poly(level, /*with_special=*/true, /*ntt=*/true);
  acc.c1 = zero_poly(level, /*with_special=*/true, /*ntt=*/true);
  acc.level = level;
  return acc;
}

void RnsBackend::ksw_inner_prod(const KswDigits& digits, const KswKey& key,
                                const std::uint32_t* perm,
                                ExtAccumulator& acc) const {
  OpScope op(*this, OpKind::kKswInner);
  op.attr("digits", static_cast<double>(digits.q_channels));
  op.attr("level", static_cast<double>(digits.level));
  PPHE_CHECK(acc.level == digits.level, "ksw_inner_prod: level mismatch");
  const std::size_t channels = digits.channels;
  const std::size_t q_channels = digits.q_channels;
  const std::size_t n = params_.degree;
  const std::size_t key_special = q_moduli_.size();  // key channel index of p

  // Rotated inner products gather each digit through the automorphism
  // permutation ONCE into a scratch row, then run the same flat HAL
  // mul_acc_shoup kernels as the unrotated case — one gather pass plus two
  // SIMD passes per (digit, channel) instead of two scalar gather-multiply
  // passes. Element order is unchanged, so the result is bit-identical to
  // the scalar gather-multiply formulation.
  PolyBuffer scratch;
  if (perm != nullptr) {
    scratch = PolyBuffer(pool_, channels, n, /*zero_fill=*/false);
  }
  Stopwatch sw;
  ThreadPool::global().parallel_for(channels, [&](std::size_t c) {
    const bool is_special = c == channels - 1;
    const Modulus& mod = is_special ? special_ : q_moduli_[c];
    const std::size_t key_c = is_special ? key_special : c;
    auto a0 = acc.c0.ch(c);
    auto a1 = acc.c1.ch(c);
    for (std::size_t j = 0; j < q_channels; ++j) {
      auto dj = digits.rows[j * channels + c];
      const auto kb = key.digits[j][0].ch(key_c);
      const auto ka = key.digits[j][1].ch(key_c);
      const auto kbq = key.shoup[j][0][key_c];
      const auto kaq = key.shoup[j][1][key_c];
      if (perm != nullptr) {
        auto row = scratch[c];
        for (std::size_t i = 0; i < n; ++i) row[i] = dj[perm[i]];
        dj = row;
      }
      dyadic::mul_acc_shoup(dj, kb, kbq, a0, mod);
      dyadic::mul_acc_shoup(dj, ka, kaq, a1, mod);
    }
  });
  ParallelSim::global().record_parallel(channels, sw.seconds());
}

std::pair<RnsPoly, RnsPoly> RnsBackend::ksw_mod_down(
    ExtAccumulator acc) const {
  OpScope op(*this, OpKind::kModDown);
  op.attr("level", static_cast<double>(acc.level));
  const int level = acc.level;
  const std::size_t q_channels = static_cast<std::size_t>(level) + 1;
  const std::size_t channels = q_channels + 1;
  const std::size_t n = params_.degree;

  // Mod-down: out = round(acc / p) over the q channels.
  to_coeff(acc.c0);
  to_coeff(acc.c1);
  const std::uint64_t p = special_.value();
  const std::uint64_t half_p = p >> 1;
  std::pair<RnsPoly, RnsPoly> out{zero_poly(level, false, false),
                                  zero_poly(level, false, false)};
  for (int comp = 0; comp < 2; ++comp) {
    RnsPoly& a = comp == 0 ? acc.c0 : acc.c1;
    RnsPoly& dst = comp == 0 ? out.first : out.second;
    // r' = (acc + p/2) mod p, taken from the special channel.
    auto rp = a.ch(channels - 1);
    for (auto& v : rp) v = special_.add(v, half_p);
    parallel_channels(q_channels, [&](std::size_t c) {
      const Modulus& mod = q_moduli_[c];
      const std::uint64_t half_mod = mod.reduce(half_p);
      const std::uint64_t inv_p = inv_p_mod_q_[c];
      const auto src = a.ch(c);
      auto d_out = dst.ch(c);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t num =
            mod.sub(mod.add(src[i], half_mod), mod.reduce(rp[i]));
        d_out[i] = mod.mul(num, inv_p);
      }
    });
  }
  return out;
}

std::pair<RnsPoly, RnsPoly> RnsBackend::key_switch(const RnsPoly& d, int level,
                                                   const KswKey& key) const {
  trace::Span span("key_switch", "kernel");
  span.attr("level", level);
  span.attr("digits", level + 1);
  const KswDigits digits = ksw_decompose(d, level);
  ExtAccumulator acc = ext_zero(level);
  ksw_inner_prod(digits, key, /*perm=*/nullptr, acc);
  return ksw_mod_down(std::move(acc));
}

std::uint64_t RnsBackend::rotation_exponent(int step) const {
  const auto slots = static_cast<long long>(slot_count());
  long long s = step % slots;
  if (s < 0) s += slots;
  PPHE_CHECK(s != 0, "rotation step must be non-zero modulo slot count");
  const std::uint64_t two_n = 2 * params_.degree;
  std::uint64_t g = 1;
  for (long long i = 0; i < s; ++i) g = (g * 5) % two_n;
  return g;
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

Ciphertext RnsBackend::wrap(std::vector<RnsPoly> polys, double scale,
                            int level) const {
  auto impl = std::make_shared<RnsCtBody>();
  const std::size_t size = polys.size();
  impl->polys = std::move(polys);
  return Ciphertext(std::move(impl), scale, level, size);
}

Plaintext RnsBackend::encode(std::span<const double> values, double scale,
                             int level) const {
  OpScope op(*this, OpKind::kEncode);
  op.attr("level", level);
  PPHE_CHECK(level >= 0 && level <= max_level(), "level out of range");
  const auto coeffs = encoder_.encode(values, scale);
  // Plaintexts carry the special prime p as an extra trailing channel so the
  // fused BSGS path can multiply them against raised-basis accumulators
  // (DESIGN.md §14). Every q-only consumer truncates it away positionally;
  // serialization strips it before the wire.
  RnsPoly p = lift_signed(coeffs, level, /*with_special=*/true);
  to_ntt(p);
  auto impl = std::make_shared<RnsPtBody>();
  impl->poly = std::move(p);
  return Plaintext(std::move(impl), scale, level);
}

Ciphertext RnsBackend::encrypt(const Plaintext& pt) const {
  OpScope op(*this, OpKind::kEncrypt);
  op.attr("level", pt.level());
  const RnsPtBody& ptb = body(pt);
  const int level = pt.level();

  // Draw all three samples under one lock (concurrent serving workers
  // encrypt on different threads), then do the heavy lifting unlocked.
  std::vector<std::int64_t> u64v;
  std::vector<std::int64_t> e0v, e1v;
  {
    std::lock_guard<std::mutex> lock(prng_mutex_);
    const auto u = sample_ternary(prng_, params_.degree);
    u64v.assign(u.begin(), u.end());
    e0v = sample_gaussian(prng_, params_.degree, params_.noise_sigma);
    e1v = sample_gaussian(prng_, params_.degree, params_.noise_sigma);
  }
  RnsPoly u_poly = lift_signed(u64v, level, false);
  to_ntt(u_poly);
  RnsPoly e0 = lift_signed(e0v, level, false);
  to_ntt(e0);
  RnsPoly e1 = lift_signed(e1v, level, false);
  to_ntt(e1);

  RnsPoly c0 = pointwise_shoup(pk_b_, pk_b_shoup_, u_poly);
  add_inplace(c0, e0);
  add_inplace(c0, ptb.poly);
  RnsPoly c1 = pointwise_shoup(pk_a_, pk_a_shoup_, u_poly);
  add_inplace(c1, e1);

  std::vector<RnsPoly> polys;
  polys.push_back(std::move(c0));
  polys.push_back(std::move(c1));
  return wrap(std::move(polys), pt.scale(), level);
}

std::vector<double> RnsBackend::decrypt_coefficients(
    const Ciphertext& ct) const {
  const RnsCtBody& c = body(ct);
  const int level = ct.level();
  const std::size_t q_channels = static_cast<std::size_t>(level) + 1;

  RnsPoly m = c.polys[0];
  PPHE_CHECK(m.ntt, "ciphertexts are stored in NTT form");
  RnsPoly s_power = sk_ntt_;  // use channels 0..level
  for (std::size_t t = 1; t < c.polys.size(); ++t) {
    RnsPoly term = c.polys[t];
    pointwise_inplace(term, s_power);
    add_inplace(m, term);
    if (t + 1 < c.polys.size()) pointwise_inplace(s_power, sk_ntt_);
  }
  to_coeff(m);

  const RnsBase& base = *level_bases_[level];
  const BigUInt& q = base.product();
  const BigUInt half_q = q >> 1;
  std::vector<double> out(params_.degree);
  std::vector<std::uint64_t> residues(q_channels);
  for (std::size_t i = 0; i < params_.degree; ++i) {
    for (std::size_t ch = 0; ch < q_channels; ++ch) residues[ch] = m.ch(ch)[i];
    const BigUInt v = base.compose(residues);
    out[i] = v > half_q ? -(q - v).to_double() : v.to_double();
  }
  return out;
}

std::vector<double> RnsBackend::decrypt_decode(const Ciphertext& ct) const {
  OpScope op(*this, OpKind::kDecrypt, ct);
  const auto coeffs = decrypt_coefficients(ct);
  return encoder_.decode_real(coeffs, ct.scale());
}

Ciphertext RnsBackend::add(const Ciphertext& a, const Ciphertext& b) const {
  OpScope op(*this, OpKind::kAdd, a);
  const Ciphertext* pa = &a;
  const Ciphertext* pb = &b;
  Ciphertext dropped;
  if (a.level() != b.level()) {
    // Align automatically: drop the one with more remaining primes.
    if (a.level() > b.level()) {
      dropped = mod_drop_to(a, b.level());
      pa = &dropped;
    } else {
      dropped = mod_drop_to(b, a.level());
      pb = &dropped;
    }
  }
  check_same_scale("add", pa->scale(), pb->scale());
  const RnsCtBody& ba = body(*pa);
  const RnsCtBody& bb = body(*pb);
  const std::size_t size = std::max(ba.polys.size(), bb.polys.size());
  std::vector<RnsPoly> polys;
  polys.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (i < ba.polys.size() && i < bb.polys.size()) {
      RnsPoly p = ba.polys[i];
      add_inplace(p, bb.polys[i]);
      polys.push_back(std::move(p));
    } else if (i < ba.polys.size()) {
      polys.push_back(ba.polys[i]);
    } else {
      polys.push_back(bb.polys[i]);
    }
  }
  return wrap(std::move(polys), pa->scale(), pa->level());
}

Ciphertext RnsBackend::sub(const Ciphertext& a, const Ciphertext& b) const {
  OpScope op(*this, OpKind::kSub, a);
  return add(a, negate(b));
}

Ciphertext RnsBackend::negate(const Ciphertext& a) const {
  OpScope op(*this, OpKind::kNegate, a);
  const RnsCtBody& ba = body(a);
  std::vector<RnsPoly> polys = ba.polys;
  for (auto& p : polys) negate_inplace(p);
  return wrap(std::move(polys), a.scale(), a.level());
}

Ciphertext RnsBackend::add_plain(const Ciphertext& a,
                                 const Plaintext& b) const {
  OpScope op(*this, OpKind::kAddPlain, a);
  PPHE_CHECK_CODE(b.level() >= a.level(), ErrorCode::kLevelMismatch,
                  "add_plain: plaintext encoded at level " +
                      std::to_string(b.level()) +
                      " but the ciphertext is at level " +
                      std::to_string(a.level()) + "; re-encode at the ct level");
  check_same_scale("add_plain", a.scale(), b.scale());
  const RnsCtBody& ba = body(a);
  std::vector<RnsPoly> polys = ba.polys;
  add_inplace(polys[0], body(b).poly);
  return wrap(std::move(polys), a.scale(), a.level());
}

Ciphertext RnsBackend::multiply(const Ciphertext& a,
                                const Ciphertext& b) const {
  OpScope op(*this, OpKind::kMultiply, a);
  check_mult_capacity("multiply", a, b);
  const Ciphertext* pa = &a;
  const Ciphertext* pb = &b;
  Ciphertext dropped;
  if (a.level() != b.level()) {
    if (a.level() > b.level()) {
      dropped = mod_drop_to(a, b.level());
      pa = &dropped;
    } else {
      dropped = mod_drop_to(b, a.level());
      pb = &dropped;
    }
  }
  const RnsCtBody& ba = body(*pa);
  const RnsCtBody& bb = body(*pb);
  PPHE_CHECK(ba.polys.size() == 2 && bb.polys.size() == 2,
             "multiply expects size-2 ciphertexts (relinearize first)");

  RnsPoly d0 = pointwise(ba.polys[0], bb.polys[0]);
  RnsPoly d1 = pointwise(ba.polys[0], bb.polys[1]);
  RnsPoly cross = pointwise(ba.polys[1], bb.polys[0]);
  add_inplace(d1, cross);
  RnsPoly d2 = pointwise(ba.polys[1], bb.polys[1]);

  std::vector<RnsPoly> polys;
  polys.push_back(std::move(d0));
  polys.push_back(std::move(d1));
  polys.push_back(std::move(d2));
  return wrap(std::move(polys), pa->scale() * pb->scale(), pa->level());
}

Ciphertext RnsBackend::multiply_plain(const Ciphertext& a,
                                      const Plaintext& b) const {
  OpScope op(*this, OpKind::kMultiplyPlain, a);
  PPHE_CHECK(b.level() >= a.level(),
             "multiply_plain: plaintext encoded at level " +
                 std::to_string(b.level()) + " but the ciphertext is at level " +
                 std::to_string(a.level()) + "; re-encode at the ct level");
  const RnsCtBody& ba = body(a);
  const RnsPtBody& bp = body(b);
  const PolyBuffer& wq = pt_shoup(bp);
  std::vector<RnsPoly> polys;
  polys.reserve(ba.polys.size());
  for (const auto& p : ba.polys) {
    polys.push_back(pointwise_shoup(bp.poly, wq, p));
  }
  return wrap(std::move(polys), a.scale() * b.scale(), a.level());
}

Ciphertext RnsBackend::relinearize(const Ciphertext& a) const {
  OpScope op(*this, OpKind::kRelinearize, a);
  const RnsCtBody& ba = body(a);
  if (ba.polys.size() == 2) return a;
  PPHE_CHECK(ba.polys.size() == 3, "can only relinearize size-3 ciphertexts");

  RnsPoly d2 = ba.polys[2];
  to_coeff(d2);
  auto [k0, k1] = key_switch(d2, a.level(), relin_key_);
  to_ntt(k0);
  to_ntt(k1);
  add_inplace(k0, ba.polys[0]);
  add_inplace(k1, ba.polys[1]);
  std::vector<RnsPoly> polys;
  polys.push_back(std::move(k0));
  polys.push_back(std::move(k1));
  return wrap(std::move(polys), a.scale(), a.level());
}

Ciphertext RnsBackend::rescale(const Ciphertext& a) const {
  OpScope op(*this, OpKind::kRescale, a);
  PPHE_CHECK(a.level() > 0, "no prime left to rescale by");
  const RnsCtBody& ba = body(a);
  const auto l = static_cast<std::size_t>(a.level());
  const Modulus& q_last = q_moduli_[l];
  const std::uint64_t half = q_last.value() >> 1;

  std::vector<RnsPoly> polys;
  polys.reserve(ba.polys.size());
  for (const auto& src_poly : ba.polys) {
    RnsPoly p = src_poly;
    to_coeff(p);
    // r' = (c + q_l/2) mod q_l from the dropped channel.
    auto rl = p.ch(l);
    for (auto& v : rl) v = q_last.add(v, half);
    RnsPoly out = zero_poly(a.level() - 1, false, false);
    parallel_channels(l, [&](std::size_t c) {
      const Modulus& mod = q_moduli_[c];
      const std::uint64_t half_mod = mod.reduce(half);
      const std::uint64_t inv = inv_q_mod_q_[l][c];
      const auto src = p.ch(c);
      auto dst = out.ch(c);
      for (std::size_t i = 0; i < dst.size(); ++i) {
        const std::uint64_t num =
            mod.sub(mod.add(src[i], half_mod), mod.reduce(rl[i]));
        dst[i] = mod.mul(num, inv);
      }
    });
    to_ntt(out);
    polys.push_back(std::move(out));
  }
  const double new_scale = a.scale() / static_cast<double>(q_last.value());
  return wrap(std::move(polys), new_scale, a.level() - 1);
}

Ciphertext RnsBackend::mod_drop_to(const Ciphertext& a, int level) const {
  OpScope op(*this, OpKind::kModDrop, a);
  op.attr("target_level", level);
  PPHE_CHECK(level >= 0 && level <= a.level(), "invalid mod-drop target");
  if (level == a.level()) return a;
  const RnsCtBody& ba = body(a);
  std::vector<RnsPoly> polys = ba.polys;
  // shrink_channels re-slabs: the dropped tail returns to the pool instead
  // of lingering as dead capacity on the truncated polynomial.
  for (auto& p : polys) {
    p.buf.shrink_channels(static_cast<std::size_t>(level) + 1);
  }
  return wrap(std::move(polys), a.scale(), level);
}

Ciphertext RnsBackend::apply_automorphism_ct(const Ciphertext& a,
                                             std::uint64_t exponent,
                                             const KswKey& key,
                                             OpKind op_kind) const {
  OpScope op(*this, op_kind, a);
  const RnsCtBody& ba = body(a);
  PPHE_CHECK(ba.polys.size() == 2,
             "rotate/conjugate expects size-2 ciphertexts (relinearize first)");
  RnsPoly c0 = ba.polys[0];
  RnsPoly c1 = ba.polys[1];
  to_coeff(c0);
  to_coeff(c1);
  RnsPoly c0g = automorphism(c0, exponent);
  RnsPoly c1g = automorphism(c1, exponent);
  auto [k0, k1] = key_switch(c1g, a.level(), key);
  add_inplace(k0, c0g);
  to_ntt(k0);
  to_ntt(k1);
  std::vector<RnsPoly> polys;
  polys.push_back(std::move(k0));
  polys.push_back(std::move(k1));
  return wrap(std::move(polys), a.scale(), a.level());
}

const std::vector<std::uint32_t>& RnsBackend::ntt_permutation(
    std::uint64_t exponent) const {
  // Guarded: concurrent serving workers rotate on different threads. Map
  // nodes are stable, so the returned reference outlives the lock.
  std::lock_guard<std::mutex> lock(ntt_perm_mutex_);
  auto it = ntt_perms_.find(exponent);
  if (it != ntt_perms_.end()) return it->second;

  const std::size_t n = params_.degree;
  const std::size_t two_n = 2 * n;
  int bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  auto brv = [bits](std::size_t x) {
    std::size_t r = 0;
    for (int b = 0; b < bits; ++b) {
      r = (r << 1) | (x & 1);
      x >>= 1;
    }
    return r;
  };
  // Forward-NTT output index j holds the evaluation at psi^(2*brv(j)+1);
  // sigma(x)(psi^e) = x(psi^(e*g)), so output j reads input index j' with
  // 2*brv(j')+1 = (2*brv(j)+1)*g (mod 2n).
  std::vector<std::uint32_t> perm(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t e = (2 * brv(j) + 1) * exponent % two_n;
    perm[j] = static_cast<std::uint32_t>(brv((e - 1) / 2));
  }
  return ntt_perms_.emplace(exponent, std::move(perm)).first->second;
}

std::vector<Ciphertext> RnsBackend::rotate_batch(
    const Ciphertext& a, std::span<const int> steps) const {
  // Normalize first: steps that are 0 modulo the slot count alias the input
  // and repeated steps alias the first materialized result, so only the
  // unique non-zero steps decide whether hoisting pays.
  const long long slots = static_cast<long long>(slot_count());
  std::vector<long long> norm(steps.size());
  std::size_t unique_nonzero = 0;
  {
    std::map<long long, std::size_t> seen;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      norm[i] = ((steps[i] % slots) + slots) % slots;
      if (norm[i] != 0 && seen.emplace(norm[i], i).second) ++unique_nonzero;
    }
  }
  if (unique_nonzero <= 1) {
    // At most one real rotation: the (aliasing) default loop is already
    // optimal, and hoisting would only add the decompose overhead.
    return HeBackend::rotate_batch(a, steps);
  }
  trace::Span batch_span("rotate_batch", "kernel");
  batch_span.attr("steps", static_cast<double>(steps.size()));
  batch_span.attr("unique_steps", static_cast<double>(unique_nonzero));
  batch_span.attr("level", a.level());
  const RnsCtBody& ba = body(a);
  PPHE_CHECK(ba.polys.size() == 2, "rotate expects size-2 ciphertexts");
  PPHE_CHECK(ba.polys[0].ntt && ba.polys[1].ntt,
             "ciphertexts are stored in NTT form");
  const auto level = a.level();
  const std::size_t q_channels = static_cast<std::size_t>(level) + 1;
  const std::size_t n = params_.degree;

  // Hoist: decompose c1 once; each step then only permutes the digit table
  // inside its inner product.
  RnsPoly c1 = ba.polys[1];
  to_coeff(c1);
  const KswDigits digits = ksw_decompose(c1, level);

  std::vector<Ciphertext> out;
  out.reserve(steps.size());
  std::map<long long, std::size_t> done;  // normalized step -> out index
  for (std::size_t s = 0; s < steps.size(); ++s) {
    if (norm[s] == 0) {
      out.push_back(a);
      continue;
    }
    if (const auto it = done.find(norm[s]); it != done.end()) {
      out.push_back(out[it->second]);
      continue;
    }
    const int step = steps[s];
    OpScope op(*this, OpKind::kRotateHoisted, a);
    op.attr("step", step);
    const std::uint64_t exponent = rotation_exponent(step);
    const KswKey* key_ptr = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(galois_mutex_);
      auto key_it = galois_keys_.find(exponent);
      if (key_it != galois_keys_.end()) key_ptr = &key_it->second;
    }
    PPHE_CHECK(key_ptr != nullptr,
               "missing Galois key for step " + std::to_string(step));
    const auto& perm = ntt_permutation(exponent);

    ExtAccumulator acc = ext_zero(level);
    ksw_inner_prod(digits, *key_ptr, perm.data(), acc);
    auto [out0, out1] = ksw_mod_down(std::move(acc));
    to_ntt(out0);
    to_ntt(out1);
    // Add sigma(c0), applied directly in the NTT domain via the permutation.
    parallel_channels(q_channels, [&](std::size_t c) {
      const Modulus& mod = q_moduli_[c];
      const auto src = ba.polys[0].ch(c);
      auto dst = out0.ch(c);
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = mod.add(dst[i], src[perm[i]]);
      }
    });
    std::vector<RnsPoly> polys;
    polys.push_back(std::move(out0));
    polys.push_back(std::move(out1));
    done.emplace(norm[s], out.size());
    out.push_back(wrap(std::move(polys), a.scale(), level));
  }
  return out;
}

Ciphertext RnsBackend::rotate_sum(std::span<const Ciphertext> cts,
                                  std::span<const int> steps) const {
  PPHE_CHECK(cts.size() == steps.size(), "rotate_sum: cts/steps size mismatch");
  if (cts.empty()) return {};
  trace::Span span("rotate_sum", "kernel");
  span.attr("terms", static_cast<double>(cts.size()));
  const long long slots = static_cast<long long>(slot_count());
  const int level = cts[0].level();
  const double scale = cts[0].scale();
  const std::size_t q_channels = static_cast<std::size_t>(level) + 1;
  const std::size_t n = params_.degree;

  // Running q-basis sum (NTT form) of the sigma(c0) halves and the unrotated
  // inputs; every key-switch inner product lands in ONE raised-basis
  // accumulator, so the whole sum pays a single mod-down epilogue instead of
  // one per rotation (double hoisting).
  RnsPoly sum0 = zero_poly(level, /*with_special=*/false, /*ntt=*/true);
  RnsPoly sum1 = zero_poly(level, /*with_special=*/false, /*ntt=*/true);
  ExtAccumulator ext = ext_zero(level);
  bool used_ext = false;
  for (std::size_t t = 0; t < cts.size(); ++t) {
    check_same_level("rotate_sum", cts[0], cts[t]);
    check_same_scale("rotate_sum", scale, cts[t].scale());
    const RnsCtBody& bc = body(cts[t]);
    PPHE_CHECK(bc.polys.size() == 2,
               "rotate_sum expects size-2 ciphertexts (relinearize first)");
    const long long r = ((steps[t] % slots) + slots) % slots;
    if (r == 0) {
      add_inplace(sum0, bc.polys[0]);
      add_inplace(sum1, bc.polys[1]);
      continue;
    }
    const std::uint64_t exponent = rotation_exponent(steps[t]);
    const KswKey* key_ptr = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(galois_mutex_);
      auto key_it = galois_keys_.find(exponent);
      if (key_it != galois_keys_.end()) key_ptr = &key_it->second;
    }
    PPHE_CHECK(key_ptr != nullptr,
               "missing Galois key for step " + std::to_string(steps[t]));
    const auto& perm = ntt_permutation(exponent);

    RnsPoly c1 = bc.polys[1];
    to_coeff(c1);
    const KswDigits digits = ksw_decompose(c1, level);
    ksw_inner_prod(digits, *key_ptr, perm.data(), ext);
    used_ext = true;
    // sigma(c0) added in the NTT domain via the permutation.
    parallel_channels(q_channels, [&](std::size_t c) {
      const Modulus& mod = q_moduli_[c];
      const auto src = bc.polys[0].ch(c);
      auto dst = sum0.ch(c);
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = mod.add(dst[i], src[perm[i]]);
      }
    });
  }
  if (used_ext) {
    auto [g0, g1] = ksw_mod_down(std::move(ext));
    to_ntt(g0);
    to_ntt(g1);
    add_inplace(sum0, g0);
    add_inplace(sum1, g1);
  }
  std::vector<RnsPoly> polys;
  polys.push_back(std::move(sum0));
  polys.push_back(std::move(sum1));
  return wrap(std::move(polys), scale, level);
}

Ciphertext RnsBackend::linear_bsgs(const Ciphertext& x,
                                   std::span<const BsgsGroupSpec> groups) const {
  if (groups.empty()) return {};
  const RnsCtBody& bx = body(x);
  PPHE_CHECK(bx.polys.size() == 2,
             "linear_bsgs expects a size-2 input (relinearize first)");
  PPHE_CHECK(bx.polys[0].ntt && bx.polys[1].ntt,
             "ciphertexts are stored in NTT form");
  const int level = x.level();
  const std::size_t q_channels = static_cast<std::size_t>(level) + 1;
  const std::size_t channels = q_channels + 1;  // + special
  const std::size_t n = params_.degree;
  const long long slots = static_cast<long long>(slot_count());
  const auto normalize = [slots](int step) {
    return ((step % slots) + slots) % slots;
  };

  // Eligibility scan: the fused path multiplies weights against raised-basis
  // accumulators, so every weight must carry the special channel, sit at (or
  // above) the input level, and share one scale. Anything else returns an
  // invalid handle and the caller falls back to the generic loop.
  double w_scale = 0.0;
  for (const BsgsGroupSpec& grp : groups) {
    for (const BsgsTerm& term : grp.terms) {
      if (term.weight == nullptr || !term.weight->valid()) return {};
      if (term.weight->level() < level) return {};
      if (w_scale == 0.0) {
        w_scale = term.weight->scale();
      } else if (relative_diff(w_scale, term.weight->scale()) > 1e-9) {
        return {};
      }
      const RnsPtBody& w = body(*term.weight);
      if (!w.poly.has_special || !w.poly.ntt) return {};
      if (w.poly.channels() < channels) return {};
    }
  }
  if (w_scale == 0.0) return {};

  trace::Span span("linear_bsgs", "kernel");
  span.attr("groups", static_cast<double>(groups.size()));
  span.attr("level", level);

  // Weight channel row for accumulator channel c: q rows align positionally,
  // the special row is always LAST in the weight poly (whose level may
  // exceed the ciphertext's).
  const auto w_row = [&](const RnsPtBody& w, std::size_t c) {
    return c == q_channels ? w.poly.channels() - 1 : c;
  };

  // Layer-wide accumulators: every giant group's rotated key-switch parts
  // land in ONE raised-basis accumulator (one final mod-down), the q-basis
  // parts in (out0, out1), NTT form. Per-group accumulators sit alongside:
  // the giant-0 group writes straight into the layer accumulator (no
  // rotation, no group mod-down of its own).
  ExtAccumulator layer_ext = ext_zero(level);
  RnsPoly out0 = zero_poly(level, /*with_special=*/false, /*ntt=*/true);
  RnsPoly out1 = zero_poly(level, /*with_special=*/false, /*ntt=*/true);

  const std::size_t n_groups = groups.size();
  std::vector<long long> g_giant(n_groups, 0);
  std::vector<ExtAccumulator> g_ext(n_groups);
  std::vector<RnsPoly> g_s0(n_groups), g_s1(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (groups[g].terms.empty()) continue;
    g_giant[g] = normalize(groups[g].giant_step);
    if (g_giant[g] != 0) g_ext[g] = ext_zero(level);
    g_s0[g] = zero_poly(level, /*with_special=*/false, /*ntt=*/true);
  }
  const auto ext_of = [&](std::size_t g) -> ExtAccumulator& {
    return g_giant[g] == 0 ? layer_ext : g_ext[g];
  };

  // Phase 1 (scan): zero-baby terms keep both halves in the q basis (no key
  // switch, flat kernels); rotated terms are indexed by baby step so each
  // baby's raised-basis inner product can be consumed by every group that
  // uses it while still cache-hot.
  std::map<long long, std::vector<std::pair<std::size_t, const BsgsTerm*>>>
      by_baby;
  for (std::size_t g = 0; g < n_groups; ++g) {
    for (const BsgsTerm& term : groups[g].terms) {
      const long long b = normalize(term.baby_step);
      if (b != 0) {
        by_baby[b].emplace_back(g, &term);
        continue;
      }
      const RnsPtBody& w = body(*term.weight);
      const PolyBuffer& wq = pt_shoup(w);
      if (g_s1[g].buf.empty()) {
        g_s1[g] = zero_poly(level, /*with_special=*/false, /*ntt=*/true);
      }
      RnsPoly& s1 = g_s1[g];
      RnsPoly& s0 = g_s0[g];
      parallel_channels(q_channels, [&](std::size_t c) {
        const Modulus& mod = q_moduli_[c];
        const auto wc = w.poly.ch(c);
        dyadic::mul_acc_shoup(bx.polys[0].ch(c), wc, wq[c], s0.ch(c), mod);
        dyadic::mul_acc_shoup(bx.polys[1].ch(c), wc, wq[c], s1.ch(c), mod);
      });
    }
  }

  // Phase 2 (hoist + accumulate): decompose c1 once; per unique baby, ONE
  // raised-basis inner product (no mod-down) and ONE sigma_b(c0) gather,
  // weight-scaled immediately into every group that uses the baby — all
  // flat HAL kernels (this is where the AVX2/AVX-512 dyadic paths apply),
  // and the ~0.6MB accumulator is freed before the next baby instead of a
  // whole layer's worth of them competing for cache.
  KswDigits digits;
  bool have_digits = false;
  for (const auto& entry : by_baby) {
    const auto& uses = entry.second;
    if (!have_digits) {
      RnsPoly c1 = bx.polys[1];
      to_coeff(c1);
      digits = ksw_decompose(c1, level);
      have_digits = true;
    }
    const int step = uses.front().second->baby_step;
    const std::uint64_t exponent = rotation_exponent(step);
    const KswKey* key_ptr = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(galois_mutex_);
      auto key_it = galois_keys_.find(exponent);
      if (key_it != galois_keys_.end()) key_ptr = &key_it->second;
    }
    PPHE_CHECK(key_ptr != nullptr,
               "missing Galois key for step " + std::to_string(step));
    const auto& perm = ntt_permutation(exponent);
    ExtAccumulator ip = ext_zero(level);
    ksw_inner_prod(digits, *key_ptr, perm.data(), ip);
    RnsPoly rc0 = zero_poly(level, /*with_special=*/false, /*ntt=*/true);
    parallel_channels(q_channels, [&](std::size_t c) {
      const auto src = bx.polys[0].ch(c);
      auto dst = rc0.ch(c);
      for (std::size_t i = 0; i < n; ++i) dst[i] = src[perm[i]];
    });
    for (const auto& use : uses) {
      const std::size_t g = use.first;
      const RnsPtBody& w = body(*use.second->weight);
      const PolyBuffer& wq = pt_shoup(w);
      ExtAccumulator& ext = ext_of(g);
      RnsPoly& s0 = g_s0[g];
      parallel_channels(channels, [&](std::size_t c) {
        const bool is_special = c == channels - 1;
        const Modulus& mod = is_special ? special_ : q_moduli_[c];
        const std::size_t wr = w_row(w, c);
        const auto wc = w.poly.ch(wr);
        dyadic::mul_acc_shoup(ip.c0.ch(c), wc, wq[wr], ext.c0.ch(c), mod);
        dyadic::mul_acc_shoup(ip.c1.ch(c), wc, wq[wr], ext.c1.ch(c), mod);
        if (!is_special) {
          dyadic::mul_acc_shoup(rc0.ch(c), wc, wq[c], s0.ch(c), mod);
        }
      });
    }
  }

  // Phase 3 (epilogues): a group with a giant rotation pays ONE mod-down
  // (this is the fusion: the unfused path pays one per baby rotation),
  // re-decomposes its comp1, and feeds the giant inner product into the
  // layer accumulator.
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (groups[g].terms.empty()) continue;
    const long long giant = g_giant[g];
    trace::Span group_span("bsgs_fused_group", "kernel");
    group_span.attr("giant_step", static_cast<double>(groups[g].giant_step));
    group_span.attr("terms", static_cast<double>(groups[g].terms.size()));
    RnsPoly s0 = std::move(g_s0[g]);
    RnsPoly s1 = std::move(g_s1[g]);
    const bool s1_used = !s1.buf.empty();

    if (giant == 0) {
      add_inplace(out0, s0);
      if (s1_used) add_inplace(out1, s1);
      continue;
    }

    auto [md0, md1] = ksw_mod_down(std::move(g_ext[g]));
    const std::uint64_t exponent = rotation_exponent(groups[g].giant_step);
    const KswKey* key_ptr = nullptr;
    {
      std::shared_lock<std::shared_mutex> lock(galois_mutex_);
      auto key_it = galois_keys_.find(exponent);
      if (key_it != galois_keys_.end()) key_ptr = &key_it->second;
    }
    PPHE_CHECK(key_ptr != nullptr,
               "missing Galois key for step " +
                   std::to_string(groups[g].giant_step));
    const auto& gperm = ntt_permutation(exponent);
    // comp1 of the group result (coefficient form) feeds the giant-rotation
    // inner product; its mod-down is deferred to the layer epilogue.
    if (s1_used) {
      to_coeff(s1);
      add_inplace(md1, s1);
    }
    const KswDigits gd = ksw_decompose(md1, level);
    ksw_inner_prod(gd, *key_ptr, gperm.data(), layer_ext);
    // comp0: NTT back, add the q-basis baby sum, then sigma_giant via the
    // permutation straight into the layer output.
    to_ntt(md0);
    add_inplace(md0, s0);
    parallel_channels(q_channels, [&](std::size_t c) {
      const Modulus& mod = q_moduli_[c];
      const auto src = md0.ch(c);
      auto dst = out0.ch(c);
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = mod.add(dst[i], src[gperm[i]]);
      }
    });
  }

  // Layer epilogue: the single mod-down every giant group (and the baby
  // inner products of the giant-0 group) deferred to.
  auto [g0, g1] = ksw_mod_down(std::move(layer_ext));
  to_ntt(g0);
  to_ntt(g1);
  add_inplace(g0, out0);
  add_inplace(g1, out1);
  std::vector<RnsPoly> polys;
  polys.push_back(std::move(g0));
  polys.push_back(std::move(g1));
  return wrap(std::move(polys), x.scale() * w_scale, level);
}

void RnsBackend::multiply_acc(Ciphertext& acc, const Ciphertext& a,
                              const Ciphertext& b) const {
  if (!acc.valid() || acc.impl().use_count() != 1 ||
      acc.level() != a.level() || a.level() != b.level() ||
      relative_diff(acc.scale(), a.scale() * b.scale()) > 1e-9) {
    HeBackend::multiply_acc(acc, a, b);
    return;
  }
  OpScope op(*this, OpKind::kMultiplyAcc, a);
  const RnsCtBody& ba = body(a);
  const RnsCtBody& bb = body(b);
  PPHE_CHECK(ba.polys.size() == 2 && bb.polys.size() == 2,
             "multiply_acc expects size-2 operands");
  auto& bacc = *static_cast<RnsCtBody*>(
      const_cast<void*>(static_cast<const void*>(acc.impl().get())));
  PPHE_CHECK(bacc.polys.size() == 3, "accumulator must be a size-3 product");
  const std::size_t k = bacc.polys[0].channels();
  Stopwatch sw;
  ThreadPool::global().parallel_for(k, [&](std::size_t c) {
    const Modulus& mod = q_moduli_[c];
    const auto a0 = ba.polys[0].ch(c);
    const auto a1 = ba.polys[1].ch(c);
    const auto b0 = bb.polys[0].ch(c);
    const auto b1 = bb.polys[1].ch(c);
    auto d0 = bacc.polys[0].ch(c);
    auto d1 = bacc.polys[1].ch(c);
    auto d2 = bacc.polys[2].ch(c);
    // One Barrett pass per output word: product(s) + accumulator stay under
    // 2p^2 + p < 2^125, within reduce128's input range.
    for (std::size_t i = 0; i < d0.size(); ++i) {
      d0[i] = mod.reduce128(
          static_cast<unsigned __int128>(a0[i]) * b0[i] + d0[i]);
      d1[i] = mod.reduce128(static_cast<unsigned __int128>(a0[i]) * b1[i] +
                            static_cast<unsigned __int128>(a1[i]) * b0[i] +
                            d1[i]);
      d2[i] = mod.reduce128(
          static_cast<unsigned __int128>(a1[i]) * b1[i] + d2[i]);
    }
  });
  ParallelSim::global().record_parallel(k, sw.seconds());
}

void RnsBackend::multiply_plain_acc(Ciphertext& acc, const Ciphertext& a,
                                    const Plaintext& b) const {
  if (!acc.valid() || acc.impl().use_count() != 1 ||
      acc.level() != a.level() || acc.size() != a.size() ||
      relative_diff(acc.scale(), a.scale() * b.scale()) > 1e-9) {
    HeBackend::multiply_plain_acc(acc, a, b);
    return;
  }
  OpScope op(*this, OpKind::kMultiplyPlainAcc, a);
  const RnsCtBody& ba = body(a);
  const RnsPtBody& bp = body(b);
  const RnsPoly& pt = bp.poly;
  const PolyBuffer& wq = pt_shoup(bp);
  auto& bacc = *static_cast<RnsCtBody*>(
      const_cast<void*>(static_cast<const void*>(acc.impl().get())));
  const std::size_t k = bacc.polys[0].channels();
  Stopwatch sw;
  ThreadPool::global().parallel_for(k, [&](std::size_t c) {
    const Modulus& mod = q_moduli_[c];
    const auto w = pt.ch(c);
    for (std::size_t t = 0; t < bacc.polys.size(); ++t) {
      dyadic::mul_acc_shoup(ba.polys[t].ch(c), w, wq[c], bacc.polys[t].ch(c),
                            mod);
    }
  });
  ParallelSim::global().record_parallel(k, sw.seconds());
}

Ciphertext RnsBackend::rotate(const Ciphertext& a, int step) const {
  const std::uint64_t exponent = rotation_exponent(step);
  const KswKey* key = nullptr;
  {
    // Shared lock for the lookup only: keys are never erased, so the node
    // reference stays valid while concurrent ensure_galois_keys() inserts.
    std::shared_lock<std::shared_mutex> lock(galois_mutex_);
    auto it = galois_keys_.find(exponent);
    if (it != galois_keys_.end()) key = &it->second;
  }
  PPHE_CHECK(key != nullptr,
             "missing Galois key for step " + std::to_string(step) +
                 "; call ensure_galois_keys first");
  return apply_automorphism_ct(a, exponent, *key, OpKind::kRotate);
}

Ciphertext RnsBackend::conjugate(const Ciphertext& a) const {
  const std::uint64_t exponent = 2 * params_.degree - 1;
  const KswKey* key = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(galois_mutex_);
    auto it = galois_keys_.find(exponent);
    if (it != galois_keys_.end()) key = &it->second;
  }
  PPHE_CHECK(key != nullptr,
             "missing conjugation key; call ensure_galois_keys({0})");
  return apply_automorphism_ct(a, exponent, *key, OpKind::kConjugate);
}

void RnsBackend::validate_ciphertext(const Ciphertext& ct) const {
  HeBackend::validate_ciphertext(ct);  // handle metadata
  const auto& body = *static_cast<const RnsCtBody*>(ct.impl().get());
  PPHE_CHECK_CODE(body.polys.size() == ct.size(), ErrorCode::kIntegrity,
                  "ciphertext body/handle component counts disagree");
  const auto channels = static_cast<std::size_t>(ct.level()) + 1;
  std::uint64_t digest = 0;
  for (const RnsPoly& poly : body.polys) {
    PPHE_CHECK_CODE(poly.channels() == channels, ErrorCode::kIntegrity,
                    "ciphertext limb count does not match its level (" +
                        std::to_string(poly.channels()) + " channels, level " +
                        std::to_string(ct.level()) + ")");
    PPHE_CHECK_CODE(poly.buf.degree() == params_.degree,
                    ErrorCode::kIntegrity,
                    "ciphertext polynomial degree mismatch");
    PPHE_CHECK_CODE(poly.ntt && !poly.has_special, ErrorCode::kIntegrity,
                    "ciphertext polynomials must be in NTT form without the "
                    "key-switching channel");
    for (std::size_t c = 0; c < channels; ++c) {
      const std::uint64_t q = q_moduli_[c].value();
      for (const std::uint64_t v : poly.ch(c)) {
        PPHE_CHECK_CODE(v < q, ErrorCode::kIntegrity,
                        "ciphertext residue out of range for its modulus");
      }
    }
    if (body.wire_digest != 0) {
      digest = wire_digest_combine(
          digest, wire_checksum(poly.buf.data(),
                                channels * params_.degree * 8));
    }
  }
  // Deserialized ciphertexts carry the verified wire digest; recomputing it
  // here catches in-memory corruption that stayed below every modulus (a
  // low-bit flip) and would otherwise decrypt to silently wrong slots.
  PPHE_CHECK_CODE(body.wire_digest == 0 || digest == body.wire_digest,
                  ErrorCode::kIntegrity,
                  "ciphertext integrity digest mismatch (limb data changed "
                  "since deserialization)");
}

Ciphertext RnsBackend::clone_mutate_limbs(
    const Ciphertext& ct,
    const std::function<void(std::span<std::uint64_t>)>& mutate) const {
  PPHE_CHECK(ct.valid(), "invalid ciphertext");
  const auto& body = *static_cast<const RnsCtBody*>(ct.impl().get());
  auto impl = std::make_shared<RnsCtBody>();
  impl->polys.reserve(body.polys.size());
  for (const RnsPoly& poly : body.polys) impl->polys.push_back(poly);  // deep
  impl->wire_digest = body.wire_digest;
  if (!impl->polys.empty()) {
    PolyBuffer& slab = impl->polys[0].buf;
    mutate(std::span<std::uint64_t>(slab.data(),
                                    slab.channels() * slab.degree()));
  }
  return Ciphertext(std::move(impl), ct.scale(), ct.level(), ct.size());
}

void RnsBackend::ensure_galois_keys(std::span<const int> steps) {
  OpScope op(*this, OpKind::kGaloisKeys);
  op.attr("steps", static_cast<double>(steps.size()));
  // Exclusive lock across the whole pass: concurrent serving sessions may
  // ensure the same steps; the second caller must observe complete keys.
  std::unique_lock<std::shared_mutex> lock(galois_mutex_);
  for (const int step : steps) {
    // Step 0 requests the conjugation key by convention.
    const std::uint64_t exponent =
        step == 0 ? 2 * params_.degree - 1 : rotation_exponent(step);
    if (galois_keys_.count(exponent) != 0) continue;
    RnsPoly s_g = automorphism(sk_coeff_, exponent);
    to_ntt(s_g);
    galois_keys_.emplace(exponent, make_ksw_key(s_g));
  }
}

}  // namespace pphe
