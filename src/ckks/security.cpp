#include "ckks/security.hpp"

#include <sstream>

#include "ckks/params.hpp"

namespace pphe {
namespace {

struct Row {
  std::size_t degree;
  int max_128;
  int max_192;
  int max_256;
};

// Table 1 of the HE security standard (classical security, ternary secret).
constexpr Row kStandardTable[] = {
    {1024, 27, 19, 14},    {2048, 54, 37, 29},    {4096, 109, 75, 58},
    {8192, 218, 152, 118}, {16384, 438, 305, 237}, {32768, 881, 611, 476},
};

}  // namespace

int he_standard_max_log_q(std::size_t degree, int lambda) {
  for (const auto& row : kStandardTable) {
    if (row.degree == degree) {
      switch (lambda) {
        case 128: return row.max_128;
        case 192: return row.max_192;
        case 256: return row.max_256;
        default: return 0;
      }
    }
  }
  return 0;
}

int estimate_security_level(std::size_t degree, int log_q_total) {
  for (const int lambda : {256, 192, 128}) {
    const int bound = he_standard_max_log_q(degree, lambda);
    if (bound != 0 && log_q_total <= bound) return lambda;
  }
  return 0;
}

std::string describe_security(const CkksParams& params) {
  const int total = params.log_q_with_special();
  const int level = estimate_security_level(params.degree, total);
  std::ostringstream os;
  os << "N=" << params.degree << ", total log q (incl. special) = " << total
     << " bits: ";
  if (level >= 128) {
    os << "meets the HE-standard lambda=" << level << " bound";
  } else {
    os << "BELOW the HE-standard 128-bit bound (fast/experimental profile "
          "only; use the paper_table2 parameters for lambda=128)";
  }
  return os.str();
}

}  // namespace pphe
