#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pphe {

/// CKKS(-RNS) parameter set, mirroring Table II of the paper.
///
/// `q_bit_sizes` are the ciphertext-modulus primes (the "moduli chain" in the
/// paper's terminology, built by generate_moduli_chain — our equivalent of
/// SEAL's co-prime generation tool). The key-switching ("special") modulus is
/// on top of these: the RNS backend uses one `special_bit_size` prime, the
/// multiprecision backend a product of special primes covering log q, exactly
/// as the original non-RNS scheme's evaluation key lives mod q_L^2.
struct CkksParams {
  std::size_t degree = std::size_t{1} << 13;  // N
  std::vector<int> q_bit_sizes;               // ciphertext primes, q_0 first
  int special_bit_size = 60;                  // RNS key-switching prime
  double scale = 67108864.0;                  // Δ = 2^26 (Table II)
  std::size_t hamming_weight = 64;            // h of χ_key = HW(h)
  double noise_sigma = 3.2;                   // σ of χ_err (HE standard)
  std::uint64_t seed = 0x5eed;                // PRNG seed (reproducibility)

  /// Σ q_bit_sizes — the paper's "log q" (366 in Table II).
  int log_q() const;
  /// log q plus the key-switching modulus width (what security bounds see).
  int log_q_with_special() const;
  std::size_t chain_length() const { return q_bit_sizes.size(); }
  std::size_t slot_count() const { return degree / 2; }

  /// Throws if the configuration is internally inconsistent.
  void validate() const;

  std::string describe() const;

  /// The paper's Table II setting: λ=128, N=2^14, Δ=2^26, log q = 366,
  /// L = 13 moduli, q = [40, 26, …, 26, 40] (the trailing 40-bit prime is the
  /// key-switching modulus).
  static CkksParams paper_table2();

  /// Same chain shape at N=2^13 — the fast profile used by default in tests
  /// and benches so the full suite runs in minutes on one core. NOTE: at this
  /// ring degree the chain exceeds the 128-bit HE-standard bound; the benches
  /// print the actual estimated level (use --paper for the 128-bit profile).
  static CkksParams fast_profile();

  /// Tiny parameters for unit tests (N=2^11, short chain).
  static CkksParams test_small();

  /// Chain of `length` ciphertext primes for the Table IV/VI sweeps: evenly
  /// sized primes (≤ 60 bits each) chosen so the CNN pipelines still have the
  /// multiplicative budget they need; `scale` is adapted accordingly (shorter
  /// chains force a smaller Δ, see EXPERIMENTS.md discussion).
  static CkksParams with_chain_length(std::size_t length, std::size_t degree,
                                      std::size_t depth_needed);
};

}  // namespace pphe
