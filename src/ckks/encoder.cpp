#include "ckks/encoder.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace pphe {

CkksEncoder::CkksEncoder(std::size_t degree) : n_(degree), fft_(degree) {
  PPHE_CHECK(degree >= 4 && (degree & (degree - 1)) == 0,
             "degree must be a power of two, at least 4");
  const std::size_t two_n = 2 * n_;
  slot_to_bin_.resize(slot_count());
  conj_slot_to_bin_.resize(slot_count());
  std::size_t e = 1;  // 5^j mod 2N
  for (std::size_t j = 0; j < slot_count(); ++j) {
    slot_to_bin_[j] = (e - 1) / 2;                 // e = 2f + 1
    conj_slot_to_bin_[j] = (two_n - e - 1) / 2;    // -e mod 2N, also odd
    e = (e * 5) % two_n;
  }
  twist_.resize(n_);
  untwist_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double angle =
        std::numbers::pi * static_cast<double>(k) / static_cast<double>(n_);
    twist_[k] = std::polar(1.0, angle);     // ζ^k
    untwist_[k] = std::polar(1.0, -angle);  // ζ^{-k}
  }
}

std::vector<double> CkksEncoder::embed_unrounded(
    std::span<const std::complex<double>> values, double scale) const {
  PPHE_CHECK(values.size() <= slot_count(), "too many slot values");
  PPHE_CHECK(scale > 0.0, "scale must be positive");

  // Fill the twisted spectrum: bin f_j gets z_j, the conjugate bin gets
  // conj(z_j); every other bin of the length-N spectrum is covered because
  // {±5^j} enumerates all odd residues mod 2N.
  std::vector<std::complex<double>> spec(n_, {0.0, 0.0});
  for (std::size_t j = 0; j < values.size(); ++j) {
    spec[slot_to_bin_[j]] = values[j];
    spec[conj_slot_to_bin_[j]] = std::conj(values[j]);
  }
  // The embedding evaluates with POSITIVE exponent (slot_j = Σ t_k ω^{+f k});
  // its inverse is therefore the negative-exponent transform scaled by 1/N,
  // i.e. Fft::forward with an explicit 1/N.
  fft_.forward(spec);
  const double inv_n = 1.0 / static_cast<double>(n_);
  std::vector<double> coeffs(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // Untwist; imaginary parts cancel by conjugate symmetry (up to fp error).
    coeffs[k] = (spec[k] * untwist_[k]).real() * inv_n * scale;
  }
  return coeffs;
}

std::vector<std::int64_t> CkksEncoder::encode(
    std::span<const std::complex<double>> values, double scale) const {
  const std::vector<double> real_coeffs = embed_unrounded(values, scale);
  std::vector<std::int64_t> out(n_);
  constexpr double kLimit = 4.611686018427387904e18;  // 2^62
  for (std::size_t k = 0; k < n_; ++k) {
    const double c = real_coeffs[k];
    PPHE_CHECK(std::abs(c) < kLimit,
               "encoded coefficient exceeds 2^62; lower the scale");
    out[k] = static_cast<std::int64_t>(std::llround(c));
  }
  return out;
}

std::vector<std::int64_t> CkksEncoder::encode(std::span<const double> values,
                                              double scale) const {
  std::vector<std::complex<double>> complex_values(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    complex_values[i] = {values[i], 0.0};
  }
  return encode(std::span<const std::complex<double>>(complex_values), scale);
}

std::vector<std::complex<double>> CkksEncoder::decode(
    std::span<const double> coefficients, double scale) const {
  PPHE_CHECK(coefficients.size() == n_, "coefficient count mismatch");
  PPHE_CHECK(scale > 0.0, "scale must be positive");
  std::vector<std::complex<double>> t(n_);
  for (std::size_t k = 0; k < n_; ++k) t[k] = coefficients[k] * twist_[k];
  // Positive-exponent evaluation = n * Fft::inverse (which carries a 1/n).
  fft_.inverse(t);
  const double n_over_scale = static_cast<double>(n_) / scale;
  std::vector<std::complex<double>> slots(slot_count());
  for (std::size_t j = 0; j < slot_count(); ++j) {
    slots[j] = t[slot_to_bin_[j]] * n_over_scale;
  }
  return slots;
}

std::vector<double> CkksEncoder::decode_real(
    std::span<const double> coefficients, double scale) const {
  const auto slots = decode(coefficients, scale);
  std::vector<double> out(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) out[i] = slots[i].real();
  return out;
}

}  // namespace pphe
