#include "ckks/serialize.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"

namespace pphe {
namespace {

constexpr std::uint32_t kMagicParams = 0x70706331;  // "ppc1"
constexpr std::uint32_t kMagicCipher = 0x70706332;
constexpr std::uint32_t kMagicPlain = 0x70706333;
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  PPHE_CHECK(static_cast<bool>(in), "truncated serialized stream");
  return value;
}

void write_header(std::ostream& out, std::uint32_t magic) {
  write_pod(out, magic);
  write_pod(out, kVersion);
}

void read_header(std::istream& in, std::uint32_t magic) {
  PPHE_CHECK(read_pod<std::uint32_t>(in) == magic,
             "bad magic in serialized stream");
  PPHE_CHECK(read_pod<std::uint32_t>(in) == kVersion,
             "unsupported serialization version");
}

void write_poly(std::ostream& out, const RnsPoly& poly) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(poly.channels()));
  write_pod<std::uint8_t>(out, poly.ntt ? 1 : 0);
  write_pod<std::uint8_t>(out, poly.has_special ? 1 : 0);
  // The slab is contiguous channel-major, so the payload is one write.
  out.write(reinterpret_cast<const char*>(poly.buf.data()),
            static_cast<std::streamsize>(poly.channels() * poly.buf.degree() *
                                         sizeof(std::uint64_t)));
}

RnsPoly read_poly(std::istream& in, const RnsBackend& backend,
                  std::size_t expected_channels) {
  RnsPoly poly;
  const auto channels = read_pod<std::uint32_t>(in);
  PPHE_CHECK(channels == expected_channels,
             "serialized channel count does not match the level");
  poly.ntt = read_pod<std::uint8_t>(in) != 0;
  poly.has_special = read_pod<std::uint8_t>(in) != 0;
  PPHE_CHECK(!poly.has_special,
             "transport streams never carry the key-switching channel");
  const std::size_t n = backend.params().degree;
  // Check the slab out of the backend's arena so deserialized ciphertexts
  // feed the same free list as freshly computed ones.
  poly.buf = PolyBuffer(backend.pool(), channels, n, /*zero_fill=*/false);
  in.read(reinterpret_cast<char*>(poly.buf.data()),
          static_cast<std::streamsize>(channels * n * sizeof(std::uint64_t)));
  PPHE_CHECK(static_cast<bool>(in), "truncated polynomial data");
  // Validate residues against the moduli so corrupted streams are rejected.
  for (std::size_t c = 0; c < channels; ++c) {
    const std::uint64_t q = backend.q_moduli()[c].value();
    for (const auto v : poly.ch(c)) {
      PPHE_CHECK(v < q, "serialized residue out of range");
    }
  }
  return poly;
}

}  // namespace

void write_params(std::ostream& out, const CkksParams& params) {
  write_header(out, kMagicParams);
  write_pod<std::uint64_t>(out, params.degree);
  write_pod<std::uint32_t>(out,
                           static_cast<std::uint32_t>(params.q_bit_sizes.size()));
  for (const int b : params.q_bit_sizes) write_pod<std::int32_t>(out, b);
  write_pod<std::int32_t>(out, params.special_bit_size);
  write_pod<double>(out, params.scale);
  write_pod<std::uint64_t>(out, params.hamming_weight);
  write_pod<double>(out, params.noise_sigma);
  write_pod<std::uint64_t>(out, params.seed);
  PPHE_CHECK(static_cast<bool>(out), "failed writing parameters");
}

CkksParams read_params(std::istream& in) {
  read_header(in, kMagicParams);
  CkksParams params;
  params.degree = read_pod<std::uint64_t>(in);
  const auto count = read_pod<std::uint32_t>(in);
  PPHE_CHECK(count >= 1 && count <= 64, "implausible chain length");
  params.q_bit_sizes.resize(count);
  for (auto& b : params.q_bit_sizes) b = read_pod<std::int32_t>(in);
  params.special_bit_size = read_pod<std::int32_t>(in);
  params.scale = read_pod<double>(in);
  params.hamming_weight = read_pod<std::uint64_t>(in);
  params.noise_sigma = read_pod<double>(in);
  params.seed = read_pod<std::uint64_t>(in);
  params.validate();
  return params;
}

void write_ciphertext(std::ostream& out, const RnsBackend& backend,
                      const Ciphertext& ct) {
  PPHE_CHECK(ct.valid(), "invalid ciphertext");
  const auto& body = *static_cast<const RnsCtBody*>(ct.impl().get());
  write_header(out, kMagicCipher);
  write_pod<std::uint64_t>(out, backend.params().degree);
  write_pod<std::int32_t>(out, ct.level());
  write_pod<double>(out, ct.scale());
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(body.polys.size()));
  for (const auto& poly : body.polys) write_poly(out, poly);
  PPHE_CHECK(static_cast<bool>(out), "failed writing ciphertext");
}

Ciphertext read_ciphertext(std::istream& in, const RnsBackend& backend) {
  read_header(in, kMagicCipher);
  PPHE_CHECK(read_pod<std::uint64_t>(in) == backend.params().degree,
             "ciphertext was produced under a different ring degree");
  const auto level = read_pod<std::int32_t>(in);
  PPHE_CHECK(level >= 0 && level <= backend.max_level(),
             "ciphertext level outside this backend's chain");
  const double scale = read_pod<double>(in);
  PPHE_CHECK(scale > 0.0, "non-positive scale");
  const auto size = read_pod<std::uint32_t>(in);
  PPHE_CHECK(size == 2 || size == 3, "ciphertext must have 2 or 3 components");

  auto impl = std::make_shared<RnsCtBody>();
  const auto channels = static_cast<std::size_t>(level) + 1;
  for (std::uint32_t i = 0; i < size; ++i) {
    impl->polys.push_back(read_poly(in, backend, channels));
  }
  return Ciphertext(std::move(impl), scale, level, size);
}

void write_plaintext(std::ostream& out, const RnsBackend& backend,
                     const Plaintext& pt) {
  PPHE_CHECK(pt.valid(), "invalid plaintext");
  const auto& body = *static_cast<const RnsPtBody*>(pt.impl().get());
  write_header(out, kMagicPlain);
  write_pod<std::uint64_t>(out, backend.params().degree);
  write_pod<std::int32_t>(out, pt.level());
  write_pod<double>(out, pt.scale());
  write_poly(out, body.poly);
  PPHE_CHECK(static_cast<bool>(out), "failed writing plaintext");
}

Plaintext read_plaintext(std::istream& in, const RnsBackend& backend) {
  read_header(in, kMagicPlain);
  PPHE_CHECK(read_pod<std::uint64_t>(in) == backend.params().degree,
             "plaintext was produced under a different ring degree");
  const auto level = read_pod<std::int32_t>(in);
  PPHE_CHECK(level >= 0 && level <= backend.max_level(), "bad level");
  const double scale = read_pod<double>(in);
  auto impl = std::make_shared<RnsPtBody>();
  impl->poly =
      read_poly(in, backend, static_cast<std::size_t>(level) + 1);
  return Plaintext(std::move(impl), scale, level);
}

std::string ciphertext_to_string(const RnsBackend& backend,
                                 const Ciphertext& ct) {
  std::ostringstream out(std::ios::binary);
  write_ciphertext(out, backend, ct);
  return std::move(out).str();
}

Ciphertext ciphertext_from_string(const std::string& bytes,
                                  const RnsBackend& backend) {
  std::istringstream in(bytes, std::ios::binary);
  return read_ciphertext(in, backend);
}

std::size_t ciphertext_byte_size(const RnsBackend& backend,
                                 const Ciphertext& ct) {
  const auto& body = *static_cast<const RnsCtBody*>(ct.impl().get());
  std::size_t total = 8 + 8 + 4 + 8 + 4;  // headers + metadata
  for (const auto& poly : body.polys) {
    total += 6 + poly.channels() * backend.params().degree * 8;
  }
  return total;
}

}  // namespace pphe
