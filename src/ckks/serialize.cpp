#include "ckks/serialize.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"

namespace pphe {
namespace {

constexpr std::uint32_t kMagicParams = 0x70706331;  // "ppc1"
constexpr std::uint32_t kMagicCipher = 0x70706332;
constexpr std::uint32_t kMagicPlain = 0x70706333;
constexpr std::uint32_t kVersion = 2;  // v2: per-section checksums

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  PPHE_CHECK_CODE(static_cast<bool>(in), ErrorCode::kSerialization,
                  "truncated serialized stream");
  return value;
}

void read_exact(std::istream& in, void* dst, std::size_t bytes) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
  PPHE_CHECK_CODE(static_cast<bool>(in), ErrorCode::kSerialization,
                  "truncated serialized stream");
}

/// Reads the stored section checksum and verifies it against the computed
/// one; a mismatch means the preceding payload bytes were corrupted.
void verify_checksum(std::istream& in, std::uint64_t computed,
                     const char* section) {
  const auto stored = read_pod<std::uint64_t>(in);
  PPHE_CHECK_CODE(stored == computed, ErrorCode::kChecksumMismatch,
                  std::string(section) + " section checksum mismatch "
                                         "(corrupted bytes)");
}

/// Fixed-size metadata block appended by packers below; checksummed as one
/// section so readers can reject garbage before allocating anything.
struct MetaPacker {
  unsigned char bytes[32];
  std::size_t len = 0;

  template <typename T>
  void put(T value) {
    std::memcpy(bytes + len, &value, sizeof(T));
    len += sizeof(T);
  }
  void write(std::ostream& out) const {
    out.write(reinterpret_cast<const char*>(bytes),
              static_cast<std::streamsize>(len));
    write_pod(out, wire_checksum(bytes, len));
  }
};

struct MetaReader {
  unsigned char bytes[32];
  std::size_t len = 0;
  std::size_t pos = 0;

  MetaReader(std::istream& in, std::size_t n, const char* section) : len(n) {
    read_exact(in, bytes, n);
    verify_checksum(in, wire_checksum(bytes, n), section);
  }
  template <typename T>
  T take() {
    T value{};
    std::memcpy(&value, bytes + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }
};

void write_header(std::ostream& out, std::uint32_t magic) {
  write_pod(out, magic);
  write_pod(out, kVersion);
}

void read_header(std::istream& in, std::uint32_t magic) {
  PPHE_CHECK_CODE(read_pod<std::uint32_t>(in) == magic,
                  ErrorCode::kSerialization, "bad magic in serialized stream");
  const auto version = read_pod<std::uint32_t>(in);
  PPHE_CHECK_CODE(version == kVersion, ErrorCode::kSerialization,
                  "unsupported serialization version " +
                      std::to_string(version) + " (this build reads v" +
                      std::to_string(kVersion) + ")");
}

/// Writes one polynomial section; returns its payload checksum (what
/// RnsCtBody::wire_digest accumulates).
std::uint64_t write_poly(std::ostream& out, const RnsPoly& poly) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(poly.channels()));
  write_pod<std::uint8_t>(out, poly.ntt ? 1 : 0);
  write_pod<std::uint8_t>(out, poly.has_special ? 1 : 0);
  // The slab is contiguous channel-major, so the payload is one write.
  const std::size_t bytes =
      poly.channels() * poly.buf.degree() * sizeof(std::uint64_t);
  out.write(reinterpret_cast<const char*>(poly.buf.data()),
            static_cast<std::streamsize>(bytes));
  const std::uint64_t checksum = wire_checksum(poly.buf.data(), bytes);
  write_pod(out, checksum);
  return checksum;
}

/// Reads one polynomial section; `digest` accumulates the verified payload
/// checksum. Structure (channel count, flags) is validated against the
/// backend's parameters BEFORE the slab allocation, so a hostile stream
/// cannot make the reader over-allocate.
RnsPoly read_poly(std::istream& in, const RnsBackend& backend,
                  std::size_t expected_channels, std::uint64_t& digest) {
  RnsPoly poly;
  const auto channels = read_pod<std::uint32_t>(in);
  PPHE_CHECK_CODE(channels == expected_channels, ErrorCode::kSerialization,
                  "serialized channel count does not match the level");
  poly.ntt = read_pod<std::uint8_t>(in) != 0;
  poly.has_special = read_pod<std::uint8_t>(in) != 0;
  PPHE_CHECK_CODE(!poly.has_special, ErrorCode::kSerialization,
                  "transport streams never carry the key-switching channel");
  const std::size_t n = backend.params().degree;
  // Check the slab out of the backend's arena so deserialized ciphertexts
  // feed the same free list as freshly computed ones.
  poly.buf = PolyBuffer(backend.pool(), channels, n, /*zero_fill=*/false);
  const std::size_t bytes = channels * n * sizeof(std::uint64_t);
  read_exact(in, poly.buf.data(), bytes);
  const std::uint64_t checksum = wire_checksum(poly.buf.data(), bytes);
  verify_checksum(in, checksum, "polynomial");
  digest = wire_digest_combine(digest, checksum);
  // Validate residues against the moduli: the checksum catches transport
  // corruption, the range check catches a writer that produced garbage.
  for (std::size_t c = 0; c < channels; ++c) {
    const std::uint64_t q = backend.q_moduli()[c].value();
    for (const auto v : poly.ch(c)) {
      PPHE_CHECK_CODE(v < q, ErrorCode::kIntegrity,
                      "serialized residue out of range");
    }
  }
  return poly;
}

}  // namespace

std::uint64_t wire_checksum(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0x1234567890abcdefull ^ (bytes * 0xff51afd7ed558ccdull);
  std::size_t n = bytes;
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = mix64(h ^ w);
    p += 8;
    n -= 8;
  }
  if (n != 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, n);
    h = mix64(h ^ w ^ (static_cast<std::uint64_t>(n) << 56));
  }
  return h;
}

void write_params(std::ostream& out, const CkksParams& params) {
  write_header(out, kMagicParams);
  // The chain is variable-length, so the params "section" is serialized into
  // a scratch buffer first and checksummed as a whole.
  std::string buf;
  const auto put = [&buf](const void* p, std::size_t n) {
    buf.append(static_cast<const char*>(p), n);
  };
  const std::uint64_t degree = params.degree;
  put(&degree, 8);
  const auto count = static_cast<std::uint32_t>(params.q_bit_sizes.size());
  put(&count, 4);
  for (const int b : params.q_bit_sizes) {
    const auto b32 = static_cast<std::int32_t>(b);
    put(&b32, 4);
  }
  const auto special = static_cast<std::int32_t>(params.special_bit_size);
  put(&special, 4);
  put(&params.scale, 8);
  const std::uint64_t hw = params.hamming_weight;
  put(&hw, 8);
  put(&params.noise_sigma, 8);
  put(&params.seed, 8);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  write_pod(out, wire_checksum(buf.data(), buf.size()));
  PPHE_CHECK(static_cast<bool>(out), "failed writing parameters");
}

CkksParams read_params(std::istream& in) {
  read_header(in, kMagicParams);
  CkksParams params;
  // Fixed prefix: degree + chain length. The length is bounds-checked before
  // sizing anything, so adversarial streams cannot force an allocation.
  unsigned char prefix[12];
  read_exact(in, prefix, sizeof(prefix));
  std::uint64_t degree = 0;
  std::uint32_t count = 0;
  std::memcpy(&degree, prefix, 8);
  std::memcpy(&count, prefix + 8, 4);
  params.degree = degree;
  PPHE_CHECK_CODE(count >= 1 && count <= 64, ErrorCode::kSerialization,
                  "implausible chain length");
  // Per-prime bit sizes, then special/scale/hamming/sigma/seed (4+8+8+8+8).
  std::string rest(count * 4 + 36, '\0');
  read_exact(in, rest.data(), rest.size());
  // One checksum covers the whole section (prefix + rest).
  std::string whole(reinterpret_cast<const char*>(prefix), sizeof(prefix));
  whole += rest;
  verify_checksum(in, wire_checksum(whole.data(), whole.size()),
                  "parameters");
  const char* p = rest.data();
  params.q_bit_sizes.resize(count);
  for (auto& b : params.q_bit_sizes) {
    std::int32_t b32 = 0;
    std::memcpy(&b32, p, 4);
    p += 4;
    b = b32;
  }
  std::int32_t special = 0;
  std::memcpy(&special, p, 4);
  p += 4;
  params.special_bit_size = special;
  std::memcpy(&params.scale, p, 8);
  p += 8;
  std::uint64_t hw = 0;
  std::memcpy(&hw, p, 8);
  p += 8;
  params.hamming_weight = hw;
  std::memcpy(&params.noise_sigma, p, 8);
  p += 8;
  std::memcpy(&params.seed, p, 8);
  params.validate();
  return params;
}

void write_ciphertext(std::ostream& out, const RnsBackend& backend,
                      const Ciphertext& ct) {
  PPHE_CHECK(ct.valid(), "invalid ciphertext");
  const auto& body = *static_cast<const RnsCtBody*>(ct.impl().get());
  write_header(out, kMagicCipher);
  MetaPacker meta;
  meta.put<std::uint64_t>(backend.params().degree);
  meta.put<std::int32_t>(ct.level());
  meta.put<double>(ct.scale());
  meta.put<std::uint32_t>(static_cast<std::uint32_t>(body.polys.size()));
  meta.write(out);
  for (const auto& poly : body.polys) write_poly(out, poly);
  PPHE_CHECK(static_cast<bool>(out), "failed writing ciphertext");
}

Ciphertext read_ciphertext(std::istream& in, const RnsBackend& backend) {
  read_header(in, kMagicCipher);
  // Fail fast: the metadata section (and its checksum) is verified before
  // any polynomial slab is allocated.
  MetaReader meta(in, 8 + 4 + 8 + 4, "ciphertext metadata");
  PPHE_CHECK_CODE(meta.take<std::uint64_t>() == backend.params().degree,
                  ErrorCode::kSerialization,
                  "ciphertext was produced under a different ring degree");
  const auto level = meta.take<std::int32_t>();
  PPHE_CHECK_CODE(level >= 0 && level <= backend.max_level(),
                  ErrorCode::kSerialization,
                  "ciphertext level outside this backend's chain");
  const double scale = meta.take<double>();
  PPHE_CHECK_CODE(scale > 0.0 && std::isfinite(scale),
                  ErrorCode::kSerialization, "non-positive scale");
  const auto size = meta.take<std::uint32_t>();
  PPHE_CHECK_CODE(size == 2 || size == 3, ErrorCode::kSerialization,
                  "ciphertext must have 2 or 3 components");

  auto impl = std::make_shared<RnsCtBody>();
  const auto channels = static_cast<std::size_t>(level) + 1;
  std::uint64_t digest = 0;
  for (std::uint32_t i = 0; i < size; ++i) {
    impl->polys.push_back(read_poly(in, backend, channels, digest));
  }
  // Verified payload digest: validate_ciphertext re-derives it from the
  // slabs before eval, detecting post-decode in-memory corruption.
  impl->wire_digest = digest;
  return Ciphertext(std::move(impl), scale, level, size);
}

void write_plaintext(std::ostream& out, const RnsBackend& backend,
                     const Plaintext& pt) {
  PPHE_CHECK(pt.valid(), "invalid plaintext");
  const auto& body = *static_cast<const RnsPtBody*>(pt.impl().get());
  write_header(out, kMagicPlain);
  MetaPacker meta;
  meta.put<std::uint64_t>(backend.params().degree);
  meta.put<std::int32_t>(pt.level());
  meta.put<double>(pt.scale());
  meta.write(out);
  if (body.poly.has_special) {
    // In-memory plaintexts carry the key-switching prime as a trailing
    // channel (fused BSGS, DESIGN.md §14); the wire format stays q-only, so
    // strip it — the reader rejects special channels outright.
    const std::size_t n = backend.params().degree;
    const std::size_t q_channels = body.poly.channels() - 1;
    RnsPoly stripped;
    stripped.buf = PolyBuffer(backend.pool(), q_channels, n,
                              /*zero_fill=*/false);
    stripped.ntt = body.poly.ntt;
    for (std::size_t c = 0; c < q_channels; ++c) {
      std::memcpy(stripped.ch(c).data(), body.poly.ch(c).data(),
                  n * sizeof(std::uint64_t));
    }
    write_poly(out, stripped);
  } else {
    write_poly(out, body.poly);
  }
  PPHE_CHECK(static_cast<bool>(out), "failed writing plaintext");
}

Plaintext read_plaintext(std::istream& in, const RnsBackend& backend) {
  read_header(in, kMagicPlain);
  MetaReader meta(in, 8 + 4 + 8, "plaintext metadata");
  PPHE_CHECK_CODE(meta.take<std::uint64_t>() == backend.params().degree,
                  ErrorCode::kSerialization,
                  "plaintext was produced under a different ring degree");
  const auto level = meta.take<std::int32_t>();
  PPHE_CHECK_CODE(level >= 0 && level <= backend.max_level(),
                  ErrorCode::kSerialization, "bad level");
  const double scale = meta.take<double>();
  PPHE_CHECK_CODE(scale > 0.0 && std::isfinite(scale),
                  ErrorCode::kSerialization, "non-positive scale");
  auto impl = std::make_shared<RnsPtBody>();
  std::uint64_t digest = 0;
  impl->poly =
      read_poly(in, backend, static_cast<std::size_t>(level) + 1, digest);
  return Plaintext(std::move(impl), scale, level);
}

std::string ciphertext_to_string(const RnsBackend& backend,
                                 const Ciphertext& ct) {
  std::ostringstream out(std::ios::binary);
  write_ciphertext(out, backend, ct);
  return std::move(out).str();
}

Ciphertext ciphertext_from_string(const std::string& bytes,
                                  const RnsBackend& backend) {
  std::istringstream in(bytes, std::ios::binary);
  return read_ciphertext(in, backend);
}

std::size_t ciphertext_byte_size(const RnsBackend& backend,
                                 const Ciphertext& ct) {
  const auto& body = *static_cast<const RnsCtBody*>(ct.impl().get());
  // magic+version, metadata section + checksum.
  std::size_t total = 8 + (8 + 4 + 8 + 4) + 8;
  for (const auto& poly : body.polys) {
    // poly header + payload + checksum.
    total += 6 + poly.channels() * backend.params().degree * 8 + 8;
  }
  return total;
}

}  // namespace pphe
