#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ckks/backend.hpp"
#include "ckks/params.hpp"

namespace pphe {

/// Analytic CKKS noise model (§III.C of the paper: "the implementation of
/// CNN-HE should consider rounding errors"). Tracks a high-probability bound
/// on the invariant noise of a ciphertext — the error e with
/// m_decrypted = m_true + e, expressed in coefficient units — through the
/// §II primitives, using the standard heuristic bounds (canonical-embedding
/// norm, sigma = params.noise_sigma, secret Hamming weight h).
///
/// The tracker is intentionally pessimistic-but-simple: it exists so tests
/// and benches can assert that MEASURED noise stays below the PREDICTED
/// bound, and so parameter planning can check that the end-of-pipeline
/// signal-to-noise ratio supports the claimed precision.
class NoiseTracker {
 public:
  explicit NoiseTracker(const CkksParams& params);

  /// Bound on fresh public-key encryption noise (coefficient units).
  double fresh_encryption() const;

  /// Noise after adding two ciphertexts with bounds na, nb.
  static double add(double na, double nb) { return na + nb; }

  /// Noise after a ct-ct tensor product: each message is bounded by
  /// scale * value_bound in coefficient units.
  double multiply(double na, double nb, double scale_a, double scale_b,
                  double value_bound_a, double value_bound_b) const;

  /// Noise after multiplying by a plaintext of the given scale and value
  /// bound (no fresh noise, but the existing noise is amplified).
  double multiply_plain(double n, double pt_scale,
                        double pt_value_bound) const;

  /// Additive noise contributed by one key switching (relinearization or
  /// rotation) with the single-special-prime RNS gadget at `level`.
  double key_switch(int level) const;

  /// Noise after rescaling by the prime at `level`: the old noise divides by
  /// the prime and the rounding adds ~sqrt(N/12)*(1 + h) in coefficient
  /// units.
  double rescale(double n, double prime) const;

  /// Value-domain error corresponding to slot-domain noise n at `scale`
  /// (what decode reports): |value error| <= n / scale. All bounds above are
  /// already expressed in the slot domain (the canonical-embedding sqrt(N)
  /// evaluation factors are folded into fresh/key_switch/rescale).
  static double slot_error(double n, double scale) { return n / scale; }

  const CkksParams& params() const { return params_; }

 private:
  CkksParams params_;

};

/// Measured noise: decrypts `ct`, compares against `expected` slot values,
/// and returns the maximum absolute slot error. Utility for tests/benches.
double measured_slot_error(const HeBackend& backend, const Ciphertext& ct,
                           std::span<const double> expected);

/// Remaining "noise budget" in bits at the ciphertext's level: how many bits
/// of modulus are left above the scale (once 0, decryption wraps). Mirrors
/// SEAL's invariant-noise-budget diagnostic, adapted to CKKS.
double noise_budget_bits(const HeBackend& backend, const Ciphertext& ct);

}  // namespace pphe
