#include "ckks/noise.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pphe {

NoiseTracker::NoiseTracker(const CkksParams& params) : params_(params) {
  params_.validate();

}

double NoiseTracker::fresh_encryption() const {
  // c = v*pk + (m + e0, e1), v ternary, pk noise e: the coefficient noise is
  // v*e + e0 + e1*s. In the slot (canonical-embedding) domain each term
  // gains a sqrt(N) evaluation factor on top of the per-coefficient RMS:
  //   v*e :  sigma * sqrt(2N/3) per coeff -> sigma * N * sqrt(2/3) in slots
  //   e0  :  sigma                        -> sigma * sqrt(N)
  //   e1*s:  sigma * sqrt(h)              -> sigma * sqrt(N h)
  // multiplied by the 6-sigma tail bound.
  const double sigma = params_.noise_sigma;
  const auto n = static_cast<double>(params_.degree);
  const auto h = static_cast<double>(params_.hamming_weight);
  return 6.0 * sigma *
         (n * std::sqrt(2.0 / 3.0) + std::sqrt(n) + std::sqrt(n * h));
}

double NoiseTracker::multiply(double na, double nb, double scale_a,
                              double scale_b, double value_bound_a,
                              double value_bound_b) const {
  // Slot domain: slot(ab) = slot(a) * slot(b), so
  // (m_a + e_a)(m_b + e_b) = m_a m_b + m_a e_b + m_b e_a + e_a e_b
  // holds per slot with |slot m| <= scale * value_bound. No extra ring
  // expansion factor: the embedding is multiplicative.
  const double ma = scale_a * value_bound_a;
  const double mb = scale_b * value_bound_b;
  return ma * nb + mb * na + na * nb;
}

double NoiseTracker::multiply_plain(double n, double pt_scale,
                                    double pt_value_bound) const {
  return n * pt_scale * pt_value_bound;
}

double NoiseTracker::key_switch(int level) const {
  PPHE_CHECK(level >= 0, "negative level");
  // One digit per prime, special prime p >= every q_j: the mod-down divides
  // the accumulated digit noise by p, leaving ~ (l+1) * 6 sigma * sqrt(N) *
  // (q_max / p) plus the rounding term sqrt(N/12) * (1 + sqrt(h)).
  const double l1 = static_cast<double>(level + 1);
  const auto n = static_cast<double>(params_.degree);
  const auto h = static_cast<double>(params_.hamming_weight);
  // Digit j contributes digit_j * e_j / p with |digit| < q_j <= p: slot-
  // domain magnitude ~ 6 sigma N per digit (conservative q_max/p = 1).
  const double digit_term = l1 * 6.0 * params_.noise_sigma * n;
  // Mod-down rounding: per-coefficient uniform(1/12) plus its s-convolution,
  // lifted to slots: 6 * sqrt(N (1 + h) / 12).
  const double rounding = 6.0 * std::sqrt(n * (1.0 + h) / 12.0);
  return digit_term + rounding;
}

double NoiseTracker::rescale(double n, double prime) const {
  const auto degree = static_cast<double>(params_.degree);
  const auto h = static_cast<double>(params_.hamming_weight);
  const double rounding = 6.0 * std::sqrt(degree * (1.0 + h) / 12.0);
  return n / prime + rounding;
}

double measured_slot_error(const HeBackend& backend, const Ciphertext& ct,
                           std::span<const double> expected) {
  const auto got = backend.decrypt_decode(ct);
  PPHE_CHECK(got.size() >= expected.size(), "expected vector too long");
  double max_err = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    max_err = std::max(max_err, std::abs(got[i] - expected[i]));
  }
  return max_err;
}

double noise_budget_bits(const HeBackend& backend, const Ciphertext& ct) {
  double modulus_bits = 0.0;
  for (int l = 0; l <= ct.level(); ++l) {
    modulus_bits += std::log2(backend.level_prime(l));
  }
  return modulus_bits - std::log2(ct.scale()) - 1.0;  // 1 bit for the sign
}

}  // namespace pphe
