#pragma once

#include <cstddef>
#include <string>

namespace pphe {

struct CkksParams;

/// Security bounds from the Homomorphic Encryption Security Standard
/// (homomorphicencryption.org, 2018) — the reference the paper's §V.B cites
/// for its λ=128 guarantee. Values are the maximum total modulus width
/// (log q, INCLUDING the key-switching modulus) admissible for a given ring
/// degree under classical attacks with a ternary secret distribution.
///
/// Returns 0 if the degree is outside the standard's table (then no claim is
/// made). Supported λ: 128, 192, 256.
int he_standard_max_log_q(std::size_t degree, int lambda);

/// Largest λ in {256, 192, 128} for which (degree, log_q_total) satisfies the
/// standard's bound, or 0 if even the 128-bit bound is exceeded.
int estimate_security_level(std::size_t degree, int log_q_total);

/// Human-readable security assessment of a parameter set, used by the
/// Table II bench and printed by the examples.
std::string describe_security(const CkksParams& params);

}  // namespace pphe
