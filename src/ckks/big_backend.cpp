#include "ckks/big_backend.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/parallel_sim.hpp"
#include "common/stats.hpp"
#include "math/primes.hpp"
#include "math/sampling.hpp"

namespace pphe {
namespace {

const BigCtBody& body(const Ciphertext& ct) {
  PPHE_CHECK(ct.valid(), "invalid ciphertext handle");
  return *static_cast<const BigCtBody*>(ct.impl().get());
}

const BigPtBody& body(const Plaintext& pt) {
  PPHE_CHECK(pt.valid(), "invalid plaintext handle");
  return *static_cast<const BigPtBody*>(pt.impl().get());
}

/// Reduces an arbitrarily wide x modulo `bar`'s modulus by Horner recursion
/// over 64-bit limbs (each step keeps the Barrett input below q * 2^64).
BigUInt reduce_wide(const BigBarrett& bar, const BigUInt& x) {
  const BigUInt& q = bar.modulus();
  if (x < q) return x;
  if (q.limb_count() == 1) return BigUInt(x.mod_u64(q.to_u64()));
  BigUInt r;
  for (std::size_t i = x.limb_count(); i-- > 0;) {
    r = bar.reduce((r << 64) + BigUInt(x.limb(i)));
  }
  return r;
}

}  // namespace

BigBackend::BigBackend(const CkksParams& params)
    : params_(params), encoder_(params.degree), prng_(params.seed) {
  params_.validate();

  // Same downward sweep as RnsBackend for the ciphertext primes (identical
  // rings), then auxiliary primes for P >= Q_L, all pairwise distinct.
  const int aux_bits = 58;
  const std::size_t aux_count =
      (static_cast<std::size_t>(params_.log_q()) + 16 + aux_bits - 1) /
      aux_bits;
  std::vector<int> sizes = params_.q_bit_sizes;
  sizes.push_back(params_.special_bit_size);  // keep parity with RnsBackend
  for (std::size_t i = 0; i < aux_count; ++i) sizes.push_back(aux_bits);
  const auto primes = generate_moduli_chain(params_.degree, sizes);

  const std::size_t nq = params_.q_bit_sizes.size();
  q_primes_.assign(primes.begin(), primes.begin() + nq);
  special_primes_.assign(primes.begin() + nq + 1, primes.end());

  BigUInt ladder(1);
  for (const auto q : q_primes_) {
    ladder *= BigUInt(q);
    q_ladder_.push_back(ladder);
  }
  p_modulus_ = BigUInt(1);
  for (const auto p : special_primes_) p_modulus_ *= BigUInt(p);
  PPHE_CHECK(p_modulus_ >= q_ladder_.back(),
             "auxiliary modulus must dominate Q_L");
  half_p_ = p_modulus_ >> 1;
  barrett_p_ = std::make_unique<BigBarrett>(p_modulus_);

  inv_p_mod_q_.resize(q_primes_.size());
  inv_qlast_mod_q_.resize(q_primes_.size());
  for (std::size_t l = 0; l < q_primes_.size(); ++l) {
    inv_p_mod_q_[l] = (p_modulus_ % q_ladder_[l]).inv_mod(q_ladder_[l]);
    if (l >= 1) {
      inv_qlast_mod_q_[l] = BigUInt(q_primes_[l]).inv_mod(q_ladder_[l - 1]);
    }
  }

  generate_keys();
}

// ---------------------------------------------------------------------------
// Lazily-built per-level machinery
// ---------------------------------------------------------------------------

const BigBarrett& BigBackend::barrett(int level) const {
  auto& slot = barrett_[level];
  if (!slot) slot = std::make_unique<BigBarrett>(q_ladder_[level]);
  return *slot;
}

const BigBarrett& BigBackend::barrett_aux(int level) const {
  auto& slot = barrett_aux_[level];
  if (!slot) {
    slot = std::make_unique<BigBarrett>(q_ladder_[level] * p_modulus_);
  }
  return *slot;
}

const BigNtt& BigBackend::ntt(int level) const {
  auto& slot = ntt_[level];
  if (!slot) {
    std::vector<std::uint64_t> factors(q_primes_.begin(),
                                       q_primes_.begin() + level + 1);
    slot = std::make_unique<BigNtt>(params_.degree, factors);
  }
  return *slot;
}

const BigNtt& BigBackend::ntt_aux(int level) const {
  auto& slot = ntt_aux_[level];
  if (!slot) {
    std::vector<std::uint64_t> factors(q_primes_.begin(),
                                       q_primes_.begin() + level + 1);
    factors.insert(factors.end(), special_primes_.begin(),
                   special_primes_.end());
    slot = std::make_unique<BigNtt>(params_.degree, factors);
  }
  return *slot;
}

const BigUInt& BigBackend::level_modulus(int level) const {
  PPHE_CHECK(level >= 0 && level <= max_level(), "level out of range");
  return q_ladder_[level];
}

// ---------------------------------------------------------------------------
// Poly helpers
// ---------------------------------------------------------------------------

BigPoly BigBackend::zero_poly(int level, bool ntt_form) const {
  BigPoly p;
  p.coeffs = PooledVec<BigUInt>(big_pool_, params_.degree);
  // A recycled buffer keeps its previous contents; reset explicitly.
  std::fill(p.coeffs.begin(), p.coeffs.end(), BigUInt());
  p.ntt = ntt_form;
  p.level = level;
  return p;
}

void BigBackend::to_ntt(BigPoly& p) const {
  if (p.ntt) return;
  Stopwatch sw;
  ntt(p.level).forward(p.coeffs);
  ParallelSim::global().record_serial(sw.seconds());
  p.ntt = true;
}

void BigBackend::to_coeff(BigPoly& p) const {
  if (!p.ntt) return;
  Stopwatch sw;
  ntt(p.level).inverse(p.coeffs);
  ParallelSim::global().record_serial(sw.seconds());
  p.ntt = false;
}

PooledVec<BigUInt> BigBackend::lift_signed_mod(
    std::span<const std::int64_t> coeffs, const BigUInt& modulus) const {
  PooledVec<BigUInt> out(big_pool_, coeffs.size());
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    const std::int64_t v = coeffs[i];
    if (v >= 0) {
      out[i] = BigUInt(static_cast<std::uint64_t>(v)) % modulus;
    } else {
      out[i] = modulus - (BigUInt(static_cast<std::uint64_t>(-v)) % modulus);
      if (out[i] == modulus) out[i] = BigUInt();
    }
  }
  return out;
}

BigPoly BigBackend::lift_signed(std::span<const std::int64_t> coeffs,
                                int level) const {
  PPHE_CHECK(coeffs.size() == params_.degree, "coefficient count mismatch");
  BigPoly p;
  p.coeffs = lift_signed_mod(coeffs, q_ladder_[level]);
  p.ntt = false;
  p.level = level;
  return p;
}

BigUInt BigBackend::uniform_below_big(const BigUInt& bound) const {
  const std::size_t bits = bound.bit_length();
  const std::size_t limbs = (bits + 63) / 64;
  for (;;) {
    BigUInt candidate;
    for (std::size_t i = 0; i < limbs; ++i) {
      candidate = (candidate << 64) + BigUInt(prng_.next_u64());
    }
    candidate = candidate >> (limbs * 64 - bits);
    if (candidate < bound) return candidate;
  }
}

BigPoly BigBackend::automorphism(const BigPoly& p,
                                 std::uint64_t exponent) const {
  PPHE_CHECK(!p.ntt, "automorphism expects coefficient form");
  const std::size_t n = params_.degree;
  const std::size_t two_n = 2 * n;
  const BigUInt& q = q_ladder_[p.level];
  BigPoly out = zero_poly(p.level, false);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i * exponent) % two_n;
    if (j < n) {
      out.coeffs[j] = p.coeffs[i];
    } else {
      out.coeffs[j - n] =
          p.coeffs[i].is_zero() ? BigUInt() : q - p.coeffs[i];
    }
  }
  return out;
}

void BigBackend::add_inplace(BigPoly& a, const BigPoly& b) const {
  PPHE_CHECK(a.ntt == b.ntt && a.level == b.level,
             "poly mismatch in BigBackend add");
  Stopwatch sw;
  const BigBarrett& bar = barrett(a.level);
  for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
    a.coeffs[i] = bar.addmod(a.coeffs[i], b.coeffs[i]);
  }
  ParallelSim::global().record_serial(sw.seconds());
}

void BigBackend::negate_inplace(BigPoly& a) const {
  const BigBarrett& bar = barrett(a.level);
  for (auto& c : a.coeffs) c = bar.negmod(c);
}

BigPoly BigBackend::pointwise(const BigPoly& a, const BigPoly& b) const {
  PPHE_CHECK(a.ntt && b.ntt && a.level == b.level,
             "pointwise product expects NTT form at the same level");
  Stopwatch sw;
  const BigBarrett& bar = barrett(a.level);
  BigPoly out = zero_poly(a.level, true);
  for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
    out.coeffs[i] = bar.mulmod(a.coeffs[i], b.coeffs[i]);
  }
  ParallelSim::global().record_serial(sw.seconds());
  return out;
}

std::uint64_t BigBackend::rotation_exponent(int step) const {
  const auto slots = static_cast<long long>(slot_count());
  long long s = step % slots;
  if (s < 0) s += slots;
  PPHE_CHECK(s != 0, "rotation step must be non-zero modulo slot count");
  const std::uint64_t two_n = 2 * params_.degree;
  std::uint64_t g = 1;
  for (long long i = 0; i < s; ++i) g = (g * 5) % two_n;
  return g;
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

void BigBackend::generate_keys() {
  const int top = max_level();
  const auto s = sample_hwt(prng_, params_.degree, params_.hamming_weight);
  sk_signed_.assign(s.begin(), s.end());

  // Public key mod Q_L.
  pk_a_ = zero_poly(top, true);
  for (auto& c : pk_a_.coeffs) c = uniform_below_big(q_ladder_[top]);
  BigPoly s_ntt = lift_signed(sk_signed_, top);
  to_ntt(s_ntt);
  BigPoly e = lift_signed(
      sample_gaussian(prng_, params_.degree, params_.noise_sigma), top);
  to_ntt(e);
  pk_b_ = pointwise(pk_a_, s_ntt);
  negate_inplace(pk_b_);
  add_inplace(pk_b_, e);

  // Relinearization key targets s^2 (computed exactly from the signed key:
  // negacyclic convolution of the sparse +-1 vector, coefficients stay tiny).
  const std::size_t n = params_.degree;
  std::vector<std::int64_t> s2(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (sk_signed_[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (sk_signed_[j] == 0) continue;
      const std::int64_t prod = sk_signed_[i] * sk_signed_[j];
      const std::size_t k = i + j;
      if (k < n) {
        s2[k] += prod;
      } else {
        s2[k - n] -= prod;
      }
    }
  }
  const BigUInt aux = q_ladder_[top] * p_modulus_;
  auto s2_aux = lift_signed_mod(s2, aux);
  Stopwatch sw;
  ntt_aux(top).forward(s2_aux);
  ParallelSim::global().record_serial(sw.seconds());
  relin_key_ = make_ksw_key(s2_aux);
}

BigBackend::KswKey BigBackend::make_ksw_key(
    std::span<const BigUInt> target_ntt_aux) const {
  const int top = max_level();
  const BigUInt aux = q_ladder_[top] * p_modulus_;
  const BigBarrett& bar = barrett_aux(top);
  const BigNtt& transform = ntt_aux(top);
  const std::size_t n = params_.degree;

  KswKey key;
  key.a = BigPoly{PooledVec<BigUInt>(big_pool_, n), true, top};
  key.b = BigPoly{PooledVec<BigUInt>(big_pool_, n), true, top};
  for (auto& c : key.a.coeffs) c = uniform_below_big(aux);

  auto s_aux = lift_signed_mod(sk_signed_, aux);
  transform.forward(s_aux);
  auto e_aux = lift_signed_mod(
      sample_gaussian(prng_, params_.degree, params_.noise_sigma), aux);
  transform.forward(e_aux);

  // b = -a*s + e + P*target  (mod Q_L * P), all in NTT form.
  const BigUInt p_red = p_modulus_ % aux;
  for (std::size_t i = 0; i < n; ++i) {
    BigUInt v = bar.mulmod(key.a.coeffs[i], s_aux[i]);
    v = bar.submod(e_aux[i], v);
    v = bar.addmod(v, bar.mulmod(p_red, target_ntt_aux[i]));
    key.b.coeffs[i] = v;
  }
  return key;
}

const BigBackend::KswKey& BigBackend::key_at_level(const KswKey& key,
                                                   int level) const {
  const int top = max_level();
  if (level == top) return key;
  // Reduce the top-level key to Q_level * P (cached per level). Valid because
  // Q_level*P divides Q_L*P; NTT forms are recomputed under the new modulus.
  auto& cache = key_cache_[&key];
  auto it = cache.find(level);
  if (it == cache.end()) {
    const BigBarrett& bar = barrett_aux(level);
    const BigNtt& transform = ntt_aux(level);
    const BigNtt& top_transform = ntt_aux(top);
    KswKey r;
    r.a = BigPoly{{}, false, level};
    r.b = BigPoly{{}, false, level};
    r.a.coeffs = key.a.coeffs;
    r.b.coeffs = key.b.coeffs;
    top_transform.inverse(r.a.coeffs);
    top_transform.inverse(r.b.coeffs);
    for (auto& c : r.a.coeffs) c = reduce_wide(bar, c);
    for (auto& c : r.b.coeffs) c = reduce_wide(bar, c);
    transform.forward(r.a.coeffs);
    transform.forward(r.b.coeffs);
    r.a.ntt = r.b.ntt = true;
    it = cache.emplace(level, std::move(r)).first;
  }
  return it->second;
}

PooledVec<BigUInt> BigBackend::ksw_decompose(const BigPoly& d) const {
  PPHE_CHECK(!d.ntt, "ksw_decompose expects coefficient form");
  trace::Span span("ksw_decompose", "kernel");
  span.attr("level", d.level);
  const int level = d.level;
  const std::size_t n = params_.degree;
  const BigUInt aux = q_ladder_[level] * p_modulus_;
  const BigNtt& transform = ntt_aux(level);
  const BigUInt& q_l = q_ladder_[level];
  const BigUInt half_q = q_l >> 1;

  Stopwatch sw;
  // Centered lift of d from Q_level to Q_level*P: residues above Q_level/2
  // represent negative values and must stay small in the wider ring.
  // Scratch buffers cycle through the backend's pool (every element is
  // overwritten, so recycled contents are harmless).
  PooledVec<BigUInt> lifted(big_pool_, n);
  const BigUInt lift_offset = aux - q_l;  // == (P-1) * Q_level
  for (std::size_t i = 0; i < n; ++i) {
    lifted[i] =
        d.coeffs[i] > half_q ? d.coeffs[i] + lift_offset : d.coeffs[i];
  }
  transform.forward(lifted);
  ParallelSim::global().record_serial(sw.seconds());
  return lifted;
}

BigBackend::BigExt BigBackend::ext_zero(int level) const {
  const std::size_t n = params_.degree;
  BigExt ext{PooledVec<BigUInt>(big_pool_, n), PooledVec<BigUInt>(big_pool_, n),
             level};
  for (auto& v : ext.c0) v = 0;  // pooled slabs recycle old contents
  for (auto& v : ext.c1) v = 0;
  return ext;
}

void BigBackend::ksw_inner_prod(const PooledVec<BigUInt>& digit,
                                const KswKey& key, BigExt& acc) const {
  OpScope op(*this, OpKind::kKswInner);
  op.attr("level", acc.level);
  const std::size_t n = params_.degree;
  const BigBarrett& bar = barrett_aux(acc.level);
  const KswKey& k = key_at_level(key, acc.level);
  Stopwatch sw;
  for (std::size_t i = 0; i < n; ++i) {
    acc.c0[i] = bar.addmod(acc.c0[i], bar.mulmod(digit[i], k.b.coeffs[i]));
    acc.c1[i] = bar.addmod(acc.c1[i], bar.mulmod(digit[i], k.a.coeffs[i]));
  }
  ParallelSim::global().record_serial(sw.seconds());
}

std::pair<BigPoly, BigPoly> BigBackend::ksw_mod_down(BigExt acc) const {
  OpScope op(*this, OpKind::kModDown);
  op.attr("level", acc.level);
  const int level = acc.level;
  const std::size_t n = params_.degree;
  const BigNtt& transform = ntt_aux(level);
  Stopwatch sw;
  transform.inverse(acc.c0);
  transform.inverse(acc.c1);

  // Mod-down: out = round(acc / P) mod Q_level.
  const BigBarrett& bar_q = barrett(level);
  std::pair<BigPoly, BigPoly> out{zero_poly(level, false),
                                  zero_poly(level, false)};
  for (int comp = 0; comp < 2; ++comp) {
    auto& a = comp == 0 ? acc.c0 : acc.c1;
    auto& dst = comp == 0 ? out.first : out.second;
    for (std::size_t i = 0; i < n; ++i) {
      BigUInt x = a[i] + half_p_;
      const BigUInt r = reduce_wide(*barrett_p_, x);
      x -= r;  // divisible by P
      const BigUInt x_mod_q = reduce_wide(bar_q, x);
      dst.coeffs[i] = bar_q.mulmod(x_mod_q, inv_p_mod_q_[level]);
    }
  }
  ParallelSim::global().record_serial(sw.seconds());
  return out;
}

std::pair<BigPoly, BigPoly> BigBackend::key_switch(const BigPoly& d,
                                                   const KswKey& key) const {
  trace::Span span("key_switch", "kernel");
  span.attr("level", d.level);
  PooledVec<BigUInt> digit = ksw_decompose(d);
  BigExt acc = ext_zero(d.level);
  ksw_inner_prod(digit, key, acc);
  return ksw_mod_down(std::move(acc));
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

Ciphertext BigBackend::wrap(std::vector<BigPoly> polys, double scale,
                            int level) const {
  auto impl = std::make_shared<BigCtBody>();
  const std::size_t size = polys.size();
  impl->polys = std::move(polys);
  return Ciphertext(std::move(impl), scale, level, size);
}

Plaintext BigBackend::encode(std::span<const double> values, double scale,
                             int level) const {
  OpScope op(*this, OpKind::kEncode);
  op.attr("level", level);
  PPHE_CHECK(level >= 0 && level <= max_level(), "level out of range");
  const auto coeffs = encoder_.encode(values, scale);
  BigPoly p = lift_signed(coeffs, level);
  to_ntt(p);
  auto impl = std::make_shared<BigPtBody>();
  impl->poly = std::move(p);
  return Plaintext(std::move(impl), scale, level);
}

Ciphertext BigBackend::encrypt(const Plaintext& pt) const {
  OpScope op(*this, OpKind::kEncrypt);
  op.attr("level", pt.level());
  const BigPtBody& ptb = body(pt);
  const int level = pt.level();
  const int top = max_level();

  const auto u = sample_ternary(prng_, params_.degree);
  std::vector<std::int64_t> u64v(u.begin(), u.end());
  BigPoly u_poly = lift_signed(u64v, top);
  to_ntt(u_poly);
  BigPoly e0 = lift_signed(
      sample_gaussian(prng_, params_.degree, params_.noise_sigma), top);
  to_ntt(e0);
  BigPoly e1 = lift_signed(
      sample_gaussian(prng_, params_.degree, params_.noise_sigma), top);
  to_ntt(e1);

  BigPoly c0 = pointwise(pk_b_, u_poly);
  add_inplace(c0, e0);
  BigPoly c1 = pointwise(pk_a_, u_poly);
  add_inplace(c1, e1);

  std::vector<BigPoly> polys;
  polys.push_back(std::move(c0));
  polys.push_back(std::move(c1));
  Ciphertext fresh = wrap(std::move(polys), pt.scale(), top);
  if (level != top) fresh = mod_drop_to(fresh, level);
  // Add the message at the target level.
  BigCtBody with_m = body(fresh);
  add_inplace(with_m.polys[0], ptb.poly);
  return wrap(std::move(with_m.polys), pt.scale(), level);
}

std::vector<double> BigBackend::decrypt_coefficients(
    const Ciphertext& ct) const {
  const BigCtBody& c = body(ct);
  const int level = ct.level();
  BigPoly s_ntt = lift_signed(sk_signed_, level);
  to_ntt(s_ntt);

  BigPoly m = c.polys[0];
  PPHE_CHECK(m.ntt, "ciphertexts are stored in NTT form");
  BigPoly s_power = s_ntt;
  for (std::size_t t = 1; t < c.polys.size(); ++t) {
    BigPoly term = pointwise(c.polys[t], s_power);
    add_inplace(m, term);
    if (t + 1 < c.polys.size()) s_power = pointwise(s_power, s_ntt);
  }
  to_coeff(m);

  const BigUInt& q = q_ladder_[level];
  const BigUInt half_q = q >> 1;
  std::vector<double> out(params_.degree);
  for (std::size_t i = 0; i < params_.degree; ++i) {
    const BigUInt& v = m.coeffs[i];
    out[i] = v > half_q ? -(q - v).to_double() : v.to_double();
  }
  return out;
}

std::vector<double> BigBackend::decrypt_decode(const Ciphertext& ct) const {
  OpScope op(*this, OpKind::kDecrypt, ct);
  const auto coeffs = decrypt_coefficients(ct);
  return encoder_.decode_real(coeffs, ct.scale());
}

Ciphertext BigBackend::add(const Ciphertext& a, const Ciphertext& b) const {
  OpScope op(*this, OpKind::kAdd, a);
  const Ciphertext* pa = &a;
  const Ciphertext* pb = &b;
  Ciphertext dropped;
  if (a.level() != b.level()) {
    if (a.level() > b.level()) {
      dropped = mod_drop_to(a, b.level());
      pa = &dropped;
    } else {
      dropped = mod_drop_to(b, a.level());
      pb = &dropped;
    }
  }
  check_same_scale("add", pa->scale(), pb->scale());
  const BigCtBody& ba = body(*pa);
  const BigCtBody& bb = body(*pb);
  const std::size_t size = std::max(ba.polys.size(), bb.polys.size());
  std::vector<BigPoly> polys;
  polys.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (i < ba.polys.size() && i < bb.polys.size()) {
      BigPoly p = ba.polys[i];
      add_inplace(p, bb.polys[i]);
      polys.push_back(std::move(p));
    } else if (i < ba.polys.size()) {
      polys.push_back(ba.polys[i]);
    } else {
      polys.push_back(bb.polys[i]);
    }
  }
  return wrap(std::move(polys), pa->scale(), pa->level());
}

Ciphertext BigBackend::sub(const Ciphertext& a, const Ciphertext& b) const {
  OpScope op(*this, OpKind::kSub, a);
  return add(a, negate(b));
}

Ciphertext BigBackend::negate(const Ciphertext& a) const {
  OpScope op(*this, OpKind::kNegate, a);
  std::vector<BigPoly> polys = body(a).polys;
  for (auto& p : polys) negate_inplace(p);
  return wrap(std::move(polys), a.scale(), a.level());
}

Ciphertext BigBackend::add_plain(const Ciphertext& a,
                                 const Plaintext& b) const {
  OpScope op(*this, OpKind::kAddPlain, a);
  PPHE_CHECK_CODE(b.level() == a.level(), ErrorCode::kLevelMismatch,
                  "add_plain: BigBackend requires matching encode level "
                  "(ciphertext level " +
                      std::to_string(a.level()) + ", plaintext level " +
                      std::to_string(b.level()) + ")");
  check_same_scale("add_plain", a.scale(), b.scale());
  std::vector<BigPoly> polys = body(a).polys;
  add_inplace(polys[0], body(b).poly);
  return wrap(std::move(polys), a.scale(), a.level());
}

Ciphertext BigBackend::multiply(const Ciphertext& a,
                                const Ciphertext& b) const {
  OpScope op(*this, OpKind::kMultiply, a);
  check_mult_capacity("multiply", a, b);
  const Ciphertext* pa = &a;
  const Ciphertext* pb = &b;
  Ciphertext dropped;
  if (a.level() != b.level()) {
    if (a.level() > b.level()) {
      dropped = mod_drop_to(a, b.level());
      pa = &dropped;
    } else {
      dropped = mod_drop_to(b, a.level());
      pb = &dropped;
    }
  }
  const BigCtBody& ba = body(*pa);
  const BigCtBody& bb = body(*pb);
  PPHE_CHECK(ba.polys.size() == 2 && bb.polys.size() == 2,
             "multiply expects size-2 ciphertexts (relinearize first)");

  BigPoly d0 = pointwise(ba.polys[0], bb.polys[0]);
  BigPoly d1 = pointwise(ba.polys[0], bb.polys[1]);
  BigPoly cross = pointwise(ba.polys[1], bb.polys[0]);
  add_inplace(d1, cross);
  BigPoly d2 = pointwise(ba.polys[1], bb.polys[1]);

  std::vector<BigPoly> polys;
  polys.push_back(std::move(d0));
  polys.push_back(std::move(d1));
  polys.push_back(std::move(d2));
  return wrap(std::move(polys), pa->scale() * pb->scale(), pa->level());
}

Ciphertext BigBackend::multiply_plain(const Ciphertext& a,
                                      const Plaintext& b) const {
  OpScope op(*this, OpKind::kMultiplyPlain, a);
  PPHE_CHECK(b.level() == a.level(),
             "multiply_plain: BigBackend requires matching encode level "
             "(ciphertext level " +
                 std::to_string(a.level()) + ", plaintext level " +
                 std::to_string(b.level()) + ")");
  const BigCtBody& ba = body(a);
  std::vector<BigPoly> polys;
  polys.reserve(ba.polys.size());
  for (const auto& p : ba.polys) polys.push_back(pointwise(p, body(b).poly));
  return wrap(std::move(polys), a.scale() * b.scale(), a.level());
}

Ciphertext BigBackend::relinearize(const Ciphertext& a) const {
  OpScope op(*this, OpKind::kRelinearize, a);
  const BigCtBody& ba = body(a);
  if (ba.polys.size() == 2) return a;
  PPHE_CHECK(ba.polys.size() == 3, "can only relinearize size-3 ciphertexts");

  BigPoly d2 = ba.polys[2];
  to_coeff(d2);
  auto [k0, k1] = key_switch(d2, relin_key_);
  to_ntt(k0);
  to_ntt(k1);
  add_inplace(k0, ba.polys[0]);
  add_inplace(k1, ba.polys[1]);
  std::vector<BigPoly> polys;
  polys.push_back(std::move(k0));
  polys.push_back(std::move(k1));
  return wrap(std::move(polys), a.scale(), a.level());
}

Ciphertext BigBackend::rescale(const Ciphertext& a) const {
  OpScope op(*this, OpKind::kRescale, a);
  PPHE_CHECK(a.level() > 0, "no prime left to rescale by");
  const BigCtBody& ba = body(a);
  const int level = a.level();
  const std::uint64_t q_last = q_primes_[level];
  const std::uint64_t half = q_last >> 1;
  const BigBarrett& bar_next = barrett(level - 1);
  const BigUInt& inv = inv_qlast_mod_q_[level];

  Stopwatch sw;
  std::vector<BigPoly> polys;
  polys.reserve(ba.polys.size());
  for (const auto& src_poly : ba.polys) {
    BigPoly p = src_poly;
    to_coeff(p);
    BigPoly out = zero_poly(level - 1, false);
    for (std::size_t i = 0; i < p.coeffs.size(); ++i) {
      BigUInt x = p.coeffs[i] + BigUInt(half);
      const std::uint64_t r = x.mod_u64(q_last);
      x -= BigUInt(r);  // divisible by q_last
      const BigUInt x_mod = reduce_wide(bar_next, x);
      out.coeffs[i] = bar_next.mulmod(x_mod, inv);
    }
    to_ntt(out);
    polys.push_back(std::move(out));
  }
  ParallelSim::global().record_serial(sw.seconds());
  const double new_scale = a.scale() / static_cast<double>(q_last);
  return wrap(std::move(polys), new_scale, level - 1);
}

Ciphertext BigBackend::mod_drop_to(const Ciphertext& a, int level) const {
  OpScope op(*this, OpKind::kModDrop, a);
  op.attr("target_level", level);
  PPHE_CHECK(level >= 0 && level <= a.level(), "invalid mod-drop target");
  if (level == a.level()) return a;
  const BigCtBody& ba = body(a);
  std::vector<BigPoly> polys;
  polys.reserve(ba.polys.size());
  const BigBarrett& bar = barrett(level);
  for (const auto& src_poly : ba.polys) {
    BigPoly p = src_poly;
    to_coeff(p);
    BigPoly out = zero_poly(level, false);
    for (std::size_t i = 0; i < p.coeffs.size(); ++i) {
      out.coeffs[i] = reduce_wide(bar, p.coeffs[i]);
    }
    to_ntt(out);
    polys.push_back(std::move(out));
  }
  return wrap(std::move(polys), a.scale(), level);
}

Ciphertext BigBackend::apply_automorphism_ct(const Ciphertext& a,
                                             std::uint64_t exponent,
                                             const KswKey& key,
                                             OpKind op_kind) const {
  OpScope op(*this, op_kind, a);
  const BigCtBody& ba = body(a);
  PPHE_CHECK(ba.polys.size() == 2,
             "rotate expects size-2 ciphertexts (relinearize first)");
  BigPoly c0 = ba.polys[0];
  BigPoly c1 = ba.polys[1];
  to_coeff(c0);
  to_coeff(c1);
  BigPoly c0g = automorphism(c0, exponent);
  BigPoly c1g = automorphism(c1, exponent);
  auto [k0, k1] = key_switch(c1g, key);
  add_inplace(k0, c0g);
  to_ntt(k0);
  to_ntt(k1);
  std::vector<BigPoly> polys;
  polys.push_back(std::move(k0));
  polys.push_back(std::move(k1));
  return wrap(std::move(polys), a.scale(), a.level());
}

Ciphertext BigBackend::rotate(const Ciphertext& a, int step) const {
  const std::uint64_t exponent = rotation_exponent(step);
  auto it = galois_keys_.find(exponent);
  PPHE_CHECK(it != galois_keys_.end(),
             "missing Galois key for step " + std::to_string(step) +
                 "; call ensure_galois_keys first");
  return apply_automorphism_ct(a, exponent, it->second, OpKind::kRotate);
}

void BigBackend::ensure_galois_keys(std::span<const int> steps) {
  OpScope op(*this, OpKind::kGaloisKeys);
  op.attr("steps", static_cast<double>(steps.size()));
  const int top = max_level();
  const BigUInt aux = q_ladder_[top] * p_modulus_;
  const std::size_t n = params_.degree;
  const std::size_t two_n = 2 * n;
  for (const int step : steps) {
    const std::uint64_t exponent =
        step == 0 ? 2 * params_.degree - 1 : rotation_exponent(step);
    if (galois_keys_.count(exponent) != 0) continue;
    // Target: s composed with the automorphism, lifted mod Q_L * P.
    std::vector<std::int64_t> s_g(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (sk_signed_[i] == 0) continue;
      const std::size_t j = (i * exponent) % two_n;
      if (j < n) {
        s_g[j] += sk_signed_[i];
      } else {
        s_g[j - n] -= sk_signed_[i];
      }
    }
    auto target = lift_signed_mod(s_g, aux);
    ntt_aux(top).forward(target);
    galois_keys_.emplace(exponent, make_ksw_key(target));
  }
}

}  // namespace pphe
