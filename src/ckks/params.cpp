#include "ckks/params.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace pphe {

int CkksParams::log_q() const {
  return std::accumulate(q_bit_sizes.begin(), q_bit_sizes.end(), 0);
}

int CkksParams::log_q_with_special() const {
  return log_q() + special_bit_size;
}

void CkksParams::validate() const {
  PPHE_CHECK(degree >= 8 && (degree & (degree - 1)) == 0,
             "degree must be a power of two, at least 8");
  PPHE_CHECK(!q_bit_sizes.empty(), "at least one ciphertext prime required");
  for (const int bits : q_bit_sizes) {
    PPHE_CHECK(bits >= 12 && bits <= 60, "prime sizes must be in [12, 60]");
  }
  PPHE_CHECK(special_bit_size >= *std::max_element(q_bit_sizes.begin(),
                                                   q_bit_sizes.end()),
             "key-switching prime must be at least as wide as every "
             "ciphertext prime (noise bound of the RNS decomposition)");
  PPHE_CHECK(special_bit_size <= 60, "special prime size must be <= 60");
  PPHE_CHECK(scale >= 2.0, "scale must be at least 2");
  PPHE_CHECK(hamming_weight >= 1 && hamming_weight <= degree,
             "invalid secret-key Hamming weight");
  PPHE_CHECK(noise_sigma > 0.0, "noise sigma must be positive");
}

std::string CkksParams::describe() const {
  std::ostringstream os;
  os << "N=" << degree << " logq=" << log_q() << "(+" << special_bit_size
     << " special) L=" << q_bit_sizes.size() << " Delta=2^"
     << std::log2(scale) << " h=" << hamming_weight << " sigma=" << noise_sigma;
  return os.str();
}

CkksParams CkksParams::paper_table2() {
  CkksParams p;
  p.degree = std::size_t{1} << 14;
  // q = [40, 26, ..., 26, 40]: log q = 40 + 11*26 + 40 = 366 (Table II).
  // The trailing 40-bit modulus is the key-switching prime; the 12 leading
  // primes carry the ciphertext through the networks' multiplicative depth.
  p.q_bit_sizes.assign(12, 26);
  p.q_bit_sizes.front() = 40;
  p.special_bit_size = 40;
  p.scale = 67108864.0;  // 2^26
  return p;
}

CkksParams CkksParams::fast_profile() {
  CkksParams p = paper_table2();
  p.degree = std::size_t{1} << 12;
  return p;
}

CkksParams CkksParams::test_small() {
  CkksParams p;
  p.degree = std::size_t{1} << 11;
  p.q_bit_sizes = {40, 26, 26, 26, 26};
  p.special_bit_size = 40;
  p.scale = 67108864.0;
  p.hamming_weight = 32;
  return p;
}

CkksParams CkksParams::with_chain_length(std::size_t length,
                                         std::size_t degree,
                                         std::size_t depth_needed) {
  PPHE_CHECK(length >= 2, "RNS chains need at least 2 primes; chain length 1 "
                          "is the multiprecision (non-RNS) backend");
  PPHE_CHECK(depth_needed >= 1, "depth must be at least 1");
  CkksParams p;
  p.degree = degree;
  if (length - 1 >= depth_needed + 1) {
    // Enough levels for one rescale per multiplication at the paper's Δ=2^26.
    p.q_bit_sizes.assign(length, 26);
    p.q_bit_sizes.front() = 40;
    p.scale = 67108864.0;
  } else {
    // Short chain: wide (58-bit) primes with lazy rescaling. The scale must
    // shrink so `depth_needed` multiplications fit in the total modulus
    // budget — the precision cost of short chains the paper's Tables IV/VI
    // do not report (see EXPERIMENTS.md).
    p.q_bit_sizes.assign(length, 58);
    const int budget = 58 * static_cast<int>(length) - 24;
    int bits = budget / static_cast<int>(depth_needed + 1);
    bits = std::clamp(bits, 8, 26);
    p.scale = std::ldexp(1.0, bits);
  }
  p.special_bit_size = 60;
  return p;
}

}  // namespace pphe
