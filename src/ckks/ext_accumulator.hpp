#pragma once

#include <cstdint>
#include <span>

#include "math/poly_buffer.hpp"

namespace pphe {

/// Polynomial in double-CRT form: residue channels stored as one contiguous
/// 64-byte-aligned `channels x N` slab (PolyBuffer) checked out of the
/// backend's arena; `ntt` says whether channels hold NTT (evaluation) or
/// coefficient representation. Channels 0..level are the ciphertext primes
/// q_0..q_level; key material carries one extra channel for the
/// key-switching prime p.
struct RnsPoly {
  PolyBuffer buf;
  bool ntt = false;
  /// True when the LAST channel is the key-switching prime p rather than the
  /// next ciphertext prime (key material and key-switching accumulators).
  bool has_special = false;

  std::size_t channels() const { return buf.channels(); }
  std::span<std::uint64_t> ch(std::size_t c) { return buf[c]; }
  std::span<const std::uint64_t> ch(std::size_t c) const { return buf[c]; }
};

/// Key-switch accumulator in the raised (extended) basis Q ∪ {p}: both
/// output components of one or more key-switch inner products, in NTT form,
/// BEFORE the mod-down epilogue. Double hoisting (DESIGN.md §14) works by
/// summing many inner products — optionally scaled by plaintext weights —
/// into one of these and paying RnsBackend::ksw_mod_down once for the whole
/// sum instead of once per rotation.
struct ExtAccumulator {
  RnsPoly c0, c1;  // q channels + special, NTT form
  int level = 0;

  bool valid() const { return c0.buf.channels() != 0; }
};

}  // namespace pphe
