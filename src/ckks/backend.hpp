#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ckks/params.hpp"
#include "common/check.hpp"
#include "common/trace.hpp"
#include "math/poly_buffer.hpp"

namespace pphe {

/// Every homomorphic primitive the backends expose, as a dense enum: the op
/// counters index an atomic array by OpKind (lock-free) instead of a
/// string-keyed map under a mutex, and the tracer names spans via op_name().
enum class OpKind : std::uint8_t {
  kEncode,
  kEncrypt,
  kDecrypt,
  kAdd,
  kSub,
  kNegate,
  kAddPlain,
  kMultiply,
  kMultiplyPlain,
  kMultiplyAcc,
  kMultiplyPlainAcc,
  kRelinearize,
  kRescale,
  kModDrop,
  kRotate,
  kRotateHoisted,
  kConjugate,
  kGaloisKeys,
  // Representation changes (NTT passes): counted by RnsBackend whenever a
  // polynomial actually crosses between coefficient and evaluation domain,
  // the per-op kernel cost every latency above decomposes into.
  kNttForward,
  kNttInverse,
  // Phased key-switching (DESIGN.md §14): one kKswInner per raised-basis
  // inner product against a switching key (== one digit decomposition
  // consumed), one kModDown per mod-down epilogue. Double hoisting shows up
  // in these counters as kModDown dropping from one-per-rotation to
  // one-per-giant-group.
  kKswInner,
  kModDown,
};
inline constexpr std::size_t kOpKindCount =
    static_cast<std::size_t>(OpKind::kModDown) + 1;

/// Stable display/report name (these strings are the legacy op_counts() keys;
/// bench tables and tests key on them).
constexpr const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kEncode: return "encode";
    case OpKind::kEncrypt: return "encrypt";
    case OpKind::kDecrypt: return "decrypt";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kNegate: return "negate";
    case OpKind::kAddPlain: return "add_plain";
    case OpKind::kMultiply: return "multiply";
    case OpKind::kMultiplyPlain: return "multiply_plain";
    case OpKind::kMultiplyAcc: return "multiply_acc";
    case OpKind::kMultiplyPlainAcc: return "multiply_plain_acc";
    case OpKind::kRelinearize: return "relinearize";
    case OpKind::kRescale: return "rescale";
    case OpKind::kModDrop: return "mod_drop";
    case OpKind::kRotate: return "rotate";
    case OpKind::kRotateHoisted: return "rotate_hoisted";
    case OpKind::kConjugate: return "conjugate";
    case OpKind::kGaloisKeys: return "galois_keys";
    case OpKind::kNttForward: return "ntt_forward";
    case OpKind::kNttInverse: return "ntt_inverse";
    case OpKind::kKswInner: return "ksw_inner";
    case OpKind::kModDown: return "mod_down";
  }
  return "?";
}

/// Opaque ciphertext handle; the payload type belongs to the backend that
/// produced it (RnsBackend or BigBackend) and handles are not interchangeable
/// across backends. Scale/level/size are mirrored here so generic code (the
/// CNN-HE engine) can plan rescaling without knowing the representation.
class Ciphertext {
 public:
  Ciphertext() = default;
  Ciphertext(std::shared_ptr<void> impl, double scale, int level,
             std::size_t size)
      : impl_(std::move(impl)), scale_(scale), level_(level), size_(size) {}

  bool valid() const { return impl_ != nullptr; }
  double scale() const { return scale_; }
  /// Remaining rescale budget: index of the last usable ciphertext prime.
  int level() const { return level_; }
  /// Number of polynomial components (2 normally, 3 before relinearization).
  std::size_t size() const { return size_; }

  const std::shared_ptr<void>& impl() const { return impl_; }

 private:
  std::shared_ptr<void> impl_;
  double scale_ = 0.0;
  int level_ = 0;
  std::size_t size_ = 0;
};

/// Opaque plaintext (encoded polynomial) handle.
class Plaintext {
 public:
  Plaintext() = default;
  Plaintext(std::shared_ptr<void> impl, double scale, int level)
      : impl_(std::move(impl)), scale_(scale), level_(level) {}

  bool valid() const { return impl_ != nullptr; }
  double scale() const { return scale_; }
  int level() const { return level_; }
  const std::shared_ptr<void>& impl() const { return impl_; }

 private:
  std::shared_ptr<void> impl_;
  double scale_ = 0.0;
  int level_ = 0;
};

/// One term of a BSGS group: multiply the baby-rotated input by a plaintext
/// weight. `baby_step` is the FULL slot rotation (baby index already
/// multiplied by the layer's rotation multiplier); 0 means the unrotated
/// input. The pointed-to plaintext must outlive the linear_bsgs call.
struct BsgsTerm {
  int baby_step = 0;
  const Plaintext* weight = nullptr;
};

/// One giant group of a BSGS diagonal layer: the group's weighted baby sum
/// is rotated by `giant_step` (0 = no rotation) and added into the layer
/// output. Together the groups describe
///   out = sum_j rot(sum_b w_{j,b} * rot(x, baby_b), giant_j).
struct BsgsGroupSpec {
  int giant_step = 0;
  std::vector<BsgsTerm> terms;
};

/// Abstract CKKS evaluator: the primitives of §II of the paper (KeyGen at
/// construction, Encrypt/Decrypt, Add, Mult, Resc, Rot) plus the plaintext
/// variants every CNN-HE engine needs. Two implementations exist:
///
///  * RnsBackend  — CKKS-RNS (double-CRT), the paper's proposal;
///  * BigBackend  — single composite modulus with multiprecision coefficient
///                  arithmetic, the paper's non-RNS "CNN-HE" baseline.
///
/// Both own their key material (generated deterministically from the params
/// seed) so an experiment is one object; the pipeline example narrates the
/// client/cloud split explicitly.
class HeBackend {
 public:
  virtual ~HeBackend() = default;

  virtual std::string name() const = 0;
  virtual const CkksParams& params() const = 0;
  virtual std::size_t slot_count() const = 0;
  virtual int max_level() const = 0;
  /// Value of ciphertext prime q_level (what rescale at that level divides
  /// the scale by) — the level planner needs this to schedule rescales.
  virtual double level_prime(int level) const = 0;

  // --- encode / encrypt / decrypt -------------------------------------
  virtual Plaintext encode(std::span<const double> values, double scale,
                           int level) const = 0;
  virtual Ciphertext encrypt(const Plaintext& pt) const = 0;
  virtual std::vector<double> decrypt_decode(const Ciphertext& ct) const = 0;

  // --- homomorphic operations -----------------------------------------
  virtual Ciphertext add(const Ciphertext& a, const Ciphertext& b) const = 0;
  virtual Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const = 0;
  virtual Ciphertext add_plain(const Ciphertext& a,
                               const Plaintext& b) const = 0;
  virtual Ciphertext negate(const Ciphertext& a) const = 0;
  /// Tensor product WITHOUT relinearization (result has size 3); callers
  /// accumulate products and relinearize once (the deferred-relinearization
  /// optimization of DESIGN.md §6.1).
  virtual Ciphertext multiply(const Ciphertext& a,
                              const Ciphertext& b) const = 0;
  virtual Ciphertext multiply_plain(const Ciphertext& a,
                                    const Plaintext& b) const = 0;
  virtual Ciphertext relinearize(const Ciphertext& a) const = 0;
  virtual Ciphertext rescale(const Ciphertext& a) const = 0;
  /// Drops moduli without scaling (level alignment before mult).
  virtual Ciphertext mod_drop_to(const Ciphertext& a, int level) const = 0;
  /// Cyclic left rotation of the slot vector by `step` (may be negative).
  /// Requires the corresponding Galois key (ensure_galois_keys).
  virtual Ciphertext rotate(const Ciphertext& a, int step) const = 0;

  /// Rotations of the SAME ciphertext by several steps. Backends may hoist
  /// the shared key-switching work (decompose + NTT once, permute per step);
  /// the default just loops. Order of results matches `steps`. Steps that
  /// are 0 modulo the slot count return the input handle unchanged, and
  /// repeated steps return an alias of the first result — neither re-runs
  /// key switching (handles are immutable, so sharing is safe).
  virtual std::vector<Ciphertext> rotate_batch(
      const Ciphertext& a, std::span<const int> steps) const {
    std::vector<Ciphertext> out;
    out.reserve(steps.size());
    std::map<long long, std::size_t> seen;  // normalized step -> result index
    const long long slots = static_cast<long long>(slot_count());
    for (const int s : steps) {
      const long long r = ((s % slots) + slots) % slots;
      if (r == 0) {
        out.push_back(a);
        continue;
      }
      const auto it = seen.find(r);
      if (it != seen.end()) {
        out.push_back(out[it->second]);
        continue;
      }
      seen.emplace(r, out.size());
      out.push_back(rotate(a, s));
    }
    return out;
  }
  /// Braced-list convenience (`rotate_batch(ct, {1, 2})`); std::span gains
  /// an initializer_list constructor only in C++26.
  std::vector<Ciphertext> rotate_batch(const Ciphertext& a,
                                       std::initializer_list<int> steps) const {
    return rotate_batch(a, std::span<const int>(steps.begin(), steps.size()));
  }

  /// acc += a * b (tensor product accumulated without materializing the
  /// product): the hot operation of the diagonal method. If acc is invalid
  /// it becomes the product. Backends may override with a fused kernel.
  virtual void multiply_acc(Ciphertext& acc, const Ciphertext& a,
                            const Ciphertext& b) const {
    const Ciphertext prod = multiply(a, b);
    acc = acc.valid() ? add(acc, prod) : prod;
  }
  virtual void multiply_plain_acc(Ciphertext& acc, const Ciphertext& a,
                                  const Plaintext& b) const {
    const Ciphertext prod = multiply_plain(a, b);
    acc = acc.valid() ? add(acc, prod) : prod;
  }

  /// sum_i rot(cts[i], steps[i]) — the giant-step epilogue of a BSGS layer.
  /// Backends may defer the mod-down epilogue across all rotations and pay
  /// it once (double hoisting); the default rotates and adds. All inputs
  /// must share level, scale, and size 2; steps that are 0 modulo the slot
  /// count contribute the ciphertext unrotated.
  virtual Ciphertext rotate_sum(std::span<const Ciphertext> cts,
                                std::span<const int> steps) const {
    PPHE_CHECK(cts.size() == steps.size(),
               "rotate_sum: cts/steps size mismatch");
    Ciphertext total;
    const long long slots = static_cast<long long>(slot_count());
    for (std::size_t i = 0; i < cts.size(); ++i) {
      const long long r = ((steps[i] % slots) + slots) % slots;
      Ciphertext term = r == 0 ? cts[i] : rotate(cts[i], steps[i]);
      total = total.valid() ? add(total, term) : std::move(term);
    }
    return total;
  }

  /// True when linear_bsgs() is implemented (the planner uses this to pick
  /// the fused cost model before compiling weights).
  virtual bool supports_hoisted_bsgs() const { return false; }

  /// Fully fused BSGS diagonal layer over PLAINTEXT weights (double
  /// hoisting, DESIGN.md §14): accumulates every baby-step key-switch inner
  /// product in the raised basis Q∪{p} and pays one mod-down epilogue per
  /// giant group plus one for the layer, instead of one per rotation.
  /// Returns an invalid handle when the backend (or this particular operand
  /// set) does not support the fused path — callers must fall back to the
  /// rotate/multiply_plain_acc loop. The result is size 2 (no
  /// relinearization needed) at scale x.scale * weight_scale.
  virtual Ciphertext linear_bsgs(const Ciphertext& x,
                                 std::span<const BsgsGroupSpec> groups) const {
    (void)x;
    (void)groups;
    return {};
  }

  /// Ciphertext health validation: checks the handle's mirrored metadata and
  /// (in backends that override it) the payload's structural invariants —
  /// limb/channel layout vs level, NTT-form flags, residue ranges, and the
  /// wire integrity digest when the ciphertext was deserialized. Throws
  /// pphe::Error with a typed code (kIntegrity / kLevelMismatch /
  /// kScaleMismatch) on the first violated invariant; returns normally on a
  /// healthy ciphertext. HeModel::eval runs this on every branch input before
  /// touching the compiled plan (HeModelOptions::validate_inputs).
  virtual void validate_ciphertext(const Ciphertext& ct) const {
    PPHE_CHECK_CODE(ct.valid(), ErrorCode::kIntegrity,
                    "validate_ciphertext: empty ciphertext handle");
    PPHE_CHECK_CODE(ct.level() >= 0 && ct.level() <= max_level(),
                    ErrorCode::kLevelMismatch,
                    "validate_ciphertext: level " + std::to_string(ct.level()) +
                        " outside [0, " + std::to_string(max_level()) + "]");
    PPHE_CHECK_CODE(std::isfinite(ct.scale()) && ct.scale() > 0.0,
                    ErrorCode::kScaleMismatch,
                    "validate_ciphertext: non-positive or non-finite scale");
    PPHE_CHECK_CODE(ct.size() >= 2 && ct.size() <= 3, ErrorCode::kIntegrity,
                    "validate_ciphertext: component count " +
                        std::to_string(ct.size()) + " outside {2, 3}");
  }

  /// Deep-copies `ct` and lets `mutate` rewrite the raw limb words of one
  /// polynomial component — the fault harness's storage-corruption hook
  /// (fault::flip_limb). Backends whose payload is not word-addressable may
  /// return the ciphertext unchanged.
  virtual Ciphertext clone_mutate_limbs(
      const Ciphertext& ct,
      const std::function<void(std::span<std::uint64_t>)>& mutate) const {
    (void)mutate;
    return ct;
  }

  /// Pre-generates Galois keys for the given rotation steps (idempotent).
  virtual void ensure_galois_keys(std::span<const int> steps) = 0;
  void ensure_galois_keys(std::initializer_list<int> steps) {
    ensure_galois_keys(std::span<const int>(steps.begin(), steps.size()));
  }

  // --- convenience (non-virtual) ---------------------------------------
  /// Encodes at the ciphertext's own scale and level, then multiplies.
  Ciphertext multiply_scalar(const Ciphertext& a, double value) const {
    const Plaintext pt = encode_repeated(value, a.scale(), a.level());
    return multiply_plain(a, pt);
  }
  Ciphertext add_scalar(const Ciphertext& a, double value) const {
    const Plaintext pt = encode_repeated(value, a.scale(), a.level());
    return add_plain(a, pt);
  }
  Plaintext encode_repeated(double value, double scale, int level) const {
    const std::vector<double> v(slot_count(), value);
    return encode(v, scale, level);
  }

  // --- instrumentation --------------------------------------------------
  /// Snapshot of cumulative homomorphic-op counts since the last reset,
  /// rendered as the legacy `op name -> n` map view (bench tables and tests
  /// key on these strings). The live counters are lock-free atomics.
  std::map<std::string, std::uint64_t> op_counts() const {
    std::map<std::string, std::uint64_t> out;
    for (std::size_t i = 0; i < kOpKindCount; ++i) {
      const std::uint64_t n = op_counts_[i].load(std::memory_order_relaxed);
      if (n > 0) out[op_name(static_cast<OpKind>(i))] = n;
    }
    return out;
  }
  std::uint64_t op_count(OpKind kind) const {
    return op_counts_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  void reset_op_counts() {
    for (auto& c : op_counts_) c.store(0, std::memory_order_relaxed);
  }

  /// Allocation behaviour of the backend's polynomial arena (DESIGN.md
  /// §"Memory layout"). Steady-state multiply/rescale/rotate must report
  /// zero pool misses after warm-up.
  virtual MemStats mem_stats() const { return {}; }
  virtual void reset_mem_stats() const {}

 protected:
  /// Lock-free op counter bump (relaxed: counters are independent tallies,
  /// read only via whole-map snapshots).
  void count_op(OpKind kind) const {
    op_counts_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Counts the op AND opens a trace span named op_name(kind) in category
  /// "he" for its scope — the one-stop instrumentation every backend op
  /// starts with. Keeping count and span in a single object guarantees
  /// span-count/op-count parity, which trace_integration_test asserts.
  class OpScope {
   public:
    OpScope(const HeBackend& backend, OpKind kind)
        : span_(op_name(kind), "he") {
      backend.count_op(kind);
    }
    /// Convenience: record the level/scale/size of the primary operand.
    OpScope(const HeBackend& backend, OpKind kind, const Ciphertext& a)
        : OpScope(backend, kind) {
      if (span_.recording()) {
        span_.attr("level", a.level());
        span_.attr("scale_log2", std::log2(a.scale()));
        span_.attr("size", static_cast<double>(a.size()));
      }
    }
    void attr(const char* key, double value) { span_.attr(key, value); }

   private:
    trace::Span span_;
  };

  // --- precondition checks ---------------------------------------------
  /// Binary ciphertext ops need matching levels and (multiplicatively
  /// compatible) scales; violations used to produce silently wrong slots.
  /// `op` names the primitive in the failure message.
  void check_same_level(const char* op, const Ciphertext& a,
                        const Ciphertext& b) const {
    PPHE_CHECK_CODE(a.level() == b.level(), ErrorCode::kLevelMismatch,
                    std::string(op) + ": operand levels differ (lhs level " +
                        std::to_string(a.level()) + ", rhs level " +
                        std::to_string(b.level()) +
                        "); align with mod_drop_to first");
  }
  void check_same_scale(const char* op, double a_scale, double b_scale) const {
    const double rel = std::abs(a_scale - b_scale) /
                       std::max({std::abs(a_scale), std::abs(b_scale), 1.0});
    PPHE_CHECK_CODE(rel < 1e-9, ErrorCode::kScaleMismatch,
                    std::string(op) + ": operand scales differ (lhs 2^" +
                        std::to_string(std::log2(a_scale)) + ", rhs 2^" +
                        std::to_string(std::log2(b_scale)) +
                        "); rescale or re-encode to a common scale");
  }
  /// The product scale must fit under the remaining modulus, or coefficients
  /// wrap and every slot is silently garbage; catching it here names the op,
  /// levels, and scales instead.
  void check_mult_capacity(const char* op, const Ciphertext& a,
                           const Ciphertext& b) const {
    const int level = std::min(a.level(), b.level());
    double capacity_bits = 0.0;
    for (int l = 0; l <= level; ++l) capacity_bits += std::log2(level_prime(l));
    const double product_bits = std::log2(a.scale()) + std::log2(b.scale());
    PPHE_CHECK_CODE(product_bits < capacity_bits, ErrorCode::kCapacityExceeded,
                    std::string(op) + ": product scale 2^" +
                   std::to_string(product_bits) + " exceeds modulus capacity 2^" +
                   std::to_string(capacity_bits) + " at level " +
                   std::to_string(level) + " (lhs level " +
                   std::to_string(a.level()) + " scale 2^" +
                   std::to_string(std::log2(a.scale())) + ", rhs level " +
                   std::to_string(b.level()) + " scale 2^" +
                   std::to_string(std::log2(b.scale())) + ")");
  }

 private:
  mutable std::array<std::atomic<std::uint64_t>, kOpKindCount> op_counts_{};
};

}  // namespace pphe
