#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "ckks/params.hpp"
#include "math/poly_buffer.hpp"

namespace pphe {

/// Opaque ciphertext handle; the payload type belongs to the backend that
/// produced it (RnsBackend or BigBackend) and handles are not interchangeable
/// across backends. Scale/level/size are mirrored here so generic code (the
/// CNN-HE engine) can plan rescaling without knowing the representation.
class Ciphertext {
 public:
  Ciphertext() = default;
  Ciphertext(std::shared_ptr<void> impl, double scale, int level,
             std::size_t size)
      : impl_(std::move(impl)), scale_(scale), level_(level), size_(size) {}

  bool valid() const { return impl_ != nullptr; }
  double scale() const { return scale_; }
  /// Remaining rescale budget: index of the last usable ciphertext prime.
  int level() const { return level_; }
  /// Number of polynomial components (2 normally, 3 before relinearization).
  std::size_t size() const { return size_; }

  const std::shared_ptr<void>& impl() const { return impl_; }

 private:
  std::shared_ptr<void> impl_;
  double scale_ = 0.0;
  int level_ = 0;
  std::size_t size_ = 0;
};

/// Opaque plaintext (encoded polynomial) handle.
class Plaintext {
 public:
  Plaintext() = default;
  Plaintext(std::shared_ptr<void> impl, double scale, int level)
      : impl_(std::move(impl)), scale_(scale), level_(level) {}

  bool valid() const { return impl_ != nullptr; }
  double scale() const { return scale_; }
  int level() const { return level_; }
  const std::shared_ptr<void>& impl() const { return impl_; }

 private:
  std::shared_ptr<void> impl_;
  double scale_ = 0.0;
  int level_ = 0;
};

/// Abstract CKKS evaluator: the primitives of §II of the paper (KeyGen at
/// construction, Encrypt/Decrypt, Add, Mult, Resc, Rot) plus the plaintext
/// variants every CNN-HE engine needs. Two implementations exist:
///
///  * RnsBackend  — CKKS-RNS (double-CRT), the paper's proposal;
///  * BigBackend  — single composite modulus with multiprecision coefficient
///                  arithmetic, the paper's non-RNS "CNN-HE" baseline.
///
/// Both own their key material (generated deterministically from the params
/// seed) so an experiment is one object; the pipeline example narrates the
/// client/cloud split explicitly.
class HeBackend {
 public:
  virtual ~HeBackend() = default;

  virtual std::string name() const = 0;
  virtual const CkksParams& params() const = 0;
  virtual std::size_t slot_count() const = 0;
  virtual int max_level() const = 0;
  /// Value of ciphertext prime q_level (what rescale at that level divides
  /// the scale by) — the level planner needs this to schedule rescales.
  virtual double level_prime(int level) const = 0;

  // --- encode / encrypt / decrypt -------------------------------------
  virtual Plaintext encode(std::span<const double> values, double scale,
                           int level) const = 0;
  virtual Ciphertext encrypt(const Plaintext& pt) const = 0;
  virtual std::vector<double> decrypt_decode(const Ciphertext& ct) const = 0;

  // --- homomorphic operations -----------------------------------------
  virtual Ciphertext add(const Ciphertext& a, const Ciphertext& b) const = 0;
  virtual Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const = 0;
  virtual Ciphertext add_plain(const Ciphertext& a,
                               const Plaintext& b) const = 0;
  virtual Ciphertext negate(const Ciphertext& a) const = 0;
  /// Tensor product WITHOUT relinearization (result has size 3); callers
  /// accumulate products and relinearize once (the deferred-relinearization
  /// optimization of DESIGN.md §6.1).
  virtual Ciphertext multiply(const Ciphertext& a,
                              const Ciphertext& b) const = 0;
  virtual Ciphertext multiply_plain(const Ciphertext& a,
                                    const Plaintext& b) const = 0;
  virtual Ciphertext relinearize(const Ciphertext& a) const = 0;
  virtual Ciphertext rescale(const Ciphertext& a) const = 0;
  /// Drops moduli without scaling (level alignment before mult).
  virtual Ciphertext mod_drop_to(const Ciphertext& a, int level) const = 0;
  /// Cyclic left rotation of the slot vector by `step` (may be negative).
  /// Requires the corresponding Galois key (ensure_galois_keys).
  virtual Ciphertext rotate(const Ciphertext& a, int step) const = 0;

  /// Rotations of the SAME ciphertext by several steps. Backends may hoist
  /// the shared key-switching work (decompose + NTT once, permute per step);
  /// the default just loops. Order of results matches `steps`.
  virtual std::vector<Ciphertext> rotate_batch(
      const Ciphertext& a, const std::vector<int>& steps) const {
    std::vector<Ciphertext> out;
    out.reserve(steps.size());
    for (const int s : steps) out.push_back(rotate(a, s));
    return out;
  }

  /// acc += a * b (tensor product accumulated without materializing the
  /// product): the hot operation of the diagonal method. If acc is invalid
  /// it becomes the product. Backends may override with a fused kernel.
  virtual void multiply_acc(Ciphertext& acc, const Ciphertext& a,
                            const Ciphertext& b) const {
    const Ciphertext prod = multiply(a, b);
    acc = acc.valid() ? add(acc, prod) : prod;
  }
  virtual void multiply_plain_acc(Ciphertext& acc, const Ciphertext& a,
                                  const Plaintext& b) const {
    const Ciphertext prod = multiply_plain(a, b);
    acc = acc.valid() ? add(acc, prod) : prod;
  }

  /// Pre-generates Galois keys for the given rotation steps (idempotent).
  virtual void ensure_galois_keys(const std::vector<int>& steps) = 0;

  // --- convenience (non-virtual) ---------------------------------------
  /// Encodes at the ciphertext's own scale and level, then multiplies.
  Ciphertext multiply_scalar(const Ciphertext& a, double value) const {
    const Plaintext pt = encode_repeated(value, a.scale(), a.level());
    return multiply_plain(a, pt);
  }
  Ciphertext add_scalar(const Ciphertext& a, double value) const {
    const Plaintext pt = encode_repeated(value, a.scale(), a.level());
    return add_plain(a, pt);
  }
  Plaintext encode_repeated(double value, double scale, int level) const {
    const std::vector<double> v(slot_count(), value);
    return encode(v, scale, level);
  }

  // --- instrumentation --------------------------------------------------
  /// Snapshot of cumulative homomorphic-op counts since the last reset
  /// (op name -> n). Returned by value: the live map keeps changing under
  /// its mutex while thread-pool channel loops count fused ops.
  std::map<std::string, std::uint64_t> op_counts() const {
    std::lock_guard<std::mutex> lock(op_mutex_);
    return op_counts_;
  }
  void reset_op_counts() {
    std::lock_guard<std::mutex> lock(op_mutex_);
    op_counts_.clear();
  }

  /// Allocation behaviour of the backend's polynomial arena (DESIGN.md
  /// §"Memory layout"). Steady-state multiply/rescale/rotate must report
  /// zero pool misses after warm-up.
  virtual MemStats mem_stats() const { return {}; }
  virtual void reset_mem_stats() const {}

 protected:
  void count_op(const std::string& op) const {
    std::lock_guard<std::mutex> lock(op_mutex_);
    ++op_counts_[op];
  }

 private:
  mutable std::mutex op_mutex_;
  mutable std::map<std::string, std::uint64_t> op_counts_;
};

}  // namespace pphe
