#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ckks/backend.hpp"
#include "ckks/encoder.hpp"
#include "ckks/params.hpp"
#include "common/prng.hpp"
#include "math/bigmod.hpp"
#include "math/biguint.hpp"
#include "math/poly_buffer.hpp"

namespace pphe {

/// Polynomial with multiprecision coefficients modulo one composite modulus
/// Q_level = q_0 · … · q_level; `ntt` marks evaluation (BigNtt) form.
/// BigUInt stores its limbs inline, so the coefficient vector is one
/// contiguous slab — pooled through the backend's VecPool the same way
/// RnsPoly slabs go through PolyPool.
struct BigPoly {
  PooledVec<BigUInt> coeffs;
  bool ntt = false;
  int level = 0;  // which ladder modulus the coefficients live under
};

struct BigCtBody {
  std::vector<BigPoly> polys;
};

struct BigPtBody {
  BigPoly poly;
};

/// Non-RNS CKKS evaluator: the paper's "CNN-HE" baseline (moduli chain
/// length 1 in Table VI's terms — ONE composite modulus, multiprecision
/// coefficient arithmetic). The level ladder Q_0 ⊂ Q_1 ⊂ … ⊂ Q_L uses the
/// SAME primes as the RNS chain so the two backends compute over literally
/// the same rings; only the representation differs. Key switching follows
/// the original scheme's ek = (-a·s + e + P·s², a) mod Q_L·P with a
/// multiprecision auxiliary modulus P ≥ Q_L (the q_L² construction of §II's
/// Mult primitive, with P playing q_L's role).
///
/// Every butterfly and pointwise product here is a multiprecision Barrett
/// mulmod — the per-operation cost that Fig. 2's RNS decomposition removes.
/// Nothing in this backend is channel-parallelizable, so ParallelSim counts
/// it as serial time.
class BigBackend final : public HeBackend {
 public:
  explicit BigBackend(const CkksParams& params);

  std::string name() const override { return "ckks-bigint"; }
  const CkksParams& params() const override { return params_; }
  std::size_t slot_count() const override { return encoder_.slot_count(); }
  int max_level() const override {
    return static_cast<int>(q_primes_.size()) - 1;
  }
  double level_prime(int level) const override {
    return static_cast<double>(q_primes_[static_cast<std::size_t>(level)]);
  }

  Plaintext encode(std::span<const double> values, double scale,
                   int level) const override;
  Ciphertext encrypt(const Plaintext& pt) const override;
  std::vector<double> decrypt_decode(const Ciphertext& ct) const override;

  Ciphertext add(const Ciphertext& a, const Ciphertext& b) const override;
  Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const override;
  Ciphertext add_plain(const Ciphertext& a, const Plaintext& b) const override;
  Ciphertext negate(const Ciphertext& a) const override;
  Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const override;
  Ciphertext multiply_plain(const Ciphertext& a,
                            const Plaintext& b) const override;
  Ciphertext relinearize(const Ciphertext& a) const override;
  Ciphertext rescale(const Ciphertext& a) const override;
  Ciphertext mod_drop_to(const Ciphertext& a, int level) const override;
  Ciphertext rotate(const Ciphertext& a, int step) const override;
  void ensure_galois_keys(std::span<const int> steps) override;
  using HeBackend::ensure_galois_keys;  // braced-list overload

  const CkksEncoder& encoder() const { return encoder_; }
  const std::shared_ptr<VecPool<BigUInt>>& pool() const { return big_pool_; }
  MemStats mem_stats() const override { return big_pool_->stats(); }
  void reset_mem_stats() const override { big_pool_->reset_stats(); }
  /// Ladder modulus Q_level.
  const BigUInt& level_modulus(int level) const;
  const BigUInt& aux_modulus() const { return p_modulus_; }

  std::vector<double> decrypt_coefficients(const Ciphertext& ct) const;

 private:
  struct KswKey {
    BigPoly b;  // mod Q_L * P, NTT form
    BigPoly a;
  };

  const BigBarrett& barrett(int level) const;
  const BigBarrett& barrett_aux(int level) const;  // for Q_level * P
  const BigNtt& ntt(int level) const;
  const BigNtt& ntt_aux(int level) const;

  BigPoly zero_poly(int level, bool ntt) const;
  void to_ntt(BigPoly& p) const;
  void to_coeff(BigPoly& p) const;
  BigPoly lift_signed(std::span<const std::int64_t> coeffs, int level) const;
  /// Lift small signed values modulo an arbitrary modulus (for key material
  /// living under Q_L * P).
  PooledVec<BigUInt> lift_signed_mod(std::span<const std::int64_t> coeffs,
                                     const BigUInt& modulus) const;
  BigUInt uniform_below_big(const BigUInt& bound) const;
  BigPoly automorphism(const BigPoly& p, std::uint64_t exponent) const;
  void add_inplace(BigPoly& a, const BigPoly& b) const;
  void negate_inplace(BigPoly& a) const;
  BigPoly pointwise(const BigPoly& a, const BigPoly& b) const;
  std::uint64_t rotation_exponent(int step) const;

  void generate_keys();
  KswKey make_ksw_key(std::span<const BigUInt> target_ntt_aux) const;

  /// Key-switch accumulator in the raised ring mod Q_level * P, NTT form —
  /// the multiprecision analogue of ExtAccumulator. Unfused (each key_switch
  /// call still pays its own mod-down), but the phase split mirrors
  /// RnsBackend so RNS-vs-Big agreement tests exercise the same pipeline
  /// shape and the kKswInner / kModDown counters line up.
  struct BigExt {
    PooledVec<BigUInt> c0, c1;
    int level = 0;
  };
  /// Top-level key reduced to Q_level * P (cached per level).
  const KswKey& key_at_level(const KswKey& key, int level) const;
  /// Centered lift of d from Q_level to Q_level*P plus the forward aux NTT —
  /// the single "digit" of this backend's (trivial) decomposition.
  PooledVec<BigUInt> ksw_decompose(const BigPoly& d) const;
  BigExt ext_zero(int level) const;
  void ksw_inner_prod(const PooledVec<BigUInt>& digit, const KswKey& key,
                      BigExt& acc) const;
  /// Mod-down epilogue: round(acc / P) mod Q_level, coeff form.
  std::pair<BigPoly, BigPoly> ksw_mod_down(BigExt acc) const;
  /// d: coefficient form at `level`. Returns (delta0, delta1), coeff form.
  std::pair<BigPoly, BigPoly> key_switch(const BigPoly& d,
                                         const KswKey& key) const;
  Ciphertext wrap(std::vector<BigPoly> polys, double scale, int level) const;
  Ciphertext apply_automorphism_ct(const Ciphertext& a, std::uint64_t exponent,
                                   const KswKey& key, OpKind op) const;
  /// Reduces x (< Q_from) modulo Q_to, stepping one ladder level at a time.
  BigUInt reduce_ladder(const BigUInt& x, int from, int to) const;

  CkksParams params_;
  CkksEncoder encoder_;
  std::shared_ptr<VecPool<BigUInt>> big_pool_ =
      std::make_shared<VecPool<BigUInt>>();
  std::vector<std::uint64_t> q_primes_;
  std::vector<std::uint64_t> special_primes_;
  std::vector<BigUInt> q_ladder_;  // Q_0..Q_L
  BigUInt p_modulus_;              // P = product of special primes
  BigUInt half_p_;                 // floor(P/2)
  std::vector<BigUInt> inv_p_mod_q_;     // P^{-1} mod Q_l per level
  std::vector<BigUInt> inv_p_mod_aux_;   // P^{-1} mod Q_l*P?  (see .cpp)
  std::vector<BigUInt> inv_qlast_mod_q_; // q_l^{-1} mod Q_{l-1}

  // Lazily built per-level machinery (mutable: created on first use).
  mutable std::map<int, std::unique_ptr<BigBarrett>> barrett_;
  mutable std::map<int, std::unique_ptr<BigBarrett>> barrett_aux_;
  mutable std::map<int, std::unique_ptr<BigNtt>> ntt_;
  mutable std::map<int, std::unique_ptr<BigNtt>> ntt_aux_;
  std::unique_ptr<BigBarrett> barrett_p_;

  mutable Prng prng_;
  std::vector<std::int64_t> sk_signed_;  // HWT(h) coefficients
  BigPoly pk_b_, pk_a_;                  // mod Q_L, NTT
  KswKey relin_key_;
  std::map<std::uint64_t, KswKey> galois_keys_;
  // Per-level reductions of key-switch keys (mod Q_l * P), built lazily.
  mutable std::map<const KswKey*, std::map<int, KswKey>> key_cache_;
};

}  // namespace pphe
