#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "ckks/backend.hpp"
#include "ckks/encoder.hpp"
#include "ckks/ext_accumulator.hpp"
#include "ckks/params.hpp"
#include "common/prng.hpp"
#include "math/modarith.hpp"
#include "math/ntt.hpp"
#include "math/poly_buffer.hpp"
#include "math/rns.hpp"

namespace pphe {

/// Payload behind a Ciphertext handle produced by RnsBackend.
struct RnsCtBody {
  std::vector<RnsPoly> polys;  // size 2, or 3 before relinearization
  /// Combined wire payload digest set by serialize's read_ciphertext (the
  /// trust boundary) and re-verified by validate_ciphertext, so storage
  /// corruption between decode and eval is caught even when the flipped
  /// residue still lies below its modulus. 0 = locally produced, untracked.
  std::uint64_t wire_digest = 0;
};

/// Payload behind a Plaintext handle produced by RnsBackend.
struct RnsPtBody {
  RnsPoly poly;  // q channels 0..level plus the special prime p, NTT form.
                 // The extra channel is what lets the fused BSGS path
                 // multiply weights against raised-basis accumulators; every
                 // q-only consumer truncates to the ciphertext's channels.
                 // Serialization strips it (transport stays q-only).
  // Shoup form of `poly`, built lazily on the first ct-pt product
  // (RnsBackend::pt_shoup): weight plaintexts are multiplied against many
  // ciphertexts, so the precompute amortizes, while plaintexts that are only
  // encrypted or added never pay for it.
  mutable std::once_flag shoup_once;
  mutable PolyBuffer shoup;
};

/// CKKS-RNS evaluator (Cheon–Han–Kim–Kim–Song [9] as engineered in SEAL):
/// all polynomial arithmetic is component-wise over word primes (Fig. 2),
/// key switching uses the per-prime digit decomposition with one special
/// modulus, rescaling is the exact RNS floor-division by the dropped prime.
///
/// Residue channels are independent, which is the parallelism the paper's
/// CNN-HE-RNS models exploit; channel loops run through the global thread
/// pool and are reported to ParallelSim for critical-path accounting.
class RnsBackend final : public HeBackend {
 public:
  explicit RnsBackend(const CkksParams& params);

  std::string name() const override { return "ckks-rns"; }
  const CkksParams& params() const override { return params_; }
  std::size_t slot_count() const override { return encoder_.slot_count(); }
  int max_level() const override {
    return static_cast<int>(q_moduli_.size()) - 1;
  }
  double level_prime(int level) const override {
    return static_cast<double>(q_moduli_[static_cast<std::size_t>(level)].value());
  }

  Plaintext encode(std::span<const double> values, double scale,
                   int level) const override;
  Ciphertext encrypt(const Plaintext& pt) const override;
  std::vector<double> decrypt_decode(const Ciphertext& ct) const override;

  Ciphertext add(const Ciphertext& a, const Ciphertext& b) const override;
  Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const override;
  Ciphertext add_plain(const Ciphertext& a, const Plaintext& b) const override;
  Ciphertext negate(const Ciphertext& a) const override;
  Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const override;
  Ciphertext multiply_plain(const Ciphertext& a,
                            const Plaintext& b) const override;
  Ciphertext relinearize(const Ciphertext& a) const override;
  Ciphertext rescale(const Ciphertext& a) const override;
  Ciphertext mod_drop_to(const Ciphertext& a, int level) const override;
  Ciphertext rotate(const Ciphertext& a, int step) const override;
  /// Hoisted rotations: the input is digit-decomposed and NTT'd once; each
  /// step then only permutes the NTT vectors (the Galois automorphism acts
  /// on the evaluation domain as an index permutation), saving the dominant
  /// per-rotation NTT work. ~3x faster than repeated rotate() for the baby
  /// steps of the BSGS diagonal method.
  std::vector<Ciphertext> rotate_batch(const Ciphertext& a,
                                       std::span<const int> steps) const override;
  using HeBackend::rotate_batch;  // braced-list overload
  /// Double-hoisted giant-step epilogue: one key-switch inner product per
  /// rotated input, all accumulated in the raised basis, ONE shared mod-down
  /// for the whole sum (the unfused path pays one per rotation).
  Ciphertext rotate_sum(std::span<const Ciphertext> cts,
                        std::span<const int> steps) const override;
  bool supports_hoisted_bsgs() const override { return true; }
  /// Fully fused BSGS diagonal layer (double hoisting, DESIGN.md §14). Only
  /// plaintext weights carrying the special channel qualify; otherwise
  /// returns an invalid handle and the caller falls back.
  Ciphertext linear_bsgs(const Ciphertext& x,
                         std::span<const BsgsGroupSpec> groups) const override;
  /// Fused acc += a (x) b without materializing the tensor product.
  void multiply_acc(Ciphertext& acc, const Ciphertext& a,
                    const Ciphertext& b) const override;
  void multiply_plain_acc(Ciphertext& acc, const Ciphertext& a,
                          const Plaintext& b) const override;
  void ensure_galois_keys(std::span<const int> steps) override;
  using HeBackend::ensure_galois_keys;  // braced-list overload

  /// Slot conjugation (automorphism X -> X^{2N-1}); not used by the CNNs but
  /// part of the scheme's public surface.
  Ciphertext conjugate(const Ciphertext& a) const;

  /// Full structural health check of an RNS ciphertext: handle metadata
  /// (base class), per-poly channel count == level + 1, degree, NTT form,
  /// residues below their moduli, and — for deserialized ciphertexts — the
  /// recorded wire digest recomputed over the slabs.
  void validate_ciphertext(const Ciphertext& ct) const override;
  /// Deep copy with `mutate` applied to component 0's slab words (the fault
  /// harness's storage-corruption hook).
  Ciphertext clone_mutate_limbs(
      const Ciphertext& ct,
      const std::function<void(std::span<std::uint64_t>)>& mutate)
      const override;

  const CkksEncoder& encoder() const { return encoder_; }
  /// Ciphertext prime values q_0..q_L (exposed for tests and benches).
  const std::vector<Modulus>& q_moduli() const { return q_moduli_; }
  std::uint64_t special_modulus() const { return special_.value(); }

  /// Slab arena backing every polynomial this backend produces (serialize
  /// readers and tests check buffers out of the same pool).
  const std::shared_ptr<PolyPool>& pool() const { return pool_; }
  MemStats mem_stats() const override { return pool_->stats(); }
  void reset_mem_stats() const override { pool_->reset_stats(); }

  /// Exact decryption to centered coefficient values (testing / noise
  /// inspection): returns the coefficients of c0 + c1 s (+ c2 s^2) as
  /// doubles, centered in (-q/2, q/2).
  std::vector<double> decrypt_coefficients(const Ciphertext& ct) const;

 private:
  struct KswKey {
    // digits[j] = (b_j, a_j), channels = all q primes + special, NTT form.
    std::vector<std::array<RnsPoly, 2>> digits;
    // shoup[j] = Shoup quotients of digits[j], channel rows aligned with the
    // key polys: key material is the fixed operand of every key-switch inner
    // product, so the accumulation runs dyadic::mul_acc_shoup.
    std::vector<std::array<PolyBuffer, 2>> shoup;
  };

  // -- poly helpers ----------------------------------------------------
  RnsPoly zero_poly(int level, bool with_special, bool ntt) const;
  /// Modulus / NTT table of channel c of poly p (special-aware).
  const Modulus& mod_for(const RnsPoly& p, std::size_t c) const;
  const NttTable& ntt_for(const RnsPoly& p, std::size_t c) const;
  void to_ntt(RnsPoly& p) const;
  void to_coeff(RnsPoly& p) const;
  RnsPoly lift_signed(std::span<const std::int64_t> coeffs, int level,
                      bool with_special) const;
  RnsPoly uniform_poly(int level, bool with_special) const;
  RnsPoly automorphism(const RnsPoly& p, std::uint64_t exponent) const;
  void add_inplace(RnsPoly& a, const RnsPoly& b) const;
  void sub_inplace(RnsPoly& a, const RnsPoly& b) const;
  void negate_inplace(RnsPoly& a) const;
  void pointwise_inplace(RnsPoly& a, const RnsPoly& b) const;
  RnsPoly pointwise(const RnsPoly& a, const RnsPoly& b) const;
  /// Shoup quotients of every channel of `p` (fixed-operand precompute).
  PolyBuffer shoup_form(const RnsPoly& p) const;
  /// Lazily built (and cached) Shoup form of a plaintext body.
  const PolyBuffer& pt_shoup(const RnsPtBody& pt) const;
  /// out = w (x) b where `w` is a FIXED operand with precomputed Shoup form
  /// `wq` (same channel truncation rules as pointwise, with w as `a`).
  RnsPoly pointwise_shoup(const RnsPoly& w, const PolyBuffer& wq,
                          const RnsPoly& b) const;

  // -- key material ----------------------------------------------------
  void generate_keys();
  KswKey make_ksw_key(const RnsPoly& target_ntt) const;

  // -- phased key switching (DESIGN.md §14) -----------------------------
  /// Digit decomposition of a coefficient-form poly at `level`, lifted to
  /// the raised basis Q∪{p} and NTT'd: row j*channels + c holds digit j in
  /// channel c. This is the hoistable half of a key switch — one table
  /// serves any number of inner products (one per rotation step).
  struct KswDigits {
    PolyBuffer rows;  // q_channels * channels rows, NTT form
    std::size_t q_channels = 0;
    std::size_t channels = 0;  // q_channels + 1 (special last)
    int level = 0;
  };
  KswDigits ksw_decompose(const RnsPoly& d, int level) const;
  /// Fresh zero accumulator in the raised basis at `level` (NTT form).
  ExtAccumulator ext_zero(int level) const;
  /// acc += <digits, key> in the raised basis (counts OpKind::kKswInner).
  /// `perm` != nullptr applies the NTT-domain automorphism permutation to
  /// the digit rows while gathering (hoisted rotation); nullptr runs the
  /// flat HAL kernels (relinearization / single key switch).
  void ksw_inner_prod(const KswDigits& digits, const KswKey& key,
                      const std::uint32_t* perm, ExtAccumulator& acc) const;
  /// Mod-down epilogue: divides both accumulator components by the special
  /// prime p with rounding, returning coefficient-form q-basis polys
  /// (counts OpKind::kModDown — once for both components).
  std::pair<RnsPoly, RnsPoly> ksw_mod_down(ExtAccumulator acc) const;
  /// d in coefficient form at `level`; returns (delta0, delta1) coeff form.
  /// Composed from the three phases above.
  std::pair<RnsPoly, RnsPoly> key_switch(const RnsPoly& d, int level,
                                         const KswKey& key) const;
  std::uint64_t rotation_exponent(int step) const;
  /// NTT-domain permutation realizing the automorphism X -> X^exponent:
  /// NTT(sigma(x))[j] = NTT(x)[perm[j]].
  const std::vector<std::uint32_t>& ntt_permutation(
      std::uint64_t exponent) const;

  Ciphertext wrap(std::vector<RnsPoly> polys, double scale, int level) const;
  Ciphertext apply_automorphism_ct(const Ciphertext& a, std::uint64_t exponent,
                                   const KswKey& key, OpKind op) const;

  CkksParams params_;
  CkksEncoder encoder_;
  std::shared_ptr<PolyPool> pool_;
  std::vector<Modulus> q_moduli_;
  Modulus special_;
  std::vector<NttTable> q_ntt_;
  std::unique_ptr<NttTable> special_ntt_;
  std::vector<std::unique_ptr<RnsBase>> level_bases_;  // for decrypt compose

  // Precomputations.
  std::vector<std::uint64_t> p_mod_q_;      // p mod q_i
  std::vector<std::uint64_t> inv_p_mod_q_;  // p^{-1} mod q_i
  // inv_q_mod_q_[l][i] = q_l^{-1} mod q_i, for i < l (rescale).
  std::vector<std::vector<std::uint64_t>> inv_q_mod_q_;

  // The serving layer evaluates batches on concurrent worker threads, so the
  // few mutable members a const evaluation path touches are guarded:
  //  * prng_        — encrypt() samples (u, e0, e1) under prng_mutex_;
  //  * ntt_perms_   — lazy automorphism permutations under ntt_perm_mutex_
  //                   (map nodes are stable, so references stay valid after
  //                   the lock is released);
  //  * galois_keys_ — rotate()/conjugate() take a shared lock for the lookup,
  //                   ensure_galois_keys() an exclusive one for inserts (keys
  //                   are never erased, so looked-up references are stable).
  mutable Prng prng_;
  mutable std::mutex prng_mutex_;
  mutable std::map<std::uint64_t, std::vector<std::uint32_t>> ntt_perms_;
  mutable std::mutex ntt_perm_mutex_;
  RnsPoly sk_ntt_;    // all channels, NTT
  RnsPoly sk_coeff_;  // all channels, coeff (for automorphism targets)
  RnsPoly pk_b_, pk_a_;  // q channels, NTT
  PolyBuffer pk_b_shoup_, pk_a_shoup_;  // fixed operands of every encrypt
  KswKey relin_key_;
  std::map<std::uint64_t, KswKey> galois_keys_;  // by automorphism exponent
  mutable std::shared_mutex galois_mutex_;
};

}  // namespace pphe
