#pragma once

#include <iosfwd>
#include <string>

#include "ckks/backend.hpp"
#include "ckks/params.hpp"

namespace pphe {

class RnsBackend;

/// Binary wire format for the Fig. 1 round trip: the client ships encrypted
/// inputs (and, in the paper's eq. (1) setting, encrypted weights) to the
/// cloud and receives encrypted logits back. Covers parameters, plaintexts
/// and ciphertexts of the RNS backend — the deployed representation; the
/// multiprecision backend is a baseline for measurement, not transport.
///
/// Format: magic + version header, then little-endian fixed-width fields.
/// Readers validate structure (sizes, levels, flags) against the backend's
/// parameters and throw pphe::Error on any mismatch — ciphertexts from a
/// different parameter set are rejected, not misinterpreted.

/// Parameters round-trip independently of any backend.
void write_params(std::ostream& out, const CkksParams& params);
CkksParams read_params(std::istream& in);

/// Ciphertexts/plaintexts are tied to the backend that produced them.
void write_ciphertext(std::ostream& out, const RnsBackend& backend,
                      const Ciphertext& ct);
Ciphertext read_ciphertext(std::istream& in, const RnsBackend& backend);

void write_plaintext(std::ostream& out, const RnsBackend& backend,
                     const Plaintext& pt);
Plaintext read_plaintext(std::istream& in, const RnsBackend& backend);

/// Convenience: (de)serialize through a byte string (e.g. for a socket).
std::string ciphertext_to_string(const RnsBackend& backend,
                                 const Ciphertext& ct);
Ciphertext ciphertext_from_string(const std::string& bytes,
                                  const RnsBackend& backend);

/// Serialized size in bytes of a ciphertext at its current level (what the
/// client/cloud link transports per Fig. 1 message).
std::size_t ciphertext_byte_size(const RnsBackend& backend,
                                 const Ciphertext& ct);

}  // namespace pphe
