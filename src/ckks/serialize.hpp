#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "ckks/backend.hpp"
#include "ckks/params.hpp"

namespace pphe {

class RnsBackend;

/// Binary wire format for the Fig. 1 round trip: the client ships encrypted
/// inputs (and, in the paper's eq. (1) setting, encrypted weights) to the
/// cloud and receives encrypted logits back. Covers parameters, plaintexts
/// and ciphertexts of the RNS backend — the deployed representation; the
/// multiprecision backend is a baseline for measurement, not transport.
///
/// Format (version 2): magic + version header, then little-endian
/// fixed-width sections, each followed by a 64-bit checksum of its payload —
/// a fixed-size metadata section first, then one section per polynomial.
/// Readers fail fast: the metadata section is verified (checksum + structure
/// against the backend's parameters) BEFORE any polynomial slab is
/// allocated, so truncated or adversarial byte streams are rejected with a
/// typed pphe::Error (ErrorCode::kSerialization / kChecksumMismatch) and can
/// never over-allocate, read out of bounds, or misinterpret a ciphertext
/// from a different parameter set. Deserialized ciphertexts additionally
/// carry the combined payload digest (RnsCtBody::wire_digest), which
/// RnsBackend::validate_ciphertext re-verifies before evaluation.

/// Checksum used for every wire section: splitmix64-style mix over 8-byte
/// words plus a length-salted tail. Not cryptographic — it detects transport
/// and storage corruption; authenticity needs a MAC on the outer channel.
std::uint64_t wire_checksum(const void* data, std::size_t bytes);

/// Order-sensitive combination of section checksums into one digest.
inline std::uint64_t wire_digest_combine(std::uint64_t digest,
                                         std::uint64_t section) {
  digest ^= section + 0x9e3779b97f4a7c15ull + (digest << 6) + (digest >> 2);
  return digest;
}

/// Parameters round-trip independently of any backend.
void write_params(std::ostream& out, const CkksParams& params);
CkksParams read_params(std::istream& in);

/// Ciphertexts/plaintexts are tied to the backend that produced them.
void write_ciphertext(std::ostream& out, const RnsBackend& backend,
                      const Ciphertext& ct);
Ciphertext read_ciphertext(std::istream& in, const RnsBackend& backend);

void write_plaintext(std::ostream& out, const RnsBackend& backend,
                     const Plaintext& pt);
Plaintext read_plaintext(std::istream& in, const RnsBackend& backend);

/// Convenience: (de)serialize through a byte string (e.g. for a socket).
std::string ciphertext_to_string(const RnsBackend& backend,
                                 const Ciphertext& ct);
Ciphertext ciphertext_from_string(const std::string& bytes,
                                  const RnsBackend& backend);

/// Serialized size in bytes of a ciphertext at its current level (what the
/// client/cloud link transports per Fig. 1 message).
std::size_t ciphertext_byte_size(const RnsBackend& backend,
                                 const Ciphertext& ct);

}  // namespace pphe
