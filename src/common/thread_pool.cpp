#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace pphe {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

/// Shared between the calling thread and helper tasks. Held by shared_ptr so
/// a helper that starts late (even after parallel_for returned) still sees
/// valid state and exits immediately.
struct ForState {
  std::size_t count = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  void drain() {
    for (;;) {
      // Chunked striding: one fetch_add claims `chunk` iterations, so the
      // shared index is touched count/chunk times total instead of `count`.
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*fn)(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
      const std::size_t finished = end - begin;
      if (done.fetch_add(finished, std::memory_order_acq_rel) + finished ==
          count) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->count = count;
  state->chunk = chunk_size(count, workers_.size());
  state->fn = &fn;  // valid until every iteration completed (we wait below)

  // No point waking more helpers than there are chunks to claim.
  const std::size_t chunks = (count + state->chunk - 1) / state->chunk;
  const std::size_t helpers = std::min(workers_.size(), chunks);
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.emplace([state] { state->drain(); });
    }
  }
  tasks_enqueued_.fetch_add(helpers, std::memory_order_relaxed);
  cv_.notify_all();
  state->drain();  // the calling thread participates

  {
    std::unique_lock lock(state->done_mutex);
    state->done_cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == count;
    });
  }
  // All `count` iterations have finished, so &fn is no longer dereferenced;
  // late-started helper tasks see next >= count and return immediately.
  if (state->first_error) std::rethrow_exception(state->first_error);
}

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace pphe
