#include "common/prng.hpp"

#include <cmath>
#include <numbers>

namespace pphe {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Prng::Prng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Prng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Prng::uniform_below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Reject the final partial interval so every residue is equally likely.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Prng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Prng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform_double();
  } while (u1 <= 0.0);
  const double u2 = uniform_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Prng Prng::fork(std::uint64_t stream_id) const {
  // Hash the current state together with the stream id so forks of the same
  // parent differ and forks of different parents differ.
  std::uint64_t h = 0x2545f4914f6cdd1dull ^ stream_id;
  for (const auto w : state_) h = splitmix64(h) ^ w;
  return Prng(splitmix64(h));
}

}  // namespace pphe
