#include "common/fault.hpp"

#include <chrono>
#include <mutex>
#include <thread>

#include "common/check.hpp"

namespace pphe::fault {
namespace {

/// Armed plan + per-rule opportunity counters, guarded by one mutex: fault
/// decisions are off the hot path (hooks bail on the armed() atomic first).
struct State {
  FaultSpec spec;
  std::vector<std::uint64_t> opportunities;  // per rule
  std::vector<std::uint64_t> fired;          // per rule
  FaultStats stats;
};

std::mutex& state_mutex() {
  static std::mutex m;
  return m;
}

State& state() {
  static State s;
  return s;
}

/// splitmix64: the per-decision hash. Statistically uniform for any input,
/// so probability thresholds behave even with sequential counters.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t decision_hash(std::uint64_t seed, Site site, Kind kind,
                            std::uint64_t counter, std::uint64_t salt) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(site) << 8 |
                 static_cast<std::uint64_t>(kind)));
  h = mix64(h ^ counter);
  return mix64(h ^ salt);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr Kind kWireKinds[] = {Kind::kLimbBitFlip, Kind::kTruncate,
                               Kind::kGarbage};
constexpr Kind kEvalKinds[] = {Kind::kLimbBitFlip, Kind::kScaleMismatch,
                               Kind::kLevelMismatch};
constexpr Kind kWorkerKinds[] = {Kind::kSlowWorker, Kind::kCrashWorker};

/// Returns the firing hash when (site, kind) fires at this opportunity, or 0.
/// The hash doubles as the entropy all perturbation parameters (which bit,
/// which span) derive from, so one decision fixes the whole fault.
std::uint64_t fire_entropy(Site site, Kind kind) {
  std::lock_guard<std::mutex> lock(state_mutex());
  State& s = state();
  for (std::size_t r = 0; r < s.spec.rules.size(); ++r) {
    const Rule& rule = s.spec.rules[r];
    if (rule.site != site || rule.kind != kind) continue;
    const std::uint64_t n = s.opportunities[r]++;
    if (s.fired[r] >= rule.budget) return 0;
    const std::uint64_t h = decision_hash(s.spec.seed, site, kind, n, 0);
    if (to_unit(h) >= rule.probability) return 0;
    ++s.fired[r];
    ++s.stats.fired[static_cast<std::size_t>(site)]
                   [static_cast<std::size_t>(kind)];
    ++s.stats.total;
    return h | 1;  // never 0
  }
  return 0;
}

}  // namespace

namespace detail {
std::atomic<bool> armed_flag{false};
}

const char* site_name(Site site) {
  switch (site) {
    case Site::kWireUpload: return "wire.upload";
    case Site::kWireDownload: return "wire.download";
    case Site::kEvalInput: return "eval.input";
    case Site::kWorker: return "worker";
  }
  return "?";
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kLimbBitFlip: return "bitflip";
    case Kind::kTruncate: return "truncate";
    case Kind::kGarbage: return "garbage";
    case Kind::kScaleMismatch: return "scale";
    case Kind::kLevelMismatch: return "level";
    case Kind::kSlowWorker: return "slow";
    case Kind::kCrashWorker: return "crash";
  }
  return "?";
}

std::span<const Kind> site_kinds(Site site) {
  switch (site) {
    case Site::kWireUpload:
    case Site::kWireDownload:
      return kWireKinds;
    case Site::kEvalInput:
      return kEvalKinds;
    case Site::kWorker:
      return kWorkerKinds;
  }
  return {};
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find_first_of(",;", pos);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    if (entry.rfind("seed=", 0) == 0) {
      spec.seed = std::stoull(entry.substr(5));
      continue;
    }
    if (entry.rfind("slow-ms=", 0) == 0) {
      spec.slow_seconds = std::stod(entry.substr(8)) / 1000.0;
      continue;
    }

    const std::size_t colon = entry.find(':');
    PPHE_CHECK(colon != std::string::npos,
               "fault spec entry needs site:kind — got \"" + entry + "\"");
    Rule rule;
    std::string kind_part = entry.substr(colon + 1);
    // Optional suffixes: @probability, *budget (either order after kind).
    const auto take_suffix = [&kind_part](char marker) -> std::string {
      const std::size_t at = kind_part.find(marker);
      if (at == std::string::npos) return "";
      // The suffix runs to the next marker or end.
      std::size_t stop = kind_part.size();
      for (const char other : {'@', '*'}) {
        const std::size_t p = kind_part.find(other, at + 1);
        if (p != std::string::npos) stop = std::min(stop, p);
      }
      const std::string value = kind_part.substr(at + 1, stop - at - 1);
      kind_part.erase(at, stop - at);
      return value;
    };
    const std::string prob = take_suffix('@');
    const std::string budget = take_suffix('*');
    if (!prob.empty()) rule.probability = std::stod(prob);
    if (!budget.empty()) rule.budget = std::stoull(budget);
    PPHE_CHECK(rule.probability >= 0.0 && rule.probability <= 1.0,
               "fault probability must be in [0, 1]: " + entry);

    const std::string site_part = entry.substr(0, colon);
    bool found_site = false;
    for (std::size_t i = 0; i < kSiteCount; ++i) {
      if (site_part == site_name(static_cast<Site>(i))) {
        rule.site = static_cast<Site>(i);
        found_site = true;
        break;
      }
    }
    PPHE_CHECK(found_site, "unknown fault site \"" + site_part +
                               "\" (wire.upload, wire.download, eval.input, "
                               "worker)");
    bool found_kind = false;
    for (std::size_t i = 0; i < kKindCount; ++i) {
      if (kind_part == kind_name(static_cast<Kind>(i))) {
        rule.kind = static_cast<Kind>(i);
        found_kind = true;
        break;
      }
    }
    PPHE_CHECK(found_kind, "unknown fault kind \"" + kind_part +
                               "\" (bitflip, truncate, garbage, scale, "
                               "level, slow, crash)");
    bool applicable = false;
    for (const Kind k : site_kinds(rule.site)) {
      if (k == rule.kind) applicable = true;
    }
    PPHE_CHECK(applicable, "fault kind \"" + std::string(kind_name(rule.kind)) +
                               "\" cannot fire at site \"" +
                               site_name(rule.site) + "\"");
    spec.rules.push_back(rule);
  }
  return spec;
}

std::string FaultSpec::describe() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const Rule& r : rules) {
    out += std::string(",") + site_name(r.site) + ":" + kind_name(r.kind);
    if (r.probability != 1.0) {
      out += "@" + std::to_string(r.probability);
    }
    if (r.budget != ~0ull) out += "*" + std::to_string(r.budget);
  }
  return out;
}

void configure(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(state_mutex());
  State& s = state();
  s.spec = spec;
  s.opportunities.assign(spec.rules.size(), 0);
  s.fired.assign(spec.rules.size(), 0);
  s.stats = FaultStats{};
  detail::armed_flag.store(!spec.rules.empty(), std::memory_order_relaxed);
}

void disarm() { configure(FaultSpec{}); }

FaultStats stats() {
  std::lock_guard<std::mutex> lock(state_mutex());
  return state().stats;
}

void reset_stats() {
  std::lock_guard<std::mutex> lock(state_mutex());
  state().stats = FaultStats{};
}

bool should_fire(Site site, Kind kind) {
  if (!armed()) return false;
  return fire_entropy(site, kind) != 0;
}

void corrupt_wire(Site site, std::string& bytes) {
  if (!armed() || bytes.empty()) return;
  if (const std::uint64_t h = fire_entropy(site, Kind::kTruncate)) {
    // Keep at least one byte so decoders exercise the partial-read path.
    bytes.resize(1 + mix64(h) % bytes.size());
    return;
  }
  if (const std::uint64_t h = fire_entropy(site, Kind::kGarbage)) {
    // Overwrite a short seeded span (or the whole buffer when tiny).
    const std::size_t span_len =
        std::min<std::size_t>(bytes.size(), 1 + mix64(h) % 64);
    const std::size_t start = mix64(h ^ 0xabcd) % (bytes.size() - span_len + 1);
    std::uint64_t g = h;
    for (std::size_t i = 0; i < span_len; ++i) {
      g = mix64(g);
      bytes[start + i] = static_cast<char>(g & 0xff);
    }
    return;
  }
  if (const std::uint64_t h = fire_entropy(site, Kind::kLimbBitFlip)) {
    const std::size_t bit = mix64(h) % (bytes.size() * 8);
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
  }
}

void worker_checkpoint() {
  if (!armed()) return;
  if (fire_entropy(Site::kWorker, Kind::kSlowWorker)) {
    double seconds;
    {
      std::lock_guard<std::mutex> lock(state_mutex());
      seconds = state().spec.slow_seconds;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  if (fire_entropy(Site::kWorker, Kind::kCrashWorker)) {
    throw Error(ErrorCode::kWorkerCrash,
                "injected fault: simulated worker crash");
  }
}

bool flip_limb(Site site, std::span<std::uint64_t> words) {
  if (!armed() || words.empty()) return false;
  const std::uint64_t h = fire_entropy(site, Kind::kLimbBitFlip);
  if (h == 0) return false;
  const std::size_t word = mix64(h) % words.size();
  const std::size_t bit = mix64(h ^ 0x5a5a) % 64;
  words[word] ^= (std::uint64_t{1} << bit);
  return true;
}

bool perturb_scale(Site site, double& scale) {
  if (!armed()) return false;
  if (fire_entropy(site, Kind::kScaleMismatch) == 0) return false;
  scale *= 2.0;
  return true;
}

bool perturb_level(Site site, int& level) {
  if (!armed()) return false;
  if (fire_entropy(site, Kind::kLevelMismatch) == 0) return false;
  level = level > 0 ? level - 1 : level + 1;
  return true;
}

}  // namespace pphe::fault
