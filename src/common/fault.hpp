#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pphe::fault {

/// Deterministic, seed-driven fault injection for the serving path.
///
/// A FaultSpec arms rules of the form (site, kind, probability, budget); the
/// library's injection points then query the plan at well-known sites and
/// apply the corresponding perturbation. Every decision derives from
/// hash(seed, site, kind, per-rule counter), so a sweep under a fixed seed
/// replays bit-for-bit — the chaos suite relies on this.
///
/// When no plan is armed (the default), every hook reduces to one relaxed
/// atomic load, keeping the guarded serving path within noise of the
/// unguarded one (run_benches.sh --quick asserts <2%).

/// Named injection points.
enum class Site : std::uint8_t {
  kWireUpload,    // client->cloud ciphertext bytes, after serialization
  kWireDownload,  // cloud->client logits bytes, after serialization
  kEvalInput,     // decoded branch ciphertexts, at HeModel::eval entry
  kWorker,        // the cloud-side worker executing one request
};
inline constexpr std::size_t kSiteCount = 4;

/// Fault kinds.
enum class Kind : std::uint8_t {
  kLimbBitFlip,    // flip one bit of an RNS limb (wire bytes or storage words)
  kTruncate,       // drop a suffix of the wire bytes
  kGarbage,        // overwrite a span of wire bytes with seeded garbage
  kScaleMismatch,  // perturb a ciphertext handle's mirrored scale
  kLevelMismatch,  // perturb a ciphertext handle's mirrored level
  kSlowWorker,     // stall the worker (watchdog fodder)
  kCrashWorker,    // simulated worker crash (throws Error(kWorkerCrash))
};
inline constexpr std::size_t kKindCount = 7;

const char* site_name(Site site);
const char* kind_name(Kind kind);

/// Kinds that are meaningful at `site` (the chaos matrix sweeps exactly
/// these): wire sites take the byte faults, eval input takes limb/metadata
/// faults, the worker takes slow/crash.
std::span<const Kind> site_kinds(Site site);

struct Rule {
  Site site = Site::kWireUpload;
  Kind kind = Kind::kLimbBitFlip;
  double probability = 1.0;       // chance each opportunity fires
  std::uint64_t budget = ~0ull;   // max number of firings (0 = disabled)
};

/// A parsed fault plan.
struct FaultSpec {
  std::uint64_t seed = 1;
  double slow_seconds = 0.2;  // stall injected by kSlowWorker
  std::vector<Rule> rules;

  /// Parses the --faults=<spec> grammar:
  ///   spec  := entry (',' entry)*
  ///   entry := 'seed=' N | 'slow-ms=' N | site ':' kind ['@' prob] ['*' max]
  /// e.g. "seed=7,wire.upload:garbage@0.5,worker:crash*1". Site and kind use
  /// the names printed by site_name/kind_name. Throws pphe::Error on syntax
  /// errors or a kind that cannot fire at its site.
  static FaultSpec parse(const std::string& text);

  std::string describe() const;
};

/// Arms `spec` process-wide (replacing any previous plan) / disarms.
void configure(const FaultSpec& spec);
void disarm();

namespace detail {
extern std::atomic<bool> armed_flag;
}
/// True when a plan with at least one rule is armed. The only cost every
/// fault hook pays when injection is off.
inline bool armed() {
  return detail::armed_flag.load(std::memory_order_relaxed);
}

/// Per-(site, kind) firing tallies since the last configure()/reset_stats().
struct FaultStats {
  std::uint64_t fired[kSiteCount][kKindCount] = {};
  std::uint64_t total = 0;
};
FaultStats stats();
void reset_stats();

/// Core decision: does an armed rule for (site, kind) fire at this
/// opportunity? Deterministic in (seed, site, kind, opportunity index);
/// bumps the rule's counter and the firing stats when it fires.
bool should_fire(Site site, Kind kind);

// --- site helpers (the library's injection points call these) -------------

/// Applies any armed wire-byte fault for `site` to `bytes` in place:
/// kTruncate drops a seeded-length suffix, kGarbage overwrites a seeded span,
/// kLimbBitFlip flips one seeded bit. No-op when nothing fires.
void corrupt_wire(Site site, std::string& bytes);

/// Worker checkpoint: stalls for slow_seconds when kSlowWorker fires and
/// throws Error(ErrorCode::kWorkerCrash) when kCrashWorker fires.
void worker_checkpoint();

/// Flips one seeded bit of `words` when (site, kLimbBitFlip) fires.
/// Returns true when a bit was flipped.
bool flip_limb(Site site, std::span<std::uint64_t> words);

/// Perturbs a mirrored scale / level when the matching eval-input fault
/// fires. Return true when perturbed.
bool perturb_scale(Site site, double& scale);
bool perturb_level(Site site, int& level);

}  // namespace pphe::fault
