#pragma once

#include <string>
#include <vector>

namespace pphe {

/// Fixed-width ASCII table printer used by the bench harness to render the
/// paper's tables (Tables I–VI) with the same row/column structure.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a box-drawing rule under the header; columns are sized to
  /// their widest cell. Missing trailing cells render empty.
  std::string render() const;

  // Cell formatting helpers.
  static std::string fixed(double value, int precision);
  static std::string integer(long long value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pphe
