#pragma once

#include <cstddef>
#include <map>
#include <mutex>

namespace pphe {

/// Records how much of a computation was channel-parallelizable work vs
/// inherently serial work, so the benches can report the critical-path
/// latency an ideal P-worker execution would achieve.
///
/// Rationale (DESIGN.md §3): the paper's evaluation ran on a 16-core Xeon and
/// attributes part of the RNS speedup to processing residue channels in
/// parallel. This container has one core, so instead of thread wall-time we
/// measure each parallel section sequentially, remember its fan-out k, and
/// compute simulate(P) = serial + Σ_sections time·ceil(k/P)/k — an ideal
/// work-conserving schedule with zero synchronization cost (an upper bound on
/// real speedup, printed alongside the measured sequential wall time).
///
/// Instrumentation assumes sections are measured sequentially (the library
/// runs its channel loops inline when the global thread pool has one worker).
class ParallelSim {
 public:
  void record_parallel(std::size_t fanout, double seconds) {
    std::lock_guard lock(mutex_);
    parallel_[fanout * fanout_multiplier()] += seconds;
  }

  /// RAII multiplier for nested parallelism: while alive, recorded fan-outs
  /// are multiplied by `mult`. Used by the CNN-HE-RNS branch loop (Fig. 5):
  /// the k residue branches are independent, so channel work inside branch m
  /// could run on k times as many workers.
  class FanoutScope {
   public:
    explicit FanoutScope(std::size_t mult) : prev_(fanout_multiplier()) {
      fanout_multiplier() = prev_ * (mult == 0 ? 1 : mult);
    }
    ~FanoutScope() { fanout_multiplier() = prev_; }
    FanoutScope(const FanoutScope&) = delete;
    FanoutScope& operator=(const FanoutScope&) = delete;

   private:
    std::size_t prev_;
  };
  void record_serial(double seconds) {
    std::lock_guard lock(mutex_);
    serial_ += seconds;
  }
  void reset() {
    std::lock_guard lock(mutex_);
    parallel_.clear();
    serial_ = 0.0;
  }

  /// Total measured (sequential) time.
  double sequential_seconds() const {
    std::lock_guard lock(mutex_);
    double total = serial_;
    for (const auto& [k, t] : parallel_) total += t;
    return total;
  }

  /// Ideal critical-path latency with `workers` parallel workers.
  double simulate(std::size_t workers) const {
    std::lock_guard lock(mutex_);
    if (workers == 0) workers = 1;
    double total = serial_;
    for (const auto& [k, t] : parallel_) {
      const std::size_t waves = (k + workers - 1) / workers;
      total += t * static_cast<double>(waves) / static_cast<double>(k);
    }
    return total;
  }

  /// Process-wide recorder used by the CKKS backends.
  static ParallelSim& global() {
    static ParallelSim sim;
    return sim;
  }

 private:
  static std::size_t& fanout_multiplier() {
    thread_local std::size_t mult = 1;
    return mult;
  }

  mutable std::mutex mutex_;
  std::map<std::size_t, double> parallel_;
  double serial_ = 0.0;
};

}  // namespace pphe
