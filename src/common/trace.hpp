#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"

/// Compile-time gate. Building with -DPPHE_TRACE_COMPILED=0 turns Span into
/// an empty struct and every trace call into a no-op, for deployments where
/// even a relaxed atomic load per op is unwelcome. Default is compiled-in:
/// the runtime flag (trace::set_enabled) already keeps the disabled-path cost
/// to one predictable branch.
#ifndef PPHE_TRACE_COMPILED
#define PPHE_TRACE_COMPILED 1
#endif

namespace pphe::trace {

/// One completed span. Name/category/attribute keys are stored inline (not
/// as pointers) so events outlive any dynamically-built label — per-layer
/// spans format "layer:conv1" into a stack buffer that dies with the Span.
struct Event {
  static constexpr std::size_t kNameCap = 48;
  static constexpr std::size_t kCatCap = 16;
  static constexpr std::size_t kKeyCap = 16;
  static constexpr std::size_t kMaxAttrs = 8;

  char name[kNameCap];
  char cat[kCatCap];
  struct Attr {
    char key[kKeyCap];
    double value;
  };
  Attr attrs[kMaxAttrs];
  std::uint32_t attr_count = 0;
  std::uint64_t start_ns = 0;  ///< since trace epoch (first use of the clock)
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;   ///< small dense thread id, stable per thread
  std::uint32_t depth = 0; ///< nesting depth at open time (0 = top level)
};

/// True when spans are being recorded. Relaxed load; this is the only cost
/// a disabled Span pays beyond a branch.
bool enabled();

/// Turns recording on/off. Enabling does NOT clear prior events.
void set_enabled(bool on);

/// Discards all recorded events and the dropped-event counter.
void clear();

/// Events recorded so far across all threads (snapshot order: per-thread
/// chronological, threads concatenated by registration order).
std::vector<Event> snapshot();
std::size_t event_count();

/// Events lost to per-thread ring-buffer overflow since the last clear().
std::uint64_t dropped_count();

/// Per-op-name latency histograms for spans in `category` (empty = all).
std::map<std::string, Histogram> op_histograms(const std::string& category);

/// Human-readable per-op table (count, total ms, avg us, log2-ns histogram)
/// for the given category (empty = all categories).
std::string summary_table(const std::string& category = "");

/// Serializes all recorded events as Chrome trace-event JSON (the format
/// chrome://tracing and https://ui.perfetto.dev load directly).
std::string to_chrome_json();

/// Writes to_chrome_json() to `path`. Returns false on I/O failure.
bool write_chrome_json(const std::string& path);

namespace detail {
// Hot-path internals; only Span below should call these.
extern std::atomic<bool> g_enabled;
std::uint64_t now_ns();
std::uint32_t thread_depth_enter();
void thread_depth_exit();
void record(const Event& ev);
}  // namespace detail

#if PPHE_TRACE_COMPILED

/// RAII scoped span. Construction when tracing is disabled costs one relaxed
/// atomic load and a branch; no locks are ever taken on the hot path (events
/// land in a pre-registered per-thread ring buffer).
///
///   {
///     trace::Span span("multiply", "he");
///     span.attr("level", ct.level());
///     ... work ...
///   }  // span records itself here
class Span {
 public:
  Span(const char* name, const char* category) {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    open(name, category);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (!live_) return;
    close();
  }

  /// Attaches a numeric attribute (shows up under args{} in the JSON).
  /// Silently ignored when the span is not recording or attrs are full.
  void attr(const char* key, double value) {
    if (!live_ || ev_.attr_count >= Event::kMaxAttrs) return;
    auto& a = ev_.attrs[ev_.attr_count++];
    copy_str(a.key, Event::kKeyCap, key);
    a.value = value;
  }

  bool recording() const { return live_; }

 private:
  void open(const char* name, const char* category) {
    live_ = true;
    copy_str(ev_.name, Event::kNameCap, name);
    copy_str(ev_.cat, Event::kCatCap, category);
    ev_.depth = detail::thread_depth_enter();
    ev_.start_ns = detail::now_ns();
  }
  void close() {
    ev_.dur_ns = detail::now_ns() - ev_.start_ns;
    detail::thread_depth_exit();
    detail::record(ev_);
  }
  static void copy_str(char* dst, std::size_t cap, const char* src) {
    std::size_t i = 0;
    for (; src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
    dst[i] = '\0';
  }

  Event ev_{};
  bool live_ = false;
};

#else  // !PPHE_TRACE_COMPILED

class Span {
 public:
  Span(const char*, const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void attr(const char*, double) {}
  bool recording() const { return false; }
};

#endif  // PPHE_TRACE_COMPILED

}  // namespace pphe::trace
