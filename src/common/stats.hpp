#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace pphe {

/// Wall-clock stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates latency samples and reports the min/max/avg trio the paper's
/// Tables III and V use, plus dispersion measures for our own analysis.
class LatencyStats {
 public:
  void add(double seconds);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double avg() const;
  double stddev() const;
  /// q in [0,1]; linear interpolation between order statistics.
  double percentile(double q) const;

  const std::vector<double>& samples() const { return samples_; }

  /// "min/max/avg" rendered with the given precision, for table rows.
  std::string summary(int precision = 2) const;

 private:
  std::vector<double> samples_;
};

}  // namespace pphe
