#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pphe {

/// Wall-clock stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates latency samples and reports the min/max/avg trio the paper's
/// Tables III and V use, plus dispersion measures for our own analysis.
class LatencyStats {
 public:
  void add(double seconds);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double avg() const;
  double stddev() const;
  /// q in [0,1]; linear interpolation between order statistics.
  double percentile(double q) const;

  const std::vector<double>& samples() const { return samples_; }

  /// "min/max/avg" rendered with the given precision, for table rows.
  std::string summary(int precision = 2) const;

 private:
  std::vector<double> samples_;
};

/// Fixed-footprint latency histogram with log2-nanosecond buckets: bucket i
/// holds samples in [2^i, 2^(i+1)) ns. Unlike LatencyStats it never
/// allocates per sample, so the tracer can fold millions of spans into it.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add_ns(std::uint64_t ns);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::uint64_t min_ns() const;
  std::uint64_t max_ns() const;
  double avg_ns() const;
  double total_ns() const { return sum_ns_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  /// Approximate quantile from bucket boundaries (q in [0,1]).
  double percentile_ns(double q) const;

  /// Compact one-line bar render of the occupied bucket range, e.g.
  /// "2^10..2^14 [ 3 17 42 9 1 ]".
  std::string render() const;

  void merge(const Histogram& other);

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
  double sum_ns_ = 0.0;
};

}  // namespace pphe
