#include "common/trace.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>

namespace pphe::trace {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

/// Per-thread fixed-capacity ring of completed events. Owned jointly by the
/// writing thread (via thread_local shared_ptr) and the global registry, so
/// events survive thread exit until clear(). The writing thread is the only
/// writer; readers (snapshot/export) briefly flip g_enabled off or accept a
/// racy-but-bounded view — `size` is atomic with release stores so a reader
/// never sees an index ahead of the event data it covers.
struct Ring {
  static constexpr std::size_t kCapacity = 1u << 15;  // 32768 events/thread

  std::vector<Event> events{std::vector<Event>(kCapacity)};
  std::atomic<std::size_t> size{0};       ///< events written, may exceed cap
  std::uint32_t tid = 0;

  void push(const Event& ev) {
    const std::size_t n = size.load(std::memory_order_relaxed);
    events[n % kCapacity] = ev;
    size.store(n + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during static dtors
  return *r;
}

Ring& thread_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    r->tid = reg.next_tid++;
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

thread_local std::uint32_t t_depth = 0;

std::uint64_t epoch_ns() {
  static const std::uint64_t epoch = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return epoch;
}

void collect(std::vector<Event>* out, std::uint64_t* dropped) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& ring : reg.rings) {
    const std::size_t n = ring->size.load(std::memory_order_acquire);
    const std::size_t kept = std::min(n, Ring::kCapacity);
    if (dropped != nullptr) *dropped += n - kept;
    if (out == nullptr) continue;
    // Oldest-first: when the ring wrapped, the oldest surviving event sits
    // at index n % capacity.
    const std::size_t start = n > Ring::kCapacity ? n % Ring::kCapacity : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      out->push_back(ring->events[(start + i) % Ring::kCapacity]);
    }
  }
}

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf literals; clamp to null-safe numbers.
void append_number(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << std::setprecision(17) << v;
  } else {
    os << 0;
  }
}

}  // namespace

std::uint64_t now_ns() {
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_ns();
}

std::uint32_t thread_depth_enter() { return t_depth++; }

void thread_depth_exit() { --t_depth; }

void record(const Event& ev) {
  Ring& ring = thread_ring();
  Event copy = ev;
  copy.tid = ring.tid;
  ring.push(copy);
}

}  // namespace detail

bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  if (on) detail::now_ns();  // pin the epoch before the first span
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void clear() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  // Rings stay registered (threads hold live pointers); just empty them.
  for (const auto& ring : reg.rings) {
    ring->size.store(0, std::memory_order_release);
  }
}

std::vector<Event> snapshot() {
  std::vector<Event> out;
  detail::collect(&out, nullptr);
  return out;
}

std::size_t event_count() { return snapshot().size(); }

std::uint64_t dropped_count() {
  std::uint64_t dropped = 0;
  detail::collect(nullptr, &dropped);
  return dropped;
}

std::map<std::string, Histogram> op_histograms(const std::string& category) {
  std::map<std::string, Histogram> out;
  for (const Event& ev : snapshot()) {
    if (!category.empty() && category != ev.cat) continue;
    out[ev.name].add_ns(ev.dur_ns);
  }
  return out;
}

std::string summary_table(const std::string& category) {
  const auto hists = op_histograms(category);
  std::ostringstream os;
  os << std::left << std::setw(22) << "op" << std::right << std::setw(10)
     << "count" << std::setw(12) << "total_ms" << std::setw(12) << "avg_us"
     << "  histogram\n";
  for (const auto& [name, h] : hists) {
    os << std::left << std::setw(22) << name << std::right << std::setw(10)
       << h.count() << std::setw(12) << std::fixed << std::setprecision(2)
       << h.total_ns() / 1e6 << std::setw(12) << std::setprecision(2)
       << h.avg_ns() / 1e3 << "  " << h.render() << "\n";
  }
  return os.str();
}

std::string to_chrome_json() {
  const std::vector<Event> events = snapshot();
  std::uint64_t dropped = 0;
  detail::collect(nullptr, &dropped);

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& ev : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << detail::json_escape(ev.name) << "\""
       << ",\"cat\":\"" << detail::json_escape(ev.cat) << "\""
       << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":";
    detail::append_number(os, static_cast<double>(ev.start_ns) / 1e3);
    os << ",\"dur\":";
    detail::append_number(os, static_cast<double>(ev.dur_ns) / 1e3);
    if (ev.attr_count > 0) {
      os << ",\"args\":{";
      for (std::uint32_t i = 0; i < ev.attr_count; ++i) {
        if (i > 0) os << ",";
        os << "\"" << detail::json_escape(ev.attrs[i].key) << "\":";
        detail::append_number(os, ev.attrs[i].value);
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" << dropped
     << "}}";
  return os.str();
}

bool write_chrome_json(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << to_chrome_json();
  return static_cast<bool>(f);
}

}  // namespace pphe::trace
