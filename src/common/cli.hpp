#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pphe {

/// Minimal command-line flag parser for the bench/example binaries.
/// Accepts `--name value`, `--name=value` and boolean `--name`.
class CliFlags {
 public:
  CliFlags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Reads `--trace-out=<file>` and, when present, turns homomorphic-op
/// tracing on for the process. Returns the output path ("" = tracing off).
/// The caller writes the trace at exit via `finish_tracing(path)`.
std::string init_tracing_from_flags(const CliFlags& flags);

/// Writes the recorded trace to `path` (no-op on "") and prints the per-op
/// latency summary when `print_summary` is set. Returns false on I/O error.
bool finish_tracing(const std::string& path, bool print_summary = true);

/// Reads `--faults=<spec>` and, when present, arms the process-wide fault
/// plan (see fault::FaultSpec::parse for the grammar). Returns the armed
/// spec string ("" = injection off). Throws pphe::Error on a bad spec.
std::string init_faults_from_flags(const CliFlags& flags);

/// Reads `--force-isa=<scalar|avx2|avx512|auto>` and pins the math HAL's
/// process-wide kernel dispatch ("auto" re-runs the startup dispatch: the
/// PPHE_FORCE_ISA environment variable if set, else the widest ISA this
/// build+CPU supports). Without the flag the dispatch is left as-is.
/// Returns the name of the ISA active after the call. Throws
/// Error(kInvalidArgument) on an unknown or unavailable ISA.
/// (Declared here so every CLI surface shares the flag; defined in
/// math/hal/cli_isa.cpp, below the dispatcher it configures.)
std::string init_isa_from_flags(const CliFlags& flags);

}  // namespace pphe
