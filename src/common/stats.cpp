#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace pphe {

void LatencyStats::add(double seconds) { samples_.push_back(seconds); }

double LatencyStats::min() const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double LatencyStats::max() const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::avg() const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double LatencyStats::stddev() const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  if (samples_.size() == 1) return 0.0;
  const double mean = avg();
  double acc = 0.0;
  for (const double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double LatencyStats::percentile(double q) const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  PPHE_CHECK(q >= 0.0 && q <= 1.0, "percentile out of range");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string LatencyStats::summary(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << min() << "/" << max()
     << "/" << avg();
  return os.str();
}

namespace {

std::size_t log2_bucket(std::uint64_t ns) {
  if (ns == 0) return 0;
  std::size_t b = 0;
  while (ns >>= 1) ++b;
  return std::min(b, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::add_ns(std::uint64_t ns) {
  ++buckets_[log2_bucket(ns)];
  if (count_ == 0) {
    min_ns_ = max_ns_ = ns;
  } else {
    min_ns_ = std::min(min_ns_, ns);
    max_ns_ = std::max(max_ns_, ns);
  }
  ++count_;
  sum_ns_ += static_cast<double>(ns);
}

std::uint64_t Histogram::min_ns() const {
  PPHE_CHECK(count_ > 0, "no samples");
  return min_ns_;
}

std::uint64_t Histogram::max_ns() const {
  PPHE_CHECK(count_ > 0, "no samples");
  return max_ns_;
}

double Histogram::avg_ns() const {
  PPHE_CHECK(count_ > 0, "no samples");
  return sum_ns_ / static_cast<double>(count_);
}

double Histogram::percentile_ns(double q) const {
  PPHE_CHECK(count_ > 0, "no samples");
  PPHE_CHECK(q >= 0.0 && q <= 1.0, "percentile out of range");
  const double target = q * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) > target) {
      // Midpoint of bucket [2^i, 2^(i+1)).
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
      return 0.5 * (lo + hi);
    }
  }
  return static_cast<double>(max_ns_);
}

std::string Histogram::render() const {
  if (count_ == 0) return "(empty)";
  std::size_t lo = kBuckets, hi = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    lo = std::min(lo, i);
    hi = std::max(hi, i);
  }
  std::ostringstream os;
  os << "2^" << lo << "..2^" << (hi + 1) << "ns [";
  for (std::size_t i = lo; i <= hi; ++i) os << " " << buckets_[i];
  os << " ]";
  return os.str();
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ns_ = other.min_ns_;
    max_ns_ = other.max_ns_;
  } else {
    min_ns_ = std::min(min_ns_, other.min_ns_);
    max_ns_ = std::max(max_ns_, other.max_ns_);
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
}

}  // namespace pphe
