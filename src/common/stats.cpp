#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace pphe {

void LatencyStats::add(double seconds) { samples_.push_back(seconds); }

double LatencyStats::min() const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double LatencyStats::max() const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::avg() const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double LatencyStats::stddev() const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  if (samples_.size() == 1) return 0.0;
  const double mean = avg();
  double acc = 0.0;
  for (const double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double LatencyStats::percentile(double q) const {
  PPHE_CHECK(!samples_.empty(), "no samples");
  PPHE_CHECK(q >= 0.0 && q <= 1.0, "percentile out of range");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string LatencyStats::summary(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << min() << "/" << max()
     << "/" << avg();
  return os.str();
}

}  // namespace pphe
