#pragma once

#include <array>
#include <cstdint>

namespace pphe {

/// Deterministic pseudo-random generator (xoshiro256**). Deterministic given a
/// seed, so every experiment in the repository is reproducible bit-for-bit.
///
/// This is NOT a cryptographically secure generator; it stands in for the
/// CSPRNG a production deployment would use for key material. The sampling
/// *distributions* built on top of it (ternary, HWT(h), discrete Gaussian)
/// are exactly those of the CKKS specification (see ckks/ and math/sampling).
class Prng {
 public:
  /// Seeds the four 64-bit state words from `seed` via splitmix64, which
  /// guarantees a non-zero, well-mixed state for any seed value.
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (rejection sampling).
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform_double();

  /// Standard normal variate (Box–Muller; caches the second deviate).
  double normal();

  /// Forks an independently-seeded child stream; children with different
  /// `stream_id`s are decorrelated, which lets parallel workers draw
  /// randomness without sharing state.
  Prng fork(std::uint64_t stream_id) const;

  // UniformRandomBitGenerator interface, so <random> adaptors also work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pphe
