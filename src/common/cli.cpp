#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/trace.hpp"

namespace pphe {

CliFlags::CliFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliFlags::get(const std::string& name,
                          const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  PPHE_CHECK(end != it->second.c_str() && *end == '\0',
             "flag --" + name + " is not an integer: " + it->second);
  return v;
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  PPHE_CHECK(end != it->second.c_str() && *end == '\0',
             "flag --" + name + " is not a number: " + it->second);
  return v;
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::string init_faults_from_flags(const CliFlags& flags) {
  const std::string spec = flags.get("faults", "");
  if (!spec.empty()) {
    const fault::FaultSpec parsed = fault::FaultSpec::parse(spec);
    fault::configure(parsed);
    std::printf("[faults] armed: %s\n", parsed.describe().c_str());
  }
  return spec;
}

std::string init_tracing_from_flags(const CliFlags& flags) {
  const std::string path = flags.get("trace-out", "");
  if (!path.empty()) trace::set_enabled(true);
  return path;
}

bool finish_tracing(const std::string& path, bool print_summary) {
  if (path.empty()) return true;
  trace::set_enabled(false);
  if (print_summary) {
    std::printf("\n[trace] per-op latency (category \"he\"):\n%s",
                trace::summary_table("he").c_str());
  }
  const bool ok = trace::write_chrome_json(path);
  if (ok) {
    std::printf("[trace] %zu events -> %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                trace::event_count(), path.c_str());
    const auto dropped = trace::dropped_count();
    if (dropped > 0) {
      std::printf("[trace] WARNING: %llu events dropped (ring overflow)\n",
                  static_cast<unsigned long long>(dropped));
    }
  } else {
    std::fprintf(stderr, "[trace] ERROR: could not write %s\n", path.c_str());
  }
  return ok;
}

}  // namespace pphe
