#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace pphe {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string();
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  emit_row(os, header_);
  os << "|";
  for (const auto w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string TextTable::fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::integer(long long value) {
  return std::to_string(value);
}

}  // namespace pphe
