#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pphe {

/// Fixed-size worker pool used to run per-residue work of the RNS
/// representation in parallel (the parallelism the paper's Fig. 5 relies on).
///
/// With `num_threads == 0` (or 1) the pool degenerates to inline execution so
/// single-core machines pay no synchronization overhead; the benches then use
/// measured per-branch critical-path latency to report what a multi-core run
/// would achieve (see DESIGN.md §3).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 means inline execution).
  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) and blocks until all iterations finish.
  /// Iterations must be independent. Exceptions from iterations are rethrown
  /// (the first one observed) after the loop completes.
  ///
  /// Work is claimed in chunks of chunk_size(count, size()) iterations per
  /// atomic increment (4 chunks per participant), so large flat loops do not
  /// serialize on the shared index, while small channel-count loops keep
  /// per-iteration stealing for balance.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Iterations claimed per atomic fetch_add by parallel_for: count split in
  /// ~4 chunks per participant (workers + the calling thread), at least 1.
  /// Exposed so tests can pin the dispatch arithmetic deterministically.
  static std::size_t chunk_size(std::size_t count, std::size_t workers) {
    return count / (4 * (workers + 1)) + 1;
  }

  /// Cumulative helper tasks enqueued by parallel_for since construction
  /// (at most min(workers, chunks) per call): the queue-pressure statistic
  /// the contention regression test keys on.
  std::uint64_t tasks_enqueued() const {
    return tasks_enqueued_.load(std::memory_order_relaxed);
  }

  /// Hardware concurrency, at least 1.
  static std::size_t default_thread_count();

  /// Process-wide pool shared by library internals.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> tasks_enqueued_{0};
};

}  // namespace pphe
