#pragma once

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pphe {

/// Machine-readable classification of a pphe::Error. A multi-tenant serving
/// loop routes on these (retry? reject the request? alert?) instead of
/// parsing message strings; the chaos suite asserts each injected fault
/// surfaces as its expected code.
enum class ErrorCode : std::uint8_t {
  /// Precondition / invariant failure with no more specific class.
  kGeneric = 0,
  /// Malformed serialized bytes: bad magic, unsupported version, truncation,
  /// or structure inconsistent with the receiving backend's parameters.
  kSerialization,
  /// A wire-section checksum did not match its payload (bytes corrupted in
  /// transit or at rest).
  kChecksumMismatch,
  /// Ciphertext health validation failed: limb/channel layout, NTT-form
  /// invariants, or the in-memory integrity digest no longer match.
  kIntegrity,
  /// Operand levels differ (or a ciphertext arrived at a level the compiled
  /// plan cannot accept).
  kLevelMismatch,
  /// Operand scales differ beyond tolerance.
  kScaleMismatch,
  /// A product's scale would exceed the remaining modulus capacity.
  kCapacityExceeded,
  /// Pre-eval noise-budget guardrail: evaluating would return logits below
  /// the configured precision floor, so the result is refused as degraded.
  kNoiseBudget,
  /// A watchdog deadline expired before the guarded work finished.
  kTimeout,
  /// A (simulated) worker crashed mid-request.
  kWorkerCrash,
  /// A caller-supplied argument is outside the accepted domain (e.g. a batch
  /// size that is not a power of two or exceeds slot capacity). The message
  /// names the allowed range so CLI layers can print it verbatim.
  kInvalidArgument,
  /// Admission control: the serving queue is full, the request was rejected
  /// at submit time (backpressure — resubmit later or shed load upstream).
  kOverloaded,
  /// The session's evaluation keys were evicted from the server-side key
  /// registry (LRU under byte quota). Recoverable: re-send the keys and
  /// resubmit — the request itself was fine.
  kKeyEvicted,
  /// Network protocol violation: wrong handshake version, parameter digest
  /// mismatch, or a frame that is out of order for the session state.
  kProtocol,
};
inline constexpr std::size_t kErrorCodeCount =
    static_cast<std::size_t>(ErrorCode::kProtocol) + 1;

constexpr const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric: return "generic";
    case ErrorCode::kSerialization: return "serialization";
    case ErrorCode::kChecksumMismatch: return "checksum_mismatch";
    case ErrorCode::kIntegrity: return "integrity";
    case ErrorCode::kLevelMismatch: return "level_mismatch";
    case ErrorCode::kScaleMismatch: return "scale_mismatch";
    case ErrorCode::kCapacityExceeded: return "capacity_exceeded";
    case ErrorCode::kNoiseBudget: return "noise_budget";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kWorkerCrash: return "worker_crash";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kKeyEvicted: return "key_evicted";
    case ErrorCode::kProtocol: return "protocol";
  }
  return "?";
}

/// Error thrown by PPHE_CHECK failures: invalid arguments, broken invariants,
/// incompatible ciphertext parameters, etc. All library preconditions are
/// enforced with this (never assert()), so callers can recover; code() tells
/// a recovery loop WHICH class of failure it is handling.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_ = ErrorCode::kGeneric;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg,
                                             ErrorCode code =
                                                 ErrorCode::kGeneric) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(code, os.str());
}
}  // namespace detail

}  // namespace pphe

/// Precondition / invariant check that throws pphe::Error. The message
/// argument is a string expression, evaluated lazily only on failure.
#define PPHE_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pphe::detail::throw_check_failure(#cond, __FILE__, __LINE__,      \
                                          (msg));                         \
    }                                                                     \
  } while (0)

/// PPHE_CHECK with an explicit ErrorCode, for checks a serving loop routes
/// on (wire decoding, ciphertext compatibility, noise guardrails).
#define PPHE_CHECK_CODE(cond, code, msg)                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pphe::detail::throw_check_failure(#cond, __FILE__, __LINE__,      \
                                          (msg), (code));                 \
    }                                                                     \
  } while (0)
