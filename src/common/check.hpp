#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pphe {

/// Error thrown by PPHE_CHECK failures: invalid arguments, broken invariants,
/// incompatible ciphertext parameters, etc. All library preconditions are
/// enforced with this (never assert()), so callers can recover.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace pphe

/// Precondition / invariant check that throws pphe::Error. The message
/// argument is a string expression, evaluated lazily only on failure.
#define PPHE_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pphe::detail::throw_check_failure(#cond, __FILE__, __LINE__,      \
                                          (msg));                         \
    }                                                                     \
  } while (0)
