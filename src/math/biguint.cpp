#include "math/biguint.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace pphe {

BigUInt::BigUInt(std::uint64_t value) {
  if (value != 0) {
    limbs_[0] = value;
    size_ = 1;
  }
}

void BigUInt::normalize() {
  while (size_ != 0 && limbs_[size_ - 1] == 0) --size_;
}

std::size_t BigUInt::bit_length() const {
  if (size_ == 0) return 0;
  return 64 * (size_ - 1) +
         (64 - static_cast<std::size_t>(std::countl_zero(limbs_[size_ - 1])));
}

bool BigUInt::bit(std::size_t index) const {
  const std::size_t limb_idx = index / 64;
  if (limb_idx >= size_) return false;
  return (limbs_[limb_idx] >> (index % 64)) & 1;
}

double BigUInt::to_double() const {
  double result = 0.0;
  for (std::size_t i = size_; i-- > 0;) {
    result = result * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return result;
}

int BigUInt::compare(const BigUInt& other) const {
  if (size_ != other.size_) return size_ < other.size_ ? -1 : 1;
  for (std::size_t i = size_; i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUInt BigUInt::operator+(const BigUInt& o) const {
  BigUInt result;
  const std::size_t n = std::max<std::size_t>(size_, o.size_);
  PPHE_CHECK(n + 1 <= kMaxLimbs, "BigUInt capacity exceeded in addition");
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    carry += limb(i);
    carry += o.limb(i);
    result.limbs_[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  result.limbs_[n] = static_cast<std::uint64_t>(carry);
  result.size_ = static_cast<std::uint32_t>(n + 1);
  result.normalize();
  return result;
}

BigUInt BigUInt::operator-(const BigUInt& o) const {
  PPHE_CHECK(*this >= o, "BigUInt subtraction underflow");
  BigUInt result;
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    const std::uint64_t a = limbs_[i];
    const std::uint64_t b = o.limb(i);
    const std::uint64_t d1 = a - b;
    const std::uint64_t borrow1 = a < b ? 1 : 0;
    const std::uint64_t d2 = d1 - borrow;
    const std::uint64_t borrow2 = d1 < borrow ? 1 : 0;
    result.limbs_[i] = d2;
    borrow = borrow1 + borrow2;
  }
  PPHE_CHECK(borrow == 0, "BigUInt subtraction internal underflow");
  result.size_ = size_;
  result.normalize();
  return result;
}

BigUInt BigUInt::operator*(const BigUInt& o) const {
  if (is_zero() || o.is_zero()) return BigUInt();
  const std::size_t n = size_ + o.size_;
  PPHE_CHECK(n <= kMaxLimbs, "BigUInt capacity exceeded in multiplication");
  BigUInt result;
  for (std::size_t i = 0; i < size_; ++i) {
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < o.size_; ++j) {
      carry += static_cast<unsigned __int128>(limbs_[i]) * o.limbs_[j];
      carry += result.limbs_[i + j];
      result.limbs_[i + j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    result.limbs_[i + o.size_] = static_cast<std::uint64_t>(carry);
  }
  result.size_ = static_cast<std::uint32_t>(n);
  result.normalize();
  return result;
}

BigUInt BigUInt::operator<<(std::size_t bits) const {
  if (is_zero()) return BigUInt();
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  const std::size_t n = size_ + limb_shift + 1;
  PPHE_CHECK(n <= kMaxLimbs, "BigUInt capacity exceeded in left shift");
  BigUInt result;
  for (std::size_t i = 0; i < size_; ++i) {
    result.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      result.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  result.size_ = static_cast<std::uint32_t>(n);
  result.normalize();
  return result;
}

BigUInt BigUInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= size_) return BigUInt();
  const std::size_t bit_shift = bits % 64;
  BigUInt result;
  result.size_ = static_cast<std::uint32_t>(size_ - limb_shift);
  for (std::size_t i = 0; i < result.size_; ++i) {
    result.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < size_) {
      result.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  result.normalize();
  return result;
}

BigUInt::DivMod BigUInt::divmod(const BigUInt& divisor) const {
  PPHE_CHECK(!divisor.is_zero(), "division by zero");
  if (*this < divisor) return {BigUInt(), *this};
  if (divisor.limb_count() == 1) {
    const auto dm = divmod_u64(divisor.limb(0));
    return {dm.quotient, BigUInt(dm.remainder)};
  }

  // Binary long division: O(bit_length * limbs). Used only in setup paths
  // (Barrett constants, CRT interpolation, inverses), never per-coefficient.
  const std::size_t shift = bit_length() - divisor.bit_length();
  BigUInt remainder = *this;
  BigUInt quotient;
  quotient.size_ = static_cast<std::uint32_t>(shift / 64 + 1);
  BigUInt shifted = divisor << shift;
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (remainder >= shifted) {
      remainder -= shifted;
      quotient.limbs_[i / 64] |= 1ull << (i % 64);
    }
    shifted = shifted >> 1;
  }
  quotient.normalize();
  return {quotient, remainder};
}

BigUInt::DivModU64 BigUInt::divmod_u64(std::uint64_t divisor) const {
  PPHE_CHECK(divisor != 0, "division by zero");
  DivModU64 out;
  out.quotient.size_ = size_;
  unsigned __int128 rem = 0;
  for (std::size_t i = size_; i-- > 0;) {
    rem = (rem << 64) | limbs_[i];
    out.quotient.limbs_[i] = static_cast<std::uint64_t>(rem / divisor);
    rem %= divisor;
  }
  out.quotient.normalize();
  out.remainder = static_cast<std::uint64_t>(rem);
  return out;
}

std::uint64_t BigUInt::mod_u64(std::uint64_t divisor) const {
  PPHE_CHECK(divisor != 0, "division by zero");
  unsigned __int128 rem = 0;
  for (std::size_t i = size_; i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % divisor;
  }
  return static_cast<std::uint64_t>(rem);
}

BigUInt BigUInt::pow_mod(const BigUInt& e, const BigUInt& m) const {
  PPHE_CHECK(m > BigUInt(1), "modulus must exceed 1");
  BigUInt base = *this % m;
  BigUInt result(1);
  const std::size_t bits = e.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (e.bit(i)) result = (result * base) % m;
    base = (base * base) % m;
  }
  return result;
}

BigUInt BigUInt::inv_mod(const BigUInt& m) const {
  PPHE_CHECK(m > BigUInt(1), "modulus must exceed 1");
  // Extended Euclid with explicit signs for the Bezout coefficient.
  BigUInt r = m;
  BigUInt new_r = *this % m;
  PPHE_CHECK(!new_r.is_zero(), "inverse of zero");
  BigUInt t;  // |t|, sign in t_neg
  BigUInt new_t(1);
  bool t_neg = false, new_t_neg = false;

  while (!new_r.is_zero()) {
    const BigUInt q = r / new_r;
    // (t, new_t) <- (new_t, t - q*new_t) with sign tracking.
    const BigUInt q_nt = q * new_t;
    BigUInt next_t;
    bool next_neg = false;
    if (t_neg == new_t_neg) {
      if (t >= q_nt) {
        next_t = t - q_nt;
        next_neg = t_neg;
      } else {
        next_t = q_nt - t;
        next_neg = !t_neg;
      }
    } else {
      next_t = t + q_nt;
      next_neg = t_neg;
    }
    t = new_t;
    t_neg = new_t_neg;
    new_t = next_t;
    new_t_neg = next_neg;

    const BigUInt next_r = r % new_r;
    r = new_r;
    new_r = next_r;
  }
  PPHE_CHECK(r == BigUInt(1), "element not invertible");
  if (t_neg && !t.is_zero()) return m - (t % m);
  return t % m;
}

BigUInt BigUInt::from_string(const std::string& text) {
  PPHE_CHECK(!text.empty(), "empty number string");
  BigUInt result;
  if (text.rfind("0x", 0) == 0 || text.rfind("0X", 0) == 0) {
    for (std::size_t i = 2; i < text.size(); ++i) {
      const char c = text[i];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        PPHE_CHECK(false, "invalid hex digit");
      }
      result = (result << 4) + BigUInt(digit);
    }
  } else {
    for (const char c : text) {
      PPHE_CHECK(c >= '0' && c <= '9', "invalid decimal digit");
      result =
          result * BigUInt(10) + BigUInt(static_cast<std::uint64_t>(c - '0'));
    }
  }
  return result;
}

std::string BigUInt::to_string() const {
  if (is_zero()) return "0";
  std::string digits;
  BigUInt value = *this;
  while (!value.is_zero()) {
    const auto dm = value.divmod_u64(10);
    digits.push_back(static_cast<char>('0' + dm.remainder));
    value = dm.quotient;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigUInt::to_hex_string() const {
  if (is_zero()) return "0";
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (std::size_t i = size_; i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const auto nibble = (limbs_[i] >> shift) & 0xf;
      if (out.empty() && nibble == 0) continue;
      out.push_back(kHex[nibble]);
    }
  }
  return out;
}

}  // namespace pphe
