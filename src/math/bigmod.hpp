#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/biguint.hpp"

namespace pphe {

/// Barrett reduction context for a multiprecision modulus q.
///
/// Every homomorphic operation of the non-RNS CKKS baseline funnels through
/// mulmod() here — a full multiprecision multiply plus a Barrett reduction —
/// which is precisely the per-operation cost that the RNS representation
/// replaces with one native 64-bit multiply per residue channel (Fig. 2).
class BigBarrett {
 public:
  explicit BigBarrett(BigUInt modulus);

  const BigUInt& modulus() const { return modulus_; }

  /// Reduces x < q^2 (well below 2^(2k)) into [0, q).
  BigUInt reduce(const BigUInt& x) const;

  BigUInt mulmod(const BigUInt& a, const BigUInt& b) const;
  BigUInt addmod(const BigUInt& a, const BigUInt& b) const;
  BigUInt submod(const BigUInt& a, const BigUInt& b) const;
  BigUInt negmod(const BigUInt& a) const;

 private:
  BigUInt modulus_;
  BigUInt mu_;        // floor(2^(2k) / q)
  std::size_t k_ = 0; // bit length of q
};

/// Negacyclic NTT over the COMPOSITE modulus q = q_0 · … · q_L, operating on
/// BigUInt coefficients. The primitive 2n-th root is CRT-interpolated from
/// per-prime roots, so the transform is mathematically identical to running
/// the per-prime NTTs of the RNS representation and recombining — but it pays
/// multiprecision Barrett arithmetic in every butterfly, which is what makes
/// the non-RNS baseline slow (Tables III/V/VI, chain length 1).
class BigNtt {
 public:
  /// `prime_factors` are the word primes whose product is the modulus; each
  /// must be ≡ 1 (mod 2n).
  BigNtt(std::size_t n, const std::vector<std::uint64_t>& prime_factors);

  std::size_t n() const { return n_; }
  const BigBarrett& barrett() const { return barrett_; }
  const BigUInt& modulus() const { return barrett_.modulus(); }

  void forward(std::span<BigUInt> a) const;
  void inverse(std::span<BigUInt> a) const;
  void pointwise(std::span<const BigUInt> a, std::span<const BigUInt> b,
                 std::span<BigUInt> c) const;

 private:
  std::size_t n_;
  BigBarrett barrett_;
  std::vector<BigUInt> root_powers_;      // psi^brv(i)
  std::vector<BigUInt> inv_root_powers_;  // psi^{-brv(i)}
  BigUInt inv_n_;
};

}  // namespace pphe
