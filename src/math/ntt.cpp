#include "math/ntt.hpp"

#include "common/check.hpp"
#include "math/hal/hal.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

std::size_t bit_reverse(std::size_t x, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

}  // namespace

NttTable::NttTable(std::size_t n, const Modulus& modulus)
    : n_(n), modulus_(modulus) {
  PPHE_CHECK(n >= 2 && (n & (n - 1)) == 0, "NTT size must be a power of two");
  PPHE_CHECK((modulus.value() - 1) % (2 * n) == 0,
             "modulus must be 1 mod 2n for the negacyclic NTT");

  psi_ = find_primitive_2n_root(modulus.value(), n);
  const std::uint64_t psi_inv = modulus_.inv(psi_);

  int bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;

  root_powers_.resize(n);
  inv_root_powers_.resize(n);
  // Powers of psi stored in bit-reversed index order (Longa–Naehrig layout):
  // both loops of the transforms then read twiddles sequentially.
  std::uint64_t power = 1;
  std::vector<std::uint64_t> fwd(n), inv(n);
  std::uint64_t inv_power = 1;
  for (std::size_t i = 0; i < n; ++i) {
    fwd[bit_reverse(i, bits)] = power;
    inv[bit_reverse(i, bits)] = inv_power;
    power = modulus_.mul(power, psi_);
    inv_power = modulus_.mul(inv_power, psi_inv);
  }
  for (std::size_t i = 0; i < n; ++i) {
    root_powers_[i] = ShoupMul(fwd[i], modulus_);
    inv_root_powers_[i] = ShoupMul(inv[i], modulus_);
  }
  const std::uint64_t inv_n_value = modulus_.inv(n % modulus_.value());
  inv_n_ = ShoupMul(inv_n_value, modulus_);
  // The last Gentleman–Sande stage uses the single twiddle inv_root_powers_[1];
  // pre-scaling it by 1/n lets inverse() fold the final scaling pass into
  // that stage's butterflies.
  inv_n_root_ = ShoupMul(modulus_.mul(inv_n_value, inv[1]), modulus_);
}

void NttTable::forward(std::span<std::uint64_t> a) const {
  PPHE_CHECK(a.size() == n_, "NTT input size mismatch");
  hal::active().ntt_forward(a.data(), n_, root_powers_.data(),
                            modulus_.value());
}

void NttTable::inverse(std::span<std::uint64_t> a) const {
  PPHE_CHECK(a.size() == n_, "NTT input size mismatch");
  hal::active().ntt_inverse(a.data(), n_, inv_root_powers_.data(), inv_n_,
                            inv_n_root_, modulus_.value());
}

void NttTable::pointwise(std::span<const std::uint64_t> a,
                         std::span<const std::uint64_t> b,
                         std::span<std::uint64_t> c) const {
  PPHE_CHECK(a.size() == n_ && b.size() == n_ && c.size() == n_,
             "pointwise size mismatch");
  dyadic::mul(a, b, c, modulus_);
}

}  // namespace pphe
