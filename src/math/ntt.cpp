#include "math/ntt.hpp"

#include "common/check.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

std::size_t bit_reverse(std::size_t x, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

}  // namespace

NttTable::NttTable(std::size_t n, const Modulus& modulus)
    : n_(n), modulus_(modulus) {
  PPHE_CHECK(n >= 2 && (n & (n - 1)) == 0, "NTT size must be a power of two");
  PPHE_CHECK((modulus.value() - 1) % (2 * n) == 0,
             "modulus must be 1 mod 2n for the negacyclic NTT");

  psi_ = find_primitive_2n_root(modulus.value(), n);
  const std::uint64_t psi_inv = modulus_.inv(psi_);

  int bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;

  root_powers_.resize(n);
  inv_root_powers_.resize(n);
  // Powers of psi stored in bit-reversed index order (Longa–Naehrig layout):
  // both loops of the transforms then read twiddles sequentially.
  std::uint64_t power = 1;
  std::vector<std::uint64_t> fwd(n), inv(n);
  std::uint64_t inv_power = 1;
  for (std::size_t i = 0; i < n; ++i) {
    fwd[bit_reverse(i, bits)] = power;
    inv[bit_reverse(i, bits)] = inv_power;
    power = modulus_.mul(power, psi_);
    inv_power = modulus_.mul(inv_power, psi_inv);
  }
  for (std::size_t i = 0; i < n; ++i) {
    root_powers_[i] = ShoupMul(fwd[i], modulus_);
    inv_root_powers_[i] = ShoupMul(inv[i], modulus_);
  }
  const std::uint64_t inv_n_value = modulus_.inv(n % modulus_.value());
  inv_n_ = ShoupMul(inv_n_value, modulus_);
  // The last Gentleman–Sande stage uses the single twiddle inv_root_powers_[1];
  // pre-scaling it by 1/n lets inverse() fold the final scaling pass into
  // that stage's butterflies.
  inv_n_root_ = ShoupMul(modulus_.mul(inv_n_value, inv[1]), modulus_);
}

void NttTable::forward(std::span<std::uint64_t> a) const {
  PPHE_CHECK(a.size() == n_, "NTT input size mismatch");
  const std::uint64_t p = modulus_.value();
  const std::uint64_t two_p = 2 * p;
  std::uint64_t* x = a.data();
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t w = root_powers_[m + i].operand;
      const std::uint64_t wq = root_powers_[m + i].quotient;
      std::uint64_t* xa = x + 2 * i * t;
      std::uint64_t* xb = xa + t;
      // Harvey butterflies: inputs < 4p, outputs < 4p. The top input is
      // conditionally brought below 2p; the lazy Shoup product is < 2p for
      // any 64-bit input, so u+v < 4p and u-v+2p < 4p.
      for (std::size_t j = 0; j < t; ++j) {
        std::uint64_t u = xa[j];
        u = u >= two_p ? u - two_p : u;
        const std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(xb[j]) * wq) >> 64);
        const std::uint64_t v = xb[j] * w - q * p;
        xa[j] = u + v;
        xb[j] = u - v + two_p;
      }
    }
  }
  // Deferred correction: one sweep maps [0, 4p) -> [0, p).
  for (std::size_t j = 0; j < n_; ++j) {
    std::uint64_t v = x[j];
    v = v >= two_p ? v - two_p : v;
    x[j] = v >= p ? v - p : v;
  }
}

void NttTable::inverse(std::span<std::uint64_t> a) const {
  PPHE_CHECK(a.size() == n_, "NTT input size mismatch");
  const std::uint64_t p = modulus_.value();
  const std::uint64_t two_p = 2 * p;
  std::uint64_t* x = a.data();
  std::size_t t = 1;
  // Gentleman–Sande stages with values kept in [0, 2p): the sum gets one
  // conditional subtract, the difference (< 2p after +2p bias) goes through
  // the correction-free lazy Shoup product back into [0, 2p).
  for (std::size_t m = n_; m > 2; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const std::uint64_t w = inv_root_powers_[h + i].operand;
      const std::uint64_t wq = inv_root_powers_[h + i].quotient;
      std::uint64_t* xa = x + j1;
      std::uint64_t* xb = xa + t;
      for (std::size_t j = 0; j < t; ++j) {
        const std::uint64_t u = xa[j];
        const std::uint64_t v = xb[j];
        std::uint64_t s = u + v;
        s = s >= two_p ? s - two_p : s;
        xa[j] = s;
        const std::uint64_t d = u - v + two_p;
        const std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(d) * wq) >> 64);
        xb[j] = d * w - q * p;
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  // Final stage (m == 2, single twiddle inv_root_powers_[1]) with the 1/n
  // scaling folded into both outputs: inv_n_ on the sum, inv_n_root_
  // (= inv_n * twiddle) on the difference. Fully reduces to [0, p).
  // ShoupMul::mul handles any 64-bit input, so the [0, 2p) stage values and
  // the n == 2 case (raw inputs) both land here directly.
  const std::size_t half = n_ >> 1;
  for (std::size_t j = 0; j < half; ++j) {
    const std::uint64_t u = x[j];
    const std::uint64_t v = x[j + half];
    x[j] = inv_n_.mul(u + v, p);
    x[j + half] = inv_n_root_.mul(u - v + two_p, p);
  }
}

void NttTable::pointwise(std::span<const std::uint64_t> a,
                         std::span<const std::uint64_t> b,
                         std::span<std::uint64_t> c) const {
  PPHE_CHECK(a.size() == n_ && b.size() == n_ && c.size() == n_,
             "pointwise size mismatch");
  dyadic::mul(a, b, c, modulus_);
}

}  // namespace pphe
