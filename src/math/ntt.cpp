#include "math/ntt.hpp"

#include "common/check.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

std::size_t bit_reverse(std::size_t x, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

}  // namespace

NttTable::NttTable(std::size_t n, const Modulus& modulus)
    : n_(n), modulus_(modulus) {
  PPHE_CHECK(n >= 2 && (n & (n - 1)) == 0, "NTT size must be a power of two");
  PPHE_CHECK((modulus.value() - 1) % (2 * n) == 0,
             "modulus must be 1 mod 2n for the negacyclic NTT");

  psi_ = find_primitive_2n_root(modulus.value(), n);
  const std::uint64_t psi_inv = modulus_.inv(psi_);

  int bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;

  root_powers_.resize(n);
  inv_root_powers_.resize(n);
  // Powers of psi stored in bit-reversed index order (Longa–Naehrig layout):
  // both loops of the transforms then read twiddles sequentially.
  std::uint64_t power = 1;
  std::vector<std::uint64_t> fwd(n), inv(n);
  std::uint64_t inv_power = 1;
  for (std::size_t i = 0; i < n; ++i) {
    fwd[bit_reverse(i, bits)] = power;
    inv[bit_reverse(i, bits)] = inv_power;
    power = modulus_.mul(power, psi_);
    inv_power = modulus_.mul(inv_power, psi_inv);
  }
  for (std::size_t i = 0; i < n; ++i) {
    root_powers_[i] = ShoupMul(fwd[i], modulus_);
    inv_root_powers_[i] = ShoupMul(inv[i], modulus_);
  }
  inv_n_ = ShoupMul(modulus_.inv(n % modulus_.value()), modulus_);
}

void NttTable::forward(std::span<std::uint64_t> a) const {
  PPHE_CHECK(a.size() == n_, "NTT input size mismatch");
  const std::uint64_t p = modulus_.value();
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const ShoupMul& s = root_powers_[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint64_t u = a[j];
        const std::uint64_t v = s.mul(a[j + t], p);
        a[j] = modulus_.add(u, v);
        a[j + t] = modulus_.sub(u, v);
      }
    }
  }
}

void NttTable::inverse(std::span<std::uint64_t> a) const {
  PPHE_CHECK(a.size() == n_, "NTT input size mismatch");
  const std::uint64_t p = modulus_.value();
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const ShoupMul& s = inv_root_powers_[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint64_t u = a[j];
        const std::uint64_t v = a[j + t];
        a[j] = modulus_.add(u, v);
        a[j + t] = s.mul(modulus_.sub(u, v), p);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (auto& x : a) x = inv_n_.mul(x, p);
}

void NttTable::pointwise(std::span<const std::uint64_t> a,
                         std::span<const std::uint64_t> b,
                         std::span<std::uint64_t> c) const {
  PPHE_CHECK(a.size() == n_ && b.size() == n_ && c.size() == n_,
             "pointwise size mismatch");
  for (std::size_t i = 0; i < n_; ++i) c[i] = modulus_.mul(a[i], b[i]);
}

}  // namespace pphe
