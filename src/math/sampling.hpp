#pragma once

#include <cstdint>
#include <vector>

#include "common/prng.hpp"

namespace pphe {

/// Samplers for the CKKS key/noise distributions of §II of the paper.
/// All return signed coefficient vectors; the evaluators lift them into
/// whichever residue representation they use.

/// χ_key = HW(h): uniform over {±1}^N vectors with exactly `hamming_weight`
/// non-zero coefficients (the secret-key distribution).
std::vector<std::int8_t> sample_hwt(Prng& prng, std::size_t n,
                                    std::size_t hamming_weight);

/// Uniform ternary {−1, 0, 1} per coefficient (χ_enc in SEAL's convention).
std::vector<std::int8_t> sample_ternary(Prng& prng, std::size_t n);

/// χ_err / χ_enc: rounded continuous Gaussian with standard deviation sigma
/// (the HE-standard value is sigma = 3.2), truncated at ±6σ.
std::vector<std::int64_t> sample_gaussian(Prng& prng, std::size_t n,
                                          double sigma = 3.2);

}  // namespace pphe
