#include "math/bigmod.hpp"

#include "common/check.hpp"
#include "math/primes.hpp"
#include "math/rns.hpp"

namespace pphe {

BigBarrett::BigBarrett(BigUInt modulus) : modulus_(std::move(modulus)) {
  PPHE_CHECK(modulus_ > BigUInt(1), "modulus must exceed 1");
  k_ = modulus_.bit_length();
  mu_ = (BigUInt(1) << (2 * k_)) / modulus_;
}

BigUInt BigBarrett::reduce(const BigUInt& x) const {
  PPHE_CHECK(x.bit_length() <= 2 * k_, "Barrett input too wide");
  // Classic Barrett: q_est = ((x >> (k-1)) * mu) >> (k+1); off by at most 2.
  BigUInt q_est = ((x >> (k_ - 1)) * mu_) >> (k_ + 1);
  BigUInt r = x - q_est * modulus_;
  while (r >= modulus_) r -= modulus_;
  return r;
}

BigUInt BigBarrett::mulmod(const BigUInt& a, const BigUInt& b) const {
  return reduce(a * b);
}

BigUInt BigBarrett::addmod(const BigUInt& a, const BigUInt& b) const {
  BigUInt s = a + b;
  if (s >= modulus_) s -= modulus_;
  return s;
}

BigUInt BigBarrett::submod(const BigUInt& a, const BigUInt& b) const {
  if (a >= b) return a - b;
  return modulus_ - (b - a);
}

BigUInt BigBarrett::negmod(const BigUInt& a) const {
  if (a.is_zero()) return a;
  return modulus_ - a;
}

namespace {

std::size_t bit_reverse(std::size_t x, int bits) {
  std::size_t r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

}  // namespace

BigNtt::BigNtt(std::size_t n, const std::vector<std::uint64_t>& prime_factors)
    : n_(n), barrett_(RnsBase(prime_factors).product()) {
  PPHE_CHECK(n >= 2 && (n & (n - 1)) == 0, "NTT size must be a power of two");

  // CRT-interpolate a primitive 2n-th root modulo the composite q from
  // per-prime primitive roots.
  RnsBase base(prime_factors);
  std::vector<std::uint64_t> psi_residues(prime_factors.size());
  for (std::size_t i = 0; i < prime_factors.size(); ++i) {
    psi_residues[i] = find_primitive_2n_root(prime_factors[i], n);
  }
  const BigUInt psi = base.compose(psi_residues);
  const BigUInt psi_inv = psi.inv_mod(modulus());
  PPHE_CHECK(barrett_.mulmod(psi, psi_inv) == BigUInt(1), "root inversion");

  int bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;

  root_powers_.resize(n);
  inv_root_powers_.resize(n);
  BigUInt power(1), inv_power(1);
  for (std::size_t i = 0; i < n; ++i) {
    root_powers_[bit_reverse(i, bits)] = power;
    inv_root_powers_[bit_reverse(i, bits)] = inv_power;
    power = barrett_.mulmod(power, psi);
    inv_power = barrett_.mulmod(inv_power, psi_inv);
  }
  inv_n_ = BigUInt(n).inv_mod(modulus());
}

void BigNtt::forward(std::span<BigUInt> a) const {
  PPHE_CHECK(a.size() == n_, "NTT input size mismatch");
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j1 = 2 * i * t;
      const BigUInt& s = root_powers_[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const BigUInt u = a[j];
        const BigUInt v = barrett_.mulmod(a[j + t], s);
        a[j] = barrett_.addmod(u, v);
        a[j + t] = barrett_.submod(u, v);
      }
    }
  }
}

void BigNtt::inverse(std::span<BigUInt> a) const {
  PPHE_CHECK(a.size() == n_, "NTT input size mismatch");
  std::size_t t = 1;
  for (std::size_t m = n_; m > 1; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const BigUInt& s = inv_root_powers_[h + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const BigUInt u = a[j];
        const BigUInt v = a[j + t];
        a[j] = barrett_.addmod(u, v);
        a[j + t] = barrett_.mulmod(barrett_.submod(u, v), s);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  for (auto& x : a) x = barrett_.mulmod(x, inv_n_);
}

void BigNtt::pointwise(std::span<const BigUInt> a, std::span<const BigUInt> b,
                       std::span<BigUInt> c) const {
  PPHE_CHECK(a.size() == n_ && b.size() == n_ && c.size() == n_,
             "pointwise size mismatch");
  for (std::size_t i = 0; i < n_; ++i) c[i] = barrett_.mulmod(a[i], b[i]);
}

}  // namespace pphe
