#include "math/rns.hpp"

#include <numeric>

#include "common/check.hpp"

namespace pphe {
namespace {

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

RnsBase::RnsBase(std::vector<std::uint64_t> moduli)
    : moduli_(std::move(moduli)) {
  PPHE_CHECK(!moduli_.empty(), "RNS base needs at least one modulus");
  product_ = BigUInt(1);
  for (std::size_t i = 0; i < moduli_.size(); ++i) {
    PPHE_CHECK(moduli_[i] >= 2, "RNS modulus must be at least 2");
    for (std::size_t j = 0; j < i; ++j) {
      PPHE_CHECK(gcd_u64(moduli_[i], moduli_[j]) == 1,
                 "RNS moduli must be pairwise coprime");
    }
    mods_.emplace_back(moduli_[i]);
    product_ *= BigUInt(moduli_[i]);
  }

  punctured_.resize(moduli_.size());
  punctured_inv_.resize(moduli_.size());
  for (std::size_t i = 0; i < moduli_.size(); ++i) {
    punctured_[i] = product_ / BigUInt(moduli_[i]);
    const std::uint64_t reduced = punctured_[i].mod_u64(moduli_[i]);
    punctured_inv_[i] = mods_[i].inv(reduced);
  }
}

std::vector<std::uint64_t> RnsBase::decompose(const BigUInt& value) const {
  std::vector<std::uint64_t> residues(moduli_.size());
  for (std::size_t i = 0; i < moduli_.size(); ++i) {
    residues[i] = value.mod_u64(moduli_[i]);
  }
  return residues;
}

BigUInt RnsBase::compose(std::span<const std::uint64_t> residues) const {
  PPHE_CHECK(residues.size() == moduli_.size(), "residue count mismatch");
  // x = sum_i (q / q_i) * ([r_i * (q/q_i)^{-1}]_{q_i}) mod q
  BigUInt acc;
  for (std::size_t i = 0; i < moduli_.size(); ++i) {
    const std::uint64_t coeff =
        mods_[i].mul(mods_[i].reduce(residues[i]), punctured_inv_[i]);
    acc += punctured_[i] * BigUInt(coeff);
  }
  return acc % product_;
}

}  // namespace pphe
