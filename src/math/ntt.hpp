#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "math/modarith.hpp"

namespace pphe {

/// Negacyclic number-theoretic transform over a word prime p ≡ 1 (mod 2n).
///
/// Uses the merged-twist Cooley–Tukey / Gentleman–Sande pair of Longa &
/// Naehrig with Shoup-precomputed twiddles, the standard kernel of RNS-FHE
/// libraries. forward() leaves values in bit-reversed evaluation order;
/// pointwise products of two forward() outputs followed by inverse() realize
/// negacyclic convolution, i.e. multiplication in Z_p[X]/(X^n + 1).
class NttTable {
 public:
  NttTable(std::size_t n, const Modulus& modulus);

  std::size_t n() const { return n_; }
  const Modulus& modulus() const { return modulus_; }
  std::uint64_t psi() const { return psi_; }

  /// In-place forward transform; input in natural coefficient order, output
  /// in bit-reversed evaluation order.
  void forward(std::span<std::uint64_t> a) const;

  /// In-place inverse transform; input in bit-reversed evaluation order,
  /// output in natural coefficient order (includes the 1/n scaling).
  void inverse(std::span<std::uint64_t> a) const;

  /// c[i] = a[i] * b[i] mod p (evaluation-domain product).
  void pointwise(std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b,
                 std::span<std::uint64_t> c) const;

 private:
  std::size_t n_;
  Modulus modulus_;
  std::uint64_t psi_;  // primitive 2n-th root of unity
  std::vector<ShoupMul> root_powers_;       // psi^brv(i)
  std::vector<ShoupMul> inv_root_powers_;   // psi^{-brv(i)} with GS layout
  ShoupMul inv_n_;
};

}  // namespace pphe
