#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "math/modarith.hpp"

namespace pphe {

/// Negacyclic number-theoretic transform over a word prime p ≡ 1 (mod 2n).
///
/// Uses the merged-twist Cooley–Tukey / Gentleman–Sande pair of Longa &
/// Naehrig with Shoup-precomputed twiddles, the standard kernel of RNS-FHE
/// libraries. forward() leaves values in bit-reversed evaluation order;
/// pointwise products of two forward() outputs followed by inverse() realize
/// negacyclic convolution, i.e. multiplication in Z_p[X]/(X^n + 1).
///
/// Both transforms use Harvey's lazy reduction (the SEAL/HEXL kernel):
///
///  * forward(): butterfly values live in [0, 4p) throughout the transform
///    (one conditional subtract of 2p on the top input, a correction-free
///    lazy Shoup product in [0, 2p) on the bottom), and a single deferred
///    correction sweep maps [0, 4p) -> [0, p) at the end. Requires p < 2^62
///    (enforced by Modulus) so 4p never overflows a word.
///  * inverse(): values live in [0, 2p) between stages; the final stage folds
///    the 1/n scaling into both butterfly outputs (saving the standalone
///    scaling pass) and fully reduces.
///
/// Outputs are always fully reduced in [0, p) and bit-identical to the
/// eagerly-reduced scalar transform (tests pin this against a reference).
///
/// The transform loops themselves live behind the math HAL
/// (src/math/hal/): forward()/inverse() validate and then dispatch to the
/// process-wide kernel table (scalar oracle, AVX2, or AVX-512 — identical
/// outputs, selected once by CPUID / --force-isa). The twiddle accessors
/// below let the differential tests and per-ISA benches drive a specific
/// kernel table directly against this table's precomputations.
class NttTable {
 public:
  NttTable(std::size_t n, const Modulus& modulus);

  std::size_t n() const { return n_; }
  const Modulus& modulus() const { return modulus_; }
  std::uint64_t psi() const { return psi_; }

  /// In-place forward transform; input in natural coefficient order, output
  /// in bit-reversed evaluation order.
  void forward(std::span<std::uint64_t> a) const;

  /// In-place inverse transform; input in bit-reversed evaluation order,
  /// output in natural coefficient order (includes the 1/n scaling).
  void inverse(std::span<std::uint64_t> a) const;

  /// c[i] = a[i] * b[i] mod p (evaluation-domain product, Barrett). When one
  /// operand is fixed across many products, precompute its Shoup form and
  /// use dyadic::mul_shoup instead.
  void pointwise(std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b,
                 std::span<std::uint64_t> c) const;

  /// Precomputed twiddles in the layout the HAL kernels consume.
  std::span<const ShoupMul> root_powers() const { return root_powers_; }
  std::span<const ShoupMul> inv_root_powers() const {
    return inv_root_powers_;
  }
  const ShoupMul& inv_n() const { return inv_n_; }
  const ShoupMul& inv_n_root() const { return inv_n_root_; }

 private:
  std::size_t n_;
  Modulus modulus_;
  std::uint64_t psi_;  // primitive 2n-th root of unity
  std::vector<ShoupMul> root_powers_;       // psi^brv(i)
  std::vector<ShoupMul> inv_root_powers_;   // psi^{-brv(i)} with GS layout
  ShoupMul inv_n_;
  ShoupMul inv_n_root_;  // inv_n * inv_root_powers_[1] (folded last GS stage)
};

}  // namespace pphe
