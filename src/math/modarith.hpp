#pragma once

#include <cstdint>

namespace pphe {

/// Word-sized prime modulus with precomputed Barrett constants.
///
/// This is the workhorse of the RNS representation: every residue channel of
/// CKKS-RNS performs all of its arithmetic through one of these, using only
/// native 64-bit operations (the multiprecision path in math/biguint.hpp is
/// what the non-RNS baseline pays instead). Moduli are required to be < 2^62
/// so that lazy sums of two residues never overflow.
class Modulus {
 public:
  Modulus() = default;
  explicit Modulus(std::uint64_t value);

  std::uint64_t value() const { return value_; }
  int bit_count() const { return bit_count_; }

  /// Reduces any 64-bit value.
  std::uint64_t reduce(std::uint64_t x) const;

  /// Reduces a 128-bit value (Barrett).
  std::uint64_t reduce128(unsigned __int128 x) const;

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const {
    const std::uint64_t s = a + b;
    return s >= value_ ? s - value_ : s;
  }

  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const {
    return a >= b ? a - b : a + value_ - b;
  }

  std::uint64_t neg(std::uint64_t a) const { return a == 0 ? 0 : value_ - a; }

  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const {
    return reduce128(static_cast<unsigned __int128>(a) * b);
  }

  /// a^e mod value (square-and-multiply).
  std::uint64_t pow(std::uint64_t a, std::uint64_t e) const;

  /// Multiplicative inverse; requires gcd(a, value) == 1 (throws otherwise).
  std::uint64_t inv(std::uint64_t a) const;

  bool operator==(const Modulus& other) const { return value_ == other.value_; }

 private:
  std::uint64_t value_ = 0;
  // Barrett constant: floor(2^128 / value) as a 128-bit number split in words.
  std::uint64_t barrett_hi_ = 0;
  std::uint64_t barrett_lo_ = 0;
  int bit_count_ = 0;
};

/// Shoup's precomputed-quotient multiplication: when one operand `w` is a
/// fixed constant (an NTT twiddle factor), `mul_shoup` replaces the 128-bit
/// Barrett reduction by one high-half multiply and one subtraction. The NTT
/// kernels in math/ntt.cpp rely on this for throughput.
struct ShoupMul {
  std::uint64_t operand = 0;   // w
  std::uint64_t quotient = 0;  // floor(w * 2^64 / p)

  ShoupMul() = default;
  ShoupMul(std::uint64_t w, const Modulus& mod);

  std::uint64_t mul(std::uint64_t x, std::uint64_t p) const {
    const std::uint64_t q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * quotient) >> 64);
    const std::uint64_t r = x * operand - q * p;
    return r >= p ? r - p : r;
  }
};

}  // namespace pphe
