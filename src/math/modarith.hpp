#pragma once

#include <cstdint>
#include <span>

namespace pphe {

/// Word-sized prime modulus with precomputed Barrett constants.
///
/// This is the workhorse of the RNS representation: every residue channel of
/// CKKS-RNS performs all of its arithmetic through one of these, using only
/// native 64-bit operations (the multiprecision path in math/biguint.hpp is
/// what the non-RNS baseline pays instead). Moduli are required to be < 2^62
/// so that lazy sums of two residues never overflow.
class Modulus {
 public:
  Modulus() = default;
  explicit Modulus(std::uint64_t value);

  std::uint64_t value() const { return value_; }
  int bit_count() const { return bit_count_; }

  /// Reduces any 64-bit value.
  std::uint64_t reduce(std::uint64_t x) const;

  /// Reduces a 128-bit value (Barrett).
  std::uint64_t reduce128(unsigned __int128 x) const;

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const {
    const std::uint64_t s = a + b;
    return s >= value_ ? s - value_ : s;
  }

  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const {
    return a >= b ? a - b : a + value_ - b;
  }

  std::uint64_t neg(std::uint64_t a) const { return a == 0 ? 0 : value_ - a; }

  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const {
    return reduce128(static_cast<unsigned __int128>(a) * b);
  }

  /// floor(w * 2^64 / value) for reduced w: the Shoup precomputed quotient.
  /// Computed from the Barrett constant plus an exact fix-up (no 128-bit
  /// division), so vector precomputations (dyadic::shoup_precompute) cost a
  /// few multiplies per element instead of a libcall division.
  std::uint64_t shoup_quotient(std::uint64_t w) const;

  /// a^e mod value (square-and-multiply).
  std::uint64_t pow(std::uint64_t a, std::uint64_t e) const;

  /// Multiplicative inverse; requires gcd(a, value) == 1 (throws otherwise).
  std::uint64_t inv(std::uint64_t a) const;

  bool operator==(const Modulus& other) const { return value_ == other.value_; }

 private:
  std::uint64_t value_ = 0;
  // Barrett constant: floor(2^128 / value) as a 128-bit number split in words.
  std::uint64_t barrett_hi_ = 0;
  std::uint64_t barrett_lo_ = 0;
  int bit_count_ = 0;
};

/// Shoup's precomputed-quotient multiplication: when one operand `w` is a
/// fixed constant (an NTT twiddle factor), `mul_shoup` replaces the 128-bit
/// Barrett reduction by one high-half multiply and one subtraction. The NTT
/// kernels in math/ntt.cpp rely on this for throughput.
struct ShoupMul {
  std::uint64_t operand = 0;   // w
  std::uint64_t quotient = 0;  // floor(w * 2^64 / p)

  ShoupMul() = default;
  ShoupMul(std::uint64_t w, const Modulus& mod);

  std::uint64_t mul(std::uint64_t x, std::uint64_t p) const {
    const std::uint64_t q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * quotient) >> 64);
    const std::uint64_t r = x * operand - q * p;
    return r >= p ? r - p : r;
  }

  /// Lazy product in [0, 2p), valid for ANY 64-bit x (not only x < p): the
  /// Shoup quotient undershoots floor(x*operand/p) by at most 1 whenever
  /// x < 2^64, so one correction is owed but deferred. The lazy NTT
  /// butterflies feed values in [0, 4p) straight through this.
  std::uint64_t mul_lazy(std::uint64_t x, std::uint64_t p) const {
    const std::uint64_t q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * quotient) >> 64);
    return x * operand - q * p;
  }
};

/// Flat dyadic (element-wise) kernels over residue spans: the word-level hot
/// loops of the RNS evaluator. All spans must have equal length; inputs are
/// fully reduced in [0, p) and outputs are fully reduced. The `_shoup`
/// variants take the FIXED operand `w` together with its precomputed Shoup
/// quotients `wq` (see shoup_precompute) and replace the 128-bit Barrett
/// reduction by two multiplies per element — the payoff for operands reused
/// across many products (plaintext weights, key-switching keys, public keys).
///
/// All kernels below (except shoup_precompute and the inline scalar step)
/// validate sizes and dispatch through the math HAL (src/math/hal/), so the
/// loops run scalar, AVX2, or AVX-512 — bit-identically — depending on the
/// process-wide ISA selection.
namespace dyadic {

/// c[i] = a[i] * b[i] mod p (Barrett).
void mul(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> c, const Modulus& mod);

/// Fused multiply-accumulate c[i] = (c[i] + a[i] * b[i]) mod p: one Barrett
/// reduction of the 128-bit product-plus-accumulator instead of
/// reduce-then-modular-add, and no intermediate product slab.
void mul_acc(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
             std::span<std::uint64_t> c, const Modulus& mod);

/// wq[i] = floor(w[i] * 2^64 / p): Shoup form of a fixed operand vector.
void shoup_precompute(std::span<const std::uint64_t> w,
                      std::span<std::uint64_t> wq, const Modulus& mod);

/// c[i] = a[i] * w[i] mod p with w in Shoup form.
void mul_shoup(std::span<const std::uint64_t> a,
               std::span<const std::uint64_t> w,
               std::span<const std::uint64_t> wq, std::span<std::uint64_t> c,
               const Modulus& mod);

/// c[i] = (c[i] + a[i] * w[i]) mod p with w in Shoup form.
void mul_acc_shoup(std::span<const std::uint64_t> a,
                   std::span<const std::uint64_t> w,
                   std::span<const std::uint64_t> wq,
                   std::span<std::uint64_t> c, const Modulus& mod);

/// c[i] = (a[i] + b[i]) mod p. In-place (c aliasing a or b) is fine.
void add(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> c, const Modulus& mod);

/// c[i] = (a[i] - b[i]) mod p. In-place is fine.
void sub(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> c, const Modulus& mod);

/// c[i] = (-a[i]) mod p. In-place is fine.
void neg(std::span<const std::uint64_t> a, std::span<std::uint64_t> c,
         const Modulus& mod);

/// Scalar fused step for gather loops (hoisted rotations read the variable
/// operand through an NTT permutation, so they cannot run the flat kernels):
/// returns (acc + x*w) mod p for reduced acc and any 64-bit x. The lazy Shoup
/// product is < 2p, so acc + product < 3p needs the two-step correction.
inline std::uint64_t mul_acc_shoup_scalar(std::uint64_t acc, std::uint64_t x,
                                          std::uint64_t w, std::uint64_t wq,
                                          std::uint64_t p) {
  const std::uint64_t q = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * wq) >> 64);
  std::uint64_t s = acc + (x * w - q * p);  // < 3p
  const std::uint64_t two_p = 2 * p;
  s = s >= two_p ? s - two_p : s;
  return s >= p ? s - p : s;
}

}  // namespace dyadic

}  // namespace pphe
