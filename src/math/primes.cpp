#include "math/primes.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "math/modarith.hpp"

namespace pphe {
namespace {

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powmod_u64(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t r = 1;
  a %= m;
  while (e != 0) {
    if (e & 1) r = mulmod_u64(r, a, m);
    a = mulmod_u64(a, a, m);
    e >>= 1;
  }
  return r;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (const std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                                19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  for (const std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                                19ull, 23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = powmod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < s - 1; ++i) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::vector<std::uint64_t> generate_ntt_primes(std::size_t degree,
                                               int bit_size,
                                               std::size_t count) {
  PPHE_CHECK(degree >= 2 && (degree & (degree - 1)) == 0,
             "degree must be a power of two");
  PPHE_CHECK(bit_size >= 12 && bit_size <= 61, "bit size must be in [12, 61]");
  const std::uint64_t step = 2 * static_cast<std::uint64_t>(degree);
  PPHE_CHECK(static_cast<std::uint64_t>(bit_size) > 0, "");

  std::vector<std::uint64_t> primes;
  // Largest value < 2^bit_size congruent to 1 mod 2*degree.
  std::uint64_t candidate = ((1ull << bit_size) - 1) / step * step + 1;
  while (primes.size() < count) {
    PPHE_CHECK(candidate >= (1ull << (bit_size - 1)),
               "not enough " + std::to_string(bit_size) +
                   "-bit NTT primes for degree " + std::to_string(degree));
    if (is_prime_u64(candidate)) primes.push_back(candidate);
    candidate -= step;
  }
  return primes;
}

std::vector<std::uint64_t> generate_moduli_chain(
    std::size_t degree, const std::vector<int>& bit_sizes) {
  // Count how many primes of each size are needed, generate them in one
  // downward sweep per size, then hand them out in input order.
  std::vector<std::uint64_t> out(bit_sizes.size());
  std::vector<int> sorted_sizes = bit_sizes;
  std::sort(sorted_sizes.begin(), sorted_sizes.end());
  sorted_sizes.erase(std::unique(sorted_sizes.begin(), sorted_sizes.end()),
                     sorted_sizes.end());
  for (const int size : sorted_sizes) {
    const std::size_t needed = static_cast<std::size_t>(
        std::count(bit_sizes.begin(), bit_sizes.end(), size));
    const auto primes = generate_ntt_primes(degree, size, needed);
    std::size_t next = 0;
    for (std::size_t i = 0; i < bit_sizes.size(); ++i) {
      if (bit_sizes[i] == size) out[i] = primes[next++];
    }
  }
  return out;
}

std::uint64_t find_primitive_2n_root(std::uint64_t p, std::size_t n) {
  PPHE_CHECK(n >= 2 && (n & (n - 1)) == 0, "n must be a power of two");
  const std::uint64_t order = 2 * static_cast<std::uint64_t>(n);
  PPHE_CHECK((p - 1) % order == 0, "prime does not support 2n-th roots");
  const Modulus mod(p);
  const std::uint64_t cofactor = (p - 1) / order;

  Prng prng(p ^ 0xabcdef1234567890ull);
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const std::uint64_t g = 2 + prng.uniform_below(p - 3);
    const std::uint64_t psi = mod.pow(g, cofactor);
    // psi has order dividing 2n; it is primitive iff psi^n == -1.
    if (mod.pow(psi, n) == p - 1) return psi;
  }
  PPHE_CHECK(false, "failed to find primitive root (should be unreachable)");
  return 0;
}

}  // namespace pphe
