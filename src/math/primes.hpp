#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pphe {

/// Deterministic Miller–Rabin primality test, exact for all 64-bit inputs
/// (fixed witness set {2,3,5,7,11,13,17,19,23,29,31,37}).
bool is_prime_u64(std::uint64_t n);

/// Generates `count` distinct NTT-friendly primes, each ≡ 1 (mod 2*degree)
/// and exactly `bit_size` bits wide, searching downward from 2^bit_size.
///
/// This mirrors SEAL's CoeffModulus::Create — the "co-prime generation tool"
/// the paper uses (§VI.A) to build moduli chains from a list of bit lengths.
std::vector<std::uint64_t> generate_ntt_primes(std::size_t degree,
                                               int bit_size,
                                               std::size_t count);

/// Generates one prime per entry of `bit_sizes` (entries may repeat; primes
/// of equal size are distinct). Order of the result matches `bit_sizes`.
std::vector<std::uint64_t> generate_moduli_chain(
    std::size_t degree, const std::vector<int>& bit_sizes);

/// Finds a generator of the 2n-th roots of unity mod prime p (requires
/// p ≡ 1 mod 2n): a value ψ with ψ^n ≡ -1 (mod p).
std::uint64_t find_primitive_2n_root(std::uint64_t p, std::size_t n);

}  // namespace pphe
