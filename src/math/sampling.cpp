#include "math/sampling.hpp"

#include <cmath>

#include "common/check.hpp"

namespace pphe {

std::vector<std::int8_t> sample_hwt(Prng& prng, std::size_t n,
                                    std::size_t hamming_weight) {
  PPHE_CHECK(hamming_weight <= n, "Hamming weight exceeds dimension");
  std::vector<std::int8_t> out(n, 0);
  std::size_t placed = 0;
  while (placed < hamming_weight) {
    const std::size_t idx = prng.uniform_below(n);
    if (out[idx] != 0) continue;
    out[idx] = (prng.next_u64() & 1) ? 1 : -1;
    ++placed;
  }
  return out;
}

std::vector<std::int8_t> sample_ternary(Prng& prng, std::size_t n) {
  std::vector<std::int8_t> out(n);
  for (auto& x : out) {
    const std::uint64_t r = prng.uniform_below(3);
    x = static_cast<std::int8_t>(static_cast<std::int64_t>(r) - 1);
  }
  return out;
}

std::vector<std::int64_t> sample_gaussian(Prng& prng, std::size_t n,
                                          double sigma) {
  PPHE_CHECK(sigma > 0.0, "sigma must be positive");
  const double bound = 6.0 * sigma;
  std::vector<std::int64_t> out(n);
  for (auto& x : out) {
    double v = 0.0;
    do {
      v = prng.normal() * sigma;
    } while (v < -bound || v > bound);
    x = static_cast<std::int64_t>(std::llround(v));
  }
  return out;
}

}  // namespace pphe
