#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pphe {

/// Fixed-capacity multiprecision unsigned integer (little-endian 64-bit
/// limbs, inline storage, no heap allocation).
///
/// This is the multiprecision arithmetic the ORIGINAL (non-RNS) CKKS pays on
/// every coefficient operation, and which the RNS representation removes
/// (paper §II, Fig. 2). Storage is inline so that the non-RNS baseline's cost
/// measured by the benches is the arithmetic itself, not allocator noise.
///
/// Capacity is 26 limbs (1664 bits): enough for the squared key-switching
/// modulus (q·P ≈ 732 bits) products that Barrett reduction manipulates,
/// with headroom. Overflow beyond the capacity throws.
class BigUInt {
 public:
  static constexpr std::size_t kMaxLimbs = 26;

  BigUInt() = default;
  BigUInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  /// Parses decimal or (with "0x" prefix) hexadecimal.
  static BigUInt from_string(const std::string& text);

  bool is_zero() const { return size_ == 0; }
  std::size_t limb_count() const { return size_; }
  std::size_t bit_length() const;
  bool bit(std::size_t index) const;

  /// Value of limb i (0 beyond the stored width).
  std::uint64_t limb(std::size_t i) const { return i < size_ ? limbs_[i] : 0; }

  /// Low 64 bits.
  std::uint64_t to_u64() const { return limb(0); }
  /// Conversion to double (may lose precision; used for logging only).
  double to_double() const;
  std::string to_string() const;      // decimal
  std::string to_hex_string() const;  // lowercase, no prefix

  int compare(const BigUInt& other) const;
  bool operator==(const BigUInt& o) const { return compare(o) == 0; }
  bool operator!=(const BigUInt& o) const { return compare(o) != 0; }
  bool operator<(const BigUInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigUInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigUInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigUInt& o) const { return compare(o) >= 0; }

  BigUInt operator+(const BigUInt& o) const;
  /// Requires *this >= o (throws otherwise).
  BigUInt operator-(const BigUInt& o) const;
  BigUInt operator*(const BigUInt& o) const;
  BigUInt operator<<(std::size_t bits) const;
  BigUInt operator>>(std::size_t bits) const;

  BigUInt& operator+=(const BigUInt& o) { return *this = *this + o; }
  BigUInt& operator-=(const BigUInt& o) { return *this = *this - o; }
  BigUInt& operator*=(const BigUInt& o) { return *this = *this * o; }

  /// Quotient and remainder; divisor must be non-zero.
  struct DivMod;
  DivMod divmod(const BigUInt& divisor) const;
  BigUInt operator/(const BigUInt& o) const;
  BigUInt operator%(const BigUInt& o) const;

  /// Fast division by a single word.
  struct DivModU64;
  DivModU64 divmod_u64(std::uint64_t divisor) const;
  std::uint64_t mod_u64(std::uint64_t divisor) const;

  /// Modular exponentiation (this^e mod m), m > 1.
  BigUInt pow_mod(const BigUInt& e, const BigUInt& m) const;
  /// Modular inverse; requires gcd(*this, m) == 1 (throws otherwise).
  BigUInt inv_mod(const BigUInt& m) const;

 private:
  void normalize();

  std::array<std::uint64_t, kMaxLimbs> limbs_{};
  std::uint32_t size_ = 0;  // number of significant limbs (no trailing zeros)
};

struct BigUInt::DivMod {
  BigUInt quotient;
  BigUInt remainder;
};

struct BigUInt::DivModU64 {
  BigUInt quotient;
  std::uint64_t remainder = 0;
};

inline BigUInt BigUInt::operator/(const BigUInt& o) const {
  return divmod(o).quotient;
}
inline BigUInt BigUInt::operator%(const BigUInt& o) const {
  return divmod(o).remainder;
}

}  // namespace pphe
