// Definition of the CLI hook declared in common/cli.hpp: it lives here (in
// ppcnn_math, next to the dispatcher) rather than in ppcnn_common so the
// common library stays below the math library in the link order.

#include <string>

#include "common/cli.hpp"
#include "math/hal/hal.hpp"

namespace pphe {

std::string init_isa_from_flags(const CliFlags& flags) {
  const std::string requested = flags.get("force-isa", "");
  if (!requested.empty()) {
    if (requested == "auto") {
      hal::reset();
    } else {
      hal::force(hal::parse_isa(requested));
    }
  }
  return hal::active().name;
}

}  // namespace pphe
