#pragma once

// Internal seam between the dispatcher (hal.cpp) and the per-ISA kernel
// translation units. Not installed into any public include path — everything
// outside src/math/hal/ goes through hal.hpp.

#include <cstddef>
#include <cstdint>

#include "math/hal/hal.hpp"

namespace pphe::hal::detail {

/// The relocated scalar loops (kernels_scalar.cpp) — the bit-exactness
/// oracle every SIMD implementation is tested against.
const MathKernels& scalar_kernels();

/// Per-ISA tables; nullptr when the translation unit was compiled without
/// the matching -m flags (toolchain too old), independent of what the CPU
/// supports at runtime.
const MathKernels* avx2_kernels();
const MathKernels* avx512_kernels();

// Scalar entry points, exposed so the SIMD kernels can reuse them for lane
// tails and for transforms too small to vectorize.
void scalar_ntt_forward(std::uint64_t* x, std::size_t n, const ShoupMul* roots,
                        std::uint64_t p);
void scalar_ntt_inverse(std::uint64_t* x, std::size_t n,
                        const ShoupMul* inv_roots, ShoupMul inv_n,
                        ShoupMul inv_n_root, std::uint64_t p);
void scalar_mul(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* c, std::size_t n, const Modulus& mod);
void scalar_mul_acc(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* c, std::size_t n, const Modulus& mod);
void scalar_mul_shoup(const std::uint64_t* a, const std::uint64_t* w,
                      const std::uint64_t* wq, std::uint64_t* c, std::size_t n,
                      std::uint64_t p);
void scalar_mul_acc_shoup(const std::uint64_t* a, const std::uint64_t* w,
                          const std::uint64_t* wq, std::uint64_t* c,
                          std::size_t n, std::uint64_t p);
void scalar_add(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* c, std::size_t n, std::uint64_t p);
void scalar_sub(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* c, std::size_t n, std::uint64_t p);
void scalar_neg(const std::uint64_t* a, std::uint64_t* c, std::size_t n,
                std::uint64_t p);

/// One forward Harvey butterfly: inputs in [0, 4p), outputs in [0, 4p).
/// The SIMD transforms call this for the scalar tail stages (t < lanes), so
/// it must stay bit-identical to the vector butterfly.
inline void fwd_butterfly(std::uint64_t& a, std::uint64_t& b, std::uint64_t w,
                          std::uint64_t wq, std::uint64_t p,
                          std::uint64_t two_p) {
  std::uint64_t u = a;
  u = u >= two_p ? u - two_p : u;
  const std::uint64_t q = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(b) * wq) >> 64);
  const std::uint64_t v = b * w - q * p;
  a = u + v;
  b = u - v + two_p;
}

/// One inverse Gentleman–Sande butterfly: inputs in [0, 2p), outputs in
/// [0, 2p).
inline void inv_butterfly(std::uint64_t& a, std::uint64_t& b, std::uint64_t w,
                          std::uint64_t wq, std::uint64_t p,
                          std::uint64_t two_p) {
  const std::uint64_t u = a;
  const std::uint64_t v = b;
  std::uint64_t s = u + v;
  s = s >= two_p ? s - two_p : s;
  a = s;
  const std::uint64_t d = u - v + two_p;
  const std::uint64_t q = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(d) * wq) >> 64);
  b = d * w - q * p;
}

}  // namespace pphe::hal::detail
