// AVX2 kernel table: 4 lanes of u64 per register. Compiled with -mavx2 only
// when the toolchain supports it (PPHE_HAL_COMPILE_AVX2 set per-TU by
// src/math/CMakeLists.txt); whether the kernels are *used* is a separate
// runtime CPUID decision in hal.cpp.

#include "math/hal/kernels_internal.hpp"

#if defined(PPHE_HAL_COMPILE_AVX2)

#include <immintrin.h>

#include "math/hal/kernels_simd.hpp"

namespace pphe::hal::detail {
namespace {

// AVX2 has no unsigned 64-bit compare and no 64x64 multiply, so both are
// synthesized: compares flip the sign bit and use the signed vpcmpgtq; the
// full 64x64 product is assembled from four 32x32 vpmuludq partials with the
// exact carry (every partial sum stays below 2^34, so nothing truncates).
struct V256 {
  using vec = __m256i;
  static constexpr std::size_t kLanes = 4;

  static vec load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static vec set1(std::uint64_t x) {
    return _mm256_set1_epi64x(static_cast<long long>(x));
  }
  static vec add(vec a, vec b) { return _mm256_add_epi64(a, b); }
  static vec sub(vec a, vec b) { return _mm256_sub_epi64(a, b); }

  static vec mul_lo(vec x, vec y) {
    const vec xh = _mm256_srli_epi64(x, 32);
    const vec yh = _mm256_srli_epi64(y, 32);
    const vec ll = _mm256_mul_epu32(x, y);
    const vec cross = _mm256_add_epi64(_mm256_mul_epu32(x, yh),
                                       _mm256_mul_epu32(xh, y));
    return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
  }

  static vec mul_hi(vec x, vec y) {
    const vec mask32 = _mm256_set1_epi64x(0xffffffffll);
    const vec xh = _mm256_srli_epi64(x, 32);
    const vec yh = _mm256_srli_epi64(y, 32);
    const vec ll = _mm256_mul_epu32(x, y);
    const vec lh = _mm256_mul_epu32(x, yh);
    const vec hl = _mm256_mul_epu32(xh, y);
    const vec hh = _mm256_mul_epu32(xh, yh);
    // carry = (ll>>32 + lo32(lh) + lo32(hl)) >> 32, each term < 2^32.
    const vec carry = _mm256_srli_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_add_epi64(_mm256_and_si256(lh, mask32),
                                          _mm256_and_si256(hl, mask32))),
        32);
    return _mm256_add_epi64(
        hh, _mm256_add_epi64(carry,
                             _mm256_add_epi64(_mm256_srli_epi64(lh, 32),
                                              _mm256_srli_epi64(hl, 32))));
  }

  static vec lt_mask(vec a, vec b) {  // a < b, unsigned
    const vec flip = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(b, flip),
                              _mm256_xor_si256(a, flip));
  }

  static vec csub(vec a, vec m) {  // a >= m ? a - m : a
    return _mm256_sub_epi64(a, _mm256_andnot_si256(lt_mask(a, m), m));
  }

  static vec add_where_lt(vec t, vec a, vec b, vec m) {  // a < b ? t + m : t
    return _mm256_add_epi64(t, _mm256_and_si256(lt_mask(a, b), m));
  }

  static vec neg_mod(vec a, vec p) {  // a == 0 ? 0 : p - a
    const vec zero_mask = _mm256_cmpeq_epi64(a, _mm256_setzero_si256());
    return _mm256_andnot_si256(zero_mask, _mm256_sub_epi64(p, a));
  }

  // Short-span NTT shuffles over an 8-element chunk (r0 = elements 0..3,
  // r1 = 4..7). t == 2 uses 128-bit halves (natural butterfly lane order
  // 0,1,2,3); t == 1 uses qword unpacks, which put the butterflies in lane
  // order 0,2,1,3 — tail_twiddles uses the same unpacks on the interleaved
  // {operand, quotient} pairs, so the orders agree by construction.
  static void tail_split(std::size_t t, vec r0, vec r1, vec& a, vec& b) {
    if (t == 2) {
      a = _mm256_permute2x128_si256(r0, r1, 0x20);
      b = _mm256_permute2x128_si256(r0, r1, 0x31);
    } else {  // t == 1
      a = _mm256_unpacklo_epi64(r0, r1);
      b = _mm256_unpackhi_epi64(r0, r1);
    }
  }

  static void tail_join(std::size_t t, vec a, vec b, vec& r0, vec& r1) {
    if (t == 2) {
      r0 = _mm256_permute2x128_si256(a, b, 0x20);
      r1 = _mm256_permute2x128_si256(a, b, 0x31);
    } else {  // t == 1
      r0 = _mm256_unpacklo_epi64(a, b);
      r1 = _mm256_unpackhi_epi64(a, b);
    }
  }

  static void tail_twiddles(std::size_t t, const ShoupMul* base, vec& w,
                            vec& wq) {
    const vec t0 = load(reinterpret_cast<const std::uint64_t*>(base));
    if (t == 2) {  // two pairs: [op0 q0 op1 q1] -> [op0 op0 op1 op1]
      w = _mm256_permute4x64_epi64(t0, 0xA0);   // lanes 0,0,2,2
      wq = _mm256_permute4x64_epi64(t0, 0xF5);  // lanes 1,1,3,3
    } else {  // t == 1: four pairs, unpacked to the 0,2,1,3 lane order
      const vec t1 = load(reinterpret_cast<const std::uint64_t*>(base + 2));
      w = _mm256_unpacklo_epi64(t0, t1);   // [op0 op2 op1 op3]
      wq = _mm256_unpackhi_epi64(t0, t1);  // [q0 q2 q1 q3]
    }
  }
};

}  // namespace

const MathKernels* avx2_kernels() {
  // 128-bit Barrett kernels (mul / mul_acc) stay on the scalar loops: the
  // 256-bit Barrett product needs three 64x64 high halves per element, which
  // emulated via vpmuludq is slower than the scalar mulx chain. Bit-exact
  // either way; only the Shoup/NTT/pointwise kernels win from AVX2.
  static const MathKernels k = {
      Isa::kAvx2,
      "avx2",
      &simd_ntt_forward<V256>,
      &simd_ntt_inverse<V256>,
      &scalar_mul,
      &scalar_mul_acc,
      &simd_mul_shoup<V256>,
      &simd_mul_acc_shoup<V256>,
      &simd_add<V256>,
      &simd_sub<V256>,
      &simd_neg<V256>,
  };
  return &k;
}

}  // namespace pphe::hal::detail

#else  // !PPHE_HAL_COMPILE_AVX2

namespace pphe::hal::detail {
const MathKernels* avx2_kernels() { return nullptr; }
}  // namespace pphe::hal::detail

#endif
