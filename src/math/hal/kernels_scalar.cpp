// Scalar kernel table: the Harvey lazy-reduction NTT loops and dyadic
// modular loops relocated verbatim from math/ntt.cpp and math/modarith.cpp.
// This is the always-available implementation and the bit-exactness oracle
// every SIMD backend is differentially tested against.

#include "math/hal/kernels_internal.hpp"

namespace pphe::hal::detail {

void scalar_ntt_forward(std::uint64_t* x, std::size_t n, const ShoupMul* roots,
                        std::uint64_t p) {
  const std::uint64_t two_p = 2 * p;
  std::size_t t = n;
  for (std::size_t m = 1; m < n; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t w = roots[m + i].operand;
      const std::uint64_t wq = roots[m + i].quotient;
      std::uint64_t* xa = x + 2 * i * t;
      std::uint64_t* xb = xa + t;
      // Harvey butterflies: inputs < 4p, outputs < 4p. The top input is
      // conditionally brought below 2p; the lazy Shoup product is < 2p for
      // any 64-bit input, so u+v < 4p and u-v+2p < 4p.
      for (std::size_t j = 0; j < t; ++j) {
        fwd_butterfly(xa[j], xb[j], w, wq, p, two_p);
      }
    }
  }
  // Deferred correction: one sweep maps [0, 4p) -> [0, p).
  for (std::size_t j = 0; j < n; ++j) {
    std::uint64_t v = x[j];
    v = v >= two_p ? v - two_p : v;
    x[j] = v >= p ? v - p : v;
  }
}

void scalar_ntt_inverse(std::uint64_t* x, std::size_t n,
                        const ShoupMul* inv_roots, ShoupMul inv_n,
                        ShoupMul inv_n_root, std::uint64_t p) {
  const std::uint64_t two_p = 2 * p;
  std::size_t t = 1;
  // Gentleman–Sande stages with values kept in [0, 2p): the sum gets one
  // conditional subtract, the difference (< 2p after +2p bias) goes through
  // the correction-free lazy Shoup product back into [0, 2p).
  for (std::size_t m = n; m > 2; m >>= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const std::uint64_t w = inv_roots[h + i].operand;
      const std::uint64_t wq = inv_roots[h + i].quotient;
      std::uint64_t* xa = x + j1;
      std::uint64_t* xb = xa + t;
      for (std::size_t j = 0; j < t; ++j) {
        inv_butterfly(xa[j], xb[j], w, wq, p, two_p);
      }
      j1 += 2 * t;
    }
    t <<= 1;
  }
  // Final stage (m == 2, single twiddle inv_roots[1]) with the 1/n scaling
  // folded into both outputs: inv_n on the sum, inv_n_root (= inv_n *
  // twiddle) on the difference. Fully reduces to [0, p). ShoupMul::mul
  // handles any 64-bit input, so the [0, 2p) stage values and the n == 2
  // case (raw inputs) both land here directly.
  const std::size_t half = n >> 1;
  for (std::size_t j = 0; j < half; ++j) {
    const std::uint64_t u = x[j];
    const std::uint64_t v = x[j + half];
    x[j] = inv_n.mul(u + v, p);
    x[j + half] = inv_n_root.mul(u - v + two_p, p);
  }
}

void scalar_mul(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* c, std::size_t n, const Modulus& mod) {
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = mod.reduce128(static_cast<unsigned __int128>(a[i]) * b[i]);
  }
}

void scalar_mul_acc(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* c, std::size_t n, const Modulus& mod) {
  for (std::size_t i = 0; i < n; ++i) {
    // product + accumulator < p^2 + p < 2^125: one Barrett pass reduces both.
    c[i] = mod.reduce128(static_cast<unsigned __int128>(a[i]) * b[i] + c[i]);
  }
}

void scalar_mul_shoup(const std::uint64_t* a, const std::uint64_t* w,
                      const std::uint64_t* wq, std::uint64_t* c, std::size_t n,
                      std::uint64_t p) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a[i]) * wq[i]) >> 64);
    const std::uint64_t r = a[i] * w[i] - q * p;
    c[i] = r >= p ? r - p : r;
  }
}

void scalar_mul_acc_shoup(const std::uint64_t* a, const std::uint64_t* w,
                          const std::uint64_t* wq, std::uint64_t* c,
                          std::size_t n, std::uint64_t p) {
  const std::uint64_t two_p = 2 * p;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t q = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a[i]) * wq[i]) >> 64);
    std::uint64_t s = c[i] + (a[i] * w[i] - q * p);  // < 3p
    s = s >= two_p ? s - two_p : s;
    c[i] = s >= p ? s - p : s;
  }
}

void scalar_add(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* c, std::size_t n, std::uint64_t p) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t s = a[i] + b[i];
    c[i] = s >= p ? s - p : s;
  }
}

void scalar_sub(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* c, std::size_t n, std::uint64_t p) {
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + p - b[i];
  }
}

void scalar_neg(const std::uint64_t* a, std::uint64_t* c, std::size_t n,
                std::uint64_t p) {
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = a[i] == 0 ? 0 : p - a[i];
  }
}

const MathKernels& scalar_kernels() {
  static const MathKernels k = {
      Isa::kScalar,
      "scalar",
      &scalar_ntt_forward,
      &scalar_ntt_inverse,
      &scalar_mul,
      &scalar_mul_acc,
      &scalar_mul_shoup,
      &scalar_mul_acc_shoup,
      &scalar_add,
      &scalar_sub,
      &scalar_neg,
  };
  return k;
}

}  // namespace pphe::hal::detail
