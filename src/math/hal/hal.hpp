#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "math/modarith.hpp"

namespace pphe::hal {

/// Instruction-set tiers the math HAL can dispatch to. kScalar is the
/// always-available bit-exactness oracle; every wider tier must produce
/// bit-identical outputs for the same inputs (the differential suite in
/// tests/math/hal_test.cpp pins this).
enum class Isa {
  kScalar = 0,
  kAvx2,
  kAvx512,
};

constexpr const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

/// The pluggable kernel table: every hot word-level primitive of the RNS
/// evaluator, as raw-pointer loops over residue slabs. The public entry
/// points (NttTable::forward/inverse, dyadic::*) validate sizes and then
/// dispatch here, so implementations may assume well-formed arguments.
///
/// Contract every implementation must honour (see DESIGN.md §13):
///  * ntt_forward: input any values in [0, 4p), output fully reduced [0, p),
///    bit-identical to the scalar Harvey lazy-reduction transform.
///  * ntt_inverse: input in [0, 2p) (fresh forward outputs are < p), output
///    fully reduced, 1/n folded into the last Gentleman–Sande stage.
///  * dyadic kernels: inputs fully reduced (except mul_acc_shoup's `a`,
///    which tolerates any 64-bit value), outputs fully reduced.
struct MathKernels {
  Isa isa;
  const char* name;

  /// In-place negacyclic forward NTT (Cooley–Tukey, bit-reversed twiddles).
  void (*ntt_forward)(std::uint64_t* x, std::size_t n, const ShoupMul* roots,
                      std::uint64_t p);
  /// In-place inverse NTT (Gentleman–Sande, 1/n folded into the last stage).
  void (*ntt_inverse)(std::uint64_t* x, std::size_t n,
                      const ShoupMul* inv_roots, ShoupMul inv_n,
                      ShoupMul inv_n_root, std::uint64_t p);

  /// c[i] = a[i] * b[i] mod p (128-bit Barrett).
  void (*mul)(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* c,
              std::size_t n, const Modulus& mod);
  /// c[i] = (c[i] + a[i] * b[i]) mod p (one fused Barrett pass).
  void (*mul_acc)(const std::uint64_t* a, const std::uint64_t* b,
                  std::uint64_t* c, std::size_t n, const Modulus& mod);
  /// c[i] = a[i] * w[i] mod p with w in Shoup form.
  void (*mul_shoup)(const std::uint64_t* a, const std::uint64_t* w,
                    const std::uint64_t* wq, std::uint64_t* c, std::size_t n,
                    std::uint64_t p);
  /// c[i] = (c[i] + a[i] * w[i]) mod p with w in Shoup form.
  void (*mul_acc_shoup)(const std::uint64_t* a, const std::uint64_t* w,
                        const std::uint64_t* wq, std::uint64_t* c,
                        std::size_t n, std::uint64_t p);

  /// c[i] = (a[i] + b[i]) mod p.
  void (*add)(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* c,
              std::size_t n, std::uint64_t p);
  /// c[i] = (a[i] - b[i]) mod p.
  void (*sub)(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* c,
              std::size_t n, std::uint64_t p);
  /// c[i] = (-a[i]) mod p.
  void (*neg)(const std::uint64_t* a, std::uint64_t* c, std::size_t n,
              std::uint64_t p);
};

/// True when `isa` is both compiled into this binary and supported by the
/// CPU we are running on. kScalar is always available.
bool available(Isa isa);

/// Widest available ISA (dispatch order: avx512 > avx2 > scalar).
Isa best_available();

/// Kernel table for a specific ISA; throws Error(kInvalidArgument) when the
/// ISA is unavailable. Used by the differential tests and per-ISA benches to
/// drive a particular implementation regardless of the process dispatch.
const MathKernels& kernels(Isa isa);

/// The process-wide dispatched kernel table. First use resolves it once:
/// the PPHE_FORCE_ISA environment variable if set (scalar|avx2|avx512,
/// throws on an unknown or unavailable name), else best_available().
const MathKernels& active();
Isa active_isa();

/// Pins the process-wide dispatch to `isa` (throws when unavailable).
void force(Isa isa);

/// Re-runs the startup dispatch (env override, else best available).
void reset();

/// Parses "scalar" | "avx2" | "avx512"; throws Error(kInvalidArgument) on
/// anything else, naming the accepted values.
Isa parse_isa(std::string_view name);

/// RAII pin of the process dispatch, for tests that flip ISAs: forces `isa`
/// on construction and restores the previously active table on destruction.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(Isa isa) : saved_(active_isa()) { force(isa); }
  ~ScopedForceIsa() { force(saved_); }
  ScopedForceIsa(const ScopedForceIsa&) = delete;
  ScopedForceIsa& operator=(const ScopedForceIsa&) = delete;

 private:
  Isa saved_;
};

}  // namespace pphe::hal
