// AVX-512 kernel table: 8 lanes of u64 per register. Needs F (512-bit ops,
// mask registers, unsigned compares) and DQ (vpmullq). Compiled with
// -mavx512f -mavx512dq only when the toolchain supports both
// (PPHE_HAL_COMPILE_AVX512 set per-TU by src/math/CMakeLists.txt); runtime
// CPUID gating lives in hal.cpp.

#include "math/hal/kernels_internal.hpp"

#if defined(PPHE_HAL_COMPILE_AVX512)

#include <immintrin.h>

#include "math/hal/kernels_simd.hpp"

namespace pphe::hal::detail {
namespace {

struct V512 {
  using vec = __m512i;
  static constexpr std::size_t kLanes = 8;

  static vec load(const std::uint64_t* p) { return _mm512_loadu_si512(p); }
  static void store(std::uint64_t* p, vec v) { _mm512_storeu_si512(p, v); }
  static vec set1(std::uint64_t x) {
    return _mm512_set1_epi64(static_cast<long long>(x));
  }
  static vec add(vec a, vec b) { return _mm512_add_epi64(a, b); }
  static vec sub(vec a, vec b) { return _mm512_sub_epi64(a, b); }

  static vec mul_lo(vec x, vec y) { return _mm512_mullo_epi64(x, y); }

  static vec mul_hi(vec x, vec y) {
    // Same exact four-partial 32x32 assembly as the AVX2 path (IFMA's 52-bit
    // lanes cannot express the full 64-bit Shoup form, so it is not used).
    const vec mask32 = _mm512_set1_epi64(0xffffffffll);
    const vec xh = _mm512_srli_epi64(x, 32);
    const vec yh = _mm512_srli_epi64(y, 32);
    const vec ll = _mm512_mul_epu32(x, y);
    const vec lh = _mm512_mul_epu32(x, yh);
    const vec hl = _mm512_mul_epu32(xh, y);
    const vec hh = _mm512_mul_epu32(xh, yh);
    const vec carry = _mm512_srli_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                         _mm512_add_epi64(_mm512_and_si512(lh, mask32),
                                          _mm512_and_si512(hl, mask32))),
        32);
    return _mm512_add_epi64(
        hh, _mm512_add_epi64(carry,
                             _mm512_add_epi64(_mm512_srli_epi64(lh, 32),
                                              _mm512_srli_epi64(hl, 32))));
  }

  static vec csub(vec a, vec m) {  // a >= m ? a - m : a
    const __mmask8 ge = _mm512_cmpge_epu64_mask(a, m);
    return _mm512_mask_sub_epi64(a, ge, a, m);
  }

  static vec add_where_lt(vec t, vec a, vec b, vec m) {  // a < b ? t + m : t
    const __mmask8 lt = _mm512_cmplt_epu64_mask(a, b);
    return _mm512_mask_add_epi64(t, lt, t, m);
  }

  static vec neg_mod(vec a, vec p) {  // a == 0 ? 0 : p - a
    const __mmask8 nz = _mm512_test_epi64_mask(a, a);
    return _mm512_maskz_sub_epi64(nz, p, a);
  }

  // Short-span NTT shuffles over a 16-element chunk (r0 = elements 0..7,
  // r1 = 8..15). vpermt2q keeps every pattern to one shuffle uop; lane
  // order inside (a, b) is natural butterfly order for every t, so
  // tail_twiddles replicates base[s] over the s-th group of t lanes.
  static vec idx(long long a0, long long a1, long long a2, long long a3,
                 long long a4, long long a5, long long a6, long long a7) {
    return _mm512_setr_epi64(a0, a1, a2, a3, a4, a5, a6, a7);
  }

  static void tail_split(std::size_t t, vec r0, vec r1, vec& a, vec& b) {
    switch (t) {
      case 4:
        a = _mm512_permutex2var_epi64(r0, idx(0, 1, 2, 3, 8, 9, 10, 11), r1);
        b = _mm512_permutex2var_epi64(r0, idx(4, 5, 6, 7, 12, 13, 14, 15), r1);
        break;
      case 2:
        a = _mm512_permutex2var_epi64(r0, idx(0, 1, 4, 5, 8, 9, 12, 13), r1);
        b = _mm512_permutex2var_epi64(r0, idx(2, 3, 6, 7, 10, 11, 14, 15), r1);
        break;
      default:  // t == 1
        a = _mm512_permutex2var_epi64(r0, idx(0, 2, 4, 6, 8, 10, 12, 14), r1);
        b = _mm512_permutex2var_epi64(r0, idx(1, 3, 5, 7, 9, 11, 13, 15), r1);
        break;
    }
  }

  static void tail_join(std::size_t t, vec a, vec b, vec& r0, vec& r1) {
    switch (t) {
      case 4:
        r0 = _mm512_permutex2var_epi64(a, idx(0, 1, 2, 3, 8, 9, 10, 11), b);
        r1 = _mm512_permutex2var_epi64(a, idx(4, 5, 6, 7, 12, 13, 14, 15), b);
        break;
      case 2:
        r0 = _mm512_permutex2var_epi64(a, idx(0, 1, 8, 9, 2, 3, 10, 11), b);
        r1 = _mm512_permutex2var_epi64(a, idx(4, 5, 12, 13, 6, 7, 14, 15), b);
        break;
      default:  // t == 1
        r0 = _mm512_permutex2var_epi64(a, idx(0, 8, 1, 9, 2, 10, 3, 11), b);
        r1 = _mm512_permutex2var_epi64(a, idx(4, 12, 5, 13, 6, 14, 7, 15), b);
        break;
    }
  }

  static void tail_twiddles(std::size_t t, const ShoupMul* base, vec& w,
                            vec& wq) {
    // base points at L/t interleaved {operand, quotient} pairs; the loads
    // below stay inside the n-entry twiddle array for every chunk (checked
    // against the last chunk at each span).
    const vec t0 = _mm512_loadu_si512(base);
    switch (t) {
      case 4:
        w = _mm512_permutexvar_epi64(idx(0, 0, 0, 0, 2, 2, 2, 2), t0);
        wq = _mm512_permutexvar_epi64(idx(1, 1, 1, 1, 3, 3, 3, 3), t0);
        break;
      case 2:
        w = _mm512_permutexvar_epi64(idx(0, 0, 2, 2, 4, 4, 6, 6), t0);
        wq = _mm512_permutexvar_epi64(idx(1, 1, 3, 3, 5, 5, 7, 7), t0);
        break;
      default: {  // t == 1
        const vec t1 = _mm512_loadu_si512(base + 4);
        w = _mm512_permutex2var_epi64(t0, idx(0, 2, 4, 6, 8, 10, 12, 14), t1);
        wq = _mm512_permutex2var_epi64(t0, idx(1, 3, 5, 7, 9, 11, 13, 15), t1);
        break;
      }
    }
  }
};

}  // namespace

const MathKernels* avx512_kernels() {
  // As with AVX2, the 128-bit Barrett kernels stay scalar (see the note in
  // kernels_avx2.cpp); Shoup/NTT/pointwise kernels run 8 lanes wide.
  static const MathKernels k = {
      Isa::kAvx512,
      "avx512",
      &simd_ntt_forward<V512>,
      &simd_ntt_inverse<V512>,
      &scalar_mul,
      &scalar_mul_acc,
      &simd_mul_shoup<V512>,
      &simd_mul_acc_shoup<V512>,
      &simd_add<V512>,
      &simd_sub<V512>,
      &simd_neg<V512>,
  };
  return &k;
}

}  // namespace pphe::hal::detail

#else  // !PPHE_HAL_COMPILE_AVX512

namespace pphe::hal::detail {
const MathKernels* avx512_kernels() { return nullptr; }
}  // namespace pphe::hal::detail

#endif
