#include "math/hal/hal.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/check.hpp"
#include "math/hal/kernels_internal.hpp"

namespace pphe::hal {
namespace {

const MathKernels* table_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return &detail::scalar_kernels();
    case Isa::kAvx2: return detail::avx2_kernels();
    case Isa::kAvx512: return detail::avx512_kernels();
  }
  return nullptr;
}

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#endif
    default:
      return false;
  }
}

std::atomic<const MathKernels*>& active_slot() {
  static std::atomic<const MathKernels*> slot{nullptr};
  return slot;
}

/// Startup dispatch: the PPHE_FORCE_ISA environment variable wins (so any
/// binary — tests, benches, the serving loop — can be pinned without a CLI
/// change), else the widest ISA both compiled in and CPU-supported.
const MathKernels& initial_dispatch() {
  const char* env = std::getenv("PPHE_FORCE_ISA");
  if (env != nullptr && *env != '\0') {
    const Isa isa = parse_isa(env);
    PPHE_CHECK_CODE(available(isa), ErrorCode::kInvalidArgument,
                    std::string("PPHE_FORCE_ISA=") + env +
                        " is not available on this host/build");
    return *table_for(isa);
  }
  return *table_for(best_available());
}

}  // namespace

bool available(Isa isa) {
  return table_for(isa) != nullptr && cpu_supports(isa);
}

Isa best_available() {
  if (available(Isa::kAvx512)) return Isa::kAvx512;
  if (available(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

const MathKernels& kernels(Isa isa) {
  const MathKernels* table = table_for(isa);
  PPHE_CHECK_CODE(table != nullptr, ErrorCode::kInvalidArgument,
                  std::string(isa_name(isa)) +
                      " kernels are not compiled into this binary");
  PPHE_CHECK_CODE(cpu_supports(isa), ErrorCode::kInvalidArgument,
                  std::string("this CPU does not support ") + isa_name(isa));
  return *table;
}

const MathKernels& active() {
  const MathKernels* k = active_slot().load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    k = &initial_dispatch();
    active_slot().store(k, std::memory_order_release);
  }
  return *k;
}

Isa active_isa() { return active().isa; }

void force(Isa isa) {
  active_slot().store(&kernels(isa), std::memory_order_release);
}

void reset() {
  active_slot().store(&initial_dispatch(), std::memory_order_release);
}

Isa parse_isa(std::string_view name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512") return Isa::kAvx512;
  PPHE_CHECK_CODE(false, ErrorCode::kInvalidArgument,
                  "unknown ISA '" + std::string(name) +
                      "' (expected scalar|avx2|avx512)");
  __builtin_unreachable();
}

}  // namespace pphe::hal
