#pragma once

// SIMD kernel bodies shared by the AVX2 and AVX-512 translation units.
// Everything here is templated on a vector-traits class V providing:
//
//   V::vec                      register type holding V::kLanes u64 lanes
//   V::load / V::store          unaligned lane load/store
//   V::set1(x)                  broadcast
//   V::add / V::sub             lane-wise wrapping u64 add/sub
//   V::mul_lo(x, y)             low 64 bits of x*y per lane (exact)
//   V::mul_hi(x, y)             high 64 bits of x*y per lane (exact)
//   V::csub(a, m)               a >= m ? a - m : a  (unsigned compare)
//   V::add_where_lt(t, a, b, m) a < b ? t + m : t   (unsigned compare)
//   V::neg_mod(a, p)            a == 0 ? 0 : p - a
//
// plus the short-span NTT shuffles (t in {1, 2, ..., kLanes/2}), which let
// the final/first log2(kLanes) stages run in registers instead of falling
// back to scalar butterflies:
//
//   V::tail_split(t, r0, r1, a, b)   gather the two butterfly operands of
//                                    each span-t pair from a 2L-element
//                                    chunk held in (r0, r1)
//   V::tail_join(t, a, b, r0, r1)    exact inverse of tail_split
//   V::tail_twiddles(t, base, w, wq) load L/t consecutive ShoupMul starting
//                                    at base and replicate each t times, in
//                                    the SAME lane order tail_split produced
//
// The lane order within (a, b) is trait-defined (whatever the cheapest
// shuffle yields); correctness only requires split/twiddles/join to agree.
//
// Each template instantiation lives in a TU compiled with the matching -m
// flags; this header itself must not reference intrinsics. The kernels are
// bit-identical to the scalar oracle: same lazy-reduction bounds, same
// correction steps, only evaluated kLanes at a time. Loads/stores are
// unaligned on purpose — callers usually hand us 64-byte PolyBuffer slabs,
// but tests and odd offsets must stay UB-free.

#include <cstddef>
#include <cstdint>

#include "math/hal/kernels_internal.hpp"

namespace pphe::hal::detail {

/// Lazy Shoup product per lane: x * w - floor(x * wq / 2^64) * p, in [0, 2p)
/// for any 64-bit x (matches ShoupMul::mul_lazy).
template <class V>
inline typename V::vec shoup_mul_lazy(typename V::vec x, typename V::vec w,
                                      typename V::vec wq, typename V::vec p) {
  const typename V::vec q = V::mul_hi(x, wq);
  return V::sub(V::mul_lo(x, w), V::mul_lo(q, p));
}

template <class V>
void simd_ntt_forward(std::uint64_t* x, std::size_t n, const ShoupMul* roots,
                      std::uint64_t p) {
  constexpr std::size_t L = V::kLanes;
  if (n < 2 * L) {
    scalar_ntt_forward(x, n, roots, p);
    return;
  }
  const std::uint64_t two_p = 2 * p;
  const typename V::vec vp = V::set1(p);
  const typename V::vec v2p = V::set1(two_p);
  // Early stages have butterfly span t >= L: broadcast the block twiddle and
  // run whole lanes. Stage order/bounds match scalar_ntt_forward exactly.
  std::size_t t = n >> 1;
  std::size_t m = 1;
  for (; m < n && t >= L; m <<= 1, t >>= 1) {
    for (std::size_t i = 0; i < m; ++i) {
      const typename V::vec vw = V::set1(roots[m + i].operand);
      const typename V::vec vwq = V::set1(roots[m + i].quotient);
      std::uint64_t* xa = x + 2 * i * t;
      std::uint64_t* xb = xa + t;
      // Two independent butterflies in flight: the Shoup chain (mul_hi ->
      // mul_lo -> sub) is long enough that a single chain under-fills the
      // multiply ports; interleaving two halves the stall.
      std::size_t j = 0;
      for (; j + 2 * L <= t; j += 2 * L) {
        const typename V::vec u0 = V::csub(V::load(xa + j), v2p);
        const typename V::vec u1 = V::csub(V::load(xa + j + L), v2p);
        const typename V::vec v0 =
            shoup_mul_lazy<V>(V::load(xb + j), vw, vwq, vp);
        const typename V::vec v1 =
            shoup_mul_lazy<V>(V::load(xb + j + L), vw, vwq, vp);
        V::store(xa + j, V::add(u0, v0));
        V::store(xa + j + L, V::add(u1, v1));
        V::store(xb + j, V::add(V::sub(u0, v0), v2p));
        V::store(xb + j + L, V::add(V::sub(u1, v1), v2p));
      }
      for (; j < t; j += L) {
        const typename V::vec u = V::csub(V::load(xa + j), v2p);
        const typename V::vec v =
            shoup_mul_lazy<V>(V::load(xb + j), vw, vwq, vp);
        V::store(xa + j, V::add(u, v));
        V::store(xb + j, V::add(V::sub(u, v), v2p));
      }
    }
  }
  // The vector-stage loop always exits at t == L/2 (n >= 2L, t halves from
  // n/2). The last log2(L) stages have span t < L, so every remaining
  // butterfly lives inside one 2L-element chunk: run them all in registers
  // with the trait shuffles and fold the deferred [0, 4p) -> [0, p)
  // correction sweep into the same pass — one memory round trip instead of
  // log2(L)+1.
  for (std::size_t chunk = 0; chunk < n; chunk += 2 * L) {
    typename V::vec r0 = V::load(x + chunk);
    typename V::vec r1 = V::load(x + chunk + L);
    std::size_t mm = m;
    for (std::size_t tt = t; tt >= 1; tt >>= 1, mm <<= 1) {
      typename V::vec a, b, vw, vwq;
      V::tail_split(tt, r0, r1, a, b);
      V::tail_twiddles(tt, roots + mm + chunk / (2 * tt), vw, vwq);
      const typename V::vec u = V::csub(a, v2p);
      const typename V::vec v = shoup_mul_lazy<V>(b, vw, vwq, vp);
      V::tail_join(tt, V::add(u, v), V::add(V::sub(u, v), v2p), r0, r1);
    }
    V::store(x + chunk, V::csub(V::csub(r0, v2p), vp));
    V::store(x + chunk + L, V::csub(V::csub(r1, v2p), vp));
  }
}

template <class V>
void simd_ntt_inverse(std::uint64_t* x, std::size_t n,
                      const ShoupMul* inv_roots, ShoupMul inv_n,
                      ShoupMul inv_n_root, std::uint64_t p) {
  constexpr std::size_t L = V::kLanes;
  if (n < 2 * L) {
    scalar_ntt_inverse(x, n, inv_roots, inv_n, inv_n_root, p);
    return;
  }
  const std::uint64_t two_p = 2 * p;
  const typename V::vec vp = V::set1(p);
  const typename V::vec v2p = V::set1(two_p);
  // First log2(L) Gentleman–Sande stages have span t < L: as in the
  // forward tail, every butterfly lives inside a 2L-element chunk, so run
  // all of them in registers in one pass over the slab.
  for (std::size_t chunk = 0; chunk < n; chunk += 2 * L) {
    typename V::vec r0 = V::load(x + chunk);
    typename V::vec r1 = V::load(x + chunk + L);
    std::size_t hh = n >> 1;
    for (std::size_t tt = 1; tt < L; tt <<= 1, hh >>= 1) {
      typename V::vec a, b, vw, vwq;
      V::tail_split(tt, r0, r1, a, b);
      V::tail_twiddles(tt, inv_roots + hh + chunk / (2 * tt), vw, vwq);
      const typename V::vec s = V::csub(V::add(a, b), v2p);
      const typename V::vec d =
          shoup_mul_lazy<V>(V::add(V::sub(a, b), v2p), vw, vwq, vp);
      V::tail_join(tt, s, d, r0, r1);
    }
    V::store(x + chunk, r0);
    V::store(x + chunk + L, r1);
  }
  std::size_t t = L;
  std::size_t m = n / L;
  // Remaining stages (t >= L, t a power of two): full lanes per butterfly.
  for (; m > 2; m >>= 1, t <<= 1) {
    std::size_t j1 = 0;
    const std::size_t h = m >> 1;
    for (std::size_t i = 0; i < h; ++i) {
      const typename V::vec vw = V::set1(inv_roots[h + i].operand);
      const typename V::vec vwq = V::set1(inv_roots[h + i].quotient);
      std::uint64_t* xa = x + j1;
      std::uint64_t* xb = xa + t;
      // Same two-in-flight interleave as the forward vector stages.
      std::size_t j = 0;
      for (; j + 2 * L <= t; j += 2 * L) {
        const typename V::vec u0 = V::load(xa + j);
        const typename V::vec v0 = V::load(xb + j);
        const typename V::vec u1 = V::load(xa + j + L);
        const typename V::vec v1 = V::load(xb + j + L);
        V::store(xa + j, V::csub(V::add(u0, v0), v2p));
        V::store(xa + j + L, V::csub(V::add(u1, v1), v2p));
        const typename V::vec d0 = V::add(V::sub(u0, v0), v2p);
        const typename V::vec d1 = V::add(V::sub(u1, v1), v2p);
        V::store(xb + j, shoup_mul_lazy<V>(d0, vw, vwq, vp));
        V::store(xb + j + L, shoup_mul_lazy<V>(d1, vw, vwq, vp));
      }
      for (; j < t; j += L) {
        const typename V::vec u = V::load(xa + j);
        const typename V::vec v = V::load(xb + j);
        V::store(xa + j, V::csub(V::add(u, v), v2p));
        const typename V::vec d = V::add(V::sub(u, v), v2p);
        V::store(xb + j, shoup_mul_lazy<V>(d, vw, vwq, vp));
      }
      j1 += 2 * t;
    }
  }
  // Folded final stage: full Shoup reduction (lazy product + one csub) on
  // both outputs, exactly ShoupMul::mul. half >= L since n >= 2L.
  const std::size_t half = n >> 1;
  const typename V::vec vnw = V::set1(inv_n.operand);
  const typename V::vec vnq = V::set1(inv_n.quotient);
  const typename V::vec vrw = V::set1(inv_n_root.operand);
  const typename V::vec vrq = V::set1(inv_n_root.quotient);
  for (std::size_t j = 0; j < half; j += L) {
    const typename V::vec u = V::load(x + j);
    const typename V::vec v = V::load(x + j + half);
    const typename V::vec s =
        shoup_mul_lazy<V>(V::add(u, v), vnw, vnq, vp);
    V::store(x + j, V::csub(s, vp));
    const typename V::vec d =
        shoup_mul_lazy<V>(V::add(V::sub(u, v), v2p), vrw, vrq, vp);
    V::store(x + j + half, V::csub(d, vp));
  }
}

template <class V>
void simd_mul_shoup(const std::uint64_t* a, const std::uint64_t* w,
                    const std::uint64_t* wq, std::uint64_t* c, std::size_t n,
                    std::uint64_t p) {
  constexpr std::size_t L = V::kLanes;
  const typename V::vec vp = V::set1(p);
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    const typename V::vec r = shoup_mul_lazy<V>(V::load(a + i), V::load(w + i),
                                                V::load(wq + i), vp);
    V::store(c + i, V::csub(r, vp));
  }
  if (i < n) scalar_mul_shoup(a + i, w + i, wq + i, c + i, n - i, p);
}

template <class V>
void simd_mul_acc_shoup(const std::uint64_t* a, const std::uint64_t* w,
                        const std::uint64_t* wq, std::uint64_t* c,
                        std::size_t n, std::uint64_t p) {
  constexpr std::size_t L = V::kLanes;
  const typename V::vec vp = V::set1(p);
  const typename V::vec v2p = V::set1(2 * p);
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    const typename V::vec prod = shoup_mul_lazy<V>(
        V::load(a + i), V::load(w + i), V::load(wq + i), vp);
    typename V::vec s = V::add(V::load(c + i), prod);  // < 3p
    s = V::csub(s, v2p);
    V::store(c + i, V::csub(s, vp));
  }
  if (i < n) scalar_mul_acc_shoup(a + i, w + i, wq + i, c + i, n - i, p);
}

template <class V>
void simd_add(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* c,
              std::size_t n, std::uint64_t p) {
  constexpr std::size_t L = V::kLanes;
  const typename V::vec vp = V::set1(p);
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    V::store(c + i, V::csub(V::add(V::load(a + i), V::load(b + i)), vp));
  }
  if (i < n) scalar_add(a + i, b + i, c + i, n - i, p);
}

template <class V>
void simd_sub(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* c,
              std::size_t n, std::uint64_t p) {
  constexpr std::size_t L = V::kLanes;
  const typename V::vec vp = V::set1(p);
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    const typename V::vec va = V::load(a + i);
    const typename V::vec vb = V::load(b + i);
    V::store(c + i, V::add_where_lt(V::sub(va, vb), va, vb, vp));
  }
  if (i < n) scalar_sub(a + i, b + i, c + i, n - i, p);
}

template <class V>
void simd_neg(const std::uint64_t* a, std::uint64_t* c, std::size_t n,
              std::uint64_t p) {
  constexpr std::size_t L = V::kLanes;
  const typename V::vec vp = V::set1(p);
  std::size_t i = 0;
  for (; i + L <= n; i += L) {
    V::store(c + i, V::neg_mod(V::load(a + i), vp));
  }
  if (i < n) scalar_neg(a + i, c + i, n - i, p);
}

}  // namespace pphe::hal::detail
