#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace pphe {

/// Allocation behaviour of a polynomial arena. A "miss" is an acquisition
/// that had to call the system allocator; after warm-up the steady-state
/// multiply/rescale/rotate path should report zero misses (every slab comes
/// from the free list). Byte gauges track the arena's footprint: `in_use`
/// slabs are checked out to live polynomials, `cached` slabs sit in the
/// free list awaiting reuse.
struct MemStats {
  std::uint64_t pool_hits = 0;    // acquisitions served from the free list
  std::uint64_t pool_misses = 0;  // acquisitions that hit the allocator
  std::uint64_t bytes_in_use = 0;
  std::uint64_t bytes_cached = 0;
  std::uint64_t peak_bytes = 0;  // high-water mark of in_use + cached

  MemStats& operator+=(const MemStats& o) {
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    bytes_in_use += o.bytes_in_use;
    bytes_cached += o.bytes_cached;
    peak_bytes += o.peak_bytes;
    return *this;
  }
};

/// Thread-safe arena of 64-byte-aligned `uint64_t` slabs, free-listed by
/// exact word capacity. Each backend owns one pool; every polynomial slab
/// (ciphertext/plaintext bodies, key-switching scratch, hoisted digit
/// tables) checks out of it and returns on destruction, so the per-op heap
/// traffic of the old vector-of-vectors layout collapses to free-list hits.
///
/// Held by shared_ptr from every PolyBuffer so slabs can outlive the
/// backend that created them (a serialized-then-deserialized ciphertext,
/// a static bench fixture) without dangling into a destroyed pool.
class PolyPool {
 public:
  PolyPool() = default;
  ~PolyPool();

  PolyPool(const PolyPool&) = delete;
  PolyPool& operator=(const PolyPool&) = delete;

  /// 64-byte-aligned slab of exactly `words` uint64s (contents unspecified).
  std::uint64_t* checkout(std::size_t words);
  /// Returns a slab previously obtained from checkout() with the same size.
  void checkin(std::uint64_t* slab, std::size_t words) noexcept;

  MemStats stats() const;
  /// Zeroes the hit/miss counters and rebases the peak to the current
  /// footprint (the byte gauges track live state and are not reset).
  void reset_stats();
  /// Frees every cached slab (the free list, not checked-out slabs).
  void trim();

  static constexpr std::size_t kAlignment = 64;

 private:
  mutable std::mutex mutex_;
  std::map<std::size_t, std::vector<std::uint64_t*>> free_;
  MemStats stats_;
};

/// Flat polynomial storage: one contiguous `channels x degree` slab with
/// span views per residue channel. Replaces the per-channel
/// vector<vector<uint64_t>> layout so channel loops walk adjacent cache
/// lines and a polynomial costs one arena checkout instead of L+1 heap
/// allocations. Value semantics: copying acquires a fresh slab from the
/// same pool (a free-list hit in steady state) and memcpys.
class PolyBuffer {
 public:
  PolyBuffer() = default;
  PolyBuffer(std::shared_ptr<PolyPool> pool, std::size_t channels,
             std::size_t degree, bool zero_fill = true);
  PolyBuffer(const PolyBuffer& other);
  PolyBuffer& operator=(const PolyBuffer& other);
  PolyBuffer(PolyBuffer&& other) noexcept;
  PolyBuffer& operator=(PolyBuffer&& other) noexcept;
  ~PolyBuffer();

  bool empty() const { return data_ == nullptr; }
  std::size_t channels() const { return channels_; }
  std::size_t degree() const { return degree_; }
  /// Words currently owned by the slab (channels * degree; shrink_channels
  /// re-slabs, so capacity always matches the logical size).
  std::size_t capacity_words() const { return capacity_; }

  std::span<std::uint64_t> operator[](std::size_t c) {
    return {data_ + c * degree_, degree_};
  }
  std::span<const std::uint64_t> operator[](std::size_t c) const {
    return {data_ + c * degree_, degree_};
  }
  std::uint64_t* data() { return data_; }
  const std::uint64_t* data() const { return data_; }

  /// Drops trailing channels (mod-switching). The kept prefix moves to a
  /// right-sized slab and the old slab returns to the pool immediately, so
  /// a level-0 ciphertext holds one channel's memory, not L+1 channels of
  /// stale capacity.
  void shrink_channels(std::size_t channels);
  void zero();

 private:
  void release() noexcept;

  std::shared_ptr<PolyPool> pool_;
  std::uint64_t* data_ = nullptr;
  std::size_t channels_ = 0;
  std::size_t degree_ = 0;
  std::size_t capacity_ = 0;
};

/// Arena of reusable `std::vector<T>` buffers keyed by element count, for
/// coefficient types that are not word-sized (the multiprecision backend's
/// BigUInt coefficients, whose limbs are stored inline so one vector is one
/// slab). Same hit/miss accounting as PolyPool.
template <typename T>
class VecPool {
 public:
  std::vector<T> checkout(std::size_t n) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = free_.find(n);
      if (it != free_.end() && !it->second.empty()) {
        std::vector<T> v = std::move(it->second.back());
        it->second.pop_back();
        ++stats_.pool_hits;
        stats_.bytes_cached -= n * sizeof(T);
        stats_.bytes_in_use += n * sizeof(T);
        return v;
      }
      ++stats_.pool_misses;
      stats_.bytes_in_use += n * sizeof(T);
      bump_peak();
    }
    return std::vector<T>(n);
  }

  void checkin(std::vector<T>&& v) noexcept {
    if (v.empty()) return;
    const std::size_t n = v.size();
    std::lock_guard<std::mutex> lock(mutex_);
    free_[n].push_back(std::move(v));
    stats_.bytes_in_use -= std::min<std::uint64_t>(stats_.bytes_in_use,
                                                   n * sizeof(T));
    stats_.bytes_cached += n * sizeof(T);
    bump_peak();
  }

  MemStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  void reset_stats() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.pool_hits = 0;
    stats_.pool_misses = 0;
    stats_.peak_bytes = stats_.bytes_in_use + stats_.bytes_cached;
  }

 private:
  void bump_peak() {
    stats_.peak_bytes =
        std::max(stats_.peak_bytes, stats_.bytes_in_use + stats_.bytes_cached);
  }

  mutable std::mutex mutex_;
  std::map<std::size_t, std::vector<std::vector<T>>> free_;
  MemStats stats_;
};

/// RAII handle over a VecPool-owned vector: behaves as the vector it wraps
/// and returns the storage to the pool on destruction. Copying checks a
/// fresh buffer out of the same pool.
template <typename T>
class PooledVec : public std::vector<T> {
 public:
  PooledVec() = default;
  PooledVec(std::shared_ptr<VecPool<T>> pool, std::size_t n)
      : std::vector<T>(pool ? pool->checkout(n) : std::vector<T>(n)),
        pool_(std::move(pool)) {}
  /// Adopts an existing vector; the buffer joins the pool when released.
  PooledVec(std::shared_ptr<VecPool<T>> pool, std::vector<T>&& v)
      : std::vector<T>(std::move(v)), pool_(std::move(pool)) {}

  PooledVec(const PooledVec& other)
      : PooledVec(other.pool_, other.size()) {
    std::copy(other.begin(), other.end(), this->begin());
  }
  PooledVec& operator=(const PooledVec& other) {
    if (this != &other) {
      PooledVec tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }
  PooledVec(PooledVec&& other) noexcept
      : std::vector<T>(std::move(static_cast<std::vector<T>&>(other))),
        pool_(std::move(other.pool_)) {}
  PooledVec& operator=(PooledVec&& other) noexcept {
    if (this != &other) {
      release();
      std::vector<T>::operator=(
          std::move(static_cast<std::vector<T>&>(other)));
      pool_ = std::move(other.pool_);
    }
    return *this;
  }
  ~PooledVec() { release(); }

 private:
  void release() noexcept {
    if (pool_ && !this->empty()) {
      pool_->checkin(std::move(static_cast<std::vector<T>&>(*this)));
    }
    this->clear();
    pool_.reset();
  }

  std::shared_ptr<VecPool<T>> pool_;
};

}  // namespace pphe
