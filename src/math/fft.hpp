#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace pphe {

/// Iterative radix-2 complex FFT of a fixed power-of-two size.
/// Used by the CKKS encoder to evaluate / invert the canonical embedding τ
/// in O(N log N) instead of the O(N^2) Vandermonde product.
class Fft {
 public:
  explicit Fft(std::size_t n);

  std::size_t n() const { return n_; }

  /// In-place forward DFT: a[k] <- sum_j a[j] * exp(-2πi jk / n).
  void forward(std::span<std::complex<double>> a) const;

  /// In-place inverse DFT (includes the 1/n scaling).
  void inverse(std::span<std::complex<double>> a) const;

 private:
  void transform(std::span<std::complex<double>> a, bool invert) const;

  std::size_t n_;
  std::vector<std::size_t> bit_rev_;
  std::vector<std::complex<double>> twiddles_;      // exp(-2πi k / n)
  std::vector<std::complex<double>> inv_twiddles_;  // exp(+2πi k / n)
};

}  // namespace pphe
