#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "math/biguint.hpp"
#include "math/modarith.hpp"

namespace pphe {

/// Residue number system over a set of pairwise-coprime word moduli
/// {q_0, …, q_{k-1}} (Fig. 2 of the paper): large integers in
/// [0, q_0·…·q_{k-1}) are represented by their residue vectors, on which
/// addition and multiplication act component-wise with native 64-bit
/// arithmetic — the property that both the CKKS-RNS scheme internals and the
/// paper's architecture-level input decomposition exploit.
class RnsBase {
 public:
  explicit RnsBase(std::vector<std::uint64_t> moduli);

  std::size_t size() const { return moduli_.size(); }
  const std::vector<Modulus>& moduli() const { return mods_; }
  const Modulus& modulus(std::size_t i) const { return mods_[i]; }
  std::uint64_t modulus_value(std::size_t i) const { return moduli_[i]; }

  /// Product q of all moduli (the dynamic range of the representation).
  const BigUInt& product() const { return product_; }

  /// Residue vector of `value` (value may exceed q; it is reduced).
  std::vector<std::uint64_t> decompose(const BigUInt& value) const;

  /// CRT reconstruction: the unique x in [0, q) with x ≡ residues[i] (mod q_i).
  BigUInt compose(std::span<const std::uint64_t> residues) const;

  /// q / q_i (the CRT punctured products).
  const BigUInt& punctured_product(std::size_t i) const {
    return punctured_[i];
  }
  /// ((q / q_i)^{-1} mod q_i).
  std::uint64_t punctured_inverse(std::size_t i) const {
    return punctured_inv_[i];
  }

 private:
  std::vector<std::uint64_t> moduli_;
  std::vector<Modulus> mods_;
  BigUInt product_;
  std::vector<BigUInt> punctured_;
  std::vector<std::uint64_t> punctured_inv_;
};

}  // namespace pphe
