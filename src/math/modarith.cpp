#include "math/modarith.hpp"

#include <bit>

#include "common/check.hpp"
#include "math/hal/hal.hpp"

namespace pphe {

Modulus::Modulus(std::uint64_t value) : value_(value) {
  PPHE_CHECK(value >= 2, "modulus must be at least 2");
  PPHE_CHECK(value < (1ull << 62), "modulus must be below 2^62");
  bit_count_ = 64 - std::countl_zero(value);

  // Compute floor(2^128 / value) by long division of the 3-word number
  // (1, 0, 0) base 2^64 by `value`.
  unsigned __int128 rem = 1;  // leading word of 2^128
  std::uint64_t q[2] = {0, 0};
  for (int word = 1; word >= 0; --word) {
    rem <<= 64;
    q[word] = static_cast<std::uint64_t>(rem / value);
    rem %= value;
  }
  barrett_hi_ = q[1];
  barrett_lo_ = q[0];
}

std::uint64_t Modulus::reduce(std::uint64_t x) const {
  return reduce128(x);
}

std::uint64_t Modulus::reduce128(unsigned __int128 x) const {
  // Barrett: q = floor(x * mu / 2^128) where mu = floor(2^128 / p).
  // We only need the high 128 bits of the 256-bit product.
  const std::uint64_t x_lo = static_cast<std::uint64_t>(x);
  const std::uint64_t x_hi = static_cast<std::uint64_t>(x >> 64);

  const unsigned __int128 lo_lo =
      static_cast<unsigned __int128>(x_lo) * barrett_lo_;
  const unsigned __int128 lo_hi =
      static_cast<unsigned __int128>(x_lo) * barrett_hi_;
  const unsigned __int128 hi_lo =
      static_cast<unsigned __int128>(x_hi) * barrett_lo_;
  const unsigned __int128 hi_hi =
      static_cast<unsigned __int128>(x_hi) * barrett_hi_;

  const unsigned __int128 mid =
      (lo_lo >> 64) + static_cast<std::uint64_t>(lo_hi) +
      static_cast<std::uint64_t>(hi_lo);
  const unsigned __int128 q =
      hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);

  std::uint64_t r = static_cast<std::uint64_t>(x) -
                    static_cast<std::uint64_t>(q) * value_;
  // Barrett quotient may undershoot by at most 2.
  while (r >= value_) r -= value_;
  return r;
}

std::uint64_t Modulus::shoup_quotient(std::uint64_t w) const {
  PPHE_CHECK(w < value_, "Shoup operand must be reduced");
  // floor(w * 2^64 / p) from the Barrett constant: with x = w * 2^64 the
  // 256-bit Barrett quotient collapses to two multiplies (x_lo = 0), and may
  // undershoot the true quotient by at most 2 — fixed up exactly below.
  unsigned __int128 q = static_cast<unsigned __int128>(w) * barrett_hi_ +
                        ((static_cast<unsigned __int128>(w) * barrett_lo_) >> 64);
  unsigned __int128 r = (static_cast<unsigned __int128>(w) << 64) - q * value_;
  while (r >= value_) {
    r -= value_;
    ++q;
  }
  return static_cast<std::uint64_t>(q);
}

std::uint64_t Modulus::pow(std::uint64_t a, std::uint64_t e) const {
  std::uint64_t base = reduce(a);
  std::uint64_t result = 1;
  while (e != 0) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

std::uint64_t Modulus::inv(std::uint64_t a) const {
  // Extended Euclid on (a mod p, p); p prime in our usage but the algorithm
  // only requires gcd == 1.
  std::int64_t t = 0, new_t = 1;
  std::uint64_t r = value_, new_r = reduce(a);
  PPHE_CHECK(new_r != 0, "inverse of zero");
  while (new_r != 0) {
    const std::uint64_t q = r / new_r;
    const std::int64_t tmp_t = t - static_cast<std::int64_t>(q) * new_t;
    t = new_t;
    new_t = tmp_t;
    const std::uint64_t tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  PPHE_CHECK(r == 1, "element not invertible");
  return t < 0 ? static_cast<std::uint64_t>(t + static_cast<std::int64_t>(value_))
               : static_cast<std::uint64_t>(t);
}

ShoupMul::ShoupMul(std::uint64_t w, const Modulus& mod)
    : operand(w), quotient(mod.shoup_quotient(w)) {}

// The dyadic entry points validate spans here and dispatch the loops to the
// process-wide HAL kernel table (scalar relocated to
// math/hal/kernels_scalar.cpp; AVX2/AVX-512 lanes of the same arithmetic).
namespace dyadic {

void mul(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> c, const Modulus& mod) {
  PPHE_CHECK(a.size() == b.size() && a.size() == c.size(),
             "dyadic size mismatch");
  hal::active().mul(a.data(), b.data(), c.data(), a.size(), mod);
}

void mul_acc(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
             std::span<std::uint64_t> c, const Modulus& mod) {
  PPHE_CHECK(a.size() == b.size() && a.size() == c.size(),
             "dyadic size mismatch");
  hal::active().mul_acc(a.data(), b.data(), c.data(), a.size(), mod);
}

void shoup_precompute(std::span<const std::uint64_t> w,
                      std::span<std::uint64_t> wq, const Modulus& mod) {
  PPHE_CHECK(w.size() == wq.size(), "dyadic size mismatch");
  for (std::size_t i = 0; i < w.size(); ++i) {
    wq[i] = mod.shoup_quotient(w[i]);
  }
}

void mul_shoup(std::span<const std::uint64_t> a,
               std::span<const std::uint64_t> w,
               std::span<const std::uint64_t> wq, std::span<std::uint64_t> c,
               const Modulus& mod) {
  PPHE_CHECK(a.size() == w.size() && a.size() == wq.size() &&
                 a.size() == c.size(),
             "dyadic size mismatch");
  hal::active().mul_shoup(a.data(), w.data(), wq.data(), c.data(), a.size(),
                          mod.value());
}

void mul_acc_shoup(std::span<const std::uint64_t> a,
                   std::span<const std::uint64_t> w,
                   std::span<const std::uint64_t> wq,
                   std::span<std::uint64_t> c, const Modulus& mod) {
  PPHE_CHECK(a.size() == w.size() && a.size() == wq.size() &&
                 a.size() == c.size(),
             "dyadic size mismatch");
  hal::active().mul_acc_shoup(a.data(), w.data(), wq.data(), c.data(),
                              a.size(), mod.value());
}

void add(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> c, const Modulus& mod) {
  PPHE_CHECK(a.size() == b.size() && a.size() == c.size(),
             "dyadic size mismatch");
  hal::active().add(a.data(), b.data(), c.data(), a.size(), mod.value());
}

void sub(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
         std::span<std::uint64_t> c, const Modulus& mod) {
  PPHE_CHECK(a.size() == b.size() && a.size() == c.size(),
             "dyadic size mismatch");
  hal::active().sub(a.data(), b.data(), c.data(), a.size(), mod.value());
}

void neg(std::span<const std::uint64_t> a, std::span<std::uint64_t> c,
         const Modulus& mod) {
  PPHE_CHECK(a.size() == c.size(), "dyadic size mismatch");
  hal::active().neg(a.data(), c.data(), a.size(), mod.value());
}

}  // namespace dyadic

}  // namespace pphe
