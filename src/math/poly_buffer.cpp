#include "math/poly_buffer.hpp"

#include <cstring>
#include <new>

#include "common/check.hpp"

namespace pphe {
namespace {

std::uint64_t* aligned_slab(std::size_t words) {
  return static_cast<std::uint64_t*>(::operator new(
      words * sizeof(std::uint64_t), std::align_val_t{PolyPool::kAlignment}));
}

void free_slab(std::uint64_t* slab) noexcept {
  ::operator delete(slab, std::align_val_t{PolyPool::kAlignment});
}

}  // namespace

// ---------------------------------------------------------------------------
// PolyPool
// ---------------------------------------------------------------------------

PolyPool::~PolyPool() { trim(); }

std::uint64_t* PolyPool::checkout(std::size_t words) {
  PPHE_CHECK(words > 0, "empty slab checkout");
  const std::uint64_t bytes = words * sizeof(std::uint64_t);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = free_.find(words);
    if (it != free_.end() && !it->second.empty()) {
      std::uint64_t* slab = it->second.back();
      it->second.pop_back();
      ++stats_.pool_hits;
      stats_.bytes_cached -= bytes;
      stats_.bytes_in_use += bytes;
      return slab;
    }
    ++stats_.pool_misses;
    stats_.bytes_in_use += bytes;
    stats_.peak_bytes =
        std::max(stats_.peak_bytes, stats_.bytes_in_use + stats_.bytes_cached);
  }
  // Allocate outside the lock; the counters were already charged.
  return aligned_slab(words);
}

void PolyPool::checkin(std::uint64_t* slab, std::size_t words) noexcept {
  if (slab == nullptr) return;
  const std::uint64_t bytes = words * sizeof(std::uint64_t);
  std::lock_guard<std::mutex> lock(mutex_);
  free_[words].push_back(slab);
  stats_.bytes_in_use -= std::min<std::uint64_t>(stats_.bytes_in_use, bytes);
  stats_.bytes_cached += bytes;
  stats_.peak_bytes =
      std::max(stats_.peak_bytes, stats_.bytes_in_use + stats_.bytes_cached);
}

MemStats PolyPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PolyPool::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.pool_hits = 0;
  stats_.pool_misses = 0;
  stats_.peak_bytes = stats_.bytes_in_use + stats_.bytes_cached;
}

void PolyPool::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [words, slabs] : free_) {
    for (std::uint64_t* slab : slabs) free_slab(slab);
    stats_.bytes_cached -= std::min<std::uint64_t>(
        stats_.bytes_cached, slabs.size() * words * sizeof(std::uint64_t));
    slabs.clear();
  }
  free_.clear();
}

// ---------------------------------------------------------------------------
// PolyBuffer
// ---------------------------------------------------------------------------

PolyBuffer::PolyBuffer(std::shared_ptr<PolyPool> pool, std::size_t channels,
                       std::size_t degree, bool zero_fill)
    : pool_(std::move(pool)),
      channels_(channels),
      degree_(degree),
      capacity_(channels * degree) {
  PPHE_CHECK(channels > 0 && degree > 0, "empty polynomial buffer");
  data_ = pool_ ? pool_->checkout(capacity_) : aligned_slab(capacity_);
  if (zero_fill) zero();
}

PolyBuffer::PolyBuffer(const PolyBuffer& other)
    : pool_(other.pool_),
      channels_(other.channels_),
      degree_(other.degree_),
      capacity_(other.capacity_) {
  if (other.data_ == nullptr) return;
  data_ = pool_ ? pool_->checkout(capacity_) : aligned_slab(capacity_);
  std::memcpy(data_, other.data_,
              channels_ * degree_ * sizeof(std::uint64_t));
}

PolyBuffer& PolyBuffer::operator=(const PolyBuffer& other) {
  if (this == &other) return *this;
  if (other.data_ != nullptr && data_ != nullptr &&
      capacity_ == other.capacity_ && pool_ == other.pool_) {
    // Same-shape assignment reuses the slab in place.
    channels_ = other.channels_;
    degree_ = other.degree_;
    std::memcpy(data_, other.data_,
                channels_ * degree_ * sizeof(std::uint64_t));
    return *this;
  }
  PolyBuffer tmp(other);
  *this = std::move(tmp);
  return *this;
}

PolyBuffer::PolyBuffer(PolyBuffer&& other) noexcept
    : pool_(std::move(other.pool_)),
      data_(other.data_),
      channels_(other.channels_),
      degree_(other.degree_),
      capacity_(other.capacity_) {
  other.data_ = nullptr;
  other.channels_ = other.degree_ = other.capacity_ = 0;
}

PolyBuffer& PolyBuffer::operator=(PolyBuffer&& other) noexcept {
  if (this == &other) return *this;
  release();
  pool_ = std::move(other.pool_);
  data_ = other.data_;
  channels_ = other.channels_;
  degree_ = other.degree_;
  capacity_ = other.capacity_;
  other.data_ = nullptr;
  other.channels_ = other.degree_ = other.capacity_ = 0;
  return *this;
}

PolyBuffer::~PolyBuffer() { release(); }

void PolyBuffer::release() noexcept {
  if (data_ == nullptr) return;
  if (pool_) {
    pool_->checkin(data_, capacity_);
  } else {
    free_slab(data_);
  }
  data_ = nullptr;
  channels_ = degree_ = capacity_ = 0;
  pool_.reset();
}

void PolyBuffer::shrink_channels(std::size_t channels) {
  PPHE_CHECK(channels > 0 && channels <= channels_,
             "shrink_channels must drop a (possibly empty) suffix");
  if (channels == channels_) return;
  // Move the kept prefix to a right-sized slab and give the full-size slab
  // back to the pool: a mod-dropped ciphertext must not pin top-level
  // capacity (satellite regression: level-0 holds one channel's bytes).
  PolyBuffer smaller(pool_, channels, degree_, /*zero_fill=*/false);
  std::memcpy(smaller.data_, data_, channels * degree_ * sizeof(std::uint64_t));
  *this = std::move(smaller);
}

void PolyBuffer::zero() {
  if (data_ != nullptr) {
    std::memset(data_, 0, channels_ * degree_ * sizeof(std::uint64_t));
  }
}

}  // namespace pphe
