#include "math/fft.hpp"

#include <numbers>

#include "common/check.hpp"

namespace pphe {

Fft::Fft(std::size_t n) : n_(n) {
  PPHE_CHECK(n >= 1 && (n & (n - 1)) == 0, "FFT size must be a power of two");
  bit_rev_.resize(n);
  int bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0, x = i;
    for (int b = 0; b < bits; ++b) {
      r = (r << 1) | (x & 1);
      x >>= 1;
    }
    bit_rev_[i] = r;
  }
  twiddles_.resize(n / 2 + 1);
  inv_twiddles_.resize(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    twiddles_[k] = std::polar(1.0, angle);
    inv_twiddles_[k] = std::polar(1.0, -angle);
  }
}

void Fft::transform(std::span<std::complex<double>> a, bool invert) const {
  PPHE_CHECK(a.size() == n_, "FFT input size mismatch");
  const auto& tw = invert ? inv_twiddles_ : twiddles_;
  for (std::size_t i = 0; i < n_; ++i) {
    if (i < bit_rev_[i]) std::swap(a[i], a[bit_rev_[i]]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t stride = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> w = tw[k * stride];
        const std::complex<double> u = a[start + k];
        const std::complex<double> v = a[start + k + len / 2] * w;
        a[start + k] = u + v;
        a[start + k + len / 2] = u - v;
      }
    }
  }
  if (invert) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (auto& x : a) x *= scale;
  }
}

void Fft::forward(std::span<std::complex<double>> a) const {
  transform(a, /*invert=*/false);
}

void Fft::inverse(std::span<std::complex<double>> a) const {
  transform(a, /*invert=*/true);
}

}  // namespace pphe
