#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "ckks/backend.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "core/he_model.hpp"
#include "core/models.hpp"
#include "nn/data.hpp"

namespace pphe {

/// Shared configuration for the bench/example harness.
struct ExperimentConfig {
  bool paper_profile = false;  // Table II params (N=2^14) vs fast N=2^13
  std::size_t train_size = 8000;
  std::size_t test_size = 2000;
  std::size_t relu_epochs = 10;  // paper: 30 (use --paper for full runs)
  std::size_t slaf_epochs = 6;
  std::size_t he_samples = 4;    // encrypted inferences per measurement
  std::size_t workers = 16;      // simulated worker count (paper's Xeon: 16)
  std::string mnist_dir;         // real MNIST IDX directory (optional)
  std::string cache_dir = "ppcnn-cache";
  std::uint64_t seed = 1234;
  bool verbose = true;
  /// When non-empty, homomorphic-op tracing is enabled for the run and a
  /// Chrome trace-event JSON (chrome://tracing / Perfetto loadable) is
  /// written here on finish_trace() / at the harness's end-of-run hook.
  std::string trace_out;
  /// When non-empty, the fault-injection plan armed for the run (the
  /// --faults=<spec> flag; grammar in fault::FaultSpec::parse).
  std::string faults;
  /// The math-HAL kernel set the run executes with ("scalar"/"avx2"/
  /// "avx512"): the dispatched one, or whatever --force-isa pinned.
  std::string isa;

  /// Reads --paper --train-size --test-size --epochs --slaf-epochs --samples
  /// --workers --mnist-dir --cache-dir --seed --quiet --trace-out --faults
  /// --force-isa.
  static ExperimentConfig from_flags(const CliFlags& flags);

  CkksParams ckks_params() const;
};

/// Lazily builds datasets and trained models, caching weights on disk so the
/// six table benches do not retrain the same networks.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg);

  const ExperimentConfig& config() const { return cfg_; }
  const Dataset& train_set() const { return train_; }
  const Dataset& test_set() const { return test_; }

  /// Trains (or loads from cache) the given architecture via the CNN-HE-SLAF
  /// protocol and returns it. The returned reference stays valid for the
  /// lifetime of the Experiment.
  const TrainedModel& model(Arch arch, Activation act);

  /// compile_model() of the cached model.
  ModelSpec spec(Arch arch, Activation act);

 private:
  std::string cache_path(Arch arch, Activation act) const;

  ExperimentConfig cfg_;
  Dataset train_, test_;
  std::map<std::pair<int, int>, TrainedModel> models_;
};

/// Latency + accuracy of encrypted inference over a test-set sample, the
/// measurement behind Tables III-VI.
struct EncryptedEvalResult {
  LatencyStats eval_latency;      // measured (sequential) per-inference wall
  LatencyStats parallel_latency;  // ParallelSim critical path (cfg.workers)
  double encrypt_avg = 0.0;
  double decrypt_avg = 0.0;
  double spec_accuracy = 0.0;   // plaintext ModelSpec accuracy, full test set
  double he_accuracy = 0.0;     // encrypted accuracy on the sample
  double match_rate = 0.0;      // encrypted vs plaintext prediction agreement
  double max_logit_err = 0.0;   // max |HE logit - plaintext logit|
  double setup_seconds = 0.0;   // compile: weight encryption + Galois keys
  std::size_t samples = 0;
  /// Encode-once weight cache behaviour during compilation (hits = weight
  /// vectors that reused a cached encoding instead of re-encoding).
  std::uint64_t weight_cache_hits = 0;
  std::uint64_t weight_cache_misses = 0;
};

/// Runs `cfg.he_samples` encrypted inferences of `spec` on `backend` and the
/// full-test-set plaintext evaluation. The sample images are test images
/// cfg.seed-deterministically ordered (first N of the test set).
EncryptedEvalResult run_encrypted_eval(HeBackend& backend,
                                       const ModelSpec& spec,
                                       const HeModelOptions& options,
                                       const Dataset& test,
                                       const ExperimentConfig& cfg);

/// Creates the requested backend ("rns" or "big") over cfg's parameters.
std::unique_ptr<HeBackend> make_backend(const std::string& kind,
                                        const CkksParams& params);

}  // namespace pphe
