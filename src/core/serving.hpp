#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/he_model.hpp"

namespace pphe {

class RnsBackend;

/// Hardened Fig. 1 round trip: the client encrypts and serializes, the wire
/// may corrupt the bytes (fault::Site::kWireUpload / kWireDownload), the
/// cloud worker may stall or crash (fault::Site::kWorker), and every failure
/// the guards detect surfaces as a typed pphe::Error the recovery loop
/// routes on. Recovery is retry-with-recompute: the client re-encrypts and
/// resends, because a detected corruption says nothing about which side's
/// copy is still good. A noise-budget refusal (ErrorCode::kNoiseBudget) is
/// NOT retried — recomputing cannot add modulus back — and is reported as a
/// degraded outcome instead.

struct ServingOptions {
  /// Additional attempts after the first (bounded retry-with-recompute).
  int max_retries = 2;
  /// Per-attempt watchdog over the cloud-side evaluation; 0 disables it. On
  /// expiry the attempt fails with ErrorCode::kTimeout (the straggler is
  /// joined and its result discarded).
  double watchdog_seconds = 0.0;
};

/// One failed attempt, as the recovery loop saw it.
struct ServeAttempt {
  ErrorCode code = ErrorCode::kGeneric;
  std::string message;
};

struct ServeOutcome {
  std::vector<double> logits;
  int predicted = -1;
  /// True when some attempt completed and produced logits.
  bool ok = false;
  /// True when the noise-budget guardrail refused evaluation (no retry).
  bool degraded = false;
  /// Failures recorded per failed attempt, in order.
  std::vector<ServeAttempt> faults;
  /// Attempts consumed (successful one included).
  int attempts = 0;
};

/// Outcome of one slot-packed batch round trip. All requests in the batch
/// share one ciphertext, so a transport/eval fault hits every request in it
/// identically: `faults` is the batch-level attempt history, and the serve
/// layer attributes it to each member request when it builds the replies.
struct ServeBatchOutcome {
  /// Per-request logits, indexed like the submitted image vector (padding
  /// images added to fill the model's batch are dropped).
  std::vector<std::vector<double>> logits;
  std::vector<int> predicted;
  /// True when some attempt completed and produced logits.
  bool ok = false;
  /// True when the noise-budget guardrail refused evaluation (no retry).
  bool degraded = false;
  /// Failures recorded per failed attempt, in order.
  std::vector<ServeAttempt> faults;
  /// Attempts consumed (successful one included).
  int attempts = 0;
};

/// Classifies `image` through `model` over the serialized client/cloud
/// round trip. `backend` must be the RnsBackend the model was compiled on
/// (serialization is RNS-specific). Never throws on an injected/transport
/// fault — every detected failure lands in the returned outcome.
ServeOutcome serve_classify(const RnsBackend& backend, const HeModel& model,
                            std::span<const float> image,
                            const ServingOptions& options = {});

/// Batched variant: classifies up to options().batch images in ONE
/// slot-packed evaluation through the same hardened round trip (fresh
/// re-encrypt per attempt, wire hops on the single batched ciphertext,
/// watchdogged eval, typed fault history). `images.size()` may be smaller
/// than the model's batch — the remainder is padded with zero images whose
/// logits are discarded. Evaluation keys are ensured ONCE before the retry
/// loop (hoisted session setup): a retry re-sends only the re-encrypted
/// inputs, never the key material.
ServeBatchOutcome serve_classify_batch(const RnsBackend& backend,
                                       const HeModel& model,
                                       const std::vector<std::vector<float>>& images,
                                       const ServingOptions& options = {});

}  // namespace pphe
