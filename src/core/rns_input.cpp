#include "core/rns_input.hpp"

#include <cmath>

#include "common/check.hpp"
#include "core/he_model.hpp"
#include "math/rns.hpp"

namespace pphe {

RnsConvDemo::RnsConvDemo(HeBackend& backend, const LinearSpec& conv,
                         std::vector<std::uint64_t> moduli,
                         int weight_scale_bits)
    : backend_(backend),
      conv_(conv),
      moduli_(std::move(moduli)),
      weight_bits_(weight_scale_bits) {
  PPHE_CHECK(!moduli_.empty(), "need at least one branch modulus");
  PPHE_CHECK(weight_bits_ >= 0 && weight_bits_ <= 16, "weight bits in [0,16]");

  // Quantize weights to integers (fixed point with weight_bits_ fraction).
  const double w_scale = std::ldexp(1.0, weight_bits_);
  int_weights_.assign(conv_.out_dim, std::vector<long long>(conv_.in_dim, 0));
  long long max_abs_row = 0;
  for (std::size_t r = 0; r < conv_.out_dim; ++r) {
    long long row_sum = 0;
    for (std::size_t c = 0; c < conv_.in_dim; ++c) {
      const long long w = std::llround(
          static_cast<double>(conv_.at(r, c)) * w_scale);
      int_weights_[r][c] = w;
      row_sum += std::abs(w) * 255;  // worst-case pixel 255
    }
    max_abs_row = std::max(max_abs_row, row_sum);
  }

  // The CRT range must cover the signed output interval.
  RnsBase base(moduli_);
  PPHE_CHECK(base.product() > BigUInt(static_cast<std::uint64_t>(
                 2 * max_abs_row + 1)),
             "RNS branch moduli product too small for the integer range");
}

RnsConvDemo::Result RnsConvDemo::run(std::span<const float> image) const {
  PPHE_CHECK(image.size() == conv_.in_dim, "input size mismatch");
  Result result;

  // Quantize pixels to 8-bit integers.
  std::vector<long long> pixels(conv_.in_dim);
  for (std::size_t i = 0; i < conv_.in_dim; ++i) {
    pixels[i] = std::llround(std::fmin(std::fmax(image[i], 0.0f), 1.0f) * 255.0f);
  }

  // Reference: exact integer convolution (no bias — it is not decomposed).
  result.reference.assign(conv_.out_dim, 0);
  for (std::size_t r = 0; r < conv_.out_dim; ++r) {
    long long acc = 0;
    for (std::size_t c = 0; c < conv_.in_dim; ++c) {
      acc += int_weights_[r][c] * pixels[c];
    }
    result.reference[r] = acc;
  }

  // Per-branch homomorphic evaluation: each branch is a single-linear-stage
  // HeModel over the residue weights, with the branch modulus playing the
  // role of the pixel quantization range.
  RnsBase base(moduli_);
  std::vector<std::vector<long long>> branch_outputs(moduli_.size());
  for (std::size_t j = 0; j < moduli_.size(); ++j) {
    const std::uint64_t m = moduli_[j];
    ModelSpec spec;
    spec.name = "rns-branch-" + std::to_string(m);
    ModelSpec::Stage stage;
    stage.kind = ModelSpec::Stage::Kind::kLinear;
    stage.linear.in_dim = conv_.in_dim;
    stage.linear.out_dim = conv_.out_dim;
    stage.linear.weight.assign(conv_.in_dim * conv_.out_dim, 0.0f);
    stage.linear.bias.assign(conv_.out_dim, 0.0f);
    for (std::size_t r = 0; r < conv_.out_dim; ++r) {
      for (std::size_t c = 0; c < conv_.in_dim; ++c) {
        const long long w = int_weights_[r][c] % static_cast<long long>(m);
        const long long w_pos = w < 0 ? w + static_cast<long long>(m) : w;
        stage.linear.weight[r * conv_.in_dim + c] =
            static_cast<float>(w_pos);
      }
    }
    spec.stages.push_back(std::move(stage));

    HeModelOptions options;
    options.encrypted_weights = false;  // residue weights are small integers
    options.rns_branches = 1;
    options.pixel_levels = static_cast<int>(m);
    const HeModel model(backend_, spec, options);

    // Branch input: pixel residues scaled into the [0,1] quantization grid
    // the engine expects.
    std::vector<float> residue_img(conv_.in_dim);
    for (std::size_t i = 0; i < conv_.in_dim; ++i) {
      const auto r = static_cast<float>(
          pixels[i] % static_cast<long long>(m));
      residue_img[i] = r / static_cast<float>(m - 1);
    }

    const InferenceResult inf = model.infer(residue_img);
    result.eval_seconds += inf.eval_seconds;
    result.max_branch_seconds = std::max(result.max_branch_seconds,
                                         inf.eval_seconds);

    // Undo the 1/(m-1) normalization the engine folded into the weights and
    // round to the exact integer branch output.
    branch_outputs[j].resize(conv_.out_dim);
    for (std::size_t r = 0; r < conv_.out_dim; ++r) {
      const double y = inf.logits.size() > r ? inf.logits[r] : 0.0;
      branch_outputs[j][r] =
          std::llround(y * static_cast<double>(m - 1));
    }
  }

  // CRT recombination with centered lift.
  const BigUInt& product = base.product();
  const BigUInt half = product >> 1;
  result.recombined.assign(conv_.out_dim, 0);
  std::vector<std::uint64_t> residues(moduli_.size());
  for (std::size_t r = 0; r < conv_.out_dim; ++r) {
    for (std::size_t j = 0; j < moduli_.size(); ++j) {
      const auto m = static_cast<long long>(moduli_[j]);
      long long v = branch_outputs[j][r] % m;
      if (v < 0) v += m;
      residues[j] = static_cast<std::uint64_t>(v);
    }
    const BigUInt combined = base.compose(residues);
    if (combined > half) {
      result.recombined[r] =
          -static_cast<long long>((product - combined).to_u64());
    } else {
      result.recombined[r] = static_cast<long long>(combined.to_u64());
    }
  }

  result.exact = result.recombined == result.reference;
  return result;
}

}  // namespace pphe
