#pragma once

#include <cstddef>
#include <set>
#include <vector>

namespace pphe {

/// Baby-step/giant-step split of one linear stage's diagonal set, chosen by
/// an explicit key-switch cost model instead of the fixed sqrt heuristic
/// (DESIGN.md §14). The plan dedupes rotation steps across groups, records
/// how many digit decompositions and mod-downs the stage will pay, and — in
/// fused (double-hoisted) mode — picks the giant size g that minimizes total
/// NTT work, which the sqrt split does not once baby inner products are
/// cheaper than full key switches.
struct RotationPlan {
  /// Giant-step size g: diagonal i evaluates as group j = i/g, baby b = i%g.
  std::size_t giant = 1;
  /// True when the stage runs through the double-hoisted linear_bsgs path
  /// (one decomposition per unique operand, one mod-down per giant group).
  bool fused = false;

  std::size_t unique_babies = 0;   // distinct nonzero baby steps
  std::size_t unique_giants = 0;   // distinct nonzero giant steps (j != 0)
  std::size_t groups = 0;          // giant groups incl. j == 0
  /// Digit decompositions the stage pays: fused = 1 (input hoist) + one per
  /// nonzero giant group; unfused = same (rotate_batch single-hoists babies).
  std::size_t decompositions = 0;
  /// Mod-down epilogues: fused = one per nonzero giant group + one for the
  /// layer accumulator; unfused = one per hoisted baby + per giant.
  std::size_t moddowns = 0;
  /// Modeled cost in pointwise-pass units (one pass = N modmuls).
  double cost = 0.0;

  /// Evaluates the split at a specific giant size (no search).
  static RotationPlan evaluate(const std::set<std::size_t>& diag_set,
                               std::size_t giant, std::size_t q_channels,
                               std::size_t log_degree, bool fused);

  /// Picks the giant size. Unfused keeps the legacy sqrt-biased split
  /// g = 2^(log2(tile)/2 + 1) so existing plans (and their Galois key sets)
  /// are unchanged; fused minimizes the modeled cost over power-of-two g in
  /// [1, tile]. `q_channels` is the ciphertext prime count at the stage's
  /// input level, `log_degree` is log2(N) (the NTT pass count).
  static RotationPlan choose(const std::set<std::size_t>& diag_set,
                             std::size_t tile, std::size_t q_channels,
                             std::size_t log_degree, bool fused);
};

}  // namespace pphe
