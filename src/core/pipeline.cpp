#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "ckks/big_backend.hpp"
#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/parallel_sim.hpp"
#include "common/trace.hpp"
#include "nn/serialize.hpp"

namespace pphe {

ExperimentConfig ExperimentConfig::from_flags(const CliFlags& flags) {
  ExperimentConfig cfg;
  cfg.paper_profile = flags.get_bool("paper", false);
  cfg.train_size = static_cast<std::size_t>(
      flags.get_int("train-size", cfg.paper_profile ? 50000 : 4000));
  cfg.test_size = static_cast<std::size_t>(
      flags.get_int("test-size", cfg.paper_profile ? 10000 : 1500));
  cfg.relu_epochs = static_cast<std::size_t>(
      flags.get_int("epochs", cfg.paper_profile ? 30 : 6));
  cfg.slaf_epochs = static_cast<std::size_t>(
      flags.get_int("slaf-epochs", cfg.paper_profile ? 10 : 4));
  cfg.he_samples =
      static_cast<std::size_t>(flags.get_int("samples", cfg.he_samples));
  cfg.workers =
      static_cast<std::size_t>(flags.get_int("workers", cfg.workers));
  cfg.mnist_dir = flags.get("mnist-dir", "");
  cfg.cache_dir = flags.get("cache-dir", cfg.cache_dir);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1234));
  cfg.verbose = !flags.get_bool("quiet", false);
  cfg.trace_out = flags.get("trace-out", "");
  if (!cfg.trace_out.empty()) trace::set_enabled(true);
  cfg.faults = init_faults_from_flags(flags);
  cfg.isa = init_isa_from_flags(flags);
  return cfg;
}

CkksParams ExperimentConfig::ckks_params() const {
  CkksParams p = paper_profile ? CkksParams::paper_table2()
                               : CkksParams::fast_profile();
  p.seed = seed;
  return p;
}

Experiment::Experiment(ExperimentConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.mnist_dir.empty()) {
    auto train = load_mnist_idx(cfg_.mnist_dir, /*train=*/true);
    auto test = load_mnist_idx(cfg_.mnist_dir, /*train=*/false);
    PPHE_CHECK(train.has_value() && test.has_value(),
               "MNIST IDX files not found in " + cfg_.mnist_dir);
    train_ = std::move(*train);
    test_ = std::move(*test);
    if (cfg_.verbose) {
      std::printf("[data] real MNIST: %zu train / %zu test\n", train_.size(),
                  test_.size());
    }
  } else {
    train_ = generate_synthetic_mnist(cfg_.train_size, cfg_.seed);
    test_ = generate_synthetic_mnist(cfg_.test_size, cfg_.seed ^ 0x7e57);
    if (cfg_.verbose) {
      std::printf(
          "[data] synthetic MNIST substitute: %zu train / %zu test "
          "(see DESIGN.md; pass --mnist-dir for real IDX files)\n",
          train_.size(), test_.size());
    }
  }
}

std::string Experiment::cache_path(Arch arch, Activation act) const {
  std::filesystem::create_directories(cfg_.cache_dir);
  const char* act_name = act == Activation::kSlaf    ? "slaf"
                         : act == Activation::kSquare ? "square"
                                                      : "relu";
  return cfg_.cache_dir + "/" + arch_name(arch) + "-" + act_name + "-t" +
         std::to_string(train_.size()) + "-e" +
         std::to_string(cfg_.relu_epochs) + "-s" + std::to_string(cfg_.seed) +
         (cfg_.mnist_dir.empty() ? "-synth" : "-mnist") + ".weights";
}

const TrainedModel& Experiment::model(Arch arch, Activation act) {
  const auto key = std::make_pair(static_cast<int>(arch),
                                  static_cast<int>(act));
  auto it = models_.find(key);
  if (it != models_.end()) return it->second;

  TrainedModel m;
  m.arch = arch;
  m.activation = act;
  m.network = build_network(arch, act, cfg_.seed);
  const std::string path = cache_path(arch, act);
  bool loaded = false;
  try {
    loaded = load_weights(*m.network, path);
  } catch (const Error&) {
    loaded = false;  // corrupt cache is a cache miss, never a crash
  }
  if (!loaded && std::filesystem::exists(path)) {
    // A present-but-unreadable file is corrupt or from an incompatible run:
    // fall through to retraining, which overwrites it with a good one.
    std::fprintf(stderr,
                 "[model] discarding corrupt cache file %s (retraining)\n",
                 path.c_str());
    // Partial loads may have overwritten some buffers; rebuild from scratch.
    m.network = build_network(arch, act, cfg_.seed);
  }
  if (loaded) {
    m.train_accuracy = evaluate(*m.network, train_);
    m.test_accuracy = evaluate(*m.network, test_);
    if (cfg_.verbose) {
      std::printf("[model] %s/%d loaded from cache (train %.2f%% test %.2f%%)\n",
                  arch_name(arch).c_str(), static_cast<int>(act),
                  static_cast<double>(m.train_accuracy),
                  static_cast<double>(m.test_accuracy));
    }
  } else {
    ProtocolConfig pcfg;
    pcfg.relu_epochs = cfg_.relu_epochs;
    pcfg.slaf_epochs = cfg_.slaf_epochs;
    pcfg.seed = cfg_.seed;
    pcfg.verbose = cfg_.verbose;
    m = train_protocol(arch, act, train_, test_, pcfg);
    save_weights(*m.network, path);
    if (cfg_.verbose) {
      std::printf("[model] %s trained: train %.2f%% test %.2f%%\n",
                  arch_name(arch).c_str(),
                  static_cast<double>(m.train_accuracy),
                  static_cast<double>(m.test_accuracy));
    }
  }
  it = models_.emplace(key, std::move(m)).first;
  return it->second;
}

ModelSpec Experiment::spec(Arch arch, Activation act) {
  return compile_model(model(arch, act));
}

std::unique_ptr<HeBackend> make_backend(const std::string& kind,
                                        const CkksParams& params) {
  if (kind == "rns") return std::make_unique<RnsBackend>(params);
  if (kind == "big") return std::make_unique<BigBackend>(params);
  PPHE_CHECK(false, "unknown backend kind: " + kind);
  return nullptr;
}

EncryptedEvalResult run_encrypted_eval(HeBackend& backend,
                                       const ModelSpec& spec,
                                       const HeModelOptions& options,
                                       const Dataset& test,
                                       const ExperimentConfig& cfg) {
  EncryptedEvalResult result;

  // Install an encode-once weight cache when the caller did not supply one,
  // so the cache stats below always describe this compilation.
  HeModelOptions opts = options;
  if (!opts.weight_cache) {
    opts.weight_cache = std::make_shared<WeightOperandCache>();
  }
  Stopwatch setup;
  const HeModel model(backend, spec, opts);
  result.setup_seconds = setup.seconds();
  const WeightOperandCache::Stats cache_stats = opts.weight_cache->stats();
  result.weight_cache_hits = cache_stats.hits;
  result.weight_cache_misses = cache_stats.misses;
  trace::Span eval_span("encrypted_eval", "pipeline");
  eval_span.attr("workers", static_cast<double>(cfg.workers));

  // Plaintext reference accuracy over the full test set.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const float* img = test.images.data() + i * 784;
    const auto logits = eval_spec(spec, std::vector<float>(img, img + 784));
    const auto pred = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    if (pred == test.labels[i]) ++correct;
  }
  result.spec_accuracy =
      100.0 * static_cast<double>(correct) / static_cast<double>(test.size());

  const std::size_t samples = std::min(cfg.he_samples, test.size());
  result.samples = samples;
  std::size_t he_correct = 0, agree = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    trace::Span sample_span("sample", "pipeline");
    sample_span.attr("index", static_cast<double>(i));
    const float* img = test.images.data() + i * 784;
    const std::vector<float> image(img, img + 784);

    // Stage the round trip manually so the ParallelSim window brackets the
    // cloud-side evaluation only (the paper's Lat is per classification
    // request on the cloud).
    InferenceResult inf;
    Stopwatch sw;
    const auto inputs = model.encrypt_input(image);
    inf.encrypt_seconds = sw.seconds();

    ParallelSim::global().reset();
    sw.reset();
    const Ciphertext out = model.eval(inputs);
    inf.eval_seconds = sw.seconds();
    const double recorded = ParallelSim::global().sequential_seconds();
    const double serial_extra = std::max(0.0, inf.eval_seconds - recorded);
    const double parallel =
        ParallelSim::global().simulate(cfg.workers) + serial_extra;

    sw.reset();
    inf.logits = model.decrypt_logits(out);
    inf.decrypt_seconds = sw.seconds();
    inf.predicted = static_cast<int>(
        std::max_element(inf.logits.begin(), inf.logits.end()) -
        inf.logits.begin());

    result.eval_latency.add(inf.eval_seconds);
    result.parallel_latency.add(parallel);
    result.encrypt_avg += inf.encrypt_seconds;
    result.decrypt_avg += inf.decrypt_seconds;

    const auto plain = eval_spec(spec, image);
    const auto plain_pred = static_cast<int>(
        std::max_element(plain.begin(), plain.end()) - plain.begin());
    if (inf.predicted == plain_pred) ++agree;
    if (inf.predicted == test.labels[i]) ++he_correct;
    for (std::size_t c = 0; c < plain.size(); ++c) {
      result.max_logit_err =
          std::max(result.max_logit_err,
                   std::abs(inf.logits[c] - static_cast<double>(plain[c])));
    }
  }
  if (samples > 0) {
    result.encrypt_avg /= static_cast<double>(samples);
    result.decrypt_avg /= static_cast<double>(samples);
    result.he_accuracy =
        100.0 * static_cast<double>(he_correct) / static_cast<double>(samples);
    result.match_rate =
        100.0 * static_cast<double>(agree) / static_cast<double>(samples);
  }
  return result;
}

}  // namespace pphe
