#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/data.hpp"
#include "nn/network.hpp"

namespace pphe {

/// Which activation the architecture uses.
enum class Activation {
  kRelu,    // pre-training only (not homomorphically computable)
  kSlaf,    // paper's self-learning polynomial (eq. (2)), degree 3
  kSquare,  // CryptoNets baseline [20]
};

/// The two architectures of §V.D (Figs. 3 and 4).
enum class Arch {
  kCnn1,  // Conv(1->5,5x5,s2) - act - Dense(720->64) - act - Dense(64->10)
  kCnn2,  // Conv(1->5,5x5,s2) - BN - act - Conv(5->10,5x5,s2) - BN - act -
          // Dense(160->64) - Dense(64->10)
};

std::string arch_name(Arch arch);

/// Builds an untrained network of the given architecture/activation.
std::unique_ptr<Network> build_network(Arch arch, Activation act,
                                       std::uint64_t seed,
                                       std::size_t slaf_degree = 3);

/// Result of the CNN-HE-SLAF training protocol (§V.D, [11]).
struct TrainedModel {
  std::unique_ptr<Network> network;
  Arch arch = Arch::kCnn1;
  Activation activation = Activation::kSlaf;
  float train_accuracy = 0.0f;  // the paper's "Training Acc" column
  float test_accuracy = 0.0f;   // plaintext accuracy on the test set
};

/// How SLAF coefficients start before the re-training phase.
enum class SlafInit {
  /// Least-squares degree-d fit of ReLU over a Gaussian-weighted interval —
  /// the substituted network starts close to the pre-trained one, so the
  /// short re-training phase converges (the practical reading of [11]).
  kReluFit,
  /// All-zero, as §III.B states literally. With stacked activations the
  /// zero polynomials block gradient flow and need many more epochs.
  kZero,
};

/// Training knobs. Defaults follow §V.D (SGD momentum 0.9, batch 64,
/// cross-entropy, 1-cycle LR, Kaiming init); epochs are scaled down by the
/// caller for the fast profile.
struct ProtocolConfig {
  std::size_t relu_epochs = 30;
  std::size_t slaf_epochs = 8;  // the "short re-training" of [11]
  std::size_t batch_size = 64;
  float lr_max = 0.05f;
  float slaf_lr_max = 0.003f;
  std::uint64_t seed = 1234;
  bool verbose = false;
  SlafInit slaf_init = SlafInit::kReluFit;
  double slaf_fit_radius = 6.0;  // interval half-width for kReluFit
};

/// Least-squares coefficients (a_0..a_degree) approximating ReLU over
/// [-radius, radius] with Gaussian weighting (sigma = radius / 2).
std::vector<float> fit_relu_polynomial(std::size_t degree, double radius);

/// CNN-HE-SLAF protocol: (1) train the architecture with ReLU; (2) swap every
/// activation for a zero-initialized SLAF, keeping the learned weights;
/// (3) shortly re-train the full model so the polynomial coefficients adapt
/// (the paper re-trains "to learn customized polynomial approximation
/// coefficients"). For Activation::kSquare the second phase re-trains the
/// fixed-square network instead (CryptoNets practice).
TrainedModel train_protocol(Arch arch, Activation act, const Dataset& train,
                            const Dataset& test, const ProtocolConfig& cfg);

// ---------------------------------------------------------------------------
// Compiled plaintext model: what the HE engine consumes.
// ---------------------------------------------------------------------------

/// A dense matrix y = W x + b over flattened feature vectors. Convolutions
/// (with folded batch norm) and dense layers both lower to this form; the HE
/// engine packs it with the BSGS diagonal method.
struct LinearSpec {
  std::size_t in_dim = 0;
  std::size_t out_dim = 0;
  std::vector<float> weight;  // row-major out_dim x in_dim
  std::vector<float> bias;    // out_dim

  float at(std::size_t row, std::size_t col) const {
    return weight[row * in_dim + col];
  }
};

/// Polynomial activation with per-neuron coefficients (eq. (2)); Square is
/// represented as the fixed polynomial x^2 for every neuron.
struct ActivationSpec {
  std::size_t features = 0;
  std::size_t degree = 0;
  std::vector<float> coeffs;  // features x (degree+1), row-major

  float coeff(std::size_t neuron, std::size_t power) const {
    return coeffs[neuron * (degree + 1) + power];
  }
};

struct ModelSpec {
  struct Stage {
    enum class Kind { kLinear, kActivation } kind;
    LinearSpec linear;
    ActivationSpec activation;
  };
  std::vector<Stage> stages;
  std::string name;

  /// Number of rescaling levels an exact evaluation consumes
  /// (1 per linear stage, 3 per degree-3 activation — see he_model.cpp).
  std::size_t depth() const;
};

/// Lowers a trained network to linear + activation stages: convolutions are
/// unrolled to sparse matrices over flattened tensors, batch norms are folded
/// into the preceding convolution, flatten disappears.
ModelSpec compile_model(const TrainedModel& model);

/// Evaluates a ModelSpec in the clear (reference for HE output validation).
std::vector<float> eval_spec(const ModelSpec& spec,
                             std::vector<float> input);

}  // namespace pphe
