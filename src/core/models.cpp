#include "core/models.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.hpp"

namespace pphe {

std::string arch_name(Arch arch) {
  return arch == Arch::kCnn1 ? "CNN1" : "CNN2";
}

namespace {

void add_activation(Network& net, Activation act, std::size_t features,
                    std::size_t slaf_degree) {
  switch (act) {
    case Activation::kRelu:
      net.emplace<ReLU>();
      break;
    case Activation::kSquare:
      net.emplace<Square>();
      break;
    case Activation::kSlaf:
      net.emplace<Slaf>(features, slaf_degree);
      break;
  }
}

}  // namespace

std::unique_ptr<Network> build_network(Arch arch, Activation act,
                                       std::uint64_t seed,
                                       std::size_t slaf_degree) {
  Prng prng(seed);
  auto net = std::make_unique<Network>();
  if (arch == Arch::kCnn1) {
    // Fig. 3: Lo-La variant with activations after the convolution and the
    // first dense layer. 28x28 -> 5x12x12 (=720) -> 64 -> 10.
    net->emplace<Conv2D>(1, 5, 5, 2, prng);
    net->emplace<Flatten>();
    add_activation(*net, act, 720, slaf_degree);
    net->emplace<Dense>(720, 64, prng);
    add_activation(*net, act, 64, slaf_degree);
    net->emplace<Dense>(64, 10, prng);
  } else {
    // Fig. 4: CryptoNets-based, two convolutions, batch norm before each
    // activation. 28x28 -> 5x12x12 -> 10x4x4 (=160) -> 64 -> 10.
    net->emplace<Conv2D>(1, 5, 5, 2, prng);
    net->emplace<BatchNorm2D>(5);
    net->emplace<Flatten>();
    add_activation(*net, act, 720, slaf_degree);
    // (The HE engine re-folds the flattened vector into 5x12x12 for conv2.)
    net->emplace<Reshape4D>(5, 12, 12);
    net->emplace<Conv2D>(5, 10, 5, 2, prng);
    net->emplace<BatchNorm2D>(10);
    net->emplace<Flatten>();
    add_activation(*net, act, 160, slaf_degree);
    net->emplace<Dense>(160, 64, prng);
    net->emplace<Dense>(64, 10, prng);
  }
  return net;
}

std::vector<float> fit_relu_polynomial(std::size_t degree, double radius) {
  PPHE_CHECK(degree >= 1 && radius > 0.0, "bad SLAF fit parameters");
  // Weighted least squares of max(x, 0) onto {1, x, ..., x^d} over a dense
  // grid with Gaussian weights (sigma = radius/2): normal equations solved
  // by Gaussian elimination with partial pivoting.
  const std::size_t n = degree + 1;
  std::vector<double> ata(n * n, 0.0), atb(n, 0.0);
  const double sigma = radius / 2.0;
  const int grid = 2001;
  for (int g = 0; g < grid; ++g) {
    const double x = -radius + 2.0 * radius * g / (grid - 1);
    const double w = std::exp(-x * x / (2.0 * sigma * sigma));
    const double y = x > 0.0 ? x : 0.0;
    double powers[16];
    powers[0] = 1.0;
    for (std::size_t p = 1; p < n; ++p) powers[p] = powers[p - 1] * x;
    for (std::size_t i = 0; i < n; ++i) {
      atb[i] += w * powers[i] * y;
      for (std::size_t j = 0; j < n; ++j) {
        ata[i * n + j] += w * powers[i] * powers[j];
      }
    }
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(ata[r * n + col]) > std::abs(ata[pivot * n + col])) {
        pivot = r;
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      std::swap(ata[col * n + j], ata[pivot * n + j]);
    }
    std::swap(atb[col], atb[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col || ata[col * n + col] == 0.0) continue;
      const double f = ata[r * n + col] / ata[col * n + col];
      for (std::size_t j = 0; j < n; ++j) ata[r * n + j] -= f * ata[col * n + j];
      atb[r] -= f * atb[col];
    }
  }
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(atb[i] / ata[i * n + i]);
  }
  return out;
}

TrainedModel train_protocol(Arch arch, Activation act, const Dataset& train_set,
                            const Dataset& test_set,
                            const ProtocolConfig& cfg) {
  TrainedModel out;
  out.arch = arch;
  out.activation = act;

  // Phase 1: pre-train with ReLU (original activations).
  auto relu_net = build_network(arch, Activation::kRelu, cfg.seed);
  TrainConfig phase1;
  phase1.epochs = cfg.relu_epochs;
  phase1.batch_size = cfg.batch_size;
  phase1.lr_max = cfg.lr_max;
  phase1.shuffle_seed = cfg.seed ^ 0x1111;
  phase1.verbose = cfg.verbose;
  if (cfg.verbose) std::printf("[%s] phase 1: ReLU pre-training\n",
                               arch_name(arch).c_str());
  train(*relu_net, train_set, phase1);

  if (act == Activation::kRelu) {
    out.train_accuracy = evaluate(*relu_net, train_set);
    out.test_accuracy = evaluate(*relu_net, test_set);
    out.network = std::move(relu_net);
    return out;
  }

  // Phase 2: rebuild with the homomorphic activation, copy the learned
  // weights, then shortly re-train so SLAF coefficients (zero-initialized,
  // eq. (2)) adapt to the frozen-shape network.
  auto he_net = build_network(arch, act, cfg.seed);
  {
    auto src = relu_net->params();
    auto dst = he_net->params();
    // Activation layers contribute params only in the SLAF net; copy the
    // shared (conv/dense/bn) parameters by matching shapes in order.
    std::size_t si = 0;
    for (Param* d : dst) {
      if (si < src.size() && src[si]->value.shape() == d->value.shape()) {
        d->value = src[si]->value;
        ++si;
      }
    }
    PPHE_CHECK(si == src.size(), "weight transfer mismatch");
  }
  if (act == Activation::kSlaf && cfg.slaf_init == SlafInit::kReluFit) {
    // Seed every SLAF with the ReLU least-squares fit so the substituted
    // network starts near the pre-trained optimum (see SlafInit docs).
    for (auto& layer : he_net->layers_mut()) {
      if (auto* slaf = dynamic_cast<Slaf*>(layer.get())) {
        const auto fit =
            fit_relu_polynomial(slaf->degree(), cfg.slaf_fit_radius);
        for (std::size_t k = 0; k < slaf->features(); ++k) {
          for (std::size_t p = 0; p <= slaf->degree(); ++p) {
            slaf->coeffs().value.at2(k, p) = fit[p];
          }
        }
      }
    }
  }
  TrainConfig phase2;
  phase2.epochs = cfg.slaf_epochs;
  phase2.batch_size = cfg.batch_size;
  phase2.lr_max = cfg.slaf_lr_max;
  phase2.shuffle_seed = cfg.seed ^ 0x2222;
  phase2.verbose = cfg.verbose;
  if (cfg.verbose) std::printf("[%s] phase 2: %s re-training\n",
                               arch_name(arch).c_str(),
                               act == Activation::kSlaf ? "SLAF" : "Square");
  out.train_accuracy = train(*he_net, train_set, phase2);
  out.test_accuracy = evaluate(*he_net, test_set);
  out.network = std::move(he_net);
  return out;
}

// ---------------------------------------------------------------------------
// Lowering to ModelSpec
// ---------------------------------------------------------------------------

namespace {

/// Unrolls a Conv2D over (C, H, W) inputs into a dense LinearSpec.
LinearSpec lower_conv(const Conv2D& conv, std::size_t in_c, std::size_t in_h,
                      std::size_t in_w) {
  PPHE_CHECK(in_c == conv.in_channels(), "conv channel mismatch");
  const std::size_t k = conv.kernel(), s = conv.stride();
  const std::size_t oh = (in_h - k) / s + 1;
  const std::size_t ow = (in_w - k) / s + 1;
  LinearSpec spec;
  spec.in_dim = in_c * in_h * in_w;
  spec.out_dim = conv.out_channels() * oh * ow;
  spec.weight.assign(spec.in_dim * spec.out_dim, 0.0f);
  spec.bias.assign(spec.out_dim, 0.0f);
  for (std::size_t f = 0; f < conv.out_channels(); ++f) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::size_t row = (f * oh + oy) * ow + ox;
        spec.bias[row] = conv.bias().value[f];
        for (std::size_t c = 0; c < in_c; ++c) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::size_t col =
                  (c * in_h + oy * s + ky) * in_w + ox * s + kx;
              spec.weight[row * spec.in_dim + col] =
                  conv.weight().value.at4(f, c, ky, kx);
            }
          }
        }
      }
    }
  }
  return spec;
}

void fold_batchnorm(LinearSpec& linear, const BatchNorm2D& bn) {
  // Rows of the conv output are grouped by channel; scale row weights and
  // adjust bias so BN disappears into the linear map.
  const std::size_t rows_per_channel = linear.out_dim / bn.channels();
  const auto scale = bn.fold_scale();
  const auto shift = bn.fold_shift();
  for (std::size_t row = 0; row < linear.out_dim; ++row) {
    const std::size_t c = row / rows_per_channel;
    for (std::size_t col = 0; col < linear.in_dim; ++col) {
      linear.weight[row * linear.in_dim + col] *= scale[c];
    }
    linear.bias[row] = linear.bias[row] * scale[c] + shift[c];
  }
}

LinearSpec lower_dense(const Dense& dense) {
  LinearSpec spec;
  spec.in_dim = dense.in_dim();
  spec.out_dim = dense.out_dim();
  spec.weight.assign(dense.weight().value.vec().begin(),
                     dense.weight().value.vec().end());
  spec.bias.assign(dense.bias().value.vec().begin(),
                   dense.bias().value.vec().end());
  return spec;
}

ActivationSpec lower_slaf(const Slaf& slaf) {
  ActivationSpec spec;
  spec.features = slaf.features();
  spec.degree = slaf.degree();
  spec.coeffs.assign(slaf.coeffs().value.vec().begin(),
                     slaf.coeffs().value.vec().end());
  return spec;
}

ActivationSpec square_spec(std::size_t features) {
  ActivationSpec spec;
  spec.features = features;
  spec.degree = 2;
  spec.coeffs.assign(features * 3, 0.0f);
  for (std::size_t k = 0; k < features; ++k) spec.coeffs[k * 3 + 2] = 1.0f;
  return spec;
}

}  // namespace

std::size_t ModelSpec::depth() const {
  std::size_t d = 0;
  for (const auto& stage : stages) {
    if (stage.kind == Stage::Kind::kLinear) {
      d += 1;
    } else {
      // x^2 and x^3 towers plus the final rescale (see he_model.cpp).
      d += stage.activation.degree >= 3 ? 3 : 2;
    }
  }
  return d;
}

ModelSpec compile_model(const TrainedModel& model) {
  PPHE_CHECK(model.activation != Activation::kRelu,
             "ReLU networks cannot be compiled for HE (§III.C)");
  ModelSpec spec;
  spec.name = arch_name(model.arch) + "-HE" +
              (model.activation == Activation::kSlaf ? "-SLAF" : "-SQ");

  // Track the spatial shape through the network for conv lowering.
  std::size_t c = 1, h = 28, w = 28;
  std::size_t flat = 784;
  LinearSpec* pending_linear = nullptr;

  for (const auto& layer : model.network->layers()) {
    if (const auto* conv = dynamic_cast<const Conv2D*>(layer.get())) {
      ModelSpec::Stage stage;
      stage.kind = ModelSpec::Stage::Kind::kLinear;
      stage.linear = lower_conv(*conv, c, h, w);
      spec.stages.push_back(std::move(stage));
      pending_linear = &spec.stages.back().linear;
      c = conv->out_channels();
      h = (h - conv->kernel()) / conv->stride() + 1;
      w = (w - conv->kernel()) / conv->stride() + 1;
      flat = c * h * w;
    } else if (const auto* bn = dynamic_cast<const BatchNorm2D*>(layer.get())) {
      PPHE_CHECK(pending_linear != nullptr,
                 "BatchNorm must follow a convolution");
      fold_batchnorm(*pending_linear, *bn);
    } else if (const auto* dense = dynamic_cast<const Dense*>(layer.get())) {
      ModelSpec::Stage stage;
      stage.kind = ModelSpec::Stage::Kind::kLinear;
      stage.linear = lower_dense(*dense);
      spec.stages.push_back(std::move(stage));
      pending_linear = &spec.stages.back().linear;
      flat = dense->out_dim();
    } else if (const auto* slaf = dynamic_cast<const Slaf*>(layer.get())) {
      ModelSpec::Stage stage;
      stage.kind = ModelSpec::Stage::Kind::kActivation;
      stage.activation = lower_slaf(*slaf);
      spec.stages.push_back(std::move(stage));
      pending_linear = nullptr;
    } else if (dynamic_cast<const Square*>(layer.get()) != nullptr) {
      ModelSpec::Stage stage;
      stage.kind = ModelSpec::Stage::Kind::kActivation;
      stage.activation = square_spec(flat);
      spec.stages.push_back(std::move(stage));
      pending_linear = nullptr;
    }
    // Flatten / Reshape4D are layout bookkeeping only.
  }
  return spec;
}

std::vector<float> eval_spec(const ModelSpec& spec, std::vector<float> input) {
  std::vector<float> x = std::move(input);
  for (const auto& stage : spec.stages) {
    if (stage.kind == ModelSpec::Stage::Kind::kLinear) {
      const LinearSpec& lin = stage.linear;
      PPHE_CHECK(x.size() == lin.in_dim, "eval_spec dimension mismatch");
      std::vector<float> y(lin.out_dim, 0.0f);
      for (std::size_t r = 0; r < lin.out_dim; ++r) {
        float acc = lin.bias[r];
        const float* row = lin.weight.data() + r * lin.in_dim;
        for (std::size_t cI = 0; cI < lin.in_dim; ++cI) acc += row[cI] * x[cI];
        y[r] = acc;
      }
      x = std::move(y);
    } else {
      const ActivationSpec& act = stage.activation;
      PPHE_CHECK(x.size() == act.features, "eval_spec activation mismatch");
      for (std::size_t k = 0; k < act.features; ++k) {
        float acc = act.coeff(k, act.degree);
        for (std::size_t d = act.degree; d-- > 0;) {
          acc = acc * x[k] + act.coeff(k, d);
        }
        x[k] = acc;
      }
    }
  }
  return x;
}

}  // namespace pphe
