#include "core/serving.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>

#include "ckks/rns_backend.hpp"
#include "ckks/serialize.hpp"
#include "common/fault.hpp"
#include "common/trace.hpp"

namespace pphe {
namespace {

/// One serialized hop: encode to bytes, let the fault harness corrupt them,
/// decode on the receiving side. Decoding is where transport corruption is
/// detected (typed kSerialization / kChecksumMismatch / kIntegrity).
Ciphertext ship(const RnsBackend& backend, const Ciphertext& ct,
                fault::Site site) {
  std::string bytes = ciphertext_to_string(backend, ct);
  fault::corrupt_wire(site, bytes);
  return ciphertext_from_string(bytes, backend);
}

/// Cloud-side evaluation under the per-attempt watchdog. The worker thread
/// cannot be killed, so on expiry it is joined (its stall is bounded by the
/// fault plan's slow_seconds) and its result discarded; the attempt then
/// fails with a typed kTimeout.
Ciphertext guarded_eval(const HeModel& model,
                        const std::vector<Ciphertext>& inputs,
                        double watchdog_seconds) {
  if (watchdog_seconds <= 0.0) {
    fault::worker_checkpoint();
    return model.eval(inputs);
  }
  std::packaged_task<Ciphertext()> task([&model, &inputs] {
    fault::worker_checkpoint();
    return model.eval(inputs);
  });
  std::future<Ciphertext> future = task.get_future();
  std::thread worker(std::move(task));
  const bool timed_out =
      future.wait_for(std::chrono::duration<double>(watchdog_seconds)) ==
      std::future_status::timeout;
  worker.join();
  if (timed_out) {
    try {
      future.get();  // discard the straggler's result or exception
    } catch (...) {
    }
    throw Error(ErrorCode::kTimeout,
                "watchdog: evaluation exceeded " +
                    std::to_string(watchdog_seconds) + " s deadline");
  }
  return future.get();
}

}  // namespace

ServeBatchOutcome serve_classify_batch(const RnsBackend& backend,
                                       const HeModel& model,
                                       const std::vector<std::vector<float>>& images,
                                       const ServingOptions& options) {
  PPHE_CHECK(&model.backend() == static_cast<const HeBackend*>(&backend),
             "serve_classify_batch: model was compiled on a different backend");
  const std::size_t batch = model.options().batch;
  PPHE_CHECK_CODE(!images.empty() && images.size() <= batch,
                  ErrorCode::kInvalidArgument,
                  "serve_classify_batch: " + std::to_string(images.size()) +
                      " images for a batch-" + std::to_string(batch) +
                      " model (need 1.." + std::to_string(batch) + ")");
  trace::Span span("serve_classify_batch", "serving");
  span.attr("images", static_cast<double>(images.size()));
  span.attr("batch", static_cast<double>(batch));

  // One-time session setup, hoisted OUT of the retry loop: evaluation keys
  // (relin + Galois) live for the whole client/cloud session, so a retry
  // re-sends only the freshly re-encrypted inputs — never the key material,
  // which dwarfs every other object in the protocol. The op-counter
  // regression test pins kGaloisKeys to one bump per serve call regardless
  // of how many attempts the fault plan forces.
  model.backend().ensure_galois_keys(model.rotation_steps());

  // Partial batches ride in the same slot-packed layout padded with zero
  // images; their logits exist but are dropped before the outcome is built.
  const std::vector<std::vector<float>>* submit = &images;
  std::vector<std::vector<float>> padded;
  if (images.size() < batch) {
    padded = images;
    const std::size_t in_dim = images.front().size();
    padded.resize(batch, std::vector<float>(in_dim, 0.0f));
    submit = &padded;
  }

  ServeBatchOutcome outcome;
  const int attempts_allowed = 1 + std::max(0, options.max_retries);
  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    ++outcome.attempts;
    try {
      // Client side: fresh encrypt every attempt (retry-with-recompute).
      const std::vector<Ciphertext> fresh = model.encrypt_batch(*submit);
      // Client -> cloud hop, per branch ciphertext.
      std::vector<Ciphertext> cloud_inputs;
      cloud_inputs.reserve(fresh.size());
      for (const Ciphertext& ct : fresh) {
        cloud_inputs.push_back(ship(backend, ct, fault::Site::kWireUpload));
      }
      // Cloud side: validation + guardrails run inside eval.
      const Ciphertext encrypted_logits =
          guarded_eval(model, cloud_inputs, options.watchdog_seconds);
      // Cloud -> client hop, then client-side decrypt + de-interleave.
      const Ciphertext received =
          ship(backend, encrypted_logits, fault::Site::kWireDownload);
      auto all = model.decrypt_logits_batch(received);
      outcome.logits.assign(
          std::make_move_iterator(all.begin()),
          std::make_move_iterator(all.begin() +
                                  static_cast<long>(images.size())));
      outcome.predicted.resize(images.size());
      for (std::size_t i = 0; i < images.size(); ++i) {
        const auto& row = outcome.logits[i];
        outcome.predicted[i] = static_cast<int>(
            std::max_element(row.begin(), row.end()) - row.begin());
      }
      outcome.ok = true;
      break;
    } catch (const Error& e) {
      outcome.faults.push_back({e.code(), e.what()});
      if (e.code() == ErrorCode::kNoiseBudget) {
        // Retrying cannot add modulus back; report a degraded outcome.
        outcome.degraded = true;
        break;
      }
    }
  }
  span.attr("attempts", static_cast<double>(outcome.attempts));
  span.attr("ok", outcome.ok ? 1.0 : 0.0);
  return outcome;
}

ServeOutcome serve_classify(const RnsBackend& backend, const HeModel& model,
                            std::span<const float> image,
                            const ServingOptions& options) {
  PPHE_CHECK(&model.backend() == static_cast<const HeBackend*>(&backend),
             "serve_classify: model was compiled on a different backend");
  trace::Span span("serve_classify", "serving");
  // The single-image path IS the batch path with one image: the batched loop
  // handles a batch-1 model (replicated layout) natively, so the two share
  // the retry/recovery logic verbatim.
  ServeBatchOutcome batched = serve_classify_batch(
      backend, model, {std::vector<float>(image.begin(), image.end())},
      options);
  ServeOutcome outcome;
  if (!batched.logits.empty()) {
    outcome.logits = std::move(batched.logits.front());
    outcome.predicted = batched.predicted.front();
  }
  outcome.ok = batched.ok;
  outcome.degraded = batched.degraded;
  outcome.faults = std::move(batched.faults);
  outcome.attempts = batched.attempts;
  span.attr("attempts", static_cast<double>(outcome.attempts));
  span.attr("ok", outcome.ok ? 1.0 : 0.0);
  return outcome;
}

}  // namespace pphe
