#include "core/serving.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>

#include "ckks/rns_backend.hpp"
#include "ckks/serialize.hpp"
#include "common/fault.hpp"
#include "common/trace.hpp"

namespace pphe {
namespace {

/// One serialized hop: encode to bytes, let the fault harness corrupt them,
/// decode on the receiving side. Decoding is where transport corruption is
/// detected (typed kSerialization / kChecksumMismatch / kIntegrity).
Ciphertext ship(const RnsBackend& backend, const Ciphertext& ct,
                fault::Site site) {
  std::string bytes = ciphertext_to_string(backend, ct);
  fault::corrupt_wire(site, bytes);
  return ciphertext_from_string(bytes, backend);
}

/// Cloud-side evaluation under the per-attempt watchdog. The worker thread
/// cannot be killed, so on expiry it is joined (its stall is bounded by the
/// fault plan's slow_seconds) and its result discarded; the attempt then
/// fails with a typed kTimeout.
Ciphertext guarded_eval(const HeModel& model,
                        const std::vector<Ciphertext>& inputs,
                        double watchdog_seconds) {
  if (watchdog_seconds <= 0.0) {
    fault::worker_checkpoint();
    return model.eval(inputs);
  }
  std::packaged_task<Ciphertext()> task([&model, &inputs] {
    fault::worker_checkpoint();
    return model.eval(inputs);
  });
  std::future<Ciphertext> future = task.get_future();
  std::thread worker(std::move(task));
  const bool timed_out =
      future.wait_for(std::chrono::duration<double>(watchdog_seconds)) ==
      std::future_status::timeout;
  worker.join();
  if (timed_out) {
    try {
      future.get();  // discard the straggler's result or exception
    } catch (...) {
    }
    throw Error(ErrorCode::kTimeout,
                "watchdog: evaluation exceeded " +
                    std::to_string(watchdog_seconds) + " s deadline");
  }
  return future.get();
}

}  // namespace

ServeOutcome serve_classify(const RnsBackend& backend, const HeModel& model,
                            std::span<const float> image,
                            const ServingOptions& options) {
  PPHE_CHECK(&model.backend() == static_cast<const HeBackend*>(&backend),
             "serve_classify: model was compiled on a different backend");
  trace::Span span("serve_classify", "serving");
  ServeOutcome outcome;
  const int attempts_allowed = 1 + std::max(0, options.max_retries);
  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    ++outcome.attempts;
    try {
      // Client side: fresh encrypt every attempt (retry-with-recompute).
      const std::vector<Ciphertext> fresh = model.encrypt_input(image);
      // Client -> cloud hop, per branch ciphertext.
      std::vector<Ciphertext> cloud_inputs;
      cloud_inputs.reserve(fresh.size());
      for (const Ciphertext& ct : fresh) {
        cloud_inputs.push_back(ship(backend, ct, fault::Site::kWireUpload));
      }
      // Cloud side: validation + guardrails run inside eval.
      const Ciphertext encrypted_logits =
          guarded_eval(model, cloud_inputs, options.watchdog_seconds);
      // Cloud -> client hop, then client-side decrypt.
      const Ciphertext received =
          ship(backend, encrypted_logits, fault::Site::kWireDownload);
      outcome.logits = model.decrypt_logits(received);
      outcome.predicted = static_cast<int>(
          std::max_element(outcome.logits.begin(), outcome.logits.end()) -
          outcome.logits.begin());
      outcome.ok = true;
      break;
    } catch (const Error& e) {
      outcome.faults.push_back({e.code(), e.what()});
      if (e.code() == ErrorCode::kNoiseBudget) {
        // Retrying cannot add modulus back; report a degraded outcome.
        outcome.degraded = true;
        break;
      }
    }
  }
  span.attr("attempts", static_cast<double>(outcome.attempts));
  span.attr("ok", outcome.ok ? 1.0 : 0.0);
  return outcome;
}

}  // namespace pphe
