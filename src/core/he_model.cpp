#include "core/he_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include <cstdio>

#include "ckks/noise.hpp"
#include "common/check.hpp"
#include "core/rotation_plan.hpp"
#include "common/fault.hpp"
#include "common/parallel_sim.hpp"
#include "common/stats.hpp"
#include "common/trace.hpp"

namespace pphe {
namespace {

std::size_t next_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

double close_enough(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max(std::abs(a), std::abs(b));
}

/// Applies any armed eval.input fault to `ct` in place: a limb bit flip on a
/// deep-copied slab (clone_mutate_limbs, so the caller's ciphertext is never
/// touched) and/or a perturbation of the handle's mirrored scale/level.
void faulted_copy(const HeBackend& backend, Ciphertext& ct) {
  ct = backend.clone_mutate_limbs(ct, [](std::span<std::uint64_t> words) {
    fault::flip_limb(fault::Site::kEvalInput, words);
  });
  double scale = ct.scale();
  int level = ct.level();
  bool changed = fault::perturb_scale(fault::Site::kEvalInput, scale);
  changed = fault::perturb_level(fault::Site::kEvalInput, level) || changed;
  if (changed) ct = Ciphertext(ct.impl(), scale, level, ct.size());
}

/// FNV-1a over the full cache key (pointer, flags, scale bits, values).
std::size_t weight_key_hash(const HeBackend* backend, bool encrypted,
                            int level, std::uint64_t scale_bits,
                            std::span<const double> values) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(reinterpret_cast<std::uintptr_t>(backend));
  mix(encrypted ? 1 : 0);
  mix(static_cast<std::uint64_t>(level));
  mix(scale_bits);
  for (const double d : values) mix(std::bit_cast<std::uint64_t>(d));
  return static_cast<std::size_t>(h);
}

}  // namespace

// ---------------------------------------------------------------------------
// WeightOperandCache
// ---------------------------------------------------------------------------

WeightOperand WeightOperandCache::get_or_make(const HeBackend& backend,
                                              bool encrypted,
                                              std::span<const double> values,
                                              double scale, int level,
                                              const Factory& make) {
  const std::uint64_t scale_bits = std::bit_cast<std::uint64_t>(scale);
  const std::size_t h =
      weight_key_hash(&backend, encrypted, level, scale_bits, values);
  // The lock is held across the encode: models compile on one thread, so
  // there is no contention to speak of, and holding it guarantees each key
  // is made exactly once.
  std::lock_guard<std::mutex> lock(mutex_);
  auto& bucket = buckets_[h];
  for (const Entry& e : bucket) {
    if (e.backend == &backend && e.encrypted == encrypted &&
        e.level == level && e.scale_bits == scale_bits &&
        std::equal(e.values.begin(), e.values.end(), values.begin(),
                   values.end())) {
      ++stats_.hits;
      return e.operand;
    }
  }
  ++stats_.misses;
  ++stats_.entries;
  Entry e;
  e.backend = &backend;
  e.encrypted = encrypted;
  e.level = level;
  e.scale_bits = scale_bits;
  e.values.assign(values.begin(), values.end());
  e.operand = make();
  bucket.push_back(std::move(e));
  return bucket.back().operand;
}

WeightOperandCache::Stats WeightOperandCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void WeightOperandCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.clear();
  stats_ = {};
}

void HeModel::validate_batch(const HeBackend& backend, const ModelSpec& spec,
                             std::size_t batch) {
  std::size_t tile = 1;
  for (const auto& stage : spec.stages) {
    if (stage.kind == ModelSpec::Stage::Kind::kLinear) {
      tile = std::max(tile, next_pow2(std::max(stage.linear.in_dim,
                                               stage.linear.out_dim)));
    }
  }
  const std::size_t slots = backend.slot_count();
  const std::size_t max_batch = tile <= slots ? slots / tile : 0;
  const std::string allowed =
      "allowed for this model on " + backend.name() + ": powers of two in [1, " +
      std::to_string(max_batch) + "] (tile " + std::to_string(tile) + ", " +
      std::to_string(slots) + " slots)";
  PPHE_CHECK_CODE(batch >= 1 && (batch & (batch - 1)) == 0,
                  ErrorCode::kInvalidArgument,
                  "batch " + std::to_string(batch) +
                      " is not a power of two; " + allowed);
  PPHE_CHECK_CODE(batch <= max_batch, ErrorCode::kInvalidArgument,
                  "batch " + std::to_string(batch) +
                      " exceeds slot capacity; " + allowed);
}

HeModel::HeModel(HeBackend& backend, const ModelSpec& spec,
                 HeModelOptions options)
    : backend_(backend), spec_(spec), options_(options) {
  PPHE_CHECK(options_.rns_branches >= 1, "need at least one branch");
  PPHE_CHECK(options_.pixel_levels >= 2, "invalid pixel quantization");
  if (!options_.weight_cache) {
    // Private cache: still dedupes duplicate diagonals within this model and
    // full re-encodes when the level-retry loop below re-plans.
    options_.weight_cache = std::make_shared<WeightOperandCache>();
  }
  // Start at the lowest level that still fits the model's depth: fewer
  // residue channels per operation at identical (better) security. Scale
  // drift can occasionally demand one more level than depth(); retry upward.
  input_level_ = std::min<int>(backend_.max_level(),
                               static_cast<int>(spec_.depth()));
  for (;;) {
    try {
      plan();
      break;
    } catch (const Error&) {
      stages_.clear();
      rotation_steps_.clear();
      if (input_level_ >= backend_.max_level()) throw;
      ++input_level_;
    }
  }
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

void HeModel::simulate_rescale(int& level, double& scale) const {
  const double delta = backend_.params().scale;
  while (level > 0 && scale / backend_.level_prime(level) >= 0.5 * delta) {
    scale /= backend_.level_prime(level);
    --level;
  }
  // The accumulated scale (plus value range and noise headroom) must still
  // fit under the remaining modulus, or decryption wraps.
  double bits_available = 0.0;
  for (int i = 0; i <= level; ++i) {
    bits_available += std::log2(backend_.level_prime(i));
  }
  PPHE_CHECK(std::log2(scale) + 12.0 <= bits_available,
             "model depth exceeds the moduli chain (spec needs more rescale "
             "levels than the parameters provide)");
}

WeightOperand HeModel::make_weight(const std::vector<double>& values,
                                   double scale, int level) const {
  const auto make = [&]() -> WeightOperand {
    const Plaintext pt = backend_.encode(values, scale, level);
    if (options_.encrypted_weights) return backend_.encrypt(pt);
    return pt;
  };
  return options_.weight_cache->get_or_make(
      backend_, options_.encrypted_weights, values, scale, level, make);
}

void HeModel::plan() {
  trace::Span compile_span("model_compile", "model");
  const std::size_t slots = backend_.slot_count();
  const double delta = backend_.params().scale;

  // One global tile covering every stage dimension (see DESIGN.md §4).
  // batch == 1: replicated packing (slots/tile identical copies) keeps
  //             rotations cyclic within the tile;
  // batch > 1:  interleaved packing (image index = slot mod batch) makes a
  //             rotation by step*batch act as a per-image feature rotation
  //             with period slots/batch, so the tile is widened to that.
  std::size_t tile = 1;
  for (const auto& stage : spec_.stages) {
    if (stage.kind == ModelSpec::Stage::Kind::kLinear) {
      tile = std::max(tile, next_pow2(std::max(stage.linear.in_dim,
                                               stage.linear.out_dim)));
    }
  }
  const std::size_t batch = options_.batch;
  validate_batch(backend_, spec_, batch);
  std::size_t rot_mult = 1;
  if (batch > 1) {
    tile = slots / batch;
    rot_mult = batch;
  }
  PPHE_CHECK(tile <= slots, "model dimensions exceed slot capacity");
  input_tile_ = tile;
  const std::size_t copies = batch > 1 ? batch : slots / tile;
  // Writes value v into the slot(s) representing logical position t of every
  // copy/image, under the active layout.
  auto fill_slot = [&](std::vector<double>& vec, std::size_t t, double v) {
    if (batch > 1) {
      for (std::size_t b = 0; b < batch; ++b) vec[t * batch + b] = v;
    } else {
      for (std::size_t c = 0; c < copies; ++c) vec[c * tile + t] = v;
    }
  };

  // Digit base for the Fig. 5 branch decomposition: smallest B with
  // B^k >= pixel_levels.
  const std::size_t k = options_.rns_branches;
  std::size_t base = static_cast<std::size_t>(std::ceil(
      std::pow(static_cast<double>(options_.pixel_levels), 1.0 / static_cast<double>(k))));
  while (true) {
    double cap = 1.0;
    for (std::size_t i = 0; i < k; ++i) cap *= static_cast<double>(base);
    if (cap >= static_cast<double>(options_.pixel_levels)) break;
    ++base;
  }
  digit_base_ = base;

  int level = input_level_;
  double scale = delta;
  std::set<int> steps;

  // Analytic noise propagation (NoiseTracker, slot-domain absolute error of
  // the scaled values; divide by the running scale to get value error).
  // Value bounds are computed from the actual weights, so the bound is
  // model-specific, not generic.
  const NoiseTracker tracker(backend_.params());
  double noise = tracker.fresh_encryption();
  double value_bound = 1.0;  // normalized input pixels
  const double weight_noise = tracker.fresh_encryption();  // conservative for
                                                           // plaintexts too
  // Applies every rescale the greedy rule would perform to the noise bound.
  auto rescale_noise = [&](int lvl_before, double sc_before, int lvl_after,
                           double& nz) {
    int lvl = lvl_before;
    double sc = sc_before;
    while (lvl > lvl_after) {
      nz = tracker.rescale(nz, backend_.level_prime(lvl));
      sc /= backend_.level_prime(lvl);
      --lvl;
    }
  };
  // Baby/giant split: the double-hoisted path derives it per stage from the
  // RotationPlan cost model (fused mode needs plaintext weights and a
  // backend with a raised-basis accumulator); otherwise the legacy
  // sqrt-biased heuristic inside RotationPlan applies.
  const bool fuse_stages = options_.hoist_fusion &&
                           !options_.encrypted_weights &&
                           backend_.supports_hoisted_bsgs();
  std::size_t log_degree = 0;
  while ((std::size_t{1} << (log_degree + 1)) <= backend_.params().degree) {
    ++log_degree;
  }

  bool first_linear = true;
  for (const auto& stage : spec_.stages) {
    StagePlan plan_stage;
    if (stage.kind == ModelSpec::Stage::Kind::kLinear) {
      const LinearSpec& lin = stage.linear;
      plan_stage.is_linear = true;
      LinearPlan& lp = plan_stage.linear;
      lp.in_dim = lin.in_dim;
      lp.out_dim = lin.out_dim;
      lp.tile = tile;
      lp.level_in = level;
      lp.scale_in = scale;

      // Collect nonzero diagonals i: diag_i[row] = W[row, (row+i) mod tile].
      std::set<std::size_t> diag_set;
      for (std::size_t row = 0; row < lin.out_dim; ++row) {
        for (std::size_t col = 0; col < lin.in_dim; ++col) {
          if (lin.at(row, col) != 0.0f) {
            diag_set.insert((col + tile - row % tile) % tile);
          }
        }
      }

      const RotationPlan rp = RotationPlan::choose(
          diag_set, tile, static_cast<std::size_t>(level) + 1, log_degree,
          fuse_stages);
      lp.giant = rp.giant;
      lp.fused = rp.fused;
      const std::size_t g = lp.giant;

      // Build per-branch pre-rotated diagonal operands. Branch m convolves
      // the m-th digit image; the recombination constant B^m and the pixel
      // normalization fold into the branch weights, so branch outputs sum
      // directly (Fig. 5's "reassembled following the convolution").
      const std::size_t branches = first_linear ? k : 1;
      std::vector<double> branch_factor(branches, 1.0);
      if (first_linear) {
        double f = 1.0 / static_cast<double>(options_.pixel_levels - 1);
        for (std::size_t m = 0; m < branches; ++m) {
          branch_factor[m] = f;
          f *= static_cast<double>(digit_base_);
        }
      }

      // One scratch slot vector reused across every diagonal of every branch
      // (the encoder copies out of it), instead of a fresh slots-sized
      // allocation per diagonal.
      std::vector<double> diag(slots, 0.0);
      auto build_groups = [&](double factor) {
        std::map<std::size_t, LinearPlan::Group> groups;
        for (const std::size_t i : diag_set) {
          const std::size_t j = i / g;
          const std::size_t b = i % g;
          // Pre-rotated diagonal: value at slot t is W[row, col] with
          // row = (t - g*j) mod tile, col = (row + i) mod tile.
          std::fill(diag.begin(), diag.end(), 0.0);
          bool any = false;
          for (std::size_t t = 0; t < tile; ++t) {
            const std::size_t row = (t + tile - (g * j) % tile) % tile;
            const std::size_t col = (row + i) % tile;
            if (row < lin.out_dim && col < lin.in_dim) {
              const double v =
                  static_cast<double>(lin.at(row, col)) * factor;
              if (v != 0.0) {
                fill_slot(diag, t, v);
                any = true;
              }
            }
          }
          if (!any) continue;
          auto& group = groups[j];
          group.j = j;
          group.terms.push_back(
              {b, make_weight(diag, delta, level)});
        }
        std::vector<LinearPlan::Group> out;
        out.reserve(groups.size());
        for (auto& [j, grp] : groups) out.push_back(std::move(grp));
        return out;
      };

      if (branches == 1) {
        lp.groups = build_groups(first_linear ? branch_factor[0] : 1.0);
      } else {
        lp.branch_groups.resize(branches);
        for (std::size_t m = 0; m < branches; ++m) {
          lp.branch_groups[m] = build_groups(branch_factor[m]);
        }
      }

      // Rotation steps: babies and giants actually present.
      const auto& reference_groups =
          branches == 1 ? lp.groups : lp.branch_groups[0];
      lp.rot_mult = rot_mult;
      for (const auto& group : reference_groups) {
        if (group.j != 0) {
          steps.insert(static_cast<int>(g * group.j * rot_mult));
        }
        for (const auto& term : group.terms) {
          if (term.baby != 0) {
            steps.insert(static_cast<int>(term.baby * rot_mult));
          }
        }
      }

      // Noise propagation through this stage (heuristic upper bound).
      {
        const auto& ref_groups =
            branches == 1 ? lp.groups : lp.branch_groups[0];
        std::size_t giant_groups = 0;
        for (const auto& grp : ref_groups) {
          if (grp.j != 0) ++giant_groups;
        }
        double wmax = 0.0;
        for (const auto w : lin.weight) {
          wmax = std::max(wmax, std::abs(static_cast<double>(w)));
        }
        const double in_value =
            first_linear ? static_cast<double>(digit_base_ - 1) : value_bound;
        const double w_value =
            wmax * (first_linear ? branch_factor.back() : 1.0);
        const double rot_noise = noise + tracker.key_switch(level);
        const double term_noise = tracker.multiply(
            rot_noise, weight_noise, scale, delta, in_value, w_value);
        double stage_noise =
            static_cast<double>(diag_set.size()) * term_noise +
            static_cast<double>(2 * giant_groups + 1) *
                tracker.key_switch(level);
        stage_noise *= static_cast<double>(branches);
        noise = stage_noise;

        double out_bound = 0.0;
        for (std::size_t row = 0; row < lin.out_dim; ++row) {
          double row_sum = std::abs(static_cast<double>(lin.bias[row]));
          for (std::size_t col = 0; col < lin.in_dim; ++col) {
            row_sum += std::abs(static_cast<double>(lin.at(row, col)));
          }
          out_bound = std::max(out_bound, row_sum);
        }
        value_bound = out_bound;
      }

      // Output scale: one weight multiplication, then the greedy rescale.
      const int level_before = level;
      const double scale_before = scale * delta;
      scale *= delta;
      simulate_rescale(level, scale);
      rescale_noise(level_before, scale_before, level, noise);
      noise += weight_noise;  // bias addition
      lp.level_out = level;
      lp.scale_out = scale;

      std::vector<double> bias(slots, 0.0);
      for (std::size_t t = 0; t < lin.out_dim; ++t) {
        fill_slot(bias, t, static_cast<double>(lin.bias[t]));
      }
      lp.bias = make_weight(bias, scale, level);
      plan_stage.name = "linear " + std::to_string(lin.in_dim) + "->" +
                        std::to_string(lin.out_dim);
      first_linear = false;
    } else {
      const ActivationSpec& act = stage.activation;
      plan_stage.is_linear = false;
      ActivationPlan& ap = plan_stage.activation;
      ap.features = act.features;
      ap.degree = act.degree;
      ap.tile = tile;
      ap.level_in = level;
      ap.scale_in = scale;

      // Power tower x^2..x^d by repeated multiplication with x.
      ap.power_levels.assign(ap.degree + 1, 0);
      ap.power_scales.assign(ap.degree + 1, 0.0);
      ap.power_levels[1] = level;
      ap.power_scales[1] = scale;
      std::vector<double> power_noise(ap.degree + 1, 0.0);
      std::vector<double> power_bound(ap.degree + 1, 0.0);
      power_noise[1] = noise;
      power_bound[1] = value_bound;
      int lv = level;
      double sc = scale;
      for (std::size_t p = 2; p <= ap.degree; ++p) {
        double nz = tracker.multiply(power_noise[p - 1], noise,
                                     ap.power_scales[p - 1], scale,
                                     power_bound[p - 1], value_bound) +
                    tracker.key_switch(lv);
        const int lv_before = lv;
        const double sc_before = sc * ap.power_scales[1];
        sc = sc_before;
        simulate_rescale(lv, sc);
        rescale_noise(lv_before, sc_before, lv, nz);
        power_noise[p] = nz;
        power_bound[p] = power_bound[p - 1] * value_bound;
        ap.power_levels[p] = lv;
        ap.power_scales[p] = sc;
      }
      ap.target_level = ap.power_levels[ap.degree];
      ap.target_scale = ap.power_scales[ap.degree] * delta;

      // Per-neuron coefficient vectors at exactly matching scales.
      ap.power_weights.resize(ap.degree + 1);
      for (std::size_t p = 1; p <= ap.degree; ++p) {
        std::vector<double> coeffs(slots, 0.0);
        for (std::size_t t = 0; t < act.features; ++t) {
          fill_slot(coeffs, t, static_cast<double>(act.coeff(t, p)));
        }
        ap.power_weights[p] = make_weight(
            coeffs, ap.target_scale / ap.power_scales[p], ap.target_level);
      }
      {
        std::vector<double> c0(slots, 0.0);
        for (std::size_t t = 0; t < act.features; ++t) {
          fill_slot(c0, t, static_cast<double>(act.coeff(t, 0)));
        }
        ap.constant = make_weight(c0, ap.target_scale, ap.target_level);
      }

      // Noise of the polynomial combination: one plaintext-scale product per
      // power, the constant-term addition, the final relinearization.
      {
        double amax = 0.0;
        for (const auto c : act.coeffs) {
          amax = std::max(amax, std::abs(static_cast<double>(c)));
        }
        double nz = weight_noise;  // constant term operand
        for (std::size_t p = 1; p <= ap.degree; ++p) {
          nz += tracker.multiply(power_noise[p], weight_noise,
                                 ap.power_scales[p],
                                 ap.target_scale / ap.power_scales[p],
                                 power_bound[p], amax);
        }
        nz += tracker.key_switch(ap.target_level);
        noise = nz;
        double out_bound = 0.0;
        for (std::size_t t = 0; t < act.features; ++t) {
          double b = 0.0, pow_v = 1.0;
          for (std::size_t p = 0; p <= ap.degree; ++p) {
            b += std::abs(static_cast<double>(act.coeff(t, p))) * pow_v;
            pow_v *= value_bound;
          }
          out_bound = std::max(out_bound, b);
        }
        value_bound = out_bound;
      }

      const int level_before = ap.target_level;
      const double scale_before = ap.target_scale;
      level = ap.target_level;
      scale = ap.target_scale;
      simulate_rescale(level, scale);
      rescale_noise(level_before, scale_before, level, noise);
      ap.level_out = level;
      ap.scale_out = scale;
      plan_stage.name = "activation deg " + std::to_string(ap.degree);
    }
    plan_stage.predicted_err = NoiseTracker::slot_error(noise, scale);
    plan_stage.value_bound = value_bound;
    stages_.push_back(std::move(plan_stage));
  }
  // Cryptographic noise plus one unit of fixed-point headroom for the
  // output's own encoding granularity at the final scale.
  predicted_output_error_ = NoiseTracker::slot_error(noise, scale) +
                            value_bound / backend_.params().scale;

  output_level_ = level;
  output_scale_ = scale;
  levels_used_ = input_level_ - level;
  PPHE_CHECK(level >= 0, "model depth exceeds the moduli chain");

  rotation_steps_.assign(steps.begin(), steps.end());
  backend_.ensure_galois_keys(rotation_steps_);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Ciphertext HeModel::multiply_weight(const Ciphertext& x,
                                    const WeightOperand& w) const {
  if (std::holds_alternative<Plaintext>(w)) {
    return backend_.multiply_plain(x, std::get<Plaintext>(w));
  }
  return backend_.multiply(x, std::get<Ciphertext>(w));
}

Ciphertext HeModel::add_weight(const Ciphertext& x,
                               const WeightOperand& w) const {
  if (std::holds_alternative<Plaintext>(w)) {
    return backend_.add_plain(x, std::get<Plaintext>(w));
  }
  return backend_.add(x, std::get<Ciphertext>(w));
}

Ciphertext HeModel::apply_rescale(Ciphertext ct) const {
  const double delta = backend_.params().scale;
  while (ct.level() > 0 &&
         ct.scale() / backend_.level_prime(ct.level()) >= 0.5 * delta) {
    ct = backend_.rescale(ct);
  }
  return ct;
}

Ciphertext HeModel::run_linear_single(
    const LinearPlan& plan, const std::vector<LinearPlan::Group>& groups,
    const Ciphertext& x) const {
  PPHE_CHECK_CODE(x.level() == plan.level_in, ErrorCode::kLevelMismatch,
                  "linear stage level mismatch (input level " +
                      std::to_string(x.level()) + ", plan expects " +
                      std::to_string(plan.level_in) + ")");
  PPHE_CHECK_CODE(close_enough(x.scale(), plan.scale_in),
                  ErrorCode::kScaleMismatch,
                  "linear stage scale mismatch (input scale 2^" +
                      std::to_string(std::log2(x.scale())) +
                      ", plan expects 2^" +
                      std::to_string(std::log2(plan.scale_in)) + ")");

  // Double-hoisted fused path (DESIGN.md §14): hand the whole group/term
  // table to the backend, which accumulates every baby inner product in the
  // raised basis and pays ONE mod-down per giant group plus a layer
  // epilogue. The backend declines (returns an invalid handle) when an
  // operand is not eligible — plaintext missing the special channel, scale
  // mismatch, weight level below the input — and we fall back to the
  // generic loop below; missing Galois keys still throw inside.
  if (plan.fused && backend_.supports_hoisted_bsgs()) {
    std::vector<BsgsGroupSpec> specs;
    specs.reserve(groups.size());
    bool plain = true;
    for (const auto& group : groups) {
      BsgsGroupSpec spec;
      spec.giant_step =
          static_cast<int>(plan.giant * group.j * plan.rot_mult);
      spec.terms.reserve(group.terms.size());
      for (const auto& term : group.terms) {
        const auto* pt = std::get_if<Plaintext>(&term.weight);
        if (pt == nullptr) {
          plain = false;
          break;
        }
        spec.terms.push_back(
            {static_cast<int>(term.baby * plan.rot_mult), pt});
      }
      if (!plain) break;
      specs.push_back(std::move(spec));
    }
    if (plain) {
      Ciphertext fused = backend_.linear_bsgs(x, specs);
      if (fused.valid()) return fused;
    }
  }

  // All baby rotations of x at once (hoisted key switching in the backend).
  // Logical steps scale by rot_mult under the interleaved batch layout.
  std::set<std::size_t> baby_steps;
  for (const auto& group : groups) {
    for (const auto& term : group.terms) {
      if (term.baby != 0) baby_steps.insert(term.baby);
    }
  }
  std::map<std::size_t, Ciphertext> baby;
  {
    std::vector<int> steps;
    steps.reserve(baby_steps.size());
    for (const std::size_t b : baby_steps) {
      steps.push_back(static_cast<int>(b * plan.rot_mult));
    }
    auto rotated = backend_.rotate_batch(x, steps);
    std::size_t idx = 0;
    for (const std::size_t b : baby_steps) {
      baby.emplace(b, std::move(rotated[idx++]));
    }
  }
  auto rotated = [&](std::size_t b) -> const Ciphertext& {
    return b == 0 ? x : baby.at(b);
  };

  Ciphertext total;
  std::vector<Ciphertext> giant_cts;
  std::vector<int> giant_steps;
  for (const auto& group : groups) {
    Ciphertext acc;
    for (const auto& term : group.terms) {
      if (std::holds_alternative<Plaintext>(term.weight)) {
        backend_.multiply_plain_acc(acc, rotated(term.baby),
                                    std::get<Plaintext>(term.weight));
      } else {
        backend_.multiply_acc(acc, rotated(term.baby),
                              std::get<Ciphertext>(term.weight));
      }
    }
    if (group.j != 0) {
      // Giant-step rotation needs a size-2 ciphertext.
      acc = backend_.relinearize(acc);
      const int step =
          static_cast<int>(plan.giant * group.j * plan.rot_mult);
      if (options_.hoist_fusion) {
        // Defer: all giant rotations share one raised-basis accumulator and
        // one mod-down epilogue in rotate_sum.
        giant_cts.push_back(std::move(acc));
        giant_steps.push_back(step);
        continue;
      }
      acc = backend_.rotate(acc, step);
    }
    total = total.valid() ? backend_.add(total, acc) : std::move(acc);
  }
  if (!giant_cts.empty()) {
    Ciphertext summed = backend_.rotate_sum(giant_cts, giant_steps);
    total = total.valid() ? backend_.add(total, summed) : std::move(summed);
  }
  PPHE_CHECK(total.valid(), "linear stage produced no terms");
  return backend_.relinearize(total);
}

Ciphertext HeModel::run_linear(
    const LinearPlan& plan, const std::vector<Ciphertext>& branch_inputs) const {
  Ciphertext y;
  if (!plan.branch_groups.empty()) {
    PPHE_CHECK(branch_inputs.size() == plan.branch_groups.size(),
               "branch count mismatch");
    ParallelSim::FanoutScope scope(plan.branch_groups.size());
    for (std::size_t m = 0; m < plan.branch_groups.size(); ++m) {
      Ciphertext ym =
          run_linear_single(plan, plan.branch_groups[m], branch_inputs[m]);
      y = y.valid() ? backend_.add(y, ym) : std::move(ym);
    }
  } else {
    PPHE_CHECK(branch_inputs.size() == 1, "unexpected branch inputs");
    y = run_linear_single(plan, plan.groups, branch_inputs[0]);
  }
  y = apply_rescale(y);
  PPHE_CHECK(y.level() == plan.level_out, "linear output level mismatch");
  return add_weight(y, plan.bias);
}

Ciphertext HeModel::run_activation(const ActivationPlan& plan,
                                   const Ciphertext& x) const {
  PPHE_CHECK_CODE(x.level() == plan.level_in, ErrorCode::kLevelMismatch,
                  "activation level mismatch (input level " +
                      std::to_string(x.level()) + ", plan expects " +
                      std::to_string(plan.level_in) + ")");
  std::vector<Ciphertext> powers(plan.degree + 1);
  powers[1] = x;
  for (std::size_t p = 2; p <= plan.degree; ++p) {
    Ciphertext prod = backend_.multiply(powers[p - 1], x);
    prod = backend_.relinearize(prod);
    prod = apply_rescale(prod);
    PPHE_CHECK(prod.level() == plan.power_levels[p],
               "power level mismatch");
    powers[p] = std::move(prod);
  }

  Ciphertext acc;
  for (std::size_t p = 1; p <= plan.degree; ++p) {
    Ciphertext dropped = backend_.mod_drop_to(powers[p], plan.target_level);
    Ciphertext term = multiply_weight(dropped, plan.power_weights[p]);
    acc = acc.valid() ? backend_.add(acc, term) : std::move(term);
  }
  acc = backend_.relinearize(acc);
  acc = add_weight(acc, plan.constant);
  acc = apply_rescale(acc);
  PPHE_CHECK(acc.level() == plan.level_out, "activation output level mismatch");
  return acc;
}

double HeModel::planned_input_budget_bits() const {
  double modulus_bits = 0.0;
  for (int l = 0; l <= input_level_; ++l) {
    modulus_bits += std::log2(backend_.level_prime(l));
  }
  return modulus_bits - std::log2(backend_.params().scale) - 1.0;
}

double HeModel::planned_output_budget_bits() const {
  double modulus_bits = 0.0;
  for (int l = 0; l <= output_level_; ++l) {
    modulus_bits += std::log2(backend_.level_prime(l));
  }
  return modulus_bits - std::log2(output_scale_) - 1.0;
}

Ciphertext HeModel::eval(const std::vector<Ciphertext>& branch_inputs) const {
  PPHE_CHECK(!stages_.empty(), "empty model");
  PPHE_CHECK(stages_.front().is_linear, "model must start with a linear stage");
  trace::Span eval_span("model_eval", "model");

  // Fault harness: when armed, eval.input faults perturb copies of the branch
  // inputs — limb bit flips on a deep-copied slab, scale/level perturbations
  // on the mirrored handle metadata. The guards below must catch every one.
  const std::vector<Ciphertext>* inputs = &branch_inputs;
  std::vector<Ciphertext> faulted;
  if (fault::armed()) {
    faulted = branch_inputs;
    for (Ciphertext& in : faulted) {
      faulted_copy(backend_, in);
    }
    inputs = &faulted;
  }

  if (options_.validate_inputs) {
    for (const Ciphertext& in : *inputs) {
      backend_.validate_ciphertext(in);
    }
  }
  if (options_.min_noise_budget_bits > 0.0 && !inputs->empty()) {
    // Guardrail: the logits come out with the plan's output budget minus any
    // deficit the inputs arrived with (mod-dropped, over-scaled, pre-used).
    double actual = std::numeric_limits<double>::infinity();
    for (const Ciphertext& in : *inputs) {
      actual = std::min(actual, noise_budget_bits(backend_, in));
    }
    const double deficit =
        std::max(0.0, planned_input_budget_bits() - actual);
    const double projected = planned_output_budget_bits() - deficit;
    PPHE_CHECK_CODE(projected >= options_.min_noise_budget_bits,
                    ErrorCode::kNoiseBudget,
                    "noise-budget guardrail: projected output budget " +
                        std::to_string(projected) + " bits is below the " +
                        std::to_string(options_.min_noise_budget_bits) +
                        "-bit floor; refusing to produce degraded logits");
  }

  Ciphertext ct;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const StagePlan& stage = stages_[s];
    // Span name carries the stage index and label; the buffer lives past the
    // Span ctor only because Event copies the name inline.
    char label[trace::Event::kNameCap];
    std::snprintf(label, sizeof(label), "layer%zu:%s", s, stage.name.c_str());
    trace::Span span(label, "layer");
    const int level_in = ct.valid()
                             ? ct.level()
                             : (inputs->empty() ? 0 : (*inputs)[0].level());
    if (s == 0) {
      ct = run_linear(stage.linear, *inputs);
    } else if (stage.is_linear) {
      ct = run_linear(stage.linear, {ct});
    } else {
      ct = run_activation(stage.activation, ct);
    }
    if (span.recording()) {
      span.attr("level_in", level_in);
      span.attr("level", ct.level());
      span.attr("scale_log2", std::log2(ct.scale()));
      span.attr("budget_bits", noise_budget_bits(backend_, ct));
      span.attr("predicted_err", stage.predicted_err);
      if (options_.trace_noise_budget) {
        // Debug-key path: decrypt the intermediate (the backend holds the
        // key) and compare measured slot magnitude against the plan's bound.
        const auto values = backend_.decrypt_decode(ct);
        double measured = 0.0;
        for (const double v : values) measured = std::max(measured, std::abs(v));
        span.attr("measured_max", measured);
        span.attr("value_bound", stage.value_bound);
      }
    }
  }
  return ct;
}

std::vector<Ciphertext> HeModel::encrypt_images(
    const std::vector<std::span<const float>>& images) const {
  trace::Span span("encrypt_input", "model");
  span.attr("images", static_cast<double>(images.size()));
  PPHE_CHECK(!stages_.empty() && stages_.front().is_linear, "empty model");
  PPHE_CHECK(images.size() == options_.batch,
             "image count must equal options.batch");
  const std::size_t in_dim = stages_.front().linear.in_dim;
  const std::size_t slots = backend_.slot_count();
  const std::size_t tile = input_tile_;
  const std::size_t batch = options_.batch;
  const std::size_t copies = batch > 1 ? batch : slots / tile;
  const double delta = backend_.params().scale;
  const int top = input_level_;

  // Quantize to pixel_levels and decompose into digits (base digit_base_).
  const std::size_t branches = std::max<std::size_t>(
      stages_.front().linear.branch_groups.size(), 1);
  std::vector<std::vector<double>> digit_vecs(
      branches, std::vector<double>(slots, 0.0));
  for (std::size_t img = 0; img < images.size(); ++img) {
    PPHE_CHECK(images[img].size() == in_dim, "input dimension mismatch");
    for (std::size_t t = 0; t < in_dim; ++t) {
      const float clamped = std::clamp(images[img][t], 0.0f, 1.0f);
      auto v = static_cast<std::size_t>(std::lround(
          clamped * static_cast<float>(options_.pixel_levels - 1)));
      for (std::size_t m = 0; m < branches; ++m) {
        const double digit = static_cast<double>(v % digit_base_);
        v /= digit_base_;
        if (batch > 1) {
          digit_vecs[m][t * batch + img] = digit;
        } else {
          for (std::size_t cpy = 0; cpy < copies; ++cpy) {
            digit_vecs[m][cpy * tile + t] = digit;
          }
        }
      }
    }
  }

  std::vector<Ciphertext> out;
  out.reserve(branches);
  for (std::size_t m = 0; m < branches; ++m) {
    out.push_back(backend_.encrypt(backend_.encode(digit_vecs[m], delta, top)));
  }
  return out;
}

std::vector<Ciphertext> HeModel::encrypt_input(
    std::span<const float> image) const {
  PPHE_CHECK(options_.batch == 1,
             "use infer_batch / encrypt_batch when options.batch > 1");
  return encrypt_images({image});
}

std::vector<Ciphertext> HeModel::encrypt_batch(
    const std::vector<std::vector<float>>& images) const {
  std::vector<std::span<const float>> views;
  views.reserve(images.size());
  for (const auto& img : images) views.emplace_back(img);
  return encrypt_images(views);
}

std::size_t HeModel::output_dim() const {
  return spec_.stages.back().kind == ModelSpec::Stage::Kind::kLinear
             ? spec_.stages.back().linear.out_dim
             : spec_.stages.back().activation.features;
}

std::vector<std::vector<double>> HeModel::decrypt_logits_batch(
    const Ciphertext& ct) const {
  trace::Span span("decrypt_logits", "model");
  const auto all = backend_.decrypt_decode(ct);
  const std::size_t out_dim = output_dim();
  const std::size_t batch = options_.batch;
  // The single de-interleave implementation: image `img`'s logit `t` lives at
  // slot t*batch + img under the interleaved layout (slot t replicated when
  // batch == 1). decrypt_logits and infer_batch both read through here, so
  // batched and single-image decode paths cannot drift apart.
  std::vector<std::vector<double>> logits(batch);
  for (std::size_t img = 0; img < batch; ++img) {
    auto& row = logits[img];
    row.resize(out_dim);
    for (std::size_t t = 0; t < out_dim; ++t) {
      row[t] = batch > 1 ? all[t * batch + img] : all[t];
    }
  }
  return logits;
}

std::vector<double> HeModel::decrypt_logits(const Ciphertext& ct) const {
  return std::move(decrypt_logits_batch(ct).front());
}

HeModel::BatchResult HeModel::infer_batch(
    const std::vector<std::vector<float>>& images) const {
  trace::Span span("infer_batch", "model");
  span.attr("batch", static_cast<double>(images.size()));
  BatchResult result;
  std::vector<std::span<const float>> views;
  views.reserve(images.size());
  for (const auto& img : images) views.emplace_back(img);

  Stopwatch sw;
  const auto inputs = encrypt_images(views);
  result.encrypt_seconds = sw.seconds();

  sw.reset();
  const Ciphertext out = eval(inputs);
  result.eval_seconds = sw.seconds();

  sw.reset();
  auto all = decrypt_logits_batch(out);
  result.logits.assign(std::make_move_iterator(all.begin()),
                       std::make_move_iterator(all.begin() +
                                               static_cast<long>(images.size())));
  result.predicted.resize(images.size());
  for (std::size_t img = 0; img < images.size(); ++img) {
    const auto& logits = result.logits[img];
    result.predicted[img] = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  }
  result.decrypt_seconds = sw.seconds();
  return result;
}

InferenceResult HeModel::infer(std::span<const float> image) const {
  trace::Span span("infer", "model");
  InferenceResult result;
  Stopwatch sw;
  const auto inputs = encrypt_input(image);
  result.encrypt_seconds = sw.seconds();

  sw.reset();
  Ciphertext out;
  try {
    out = eval(inputs);
  } catch (const Error& e) {
    // The guardrail refusing to evaluate is a typed degraded result, not a
    // failure of the request machinery — report it as such.
    if (e.code() != ErrorCode::kNoiseBudget) throw;
    result.eval_seconds = sw.seconds();
    result.degraded = true;
    return result;
  }
  result.eval_seconds = sw.seconds();

  sw.reset();
  result.logits = decrypt_logits(out);
  result.decrypt_seconds = sw.seconds();
  result.predicted = static_cast<int>(
      std::max_element(result.logits.begin(), result.logits.end()) -
      result.logits.begin());
  return result;
}

std::vector<HeModel::StageCost> HeModel::cost_report() const {
  std::vector<StageCost> report;
  std::size_t stage_index = 0;
  for (const auto& stage : stages_) {
    StageCost cost;
    if (stage.is_linear) {
      const LinearPlan& lp = stage.linear;
      cost.name = "linear " + std::to_string(lp.in_dim) + "->" +
                  std::to_string(lp.out_dim);
      const auto& groups =
          lp.branch_groups.empty() ? lp.groups : lp.branch_groups[0];
      std::set<std::size_t> babies;
      std::size_t giants = 0;
      for (const auto& group : groups) {
        cost.diagonals += group.terms.size();
        if (group.j != 0) {
          ++giants;
          if (!lp.fused) ++cost.relins;
        }
        for (const auto& term : group.terms) {
          if (term.baby != 0) babies.insert(term.baby);
        }
      }
      cost.rotations = babies.size() + giants;
      if (!lp.fused) ++cost.relins;  // final deferred relinearization
      cost.giant = lp.giant;
      cost.fused = lp.fused;
      cost.giant_groups = giants;
      if (lp.fused) {
        // One mod-down per nonzero giant group + the layer epilogue.
        cost.moddowns = giants + (cost.diagonals != 0 ? 1 : 0);
      } else {
        // Single-hoisted babies each pay a mod-down; giants share one
        // rotate_sum epilogue when the backend hoists, else one each. Relins
        // that key-switch (encrypted weights) add their own on top.
        const bool shared_epilogue =
            options_.hoist_fusion && backend_.supports_hoisted_bsgs();
        cost.moddowns =
            babies.size() + (shared_epilogue ? (giants != 0 ? 1 : 0) : giants);
      }
      const std::size_t branches =
          lp.branch_groups.empty() ? 1 : lp.branch_groups.size();
      cost.diagonals *= branches;
      cost.rotations *= branches;
      cost.relins *= branches;
      cost.giant_groups *= branches;
      cost.moddowns *= branches;
      cost.tile = lp.tile;
      cost.level_in = lp.level_in;
      cost.scale_in = lp.scale_in;
    } else {
      const ActivationPlan& ap = stage.activation;
      cost.name = "activation deg " + std::to_string(ap.degree) + " (" +
                  std::to_string(ap.features) + " neurons)";
      cost.relins = ap.degree;  // one per power product + final
      cost.tile = ap.tile;
      cost.level_in = ap.level_in;
      cost.scale_in = ap.scale_in;
    }
    report.push_back(std::move(cost));
    ++stage_index;
  }
  return report;
}

}  // namespace pphe
