#include "core/rotation_plan.hpp"

#include <limits>

namespace pphe {

RotationPlan RotationPlan::evaluate(const std::set<std::size_t>& diag_set,
                                    std::size_t giant, std::size_t q_channels,
                                    std::size_t log_degree, bool fused) {
  RotationPlan p;
  p.giant = giant;
  p.fused = fused;
  std::set<std::size_t> babies, giants, groups;
  for (const std::size_t i : diag_set) {
    groups.insert(i / giant);
    if (i / giant != 0) giants.insert(i / giant);
    if (i % giant != 0) babies.insert(i % giant);
  }
  p.unique_babies = babies.size();
  p.unique_giants = giants.size();
  p.groups = groups.size();

  // Cost model in pointwise-pass units (one pass = N sequential memory
  // touches), with q = q_channels ciphertext primes and one special prime.
  // The per-primitive weights are calibrated against the dense-BSGS layer
  // rows in BENCH_micro.json (not derived from butterfly counts): the SIMD
  // NTT costs ~0.4*logN passes, while a rotated inner-product digit row
  // costs one permutation GATHER (~2 passes of random reads) plus two flat
  // mul_acc passes — at bench scale (q=8, logN=12) that puts
  // (decompose + mod-down) / inner-product near the measured ~2x, where the
  // old butterfly-count weights said ~9x and over-bought giant steps.
  //  * digit decompose: q digit rows, reduced (half a pass) and
  //    forward-NTT'd over q+1 channels;
  //  * raised-basis inner product: q digit rows x (q+1) channels x (gather
  //    + two components of flat multiply-accumulate);
  //  * mod-down: inverse NTT of both components over q+1 channels, the
  //    rounding division (~3 passes per q channel per component), and the
  //    forward NTT back over q channels for the next use.
  const auto q = static_cast<double>(q_channels);
  const auto logn = static_cast<double>(log_degree);
  const double ntt = 0.4 * logn;
  const double dec = q * (q + 1.0) * (ntt + 0.5);
  const double inner = 4.0 * q * (q + 1.0);
  const double md = 2.0 * (q + 1.0) * ntt + 6.0 * q + 2.0 * q * ntt;

  const auto b = static_cast<double>(p.unique_babies);
  const auto j = static_cast<double>(p.unique_giants);
  if (fused) {
    // One hoisted decomposition of the input serves every baby; each nonzero
    // giant group re-decomposes its mod-downed accumulator; ONE mod-down per
    // giant group plus the layer epilogue.
    p.decompositions = 1 + p.unique_giants;
    p.moddowns = p.unique_giants + (diag_set.empty() ? 0 : 1);
    p.cost = dec * (1.0 + j) + inner * (b + j) + md * (j + 1.0);
  } else {
    // rotate_batch single-hoists the babies (shared decomposition) but every
    // baby still pays its own mod-down; each giant rotation is a full key
    // switch on the group accumulator.
    p.decompositions = 1 + p.unique_giants;
    p.moddowns = p.unique_babies + p.unique_giants;
    p.cost = dec * (1.0 + j) + inner * (b + j) + md * (b + j);
  }
  return p;
}

RotationPlan RotationPlan::choose(const std::set<std::size_t>& diag_set,
                                  std::size_t tile, std::size_t q_channels,
                                  std::size_t log_degree, bool fused) {
  std::size_t log_tile = 0;
  while ((std::size_t{1} << (log_tile + 1)) <= tile) ++log_tile;
  const std::size_t legacy = std::size_t{1} << (log_tile / 2 + 1);
  if (!fused || diag_set.empty()) {
    return evaluate(diag_set, legacy, q_channels, log_degree, fused);
  }
  RotationPlan best;
  best.cost = std::numeric_limits<double>::infinity();
  for (std::size_t g = 1; g <= tile; g <<= 1) {
    RotationPlan cand = evaluate(diag_set, g, q_channels, log_degree, fused);
    // Strict < keeps the smallest g on ties: fewer distinct baby Galois keys.
    if (cand.cost < best.cost) best = cand;
  }
  return best;
}

}  // namespace pphe
