#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ckks/backend.hpp"
#include "core/models.hpp"

namespace pphe {

/// True (non-positional) RNS decomposition of the convolution input — the
/// literal reading of the paper's Fig. 5: the quantized image is decomposed
/// into residue tensors modulo pairwise-coprime moduli m_1..m_k, each branch
/// convolves its residues (with integer-quantized weights) independently and
/// homomorphically, and the exact integer convolution output is recovered by
/// CRT recombination of the rounded branch outputs.
///
/// IMPORTANT HONESTY NOTE (DESIGN.md §4, EXPERIMENTS.md): the recombination
/// step requires reducing each branch output modulo m_j, which is not a
/// polynomial operation — CKKS cannot evaluate it cheaply, so recombination
/// here happens after decryption. The in-pipeline "reassembly" of Fig. 5 is
/// realizable homomorphically only with the positional digit decomposition
/// that HeModelOptions::rns_branches implements (linear recombination). This
/// class exists to demonstrate the exactness and branch-parallel latency of
/// the residue form itself (Fig. 2).
class RnsConvDemo {
 public:
  /// `conv` is the first linear stage of a compiled model; weights are
  /// quantized to integers with `weight_scale_bits` fractional bits. The
  /// moduli must be pairwise coprime and their product must exceed twice the
  /// worst-case |integer output|.
  RnsConvDemo(HeBackend& backend, const LinearSpec& conv,
              std::vector<std::uint64_t> moduli, int weight_scale_bits = 6);

  struct Result {
    std::vector<long long> recombined;  // CRT(y_1..y_k), exact integers
    std::vector<long long> reference;   // direct integer convolution
    bool exact = false;                 // recombined == reference
    double eval_seconds = 0.0;          // homomorphic branch evaluation (sum)
    double max_branch_seconds = 0.0;    // critical path across branches
  };

  /// Runs the k branches homomorphically on a [0,1] image and recombines.
  Result run(std::span<const float> image) const;

  const std::vector<std::uint64_t>& moduli() const { return moduli_; }
  int weight_scale_bits() const { return weight_bits_; }

 private:
  HeBackend& backend_;
  LinearSpec conv_;
  std::vector<std::uint64_t> moduli_;
  int weight_bits_;
  std::vector<std::vector<long long>> int_weights_;  // quantized rows
  std::vector<long long> int_bias_unused_;           // bias excluded (kept 0)
};

}  // namespace pphe
