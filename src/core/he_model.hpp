#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "ckks/backend.hpp"
#include "core/models.hpp"

namespace pphe {

/// A weight in the form a compiled model multiplies/adds it: encoded
/// plaintext (CryptoNets setting) or encrypted ciphertext (the paper's §VI
/// encrypted-weights setting).
using WeightOperand = std::variant<Plaintext, Ciphertext>;

/// Encode-once cache of weight operands, content-addressed by
/// (backend, encrypted?, scale, level, values): each distinct weight vector
/// pays for encoding (and its NTT passes, and encryption when weights are
/// encrypted) exactly once per (scale, level) and every further use — a
/// duplicate diagonal, a re-plan after a level retry, another model compiled
/// against the same backend — reuses the stored handle. Handles are
/// immutable, so sharing one operand across uses is safe. Thread-safe.
class WeightOperandCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };

  using Factory = std::function<WeightOperand()>;

  /// Returns the operand cached under the full key, invoking `make` exactly
  /// once per distinct key. The full value vector is part of the key (not
  /// just its hash), so collisions cannot alias two different weights.
  WeightOperand get_or_make(const HeBackend& backend, bool encrypted,
                            std::span<const double> values, double scale,
                            int level, const Factory& make);

  Stats stats() const;
  void clear();

 private:
  struct Entry {
    const HeBackend* backend = nullptr;
    bool encrypted = false;
    int level = 0;
    std::uint64_t scale_bits = 0;
    std::vector<double> values;
    WeightOperand operand;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, std::vector<Entry>> buckets_;
  Stats stats_;
};

/// Options for compiling a ModelSpec onto a backend.
struct HeModelOptions {
  /// Encrypt the model weights too (§VI: "both inputs and weights are
  /// encrypted before testing"; eq. (1)'s w̄ ⊗ c). Plaintext weights are the
  /// classical CryptoNets setting, kept as an ablation.
  bool encrypted_weights = true;
  /// Number of RNS input-decomposition branches k of Fig. 5 (the paper's
  /// "co-prime moduli" knob, Tables IV/VI). 1 = no decomposition. Branches
  /// use the positional digit decomposition (see DESIGN.md §4: the only
  /// recomposition CKKS can evaluate without a homomorphic modular
  /// reduction); each branch convolves a small-digit image and the CRT-style
  /// recombination constants are folded into the branch weights, so the
  /// branch outputs simply sum back into the original representation.
  std::size_t rns_branches = 1;
  /// Quantization range of the input image (MNIST pixels are 8-bit).
  int pixel_levels = 256;
  /// SIMD batch size: pack `batch` images interleaved across the slots and
  /// classify them all in ONE homomorphic evaluation (the CryptoNets/E2DM
  /// amortization, an extension beyond the paper's single-image latency
  /// focus). Must be a power of two with batch * max_layer_dim <= slots.
  /// batch == 1 uses the replicated single-image layout.
  std::size_t batch = 1;
  /// Debug-key telemetry: when set AND tracing is enabled, every per-layer
  /// trace span additionally decrypts the intermediate ciphertext (the
  /// backend owns the secret key, standing in for a supplied debug key) and
  /// records the measured slot magnitude next to the planned value bound —
  /// the decrypted-vs-expected budget check. Costs one decrypt per layer;
  /// never use for timing runs.
  bool trace_noise_budget = false;
  /// Encode-once weight cache. Null = the model creates a private one, which
  /// still dedupes within the compilation (duplicate diagonals, level-retry
  /// re-plans). Pass a shared instance to reuse encodings across models
  /// compiled against the same backend.
  std::shared_ptr<WeightOperandCache> weight_cache;
  /// Run backend.validate_ciphertext on every branch input at eval() entry
  /// (limb layout, NTT form, residue ranges, wire integrity digest). Off only
  /// for benches that want the unguarded number.
  bool validate_inputs = true;
  /// Double-hoisted key switching (DESIGN.md §14): linear stages with
  /// plaintext weights run through the backend's fused linear_bsgs path (one
  /// digit decomposition per unique operand, one mod-down per giant group),
  /// the baby/giant split is re-derived from the key-switch cost model, and
  /// giant-group rotations on the generic path share one rotate_sum
  /// epilogue. Off = the legacy per-rotation key-switch schedule (kept as
  /// the bench baseline).
  bool hoist_fusion = true;
  /// Noise-budget guardrail: eval() refuses to run (Error(kNoiseBudget))
  /// when the budget the logits would come out with — the plan's output
  /// budget minus any deficit the inputs arrived with — falls below this
  /// floor. 0 disables the guard. A refused request surfaces as a typed,
  /// retryable error instead of garbage logits that still argmax somewhere.
  double min_noise_budget_bits = 0.0;
};

/// One encrypted inference (Fig. 1's round trip), with the latency split the
/// paper's tables report (Lat = eval; encrypt/decrypt are client-side).
struct InferenceResult {
  std::vector<double> logits;
  int predicted = -1;
  double encrypt_seconds = 0.0;
  double eval_seconds = 0.0;
  double decrypt_seconds = 0.0;
  /// True when the noise-budget guardrail refused evaluation: logits are
  /// empty and predicted is -1 — a typed degraded result, never garbage.
  bool degraded = false;
};

/// A ModelSpec compiled onto a CKKS backend:
///  * every linear stage is packed with the baby-step/giant-step diagonal
///    method on a power-of-two tile, with one deferred relinearization per
///    giant-step group;
///  * activations evaluate the per-neuron polynomial (eq. (2)) with exact
///    scale matching so additions never need scale adjustment;
///  * levels and scales are planned statically, and weights are encoded (or
///    encrypted) once at their use level during compilation.
class HeModel {
 public:
  HeModel(HeBackend& backend, const ModelSpec& spec, HeModelOptions options);

  InferenceResult infer(std::span<const float> image) const;

  /// Batched inference (options.batch images per call): one homomorphic
  /// evaluation classifies all images. Latency ~= infer(); throughput x batch.
  struct BatchResult {
    std::vector<std::vector<double>> logits;  // per image
    std::vector<int> predicted;
    double encrypt_seconds = 0.0;
    double eval_seconds = 0.0;
    double decrypt_seconds = 0.0;
  };
  BatchResult infer_batch(
      const std::vector<std::vector<float>>& images) const;

  /// Homomorphic evaluation only, starting from already-encrypted branch
  /// inputs (used by tests that want to drive stages directly).
  Ciphertext eval(const std::vector<Ciphertext>& branch_inputs) const;

  /// Client-side: encode + encrypt the (quantized, branch-decomposed) image.
  std::vector<Ciphertext> encrypt_input(std::span<const float> image) const;
  /// Client-side batched variant: encrypts options.batch images interleaved
  /// across the slots (requires images.size() == options().batch).
  std::vector<Ciphertext> encrypt_batch(
      const std::vector<std::vector<float>>& images) const;
  /// Client-side: decrypt + decode logits.
  std::vector<double> decrypt_logits(const Ciphertext& ct) const;
  /// Client-side batched variant: decrypts ONCE and de-interleaves every
  /// image's logits from the packed layout. decrypt_logits(ct) is defined as
  /// decrypt_logits_batch(ct)[0], so the two paths are bit-identical.
  std::vector<std::vector<double>> decrypt_logits_batch(
      const Ciphertext& ct) const;

  /// Validates a requested SIMD batch size against the backend's slot
  /// capacity and the spec's layer dimensions BEFORE compilation: batch must
  /// be a power of two with batch * tile <= slots. Throws a typed
  /// Error(ErrorCode::kInvalidArgument) naming the allowed range, so CLI and
  /// config layers can reject bad --batch values with a usable message
  /// instead of dying mid-compile.
  static void validate_batch(const HeBackend& backend, const ModelSpec& spec,
                             std::size_t batch);

  const ModelSpec& spec() const { return spec_; }
  const HeModelOptions& options() const { return options_; }
  HeBackend& backend() const { return backend_; }

  /// Rotation steps the compiled plan uses (Galois keys are generated for
  /// exactly these during compilation).
  const std::vector<int>& rotation_steps() const { return rotation_steps_; }

  /// Per-stage cost summary (Figs. 3/4 bench): diagonal counts, rotations,
  /// relinearizations, input level.
  struct StageCost {
    std::string name;
    std::size_t diagonals = 0;
    std::size_t rotations = 0;
    std::size_t relins = 0;
    std::size_t tile = 0;
    /// Giant-step size the rotation plan chose for this stage.
    std::size_t giant = 0;
    /// Nonzero giant groups (x branches, like the other counters).
    std::size_t giant_groups = 0;
    /// Planned kModDown count for the stage (x branches): fused = one per
    /// nonzero giant group + the layer epilogue; unfused = one per hoisted
    /// baby plus the giant epilogue(s). Relinearizations that key-switch
    /// (encrypted weights) add their own on top.
    std::size_t moddowns = 0;
    /// True when the stage runs the double-hoisted linear_bsgs path.
    bool fused = false;
    int level_in = 0;
    double scale_in = 0.0;
  };
  std::vector<StageCost> cost_report() const;

  /// Rescaling levels the plan consumes (must fit the chain).
  int levels_used() const { return levels_used_; }

  /// Analytic bound on the absolute slot error of the decrypted logits
  /// (NoiseTracker propagated through the plan). Tests check that measured
  /// logit errors stay below this; benches print it next to the measurement.
  double predicted_output_error() const { return predicted_output_error_; }

  /// Noise budget (bits above the scale, SEAL-style) a FRESH input ciphertext
  /// has at the plan's input level / scale, and the budget the logits come
  /// out with when inputs arrive fresh. The eval() guardrail charges any
  /// input deficit against the planned output budget.
  double planned_input_budget_bits() const;
  double planned_output_budget_bits() const;

 private:
  struct LinearPlan {
    std::size_t in_dim = 0, out_dim = 0, tile = 0, giant = 0;
    std::size_t rot_mult = 1;  // slot stride per logical rotation step
    /// Stage compiled for the double-hoisted linear_bsgs path (plaintext
    /// weights, backend support, hoist_fusion on). Runtime still falls back
    /// to the generic loop when the backend declines the operand set.
    bool fused = false;
    // Group j -> baby step b -> pre-rotated weight operand for diagonal
    // i = giant*j + b (absent diagonals are skipped).
    struct Term {
      std::size_t baby = 0;
      WeightOperand weight;
    };
    struct Group {
      std::size_t j = 0;
      std::vector<Term> terms;
    };
    std::vector<Group> groups;
    WeightOperand bias;
    int level_in = 0, level_out = 0;
    double scale_in = 0.0, scale_out = 0.0;
    // Branch weights are pre-scaled per branch; branch b's groups are stored
    // separately only for the first linear stage when rns_branches > 1.
    std::vector<std::vector<Group>> branch_groups;
  };

  struct ActivationPlan {
    std::size_t features = 0, degree = 0, tile = 0;
    // Operand for x^k, k = 1..degree (encoded/encrypted coefficient vector),
    // plus the constant-term vector added at the end.
    std::vector<WeightOperand> power_weights;
    WeightOperand constant;
    int level_in = 0, level_out = 0;
    double scale_in = 0.0, scale_out = 0.0;
    // Levels/scales at which each power product is formed (runtime asserts).
    std::vector<int> power_levels;
    std::vector<double> power_scales;
    double target_scale = 0.0;
    int target_level = 0;
  };

  struct StagePlan {
    bool is_linear = false;
    LinearPlan linear;
    ActivationPlan activation;
    /// Short human label ("linear 784->128", "slaf deg 2"), used to name the
    /// per-layer trace span.
    std::string name;
    /// Analytic slot-error bound at this stage's OUTPUT (NoiseTracker state
    /// captured during plan()), exported on the layer span.
    double predicted_err = 0.0;
    /// Planned bound on the output slot magnitudes (for the
    /// trace_noise_budget decrypted-vs-expected comparison).
    double value_bound = 0.0;
  };

  // Compilation helpers.
  void plan();
  std::vector<Ciphertext> encrypt_images(
      const std::vector<std::span<const float>>& images) const;
  std::size_t output_dim() const;
  WeightOperand make_weight(const std::vector<double>& values, double scale,
                            int level) const;
  Ciphertext multiply_weight(const Ciphertext& x,
                             const WeightOperand& w) const;
  Ciphertext add_weight(const Ciphertext& x, const WeightOperand& w) const;
  /// Applies the greedy rescale rule; updates (level, scale) in place when
  /// simulating and returns the rescaled ciphertext when executing.
  void simulate_rescale(int& level, double& scale) const;
  Ciphertext apply_rescale(Ciphertext ct) const;

  Ciphertext run_linear(const LinearPlan& plan,
                        const std::vector<Ciphertext>& branch_inputs) const;
  Ciphertext run_linear_single(const LinearPlan& plan,
                               const std::vector<LinearPlan::Group>& groups,
                               const Ciphertext& x) const;
  Ciphertext run_activation(const ActivationPlan& plan,
                            const Ciphertext& x) const;

  HeBackend& backend_;
  ModelSpec spec_;
  HeModelOptions options_;
  std::vector<StagePlan> stages_;
  std::vector<int> rotation_steps_;
  std::size_t input_tile_ = 0;
  int input_level_ = 0;  // fresh ciphertexts are encrypted at this level
  int levels_used_ = 0;
  double predicted_output_error_ = 0.0;
  int output_level_ = 0;
  double output_scale_ = 0.0;
  std::size_t digit_base_ = 256;  // branch digit base B (B^k >= pixel_levels)
};

}  // namespace pphe
