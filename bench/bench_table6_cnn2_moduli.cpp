// Reproduces TABLE VI: CNN2-HE-RNS latency across "moduli chain length"
// k = 1, 3..10. Row k = 1 is the non-RNS baseline (one composite modulus,
// multiprecision arithmetic) and must reproduce CNN2-HE's Table V latency —
// exactly as in the paper, where row 1 equals 39.91 s.
//
// Paper: 39.91 (k=1), 23.67 (3), 23.39 (4), 23.12 (5), 22.76 (6), 22.54 (7),
// 22.49 (8), 22.46 (9), 22.51 (10).

#include "bench_common.hpp"

using namespace pphe;
using namespace pphe::benchutil;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  if (!flags.has("samples")) cfg.he_samples = 2;
  print_header(
      "TABLE VI reproduction: CNN2-HE-RNS across moduli (branch) counts", cfg);

  Experiment exp(cfg);
  const ModelSpec spec = exp.spec(Arch::kCnn2, Activation::kSlaf);

  const auto k_min = static_cast<std::size_t>(flags.get_int("k-min", 3));
  const auto k_max = static_cast<std::size_t>(flags.get_int("k-max", 10));
  const bool skip_big = flags.get_bool("skip-big", false);

  TextTable table({"Moduli chain length", "Lat (s)", "Lat-par (s)",
                   "HE=plain (%)", "paper Lat (s)"});
  const char* paper[] = {"",      "39.91", "",      "23.67", "23.39", "23.12",
                         "22.76", "22.54", "22.49", "22.46", "22.51"};

  if (!skip_big) {
    // k = 1: the multiprecision backend without decomposition.
    auto backend = make_backend("big", cfg.ckks_params());
    HeModelOptions options;
    options.encrypted_weights = flags.get_bool("encrypted-weights", false);
    options.rns_branches = 1;
    const EncryptedEvalResult result =
        run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    table.add_row({"1 (non-RNS)", TextTable::fixed(result.eval_latency.avg(), 2),
                   TextTable::fixed(result.parallel_latency.avg(), 2),
                   TextTable::fixed(result.match_rate, 1), paper[1]});
    std::printf("k=1 (multiprecision) done (avg %.2f s)\n",
                result.eval_latency.avg());
  }

  auto backend = make_backend("rns", cfg.ckks_params());
  for (std::size_t k = k_min; k <= k_max; ++k) {
    HeModelOptions options;
    options.encrypted_weights = flags.get_bool("encrypted-weights", false);
    options.rns_branches = k;
    const EncryptedEvalResult result =
        run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    table.add_row({std::to_string(k),
                   TextTable::fixed(result.eval_latency.avg(), 2),
                   TextTable::fixed(result.parallel_latency.avg(), 2),
                   TextTable::fixed(result.match_rate, 1),
                   k <= 10 ? paper[k] : ""});
    std::printf("k=%zu done (avg %.2f s)\n", k, result.eval_latency.avg());
  }
  std::printf("\n%s", table.render().c_str());
  return 0;
}
