// Reproduces TABLE IV: CNN1-HE-RNS latency across "moduli chain length"
// (= RNS input-decomposition branch count k of Fig. 5, the paper's
// "co-prime moduli" knob; see DESIGN.md §2 and EXPERIMENTS.md for why the
// scheme-chain reading of k cannot support the network's depth).
//
// Paper: Lat falls from 2.27 s (k=3) to 1.67 s (k=9), then rises to 1.74 s
// at k=10 — an optimum where per-branch overhead starts to dominate.

#include "bench_common.hpp"

using namespace pphe;
using namespace pphe::benchutil;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  if (!flags.has("samples")) cfg.he_samples = 3;
  print_header(
      "TABLE IV reproduction: CNN1-HE-RNS across moduli (branch) counts", cfg);

  Experiment exp(cfg);
  const ModelSpec spec = exp.spec(Arch::kCnn1, Activation::kSlaf);
  auto backend = make_backend("rns", cfg.ckks_params());

  const auto k_min = static_cast<std::size_t>(flags.get_int("k-min", 3));
  const auto k_max = static_cast<std::size_t>(flags.get_int("k-max", 10));

  TextTable table({"Moduli chain length", "Lat (s)", "Lat-par (s)",
                   "HE=plain (%)", "paper Lat (s)"});
  const char* paper[] = {"", "", "", "2.27", "2.02", "1.98", "1.89",
                         "1.85", "1.74", "1.67", "1.74"};
  for (std::size_t k = k_min; k <= k_max; ++k) {
    HeModelOptions options;
    options.encrypted_weights = flags.get_bool("encrypted-weights", false);
    options.rns_branches = k;
    const EncryptedEvalResult result =
        run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    table.add_row({std::to_string(k),
                   TextTable::fixed(result.eval_latency.avg(), 2),
                   TextTable::fixed(result.parallel_latency.avg(), 2),
                   TextTable::fixed(result.match_rate, 1),
                   k <= 10 ? paper[k] : ""});
    std::printf("k=%zu done (avg %.2f s)\n", k, result.eval_latency.avg());
  }
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nNote: on a single core the sequential Lat grows with k (each branch "
      "repeats the convolution); Lat-par is the branch-parallel critical "
      "path, the quantity comparable to the paper's multi-core latency.\n");
  return 0;
}
