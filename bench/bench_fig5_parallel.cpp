// Reproduces Fig. 5 (the RNS-parallel branch architecture): demonstrates both
// realizations of the input decomposition —
//  (a) the homomorphic digit decomposition used by the CNN-HE-RNS models
//      (linear recombination folded into the branch weights), and
//  (b) the true non-positional RNS residue decomposition (RnsConvDemo):
//      per-branch integer convolution, CRT recombination, exactness check —
// and measures per-branch latency vs the critical path.

#include <cmath>

#include "bench_common.hpp"
#include "core/rns_input.hpp"

using namespace pphe;
using namespace pphe::benchutil;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  if (!flags.has("samples")) cfg.he_samples = 2;
  print_header("Fig. 5 reproduction: RNS branch decomposition", cfg);

  Experiment exp(cfg);

  // (a) Digit-decomposed CNN1 conv: latency vs branch count.
  std::printf("(a) homomorphic digit branches through the CNN1 pipeline\n");
  const ModelSpec spec = exp.spec(Arch::kCnn1, Activation::kSlaf);
  auto backend = make_backend("rns", cfg.ckks_params());
  TextTable table_a({"branches k", "Lat (s)", "Lat-par (s)", "HE=plain (%)"});
  for (const std::size_t k : {1u, 2u, 3u, 5u, 8u}) {
    HeModelOptions options;
    options.encrypted_weights = false;
    options.rns_branches = k;
    const EncryptedEvalResult r =
        run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    table_a.add_row({std::to_string(k),
                     TextTable::fixed(r.eval_latency.avg(), 2),
                     TextTable::fixed(r.parallel_latency.avg(), 2),
                     TextTable::fixed(r.match_rate, 1)});
  }
  std::printf("%s\n", table_a.render().c_str());

  // (b) True RNS residue branches on the trained conv1 weights, with a
  // high-precision context sized for the exact-integer check.
  std::printf("(b) true RNS residue branches (exact integer conv + CRT)\n");
  CkksParams demo_params;
  demo_params.degree = cfg.ckks_params().degree;
  demo_params.q_bit_sizes = {58, 58, 58};
  demo_params.special_bit_size = 60;
  demo_params.scale = std::ldexp(1.0, 40);
  auto demo_backend = make_backend("rns", demo_params);

  const LinearSpec conv = spec.stages[0].linear;
  TextTable table_b({"moduli", "exact?", "sum of branches (s)",
                     "critical path (s)"});
  const std::vector<std::vector<std::uint64_t>> configs = {
      {251, 247, 239},
      {251, 247, 239, 233},
      {4093, 4091},
  };
  for (const auto& moduli : configs) {
    const RnsConvDemo demo(*demo_backend, conv, moduli, 5);
    const float* img = exp.test_set().images.data();
    const auto result = demo.run(std::vector<float>(img, img + 784));
    std::string name;
    for (const auto m : moduli) name += std::to_string(m) + " ";
    table_b.add_row({name, result.exact ? "yes" : "NO",
                     TextTable::fixed(result.eval_seconds, 2),
                     TextTable::fixed(result.max_branch_seconds, 2)});
  }
  std::printf("%s", table_b.render().c_str());
  std::printf(
      "\nThe residue branches recombine EXACTLY via CRT — but only after\n"
      "decryption: reducing mod m_j is not polynomial, so the in-pipeline\n"
      "reassembly of Fig. 5 requires the digit decomposition of (a).\n"
      "See DESIGN.md §4 / EXPERIMENTS.md for this gap in the paper.\n");
  return 0;
}
