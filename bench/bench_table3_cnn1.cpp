// Reproduces TABLE III: performance of CNN1-HE (multiprecision CKKS, no
// input decomposition) vs CNN1-HE-RNS (CKKS-RNS with three decomposition
// branches, §VI.A's "three co-prime moduli" + degree-3 SLAF).
//
// Paper's reported numbers (Xeon E5-2650v2, real MNIST):
//   CNN1-HE      train 99.442%  Lat 3.12/4.02/3.56 s  Acc 98.22%
//   CNN1-HE-RNS  train 99.442%  Lat 1.73/2.89/2.27 s  Acc 98.22%
//   (36.24% average speed-up; identical accuracy)

#include "bench_common.hpp"

using namespace pphe;
using namespace pphe::benchutil;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  print_header("TABLE III reproduction: CNN1-HE vs CNN1-HE-RNS", cfg);

  Experiment exp(cfg);
  const TrainedModel& model = exp.model(Arch::kCnn1, Activation::kSlaf);
  const ModelSpec spec = compile_model(model);

  std::vector<Row> rows;

  {  // Baseline: non-RNS (multiprecision) CKKS, no decomposition.
    auto backend = make_backend("big", cfg.ckks_params());
    HeModelOptions options;
    options.encrypted_weights = !flags.get_bool("plain-weights", false);
    options.rns_branches = 1;
    Row row;
    row.model_name = "CNN1-HE";
    row.train_acc = model.train_accuracy;
    row.eval = run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    std::printf("[CNN1-HE] setup (weight encryption + keys): %.1f s\n",
                row.eval.setup_seconds);
    rows.push_back(std::move(row));
  }

  {  // Proposed: CKKS-RNS with k = 3 branches.
    auto backend = make_backend("rns", cfg.ckks_params());
    HeModelOptions options;
    options.encrypted_weights = !flags.get_bool("plain-weights", false);
    options.rns_branches =
        static_cast<std::size_t>(flags.get_int("branches", 3));
    Row row;
    row.model_name = "CNN1-HE-RNS";
    row.train_acc = model.train_accuracy;
    row.eval = run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    std::printf("[CNN1-HE-RNS] setup: %.1f s\n", row.eval.setup_seconds);
    rows.push_back(std::move(row));
  }

  if (flags.get_bool("ablate-no-branches", false)) {
    // Ablation: the scheme-level RNS gain without the Fig. 5 decomposition.
    auto backend = make_backend("rns", cfg.ckks_params());
    HeModelOptions options;
    options.encrypted_weights = !flags.get_bool("plain-weights", false);
    options.rns_branches = 1;
    Row row;
    row.model_name = "CNN1-HE-RNS (k=1 ablation)";
    row.train_acc = model.train_accuracy;
    row.eval = run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    rows.push_back(std::move(row));
  }

  print_rows(rows);
  print_speedup(rows[0], rows[1]);
  std::printf(
      "paper: CNN1-HE 3.12/4.02/3.56 s vs CNN1-HE-RNS 1.73/2.89/2.27 s "
      "(36.24%% speed-up), Acc 98.22%% for both.\n");
  return finish_trace(cfg) ? 0 : 1;
}
