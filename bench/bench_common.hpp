#pragma once

// Shared harness glue for the Table III-VI benches: builds the experiment
// (data + trained models), runs encrypted evaluation on a backend, and
// renders rows in the paper's format.

#include <cstdio>
#include <string>

#include "ckks/security.hpp"
#include "common/cli.hpp"
#include "common/fault.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "core/pipeline.hpp"

namespace pphe::benchutil {

inline void print_header(const char* table_name, const ExperimentConfig& cfg) {
  std::printf("%s\n", table_name);
  const CkksParams params = cfg.ckks_params();
  std::printf("profile: %s | %s\n", cfg.paper_profile ? "PAPER" : "fast",
              params.describe().c_str());
  std::printf("%s\n", describe_security(params).c_str());
  if (!cfg.isa.empty()) {
    std::printf("math kernels: %s (override with --force-isa)\n",
                cfg.isa.c_str());
  }
  std::printf(
      "latency columns: Lat = measured sequential eval wall-clock on this "
      "1-core host;\nLat-par = ideal critical-path latency with %zu workers "
      "(ParallelSim, DESIGN.md §3)\n\n",
      cfg.workers);
  if (!cfg.trace_out.empty()) {
    trace::set_enabled(true);
    std::printf("[trace] recording homomorphic-op spans -> %s\n\n",
                cfg.trace_out.c_str());
  }
  if (fault::armed()) {
    // --faults=<spec> was parsed by ExperimentConfig::from_flags; numbers
    // below are chaos-mode numbers, not clean measurements.
    std::printf("[faults] WARNING: fault injection armed (%s) — results are "
                "not comparable to clean runs\n\n",
                cfg.faults.c_str());
  }
}

/// End-of-run hook: writes cfg.trace_out (if set) as Chrome trace-event JSON
/// and prints the per-op latency histograms. Returns false on write failure
/// so mains can fold it into their exit status.
inline bool finish_trace(const ExperimentConfig& cfg) {
  return finish_tracing(cfg.trace_out);
}

/// One measured row of a Table III/V-style comparison.
struct Row {
  std::string model_name;
  double train_acc = 0.0;
  EncryptedEvalResult eval;
};

inline void print_rows(const std::vector<Row>& rows) {
  TextTable table({"Model", "Training Acc (%)", "Lat min", "Lat max",
                   "Lat avg", "Lat-par avg", "Acc (%)", "HE=plain (%)",
                   "max logit err"});
  for (const auto& row : rows) {
    table.add_row({row.model_name, TextTable::fixed(row.train_acc, 3),
                   TextTable::fixed(row.eval.eval_latency.min(), 2),
                   TextTable::fixed(row.eval.eval_latency.max(), 2),
                   TextTable::fixed(row.eval.eval_latency.avg(), 2),
                   TextTable::fixed(row.eval.parallel_latency.avg(), 2),
                   TextTable::fixed(row.eval.spec_accuracy, 2),
                   TextTable::fixed(row.eval.match_rate, 1),
                   TextTable::fixed(row.eval.max_logit_err, 4)});
  }
  std::printf("%s", table.render().c_str());
}

inline void print_speedup(const Row& baseline, const Row& rns) {
  const double seq = 100.0 * (1.0 - rns.eval.eval_latency.avg() /
                                        baseline.eval.eval_latency.avg());
  const double par = 100.0 * (1.0 - rns.eval.parallel_latency.avg() /
                                        baseline.eval.eval_latency.avg());
  std::printf(
      "\nspeed-up of %s over %s: %.2f%% (sequential), %.2f%% "
      "(critical-path)\n",
      rns.model_name.c_str(), baseline.model_name.c_str(), seq, par);
}

}  // namespace pphe::benchutil
