// Micro benchmarks (google-benchmark) of the scheme primitives, RNS vs
// multiprecision: NTT, ct-ct multiply, relinearize, rescale, rotate, encode,
// encrypt, decrypt. These are the per-op costs that compose into the
// Table III-VI latencies, plus the DESIGN.md §6 ablations (deferred
// relinearization, BSGS).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ckks/big_backend.hpp"
#include "ckks/rns_backend.hpp"
#include "common/prng.hpp"
#include "core/he_model.hpp"
#include "core/models.hpp"
#include "math/hal/hal.hpp"
#include "math/modarith.hpp"
#include "math/ntt.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

CkksParams bench_params() {
  CkksParams p;
  p.degree = 1 << 12;  // small enough for google-benchmark's repetitions
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26, 26};
  p.special_bit_size = 40;
  p.scale = 67108864.0;
  return p;
}

struct Fixture {
  std::unique_ptr<HeBackend> backend;
  Ciphertext ca, cb;
  Plaintext pb;

  explicit Fixture(const std::string& kind) {
    const CkksParams p = bench_params();
    if (kind == "rns") {
      backend = std::make_unique<RnsBackend>(p);
    } else {
      backend = std::make_unique<BigBackend>(p);
    }
    backend->ensure_galois_keys({1});
    Prng prng(5);
    std::vector<double> a(backend->slot_count()), b(backend->slot_count());
    for (auto& v : a) v = prng.uniform_double();
    for (auto& v : b) v = prng.uniform_double();
    pb = backend->encode(b, p.scale, backend->max_level());
    ca = backend->encrypt(backend->encode(a, p.scale, backend->max_level()));
    cb = backend->encrypt(pb);
  }

  static Fixture& get(const std::string& kind) {
    static Fixture rns("rns");
    static Fixture big("big");
    return kind == "rns" ? rns : big;
  }
};

/// Runs `op` once to warm the arena's free list, then times it and reports
/// allocation behaviour next to latency: alloc/op (free-list misses, i.e.
/// trips to the system allocator), hit/op (slabs recycled), and the arena's
/// peak footprint. Steady-state multiply/rescale/rotate must show 0 alloc/op.
template <typename Op>
void run_with_mem(benchmark::State& state, HeBackend& backend, Op&& op) {
  benchmark::DoNotOptimize(op());  // warm-up populates the free list
  backend.reset_mem_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(op());
  }
  const MemStats ms = backend.mem_stats();
  state.counters["alloc/op"] = benchmark::Counter(
      static_cast<double>(ms.pool_misses), benchmark::Counter::kAvgIterations);
  state.counters["hit/op"] = benchmark::Counter(
      static_cast<double>(ms.pool_hits), benchmark::Counter::kAvgIterations);
  state.counters["peak_MB"] =
      static_cast<double>(ms.peak_bytes) / (1024.0 * 1024.0);
}

void BM_Multiply(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend,
               [&] { return f.backend->multiply(f.ca, f.cb); });
}

void BM_MultiplyPlain(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend,
               [&] { return f.backend->multiply_plain(f.ca, f.pb); });
}

void BM_Relinearize(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  const Ciphertext prod = f.backend->multiply(f.ca, f.cb);
  run_with_mem(state, *f.backend,
               [&] { return f.backend->relinearize(prod); });
}

void BM_Rescale(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  const Ciphertext prod =
      f.backend->relinearize(f.backend->multiply(f.ca, f.cb));
  run_with_mem(state, *f.backend, [&] { return f.backend->rescale(prod); });
}

void BM_Rotate(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend, [&] { return f.backend->rotate(f.ca, 1); });
}

void BM_Add(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend, [&] { return f.backend->add(f.ca, f.cb); });
}

void BM_Encrypt(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend, [&] { return f.backend->encrypt(f.pb); });
}

void BM_Decrypt(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend,
               [&] { return f.backend->decrypt_decode(f.ca); });
}

void BM_Encode(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  std::vector<double> v(f.backend->slot_count(), 0.5);
  run_with_mem(state, *f.backend, [&] {
    return f.backend->encode(v, f.backend->params().scale,
                             f.backend->max_level());
  });
}

// Word-level kernel rows: the per-residue NTT and dyadic loops every
// RNS-domain latency above decomposes into. N=2^14 forward+inverse is the
// kernel-speedup gate tracked across PRs.
struct NttFixture {
  Modulus mod;
  NttTable ntt;
  std::vector<std::uint64_t> a, b, bq, c;

  explicit NttFixture(std::size_t n)
      : mod(generate_ntt_primes(n, 50, 1)[0]), ntt(n, mod), a(n), b(n), bq(n),
        c(n) {
    Prng prng(n);
    for (auto& v : a) v = prng.uniform_below(mod.value());
    for (auto& v : b) v = prng.uniform_below(mod.value());
    dyadic::shoup_precompute(b, bq, mod);  // b as the fixed operand
  }

  static NttFixture& get(std::size_t n) {
    static NttFixture f12(std::size_t{1} << 12);
    static NttFixture f14(std::size_t{1} << 14);
    return n == (std::size_t{1} << 12) ? f12 : f14;
  }
};

void BM_NttForward(benchmark::State& state) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.ntt.forward(f.a);
    benchmark::DoNotOptimize(f.a.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

void BM_NttInverse(benchmark::State& state) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.ntt.inverse(f.a);
    benchmark::DoNotOptimize(f.a.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

/// The gate row: one forward + one inverse pass (what every homomorphic op
/// pays per representation change).
void BM_NttForwardInverse(benchmark::State& state) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.ntt.forward(f.a);
    f.ntt.inverse(f.a);
    benchmark::DoNotOptimize(f.a.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

void BM_PointwiseBarrett(benchmark::State& state) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    f.ntt.pointwise(f.a, f.b, f.c);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

// Fused dyadic kernels: the multiply-accumulate and fixed-operand (Shoup)
// variants the RNS evaluator runs in ct-pt products and key switching.
void BM_DyadicMulAcc(benchmark::State& state) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    dyadic::mul_acc(f.a, f.b, f.c, f.mod);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

void BM_DyadicMulShoup(benchmark::State& state) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    dyadic::mul_shoup(f.a, f.b, f.bq, f.c, f.mod);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

void BM_DyadicMulAccShoup(benchmark::State& state) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    dyadic::mul_acc_shoup(f.a, f.b, f.bq, f.c, f.mod);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

void BM_ShoupPrecompute(benchmark::State& state) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    dyadic::shoup_precompute(f.b, f.c, f.mod);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

#define PPCNN_KERNEL_BENCH(fn) \
  BENCHMARK(fn)->Arg(1 << 12)->Arg(1 << 14)->Unit(benchmark::kMicrosecond)

PPCNN_KERNEL_BENCH(BM_NttForward);
PPCNN_KERNEL_BENCH(BM_NttInverse);
PPCNN_KERNEL_BENCH(BM_NttForwardInverse);
PPCNN_KERNEL_BENCH(BM_PointwiseBarrett);
PPCNN_KERNEL_BENCH(BM_DyadicMulAcc);
PPCNN_KERNEL_BENCH(BM_DyadicMulShoup);
PPCNN_KERNEL_BENCH(BM_DyadicMulAccShoup);
PPCNN_KERNEL_BENCH(BM_ShoupPrecompute);

// Per-ISA kernel rows, driving one HAL table directly (bypassing the
// process dispatch) against the same fixtures. The rows above keep their
// historical names and measure whatever ISA the process dispatched to;
// these pin it in the row name — BM_NttForwardInverse_scalar/16384 is the
// denominator of run_benches.sh's SIMD speedup gate.
void BM_NttForwardInverseIsa(benchmark::State& state,
                             const hal::MathKernels* k) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    k->ntt_forward(f.a.data(), f.ntt.n(), f.ntt.root_powers().data(),
                   f.mod.value());
    k->ntt_inverse(f.a.data(), f.ntt.n(), f.ntt.inv_root_powers().data(),
                   f.ntt.inv_n(), f.ntt.inv_n_root(), f.mod.value());
    benchmark::DoNotOptimize(f.a.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

void BM_DyadicMulShoupIsa(benchmark::State& state, const hal::MathKernels* k) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    k->mul_shoup(f.a.data(), f.b.data(), f.bq.data(), f.c.data(), f.ntt.n(),
                 f.mod.value());
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

void BM_DyadicMulAccShoupIsa(benchmark::State& state,
                             const hal::MathKernels* k) {
  auto& f = NttFixture::get(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    k->mul_acc_shoup(f.a.data(), f.b.data(), f.bq.data(), f.c.data(),
                     f.ntt.n(), f.mod.value());
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ntt.n()));
}

// Dense BSGS layer (DESIGN.md §14): three stacked dense 64->64 linear
// stages with plaintext weights, evaluated end to end on the RNS backend.
// `fused` runs the double-hoisted linear_bsgs path (one decomposition per
// unique operand, one mod-down per giant group); `unfused` the legacy
// per-rotation key-switch schedule. run_benches.sh gates fused >= 1.5x.
struct DenseBsgsFixture {
  std::unique_ptr<RnsBackend> backend;
  std::unique_ptr<HeModel> model;
  std::vector<Ciphertext> input;

  explicit DenseBsgsFixture(bool fused)
      : backend(std::make_unique<RnsBackend>(bench_params())) {
    Prng prng(97);
    ModelSpec spec;
    spec.name = fused ? "dense-bsgs-fused" : "dense-bsgs-unfused";
    for (int layer = 0; layer < 3; ++layer) {
      ModelSpec::Stage s;
      s.kind = ModelSpec::Stage::Kind::kLinear;
      s.linear.in_dim = 64;
      s.linear.out_dim = 64;
      s.linear.weight.resize(64 * 64);
      s.linear.bias.resize(64);
      for (auto& w : s.linear.weight) {
        w = static_cast<float>(prng.normal() * 0.1);
      }
      for (auto& b : s.linear.bias) {
        b = static_cast<float>(prng.normal() * 0.05);
      }
      spec.stages.push_back(std::move(s));
    }
    HeModelOptions options;
    options.encrypted_weights = false;
    options.validate_inputs = false;
    options.hoist_fusion = fused;
    model = std::make_unique<HeModel>(*backend, spec, options);
    std::vector<float> img(64);
    for (auto& v : img) v = static_cast<float>(prng.uniform_double());
    input = model->encrypt_input(img);
  }

  static DenseBsgsFixture& get(bool fused) {
    static DenseBsgsFixture hoisted(true);
    static DenseBsgsFixture legacy(false);
    return fused ? hoisted : legacy;
  }
};

void BM_DenseBsgsLayer(benchmark::State& state, bool fused) {
  auto& f = DenseBsgsFixture::get(fused);
  run_with_mem(state, *f.backend, [&] { return f.model->eval(f.input); });
}

void BM_DenseBsgsLayerIsa(benchmark::State& state, bool fused, hal::Isa isa) {
  const hal::ScopedForceIsa pin(isa);
  BM_DenseBsgsLayer(state, fused);
}

// Ablation (DESIGN.md §6.1): relinearizing after every product vs deferring
// a single relinearization to the end of an 8-term inner product.
void BM_InnerProduct8_RelinEach(benchmark::State& state,
                                const std::string& kind) {
  auto& f = Fixture::get(kind);
  for (auto _ : state) {
    Ciphertext acc;
    for (int i = 0; i < 8; ++i) {
      Ciphertext t = f.backend->relinearize(f.backend->multiply(f.ca, f.cb));
      acc = acc.valid() ? f.backend->add(acc, t) : t;
    }
    benchmark::DoNotOptimize(acc);
  }
}

void BM_InnerProduct8_RelinDeferred(benchmark::State& state,
                                    const std::string& kind) {
  auto& f = Fixture::get(kind);
  for (auto _ : state) {
    Ciphertext acc;
    for (int i = 0; i < 8; ++i) {
      Ciphertext t = f.backend->multiply(f.ca, f.cb);
      acc = acc.valid() ? f.backend->add(acc, t) : t;
    }
    benchmark::DoNotOptimize(f.backend->relinearize(acc));
  }
}

#define PPCNN_BENCH(fn)                                             \
  BENCHMARK_CAPTURE(fn, rns, std::string("rns"))                    \
      ->Unit(benchmark::kMillisecond);                              \
  BENCHMARK_CAPTURE(fn, big, std::string("big"))                    \
      ->Unit(benchmark::kMillisecond)

PPCNN_BENCH(BM_Add);
PPCNN_BENCH(BM_Multiply);
PPCNN_BENCH(BM_MultiplyPlain);
PPCNN_BENCH(BM_Relinearize);
PPCNN_BENCH(BM_Rescale);
PPCNN_BENCH(BM_Rotate);
PPCNN_BENCH(BM_Encrypt);
PPCNN_BENCH(BM_Decrypt);
PPCNN_BENCH(BM_Encode);
PPCNN_BENCH(BM_InnerProduct8_RelinEach);
PPCNN_BENCH(BM_InnerProduct8_RelinDeferred);

BENCHMARK_CAPTURE(BM_DenseBsgsLayer, fused, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DenseBsgsLayer, unfused, false)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// One row set per ISA this build+CPU can run (scalar always; avx2/avx512
// when present). Must run after benchmark::Initialize.
void register_per_isa_kernel_rows() {
  for (const hal::Isa isa :
       {hal::Isa::kScalar, hal::Isa::kAvx2, hal::Isa::kAvx512}) {
    if (!hal::available(isa)) continue;
    const hal::MathKernels* k = &hal::kernels(isa);
    const std::string suffix = hal::isa_name(isa);
    const struct {
      const char* stem;
      void (*fn)(benchmark::State&, const hal::MathKernels*);
    } rows[] = {
        {"BM_NttForwardInverse_", &BM_NttForwardInverseIsa},
        {"BM_DyadicMulShoup_", &BM_DyadicMulShoupIsa},
        {"BM_DyadicMulAccShoup_", &BM_DyadicMulAccShoupIsa},
    };
    for (const auto& row : rows) {
      auto* fn = row.fn;
      benchmark::RegisterBenchmark((row.stem + suffix).c_str(),
                                   [fn, k](benchmark::State& st) { fn(st, k); })
          ->Arg(1 << 12)
          ->Arg(1 << 14)
          ->Unit(benchmark::kMicrosecond);
    }
    // Layer-level fused/unfused rows with the dispatch pinned, so the drift
    // report can compare the hoisted BSGS path like-for-like per ISA.
    for (const bool fused : {true, false}) {
      const std::string name = std::string("BM_DenseBsgsLayer_") +
                               (fused ? "fused_" : "unfused_") + suffix;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [fused, isa](benchmark::State& st) {
            BM_DenseBsgsLayerIsa(st, fused, isa);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace pphe

// Custom main so callers (run_benches.sh, CI) can ask for machine-readable
// output with a single flag: `--json[=path]` expands to google-benchmark's
// --benchmark_out=<path> --benchmark_out_format=json (default path
// BENCH_micro.json in the current directory). `--force-isa=<name>` pins the
// math HAL before any fixture is built, and the dispatched ISA is recorded
// in the JSON context as "isa_dispatched" so the drift report can compare
// like-for-like. All other flags pass through.
int main(int argc, char** argv) {
  std::string out_flag, fmt_flag = "--benchmark_out_format=json";
  std::string isa_flag;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    const std::string_view a(argv[i]);
    if (a == "--json") {
      out_flag = "--benchmark_out=BENCH_micro.json";
    } else if (a.rfind("--json=", 0) == 0) {
      out_flag = "--benchmark_out=" + std::string(a.substr(7));
    } else if (a.rfind("--force-isa=", 0) == 0) {
      isa_flag = std::string(a.substr(12));
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!isa_flag.empty()) {
    if (isa_flag == "auto") {
      pphe::hal::reset();
    } else {
      pphe::hal::force(pphe::hal::parse_isa(isa_flag));
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  pphe::register_per_isa_kernel_rows();
  benchmark::AddCustomContext("isa_dispatched", pphe::hal::active().name);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
