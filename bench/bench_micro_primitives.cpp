// Micro benchmarks (google-benchmark) of the scheme primitives, RNS vs
// multiprecision: NTT, ct-ct multiply, relinearize, rescale, rotate, encode,
// encrypt, decrypt. These are the per-op costs that compose into the
// Table III-VI latencies, plus the DESIGN.md §6 ablations (deferred
// relinearization, BSGS).

#include <benchmark/benchmark.h>

#include <memory>

#include "ckks/big_backend.hpp"
#include "ckks/rns_backend.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

CkksParams bench_params() {
  CkksParams p;
  p.degree = 1 << 12;  // small enough for google-benchmark's repetitions
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26, 26};
  p.special_bit_size = 40;
  p.scale = 67108864.0;
  return p;
}

struct Fixture {
  std::unique_ptr<HeBackend> backend;
  Ciphertext ca, cb;
  Plaintext pb;

  explicit Fixture(const std::string& kind) {
    const CkksParams p = bench_params();
    if (kind == "rns") {
      backend = std::make_unique<RnsBackend>(p);
    } else {
      backend = std::make_unique<BigBackend>(p);
    }
    backend->ensure_galois_keys({1});
    Prng prng(5);
    std::vector<double> a(backend->slot_count()), b(backend->slot_count());
    for (auto& v : a) v = prng.uniform_double();
    for (auto& v : b) v = prng.uniform_double();
    pb = backend->encode(b, p.scale, backend->max_level());
    ca = backend->encrypt(backend->encode(a, p.scale, backend->max_level()));
    cb = backend->encrypt(pb);
  }

  static Fixture& get(const std::string& kind) {
    static Fixture rns("rns");
    static Fixture big("big");
    return kind == "rns" ? rns : big;
  }
};

/// Runs `op` once to warm the arena's free list, then times it and reports
/// allocation behaviour next to latency: alloc/op (free-list misses, i.e.
/// trips to the system allocator), hit/op (slabs recycled), and the arena's
/// peak footprint. Steady-state multiply/rescale/rotate must show 0 alloc/op.
template <typename Op>
void run_with_mem(benchmark::State& state, HeBackend& backend, Op&& op) {
  benchmark::DoNotOptimize(op());  // warm-up populates the free list
  backend.reset_mem_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(op());
  }
  const MemStats ms = backend.mem_stats();
  state.counters["alloc/op"] = benchmark::Counter(
      static_cast<double>(ms.pool_misses), benchmark::Counter::kAvgIterations);
  state.counters["hit/op"] = benchmark::Counter(
      static_cast<double>(ms.pool_hits), benchmark::Counter::kAvgIterations);
  state.counters["peak_MB"] =
      static_cast<double>(ms.peak_bytes) / (1024.0 * 1024.0);
}

void BM_Multiply(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend,
               [&] { return f.backend->multiply(f.ca, f.cb); });
}

void BM_MultiplyPlain(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend,
               [&] { return f.backend->multiply_plain(f.ca, f.pb); });
}

void BM_Relinearize(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  const Ciphertext prod = f.backend->multiply(f.ca, f.cb);
  run_with_mem(state, *f.backend,
               [&] { return f.backend->relinearize(prod); });
}

void BM_Rescale(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  const Ciphertext prod =
      f.backend->relinearize(f.backend->multiply(f.ca, f.cb));
  run_with_mem(state, *f.backend, [&] { return f.backend->rescale(prod); });
}

void BM_Rotate(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend, [&] { return f.backend->rotate(f.ca, 1); });
}

void BM_Add(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend, [&] { return f.backend->add(f.ca, f.cb); });
}

void BM_Encrypt(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend, [&] { return f.backend->encrypt(f.pb); });
}

void BM_Decrypt(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  run_with_mem(state, *f.backend,
               [&] { return f.backend->decrypt_decode(f.ca); });
}

void BM_Encode(benchmark::State& state, const std::string& kind) {
  auto& f = Fixture::get(kind);
  std::vector<double> v(f.backend->slot_count(), 0.5);
  run_with_mem(state, *f.backend, [&] {
    return f.backend->encode(v, f.backend->params().scale,
                             f.backend->max_level());
  });
}

// Ablation (DESIGN.md §6.1): relinearizing after every product vs deferring
// a single relinearization to the end of an 8-term inner product.
void BM_InnerProduct8_RelinEach(benchmark::State& state,
                                const std::string& kind) {
  auto& f = Fixture::get(kind);
  for (auto _ : state) {
    Ciphertext acc;
    for (int i = 0; i < 8; ++i) {
      Ciphertext t = f.backend->relinearize(f.backend->multiply(f.ca, f.cb));
      acc = acc.valid() ? f.backend->add(acc, t) : t;
    }
    benchmark::DoNotOptimize(acc);
  }
}

void BM_InnerProduct8_RelinDeferred(benchmark::State& state,
                                    const std::string& kind) {
  auto& f = Fixture::get(kind);
  for (auto _ : state) {
    Ciphertext acc;
    for (int i = 0; i < 8; ++i) {
      Ciphertext t = f.backend->multiply(f.ca, f.cb);
      acc = acc.valid() ? f.backend->add(acc, t) : t;
    }
    benchmark::DoNotOptimize(f.backend->relinearize(acc));
  }
}

#define PPCNN_BENCH(fn)                                             \
  BENCHMARK_CAPTURE(fn, rns, std::string("rns"))                    \
      ->Unit(benchmark::kMillisecond);                              \
  BENCHMARK_CAPTURE(fn, big, std::string("big"))                    \
      ->Unit(benchmark::kMillisecond)

PPCNN_BENCH(BM_Add);
PPCNN_BENCH(BM_Multiply);
PPCNN_BENCH(BM_MultiplyPlain);
PPCNN_BENCH(BM_Relinearize);
PPCNN_BENCH(BM_Rescale);
PPCNN_BENCH(BM_Rotate);
PPCNN_BENCH(BM_Encrypt);
PPCNN_BENCH(BM_Decrypt);
PPCNN_BENCH(BM_Encode);
PPCNN_BENCH(BM_InnerProduct8_RelinEach);
PPCNN_BENCH(BM_InnerProduct8_RelinDeferred);

}  // namespace
}  // namespace pphe

BENCHMARK_MAIN();
