// Extension bench (DESIGN.md §6): SIMD batching. The paper optimizes
// single-image latency (Lo-La style); CryptoNets/E2DM instead amortize one
// evaluation over many images. Our interleaved packing supports both: this
// bench sweeps the batch size and reports latency vs per-image throughput,
// showing the trade-off the related-work section (Table I) debates.

#include "bench_common.hpp"

using namespace pphe;
using namespace pphe::benchutil;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  print_header("Extension: SIMD batch throughput (CNN1-HE-RNS)", cfg);

  Experiment exp(cfg);
  const ModelSpec spec = exp.spec(Arch::kCnn1, Activation::kSlaf);
  auto backend = make_backend("rns", cfg.ckks_params());
  const std::size_t max_batch = backend->slot_count() / 1024;

  TextTable table({"batch", "eval Lat (s)", "per-image (s)",
                   "all predictions correct?"});
  for (std::size_t batch = 1; batch <= max_batch; batch *= 2) {
    HeModelOptions options;
    options.encrypted_weights = false;
    options.batch = batch;
    const HeModel model(*backend, spec, options);

    std::vector<std::vector<float>> images;
    std::vector<int> labels;
    for (std::size_t i = 0; i < batch; ++i) {
      const float* img = exp.test_set().images.data() + i * 784;
      images.emplace_back(img, img + 784);
      labels.push_back(exp.test_set().labels[i]);
    }
    Stopwatch sw;
    const auto result = model.infer_batch(images);
    const double t = result.eval_seconds;
    bool all_plain_match = true;
    for (std::size_t i = 0; i < batch; ++i) {
      const auto plain = eval_spec(spec, images[i]);
      const auto plain_pred = static_cast<int>(
          std::max_element(plain.begin(), plain.end()) - plain.begin());
      if (result.predicted[i] != plain_pred) all_plain_match = false;
    }
    table.add_row({std::to_string(batch), TextTable::fixed(t, 2),
                   TextTable::fixed(t / static_cast<double>(batch), 2),
                   all_plain_match ? "yes" : "NO"});
    (void)sw;
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nOne evaluation classifies `batch` images at ~constant cost: latency\n"
      "holds while per-image cost divides by the batch — the amortization\n"
      "axis the paper's Table I comparisons (CryptoNets vs Lo-La) trade on.\n");
  return 0;
}
