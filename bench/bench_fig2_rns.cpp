// Reproduces Fig. 2 (residue number system decomposition): demonstrates the
// compose/decompose round trip and measures the throughput advantage of
// component-wise word arithmetic over multiprecision arithmetic — the
// mechanism behind every speedup in Tables III-VI.

#include <algorithm>
#include <cstdio>

#include "ckks/rns_backend.hpp"
#include "common/cli.hpp"
#include "common/prng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "math/bigmod.hpp"
#include "math/primes.hpp"
#include "math/rns.hpp"

using namespace pphe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::size_t ops =
      static_cast<std::size_t>(flags.get_int("ops", 200000));

  std::printf("Fig. 2 reproduction: RNS decomposition of large-integer ops\n\n");

  // A ~360-bit modulus split into word primes, like the Table II chain.
  TextTable table({"moduli (k)", "bits each", "mul throughput (Mop/s)",
                   "speedup vs multiprecision", "critical path (k workers)"});

  // Baseline: multiprecision Barrett multiplication modulo the full product.
  const auto all_primes = generate_ntt_primes(1 << 13, 45, 8);
  double big_rate = 0.0;
  {
    const RnsBase base(all_primes);
    const BigBarrett bar(base.product());
    Prng prng(1);
    BigUInt a = base.product() - BigUInt(prng.next_u64());
    const BigUInt b = base.product() - BigUInt(prng.next_u64() | 1);
    Stopwatch sw;
    for (std::size_t i = 0; i < ops / 10; ++i) a = bar.mulmod(a, b);
    const double t = sw.seconds();
    big_rate = static_cast<double>(ops / 10) / t / 1e6;
    table.add_row({"1 (multiprecision)",
                   std::to_string(base.product().bit_length()),
                   TextTable::fixed(big_rate, 2), "1.00", "1.00x"});
    if (a.is_zero()) std::printf("(unreachable)\n");
  }

  for (const std::size_t k : {2u, 4u, 8u}) {
    std::vector<std::uint64_t> primes(all_primes.begin(),
                                      all_primes.begin() + k);
    const RnsBase base(primes);
    Prng prng(k);
    std::vector<std::uint64_t> a(k), b(k);
    for (std::size_t j = 0; j < k; ++j) {
      a[j] = prng.uniform_below(primes[j]);
      b[j] = prng.uniform_below(primes[j]) | 1;
    }
    Stopwatch sw;
    for (std::size_t i = 0; i < ops; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        a[j] = base.modulus(j).mul(a[j], b[j]);
      }
    }
    const double t = sw.seconds();
    const double rate = static_cast<double>(ops) / t / 1e6;  // full RNS ops
    table.add_row({std::to_string(k), "45",
                   TextTable::fixed(rate, 2),
                   TextTable::fixed(rate / big_rate, 2) + "x",
                   TextTable::fixed(rate / big_rate * static_cast<double>(k), 2) +
                       "x"});
  }
  std::printf("%s\n", table.render().c_str());

  // Correctness: homomorphism of the decomposition (Fig. 2's diagram).
  const RnsBase base(all_primes);
  Prng prng(9);
  std::size_t checked = 0;
  for (int i = 0; i < 1000; ++i) {
    BigUInt x = BigUInt(prng.next_u64());
    BigUInt y = BigUInt(prng.next_u64());
    for (int limb = 0; limb < 4; ++limb) {
      x = (x << 64) + BigUInt(prng.next_u64());
      y = (y << 64) + BigUInt(prng.next_u64());
    }
    x = x % base.product();
    y = y % base.product();
    const auto rx = base.decompose(x);
    const auto ry = base.decompose(y);
    std::vector<std::uint64_t> rsum(base.size()), rprod(base.size());
    for (std::size_t j = 0; j < base.size(); ++j) {
      rsum[j] = base.modulus(j).add(rx[j], ry[j]);
      rprod[j] = base.modulus(j).mul(rx[j], ry[j]);
    }
    if (base.compose(rsum) == (x + y) % base.product() &&
        base.compose(rprod) == (x * y) % base.product()) {
      ++checked;
    }
  }
  std::printf("compose/decompose homomorphism: %zu/1000 random (+,*) pairs exact\n",
              checked);

  // Slab arena behaviour of the double-CRT evaluator (DESIGN.md §"Memory
  // layout"): after one warm-up op per primitive, every polynomial slab
  // should come from the pool's free list — miss/op must read 0.00.
  {
    const std::size_t reps =
        static_cast<std::size_t>(
            std::max<std::int64_t>(1, flags.get_int("reps", 10)));
    CkksParams p;
    p.degree = 1 << 13;  // the fast profile of run_benches.sh
    p.q_bit_sizes = {40, 26, 26, 26, 26};
    p.special_bit_size = 40;
    p.scale = 67108864.0;
    RnsBackend be(p);
    be.ensure_galois_keys({1});
    Prng bench_prng(3);
    std::vector<double> v(be.slot_count());
    for (auto& s : v) s = bench_prng.uniform_double();
    const Ciphertext ca =
        be.encrypt(be.encode(v, p.scale, be.max_level()));
    const Ciphertext cb =
        be.encrypt(be.encode(v, p.scale, be.max_level()));
    const Ciphertext prod = be.relinearize(be.multiply(ca, cb));

    TextTable mem_table(
        {"op", "ms/op", "miss/op", "hit/op", "arena peak (MB)"});
    auto bench_op = [&](const char* name, auto&& op) {
      op();  // warm-up populates the free list
      be.reset_mem_stats();
      Stopwatch sw;
      for (std::size_t i = 0; i < reps; ++i) op();
      const double ms = sw.seconds() * 1e3 / static_cast<double>(reps);
      const MemStats ms_stats = be.mem_stats();
      const double n = static_cast<double>(reps);
      mem_table.add_row(
          {name, TextTable::fixed(ms, 3),
           TextTable::fixed(static_cast<double>(ms_stats.pool_misses) / n, 2),
           TextTable::fixed(static_cast<double>(ms_stats.pool_hits) / n, 2),
           TextTable::fixed(
               static_cast<double>(ms_stats.peak_bytes) / (1024.0 * 1024.0),
               2)});
    };
    std::size_t sink = 0;
    bench_op("multiply", [&] { sink += be.multiply(ca, cb).size(); });
    bench_op("rescale", [&] { sink += be.rescale(prod).size(); });
    bench_op("rotate", [&] { sink += be.rotate(ca, 1).size(); });
    std::printf("\nCKKS-RNS slab arena (N=2^13, warm pool):\n%s\n",
                mem_table.render().c_str());
    if (sink == 0) std::printf("(unreachable)\n");
  }
  return checked == 1000 ? 0 : 1;
}
