// Reproduces TABLE V: performance of CNN2-HE vs CNN2-HE-RNS (the
// CryptoNets-based two-convolution architecture of Fig. 4).
//
// Paper's reported numbers:
//   CNN2-HE      train 99.338%  Lat 25.62/40.21/39.91 s  Acc 99.21%
//   CNN2-HE-RNS  train 99.338%  Lat 21.91/28.35/23.67 s  Acc 99.21%
//   (40.69% average speed-up; 10.57x faster than CryptoNets' 250 s)

#include "bench_common.hpp"

using namespace pphe;
using namespace pphe::benchutil;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  // CNN2 is ~5-10x slower per inference than CNN1; halve the default sample
  // count so the bench stays minutes-scale (override with --samples).
  if (!flags.has("samples")) cfg.he_samples = std::max<std::size_t>(cfg.he_samples / 2, 2);
  print_header("TABLE V reproduction: CNN2-HE vs CNN2-HE-RNS", cfg);

  Experiment exp(cfg);
  const TrainedModel& model = exp.model(Arch::kCnn2, Activation::kSlaf);
  const ModelSpec spec = compile_model(model);

  std::vector<Row> rows;
  {
    auto backend = make_backend("big", cfg.ckks_params());
    HeModelOptions options;
    options.encrypted_weights = !flags.get_bool("plain-weights", false);
    options.rns_branches = 1;
    Row row;
    row.model_name = "CNN2-HE";
    row.train_acc = model.train_accuracy;
    row.eval = run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    std::printf("[CNN2-HE] setup: %.1f s\n", row.eval.setup_seconds);
    rows.push_back(std::move(row));
  }
  {
    auto backend = make_backend("rns", cfg.ckks_params());
    HeModelOptions options;
    options.encrypted_weights = !flags.get_bool("plain-weights", false);
    options.rns_branches =
        static_cast<std::size_t>(flags.get_int("branches", 3));
    Row row;
    row.model_name = "CNN2-HE-RNS";
    row.train_acc = model.train_accuracy;
    row.eval = run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    std::printf("[CNN2-HE-RNS] setup: %.1f s\n", row.eval.setup_seconds);
    rows.push_back(std::move(row));
  }

  print_rows(rows);
  print_speedup(rows[0], rows[1]);
  std::printf(
      "paper: CNN2-HE 25.62/40.21/39.91 s vs CNN2-HE-RNS 21.91/28.35/23.67 s "
      "(40.69%% speed-up), Acc 99.21%% for both; 10.57x faster than "
      "CryptoNets (250 s).\n");
  std::printf("CryptoNets comparison: our measured CNN2-HE-RNS avg %.2f s vs "
              "CryptoNets' published 250 s => %.1fx (hardware differs; see "
              "EXPERIMENTS.md).\n",
              rows[1].eval.eval_latency.avg(),
              250.0 / rows[1].eval.eval_latency.avg());
  return finish_trace(cfg) ? 0 : 1;
}
