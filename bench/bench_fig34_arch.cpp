// Reproduces Figs. 3 and 4 (the CNN1 and CNN2 architectures): prints each
// network layer by layer together with its homomorphic compilation cost —
// tile size, diagonal count, rotations, relinearizations, and the level each
// stage starts at. This is the textual rendering of the block diagrams.

#include <cmath>

#include "bench_common.hpp"

using namespace pphe;
using namespace pphe::benchutil;

namespace {

void report(Experiment& exp, Arch arch, HeBackend& backend) {
  const TrainedModel& model = exp.model(arch, Activation::kSlaf);
  const ModelSpec spec = compile_model(model);
  std::printf("\n=== %s (Fig. %d) ===\n", arch_name(arch).c_str(),
              arch == Arch::kCnn1 ? 3 : 4);
  std::printf("plaintext network:\n%s", model.network->describe().c_str());
  std::printf("lowered HE stages (depth %zu rescale levels):\n", spec.depth());

  HeModelOptions options;
  options.encrypted_weights = false;  // structure only; faster to compile
  const HeModel he(backend, spec, options);
  TextTable table({"stage", "tile", "diagonals", "rotations", "relins",
                   "level in", "scale in (log2)"});
  for (const auto& cost : he.cost_report()) {
    table.add_row({cost.name, std::to_string(cost.tile),
                   std::to_string(cost.diagonals),
                   std::to_string(cost.rotations), std::to_string(cost.relins),
                   std::to_string(cost.level_in),
                   TextTable::fixed(std::log2(cost.scale_in), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("rotation steps used: %zu distinct Galois keys\n",
              he.rotation_steps().size());
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  print_header("Figs. 3/4 reproduction: architecture and HE cost breakdown",
               cfg);
  Experiment exp(cfg);
  auto backend = make_backend("rns", cfg.ckks_params());
  report(exp, Arch::kCnn1, *backend);
  report(exp, Arch::kCnn2, *backend);
  return 0;
}
