// Reproduces TABLE I (state-of-the-art NN-HE comparison): runs OUR measured
// models — including a CryptoNets-style square-activation baseline we
// implement — and prints them next to the literature rows the paper lists.
// Only our rows are measured; the rest are the published numbers (different
// hardware/datasets, reproduced verbatim for context, as the paper does).

#include "bench_common.hpp"

using namespace pphe;
using namespace pphe::benchutil;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  if (!flags.has("samples")) cfg.he_samples = 2;
  print_header("TABLE I reproduction: state-of-the-art NN-HE comparison", cfg);

  Experiment exp(cfg);

  struct Measured {
    std::string name;
    double lat = 0.0;
    double acc = 0.0;
  };
  std::vector<Measured> ours;

  auto measure = [&](const std::string& name, Arch arch, Activation act,
                     const std::string& backend_kind, std::size_t branches) {
    const TrainedModel& model = exp.model(arch, act);
    const ModelSpec spec = compile_model(model);
    auto backend = make_backend(backend_kind, cfg.ckks_params());
    HeModelOptions options;
    options.encrypted_weights = flags.get_bool("encrypted-weights", false);
    options.rns_branches = branches;
    const EncryptedEvalResult r =
        run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    ours.push_back({name, r.eval_latency.avg(), r.spec_accuracy});
    std::printf("measured %s: %.2f s, %.2f%%\n", name.c_str(),
                r.eval_latency.avg(), r.spec_accuracy);
  };

  // Our CryptoNets-style baseline (square activations, CNN2 shape, non-RNS)
  // against the proposed RNS models; --full adds the non-RNS SLAF rows
  // (they are Table III/V territory and slow on the multiprecision backend).
  measure("CryptoNets-style (square, ours)", Arch::kCnn2, Activation::kSquare,
          "big", 1);
  measure("CNN1-HE-RNS (ours)", Arch::kCnn1, Activation::kSlaf, "rns", 3);
  measure("CNN2-HE-RNS (ours)", Arch::kCnn2, Activation::kSlaf, "rns", 3);
  if (flags.get_bool("full", false)) {
    measure("CNN1-HE-SLAF (ours)", Arch::kCnn1, Activation::kSlaf, "big", 1);
    measure("CNN2-HE-SLAF (ours)", Arch::kCnn2, Activation::kSlaf, "big", 1);
  }

  TextTable table({"Year", "Model", "Dataset", "Lat (s)", "Acc (%)", "Ref"});
  // Literature rows exactly as printed in the paper's Table I.
  table.add_row({"2016", "CryptoNets", "MNIST", "250", "98.95", "[20]"});
  table.add_row({"2018", "F-CryptoNets", "MNIST", "39.1", "98.70", "[24]"});
  table.add_row({"2018", "FHE-DiNN100", "MNIST", "1.65", "96.35", "[26]"});
  table.add_row({"2018", "TAPAS", "MNIST", "133200", "98.60", "[27]"});
  table.add_row({"2019", "SEALion", "MNIST", "60", "98.91", "[28]"});
  table.add_row({"2019", "CryptoDL", "MNIST", "148.97", "98.52", "[29]"});
  table.add_row({"2019", "Lo-La", "MNIST", "2.20", "98.95", "[31]"});
  table.add_row({"2019", "nGraph-HE", "MNIST", "16.72", "98.95", "[32]"});
  table.add_row({"2019", "E2DM", "MNIST", "1.69", "98.10", "[33]"});
  table.add_row({"2021", "HCNN (GPU)", "MNIST", "5.16", "99.00", "[35]"});
  table.add_row({"2022", "LeNet-HE", "MNIST", "138", "98.18", "[34]"});
  table.add_row({"2024", "CNN1-HE-SLAF", "MNIST", "3.13", "98.22", "[11]"});
  table.add_row({"2024", "CNN2-HE-SLAF", "MNIST", "39.84", "99.21", "[11]"});
  const std::string dataset = cfg.mnist_dir.empty() ? "synthMNIST" : "MNIST";
  for (const auto& m : ours) {
    table.add_row({"2026", m.name, dataset, TextTable::fixed(m.lat, 2),
                   TextTable::fixed(m.acc, 2), "here"});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nLiterature rows are the published values (various testbeds); 'ours'\n"
      "rows are measured in this build. The paper's headline — SLAF-RNS beats\n"
      "the CryptoNets-style square baseline at equal-or-better accuracy —\n"
      "should be visible in the measured rows.\n");
  return 0;
}
