// Reproduces the §III.C error analysis: the worked encoding example
// (M = 8, Delta = 64, z = (0.1, -0.01) -> m(X) = 3 + 2X - 2X^3, decoded
// (0.09107, 0.00268) with the sign of the second value destroyed) and the
// claim that increasing Delta shrinks the zero-neighbourhood error.

#include <cmath>
#include <cstdio>

#include "ckks/encoder.hpp"
#include "common/cli.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"

using namespace pphe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  (void)flags;

  std::printf("Section III.C reproduction: encoding errors near zero\n\n");

  // --- The paper's worked example, verbatim. ---
  const CkksEncoder enc4(4);
  const std::vector<double> z{0.1, -0.01};
  const auto coeffs = enc4.encode(z, 64.0);
  std::printf("M = 8 (N = 4), Delta = 64, z = (0.1, -0.01)\n");
  std::printf("encoded m(X) = %lld + %lldX + %lldX^2 + %lldX^3  (paper: 3 + 2X - 2X^3)\n",
              static_cast<long long>(coeffs[0]),
              static_cast<long long>(coeffs[1]),
              static_cast<long long>(coeffs[2]),
              static_cast<long long>(coeffs[3]));
  std::vector<double> dc(coeffs.begin(), coeffs.end());
  const auto decoded = enc4.decode_real(dc, 64.0);
  std::printf("decoded = (%.5f, %.5f)   (paper: (0.09107, 0.00268))\n",
              decoded[0], decoded[1]);
  std::printf("note: -0.01 decoded to %+.5f — the sign is lost, exactly the\n"
              "zero-neighbourhood hazard §III.C warns about.\n\n",
              decoded[1]);

  // --- Error vs Delta sweep (the "increasing Delta reduces the error" claim). ---
  std::printf("max |decode(encode(z)) - z| over random z in [-1, 1], N = 4096:\n");
  const CkksEncoder enc(4096);
  Prng prng(7);
  std::vector<double> values(enc.slot_count());
  for (auto& v : values) v = prng.uniform_double() * 2.0 - 1.0;

  TextTable table({"Delta", "max abs error", "bits of precision"});
  for (int bits = 6; bits <= 50; bits += 4) {
    const double delta = std::ldexp(1.0, bits);
    const auto c = enc.encode(values, delta);
    std::vector<double> cd(c.begin(), c.end());
    const auto back = enc.decode_real(cd, delta);
    double max_err = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      max_err = std::max(max_err, std::abs(back[i] - values[i]));
    }
    table.add_row({"2^" + std::to_string(bits),
                   TextTable::fixed(max_err, 12),
                   TextTable::fixed(-std::log2(max_err), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nThe error shrinks geometrically with Delta: each extra scale bit\n"
              "buys one bit of fixed-point precision (Table II uses Delta = 2^26).\n");
  return 0;
}
