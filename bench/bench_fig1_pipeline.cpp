// Reproduces Fig. 1 (privacy-preserving processing in a cloud environment):
// measures the full encrypt -> blind cloud inference -> decrypt round trip
// stage by stage, showing that the cloud side touches ciphertexts only.

#include "bench_common.hpp"

using namespace pphe;
using namespace pphe::benchutil;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  if (!flags.has("samples")) cfg.he_samples = 3;
  print_header("Fig. 1 reproduction: end-to-end pipeline stage breakdown", cfg);

  Experiment exp(cfg);
  const ModelSpec spec = exp.spec(Arch::kCnn1, Activation::kSlaf);
  auto backend = make_backend("rns", cfg.ckks_params());
  HeModelOptions options;
  options.encrypted_weights = true;
  options.rns_branches = 3;
  const HeModel model(*backend, spec, options);

  TextTable table({"image", "client encrypt (s)", "cloud eval (s)",
                   "client decrypt (s)", "prediction", "label"});
  double enc = 0, ev = 0, dec = 0;
  for (std::size_t i = 0; i < cfg.he_samples; ++i) {
    const float* img = exp.test_set().images.data() + i * 784;
    const InferenceResult r =
        model.infer(std::vector<float>(img, img + 784));
    table.add_row({std::to_string(i), TextTable::fixed(r.encrypt_seconds, 3),
                   TextTable::fixed(r.eval_seconds, 2),
                   TextTable::fixed(r.decrypt_seconds, 3),
                   std::to_string(r.predicted),
                   std::to_string(exp.test_set().labels[i])});
    enc += r.encrypt_seconds;
    ev += r.eval_seconds;
    dec += r.decrypt_seconds;
  }
  std::printf("%s", table.render().c_str());
  const double n = static_cast<double>(cfg.he_samples);
  std::printf(
      "\naverages: encrypt %.3f s | cloud eval %.2f s | decrypt %.3f s\n"
      "client-side work is %.1f%% of the round trip — the heavy lifting\n"
      "happens blind, on ciphertexts, exactly as Fig. 1 depicts.\n",
      enc / n, ev / n, dec / n, 100.0 * (enc + dec) / (enc + ev + dec));
  return finish_trace(cfg) ? 0 : 1;
}
