// Batch-serving throughput sweep: drives the BatchServer (src/serve/) with
// synthetic load at SIMD batch sizes {1, 4, 8, 16} and reports throughput
// (img/s) plus per-request p50/p99 latency. The interesting number is the
// amortization curve: a batch-8 evaluation costs roughly one batch-1
// evaluation (same ciphertext, same rotations), so throughput should scale
// near-linearly with the batch until the slots run out.
//
//   bench_serving [--images=N] [--workers=N] [--linger-ms=MS] [--json]
//                 [--net]
//
// --json drops BENCH_serving.json in the CWD, shaped like a
// google-benchmark export ("benchmarks" rows with run_type "iteration" and
// per-image "real_time" in ns) so run_benches.sh can reuse the BENCH_micro
// drift machinery, plus a top-level batch-8-vs-1 speedup field the quick
// gate asserts on.
//
// --net appends a loopback sweep through the full network stack (NetServer
// + framed NetClient sessions over real TCP) at batch 8, measured
// back-to-back against an identical in-process point, and drops
// BENCH_net.json: both points, the socket overhead percentage the quick
// gate bounds at <15%, and the raw /metrics payload scraped over HTTP so
// the gate can validate the Prometheus exposition too.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/cli.hpp"
#include "common/prng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "serve/net/net_client.hpp"
#include "serve/net/net_server.hpp"
#include "serve/server.hpp"

using namespace pphe;

namespace {

// test_small with a 7-prime chain: enough levels for the 3-stage spec below
// while keeping N=2048 (1024 slots) so the sweep runs in seconds on 1 core.
CkksParams bench_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

// Synthetic 64 -> 32 -> (deg-2 activation) -> 16 model: tile 64, so 1024
// slots hold exactly the batch-16 top of the sweep. Seeded, not trained —
// throughput does not care about accuracy.
ModelSpec bench_spec() {
  Prng prng(1234);
  ModelSpec spec;
  spec.name = "serving-bench";
  auto linear = [&](std::size_t in, std::size_t out) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = in;
    s.linear.out_dim = out;
    s.linear.weight.resize(in * out);
    s.linear.bias.resize(out);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.2);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(64, 32));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = 32;
    s.activation.degree = 2;
    s.activation.coeffs.resize(32 * 3);
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(32, 16));
  return spec;
}

struct SweepPoint {
  std::size_t batch = 0;
  std::size_t images = 0;
  std::uint64_t batches = 0;
  double wall_seconds = 0.0;
  double throughput = 0.0;  // img/s
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

SweepPoint run_point(serve::BatchModelSet& models, std::size_t batch,
                     std::size_t images, std::size_t workers,
                     double linger_ms) {
  serve::ServerOptions opts;
  opts.workers = workers;
  opts.max_batch = batch;
  // Generous linger: back-to-back submits always coalesce to full batches
  // (a full batch cuts immediately), so linger never gates throughput here.
  opts.linger_ms = linger_ms;
  opts.queue_capacity = images + 16;
  serve::BatchServer server(models, opts);

  // Warm wave (untimed): first evaluation at this batch size pays any lazy
  // backend setup (NTT permutation maps, Galois-key lookups).
  {
    std::vector<std::future<serve::ServeReply>> warm;
    for (std::size_t i = 0; i < batch; ++i) {
      Prng prng(9000 + i);
      std::vector<float> img(64);
      for (auto& v : img) v = static_cast<float>(prng.uniform_double());
      warm.push_back(server.submit(std::move(img)));
    }
    for (auto& f : warm) f.get();
  }

  std::vector<std::vector<float>> pool(images);
  for (std::size_t i = 0; i < images; ++i) {
    Prng prng(100 + i);
    pool[i].resize(64);
    for (auto& v : pool[i]) v = static_cast<float>(prng.uniform_double());
  }

  Stopwatch wall;
  std::vector<std::future<serve::ServeReply>> futures;
  futures.reserve(images);
  for (auto& img : pool) futures.push_back(server.submit(std::move(img)));
  LatencyStats latency;
  for (auto& f : futures) {
    const serve::ServeReply reply = f.get();
    if (!reply.ok) {
      std::fprintf(stderr, "bench_serving: reply failed (%s)\n",
                   reply.message.c_str());
      std::exit(1);
    }
    latency.add(reply.queue_seconds + reply.eval_seconds);
  }
  const double seconds = wall.seconds();
  const serve::ServerStats stats = server.stats();

  SweepPoint point;
  point.batch = batch;
  point.images = images;
  point.batches = stats.batches - 1;  // minus the warm wave
  point.wall_seconds = seconds;
  point.throughput = static_cast<double>(images) / seconds;
  point.p50_ms = latency.percentile(0.5) * 1e3;
  point.p99_ms = latency.percentile(0.99) * 1e3;
  return point;
}

/// Scrapes GET /metrics over a raw HTTP/1.0 connection and returns the body
/// — the exposition exactly as a Prometheus scraper would see it.
std::string scrape_metrics(std::uint16_t port) {
  serve::net::TcpConn conn = serve::net::tcp_connect("127.0.0.1", port, 5.0);
  conn.send_all("GET /metrics HTTP/1.0\r\n\r\n");
  std::string text;
  char buf[4096];
  for (;;) {
    const std::size_t n = conn.recv_some(buf, sizeof(buf), 5.0);
    if (n == 0) break;
    text.append(buf, n);
  }
  const auto pos = text.find("\r\n\r\n");
  return pos == std::string::npos ? text : text.substr(pos + 4);
}

/// One loopback point through the FULL network stack: a NetServer fronting
/// the same BatchServer configuration, `batch` framed client sessions over
/// real TCP, each classifying its share of the images synchronously. The
/// handshake, key upload, and a parallel warm wave are untimed (they are
/// per-session setup, not per-image cost); the timed region is exactly the
/// request/reply traffic, so the point is directly comparable to the
/// in-process run_point above.
SweepPoint run_net_point(const RnsBackend& backend,
                         serve::BatchModelSet& models, std::size_t batch,
                         std::size_t images, std::size_t workers,
                         double linger_ms, std::string* metrics_payload) {
  serve::ServerOptions opts;
  opts.workers = workers;
  opts.max_batch = batch;
  opts.linger_ms = linger_ms;
  opts.queue_capacity = images + 16;
  serve::BatchServer server(models, opts);
  serve::net::NetServer net(server, backend, {});

  const std::size_t clients = batch;
  const std::size_t per_client = images / clients;
  std::vector<std::unique_ptr<serve::net::NetClient>> sessions;
  for (std::size_t c = 0; c < clients; ++c) {
    serve::net::NetClientOptions copts;
    copts.port = net.port();
    copts.name = "bench-" + std::to_string(c);
    sessions.push_back(std::make_unique<serve::net::NetClient>(
        backend.params(), copts));
    sessions.back()->upload_keys({});
  }

  auto make_image = [](std::uint64_t seed) {
    Prng prng(seed);
    std::vector<float> img(64);
    for (auto& v : img) v = static_cast<float>(prng.uniform_double());
    return img;
  };

  // Parallel warm wave (untimed): one aligned full batch pays any remaining
  // lazy setup and leaves every session parked right before its first timed
  // request.
  {
    std::vector<std::thread> warm;
    for (std::size_t c = 0; c < clients; ++c) {
      warm.emplace_back([&, c] {
        const serve::net::NetReply r =
            sessions[c]->classify(make_image(9000 + c));
        if (!r.ok) {
          std::fprintf(stderr, "bench_serving: net warm failed (%s)\n",
                       r.message.c_str());
          std::exit(1);
        }
      });
    }
    for (auto& t : warm) t.join();
  }
  const std::uint64_t warm_batches = server.stats().batches;

  std::vector<std::vector<double>> latencies(clients);
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        Stopwatch rt;
        const serve::net::NetReply reply =
            sessions[c]->classify(make_image(100 + c * per_client + i));
        if (!reply.ok) {
          std::fprintf(stderr, "bench_serving: net reply failed (%s)\n",
                       reply.message.c_str());
          std::exit(1);
        }
        latencies[c].push_back(rt.seconds());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();

  // Scrape over real HTTP while the traffic's counters are still live, so
  // the gate validates the endpoint a Prometheus scraper would actually hit.
  if (metrics_payload) *metrics_payload = scrape_metrics(net.port());

  LatencyStats latency;
  for (const auto& per : latencies) {
    for (const double s : per) latency.add(s);
  }
  SweepPoint point;
  point.batch = batch;
  point.images = per_client * clients;
  point.batches = server.stats().batches - warm_batches;
  point.wall_seconds = seconds;
  point.throughput = static_cast<double>(point.images) / seconds;
  point.p50_ms = latency.percentile(0.5) * 1e3;
  point.p99_ms = latency.percentile(0.99) * 1e3;
  return point;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 16);
  for (const unsigned char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", ch);
          out += hex;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

bool write_net_json(const std::string& path, const SweepPoint& inproc,
                    const SweepPoint& net, double overhead_pct,
                    std::size_t workers, const std::string& metrics_payload) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"context\": {\"name\": \"bench_serving_net\", "
               "\"workers\": %zu, \"clients\": %zu},\n  \"benchmarks\": [\n",
               workers, net.batch);
  const SweepPoint* rows[] = {&inproc, &net};
  const char* names[] = {"inproc/batch:8", "net/batch:8"};
  for (int i = 0; i < 2; ++i) {
    const SweepPoint& p = *rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
        "\"real_time\": %.1f, \"cpu_time\": %.1f, \"time_unit\": \"ns\", "
        "\"iterations\": %zu, \"images_per_second\": %.3f, "
        "\"batches\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        names[i], 1e9 / p.throughput, 1e9 / p.throughput, p.images,
        p.throughput, static_cast<unsigned long long>(p.batches), p.p50_ms,
        p.p99_ms, i == 0 ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"socket_overhead_pct\": %.3f,\n"
               "  \"metrics_payload\": \"%s\"\n}\n",
               overhead_pct, json_escape(metrics_payload).c_str());
  std::fclose(f);
  return true;
}

bool write_json(const std::string& path, const std::vector<SweepPoint>& points,
                std::size_t workers, double speedup_8v1) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"context\": {\"name\": \"bench_serving\", "
               "\"workers\": %zu},\n  \"benchmarks\": [\n", workers);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"name\": \"serving/batch:%zu\", \"run_type\": \"iteration\", "
        "\"real_time\": %.1f, \"cpu_time\": %.1f, \"time_unit\": \"ns\", "
        "\"iterations\": %zu, \"images_per_second\": %.3f, "
        "\"batches\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        p.batch, 1e9 / p.throughput, 1e9 / p.throughput, p.images,
        p.throughput, static_cast<unsigned long long>(p.batches), p.p50_ms,
        p.p99_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup_batch8_vs_batch1\": %.3f\n}\n",
               speedup_8v1);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.get_int("images", 48));
  const std::size_t workers =
      static_cast<std::size_t>(flags.get_int("workers", 1));
  const double linger_ms = flags.get_double("linger-ms", 50.0);
  const std::string trace_out = init_tracing_from_flags(flags);

  std::printf("batch-serving throughput sweep (serve::BatchServer)\n");
  RnsBackend backend(bench_params());
  std::printf("params: %s\n", backend.params().describe().c_str());

  HeModelOptions base;
  base.encrypted_weights = false;  // CryptoNets setting: throughput focus
  serve::BatchModelSet models(backend, bench_spec(), base);
  std::printf("model: 64->32->act(deg2)->16, tile 64, max batch %zu; "
              "%zu images per point, %zu worker%s\n\n",
              models.max_batch(), images, workers, workers == 1 ? "" : "s");

  std::vector<SweepPoint> points;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}, std::size_t{16}}) {
    if (batch > models.max_batch()) {
      std::printf("skipping batch %zu (> max batch %zu)\n", batch,
                  models.max_batch());
      continue;
    }
    points.push_back(run_point(models, batch, images, workers, linger_ms));
  }

  const SweepPoint* base1 = nullptr;
  const SweepPoint* base8 = nullptr;
  for (const SweepPoint& p : points) {
    if (p.batch == 1) base1 = &p;
    if (p.batch == 8) base8 = &p;
  }

  TextTable table({"batch", "images", "evals", "wall (s)", "img/s",
                   "p50 (ms)", "p99 (ms)", "x vs batch=1"});
  for (const SweepPoint& p : points) {
    table.add_row({std::to_string(p.batch), std::to_string(p.images),
                   std::to_string(p.batches),
                   TextTable::fixed(p.wall_seconds, 2),
                   TextTable::fixed(p.throughput, 2),
                   TextTable::fixed(p.p50_ms, 1), TextTable::fixed(p.p99_ms, 1),
                   base1 ? TextTable::fixed(p.throughput / base1->throughput, 2)
                         : "-"});
  }
  std::printf("%s", table.render().c_str());

  const double speedup_8v1 =
      (base1 && base8) ? base8->throughput / base1->throughput : 0.0;
  if (base1 && base8) {
    std::printf("\nslot-packing amortization: batch=8 throughput is %.2fx "
                "batch=1 (one ciphertext, 8 images)\n", speedup_8v1);
  }

  if (flags.has("json")) {
    const std::string path = "BENCH_serving.json";
    if (!write_json(path, points, workers, speedup_8v1)) {
      std::fprintf(stderr, "bench_serving: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
  }

  if (flags.has("net")) {
    // Loopback comparison at batch 8: the in-process reference and the
    // network point run back-to-back, best-of-2 each, interleaved — the two
    // measurements the overhead ratio divides should see the SAME host
    // load, not two different moments of it. The net point needs enough
    // images per rep that a single misaligned batch cut cannot dominate.
    const std::size_t net_batch = std::min<std::size_t>(8, models.max_batch());
    std::size_t net_images = std::max<std::size_t>(images, 48);
    net_images = (net_images + net_batch - 1) / net_batch * net_batch;
    std::printf("\nloopback sweep: batch %zu, %zu images, %zu framed TCP "
                "sessions\n", net_batch, net_images, net_batch);

    SweepPoint inproc{};
    SweepPoint netp{};
    std::string metrics_payload;
    for (int rep = 0; rep < 2; ++rep) {
      const SweepPoint i =
          run_point(models, net_batch, net_images, workers, linger_ms);
      if (i.throughput > inproc.throughput) inproc = i;
      const SweepPoint n = run_net_point(backend, models, net_batch,
                                         net_images, workers, linger_ms,
                                         &metrics_payload);
      if (n.throughput > netp.throughput) netp = n;
    }
    const double overhead_pct =
        (inproc.throughput / netp.throughput - 1.0) * 100.0;
    std::printf("in-process: %.2f img/s (p50 %.1f ms)  over TCP: %.2f img/s "
                "(p50 %.1f ms)  socket overhead: %.1f%%\n",
                inproc.throughput, inproc.p50_ms, netp.throughput, netp.p50_ms,
                overhead_pct);
    std::printf("/metrics scrape: %zu bytes\n", metrics_payload.size());

    if (flags.has("json")) {
      const std::string path = "BENCH_net.json";
      if (!write_net_json(path, inproc, netp, overhead_pct, workers,
                          metrics_payload)) {
        std::fprintf(stderr, "bench_serving: cannot write %s\n", path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return finish_tracing(trace_out) ? 0 : 1;
}
