// Batch-serving throughput sweep: drives the BatchServer (src/serve/) with
// synthetic load at SIMD batch sizes {1, 4, 8, 16} and reports throughput
// (img/s) plus per-request p50/p99 latency. The interesting number is the
// amortization curve: a batch-8 evaluation costs roughly one batch-1
// evaluation (same ciphertext, same rotations), so throughput should scale
// near-linearly with the batch until the slots run out.
//
//   bench_serving [--images=N] [--workers=N] [--linger-ms=MS] [--json]
//
// --json drops BENCH_serving.json in the CWD, shaped like a
// google-benchmark export ("benchmarks" rows with run_type "iteration" and
// per-image "real_time" in ns) so run_benches.sh can reuse the BENCH_micro
// drift machinery, plus a top-level batch-8-vs-1 speedup field the quick
// gate asserts on.

#include <cstdio>
#include <string>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/cli.hpp"
#include "common/prng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "serve/server.hpp"

using namespace pphe;

namespace {

// test_small with a 7-prime chain: enough levels for the 3-stage spec below
// while keeping N=2048 (1024 slots) so the sweep runs in seconds on 1 core.
CkksParams bench_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

// Synthetic 64 -> 32 -> (deg-2 activation) -> 16 model: tile 64, so 1024
// slots hold exactly the batch-16 top of the sweep. Seeded, not trained —
// throughput does not care about accuracy.
ModelSpec bench_spec() {
  Prng prng(1234);
  ModelSpec spec;
  spec.name = "serving-bench";
  auto linear = [&](std::size_t in, std::size_t out) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = in;
    s.linear.out_dim = out;
    s.linear.weight.resize(in * out);
    s.linear.bias.resize(out);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.2);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(64, 32));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = 32;
    s.activation.degree = 2;
    s.activation.coeffs.resize(32 * 3);
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(32, 16));
  return spec;
}

struct SweepPoint {
  std::size_t batch = 0;
  std::size_t images = 0;
  std::uint64_t batches = 0;
  double wall_seconds = 0.0;
  double throughput = 0.0;  // img/s
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

SweepPoint run_point(serve::BatchModelSet& models, std::size_t batch,
                     std::size_t images, std::size_t workers,
                     double linger_ms) {
  serve::ServerOptions opts;
  opts.workers = workers;
  opts.max_batch = batch;
  // Generous linger: back-to-back submits always coalesce to full batches
  // (a full batch cuts immediately), so linger never gates throughput here.
  opts.linger_ms = linger_ms;
  opts.queue_capacity = images + 16;
  serve::BatchServer server(models, opts);

  // Warm wave (untimed): first evaluation at this batch size pays any lazy
  // backend setup (NTT permutation maps, Galois-key lookups).
  {
    std::vector<std::future<serve::ServeReply>> warm;
    for (std::size_t i = 0; i < batch; ++i) {
      Prng prng(9000 + i);
      std::vector<float> img(64);
      for (auto& v : img) v = static_cast<float>(prng.uniform_double());
      warm.push_back(server.submit(std::move(img)));
    }
    for (auto& f : warm) f.get();
  }

  std::vector<std::vector<float>> pool(images);
  for (std::size_t i = 0; i < images; ++i) {
    Prng prng(100 + i);
    pool[i].resize(64);
    for (auto& v : pool[i]) v = static_cast<float>(prng.uniform_double());
  }

  Stopwatch wall;
  std::vector<std::future<serve::ServeReply>> futures;
  futures.reserve(images);
  for (auto& img : pool) futures.push_back(server.submit(std::move(img)));
  LatencyStats latency;
  for (auto& f : futures) {
    const serve::ServeReply reply = f.get();
    if (!reply.ok) {
      std::fprintf(stderr, "bench_serving: reply failed (%s)\n",
                   reply.message.c_str());
      std::exit(1);
    }
    latency.add(reply.queue_seconds + reply.eval_seconds);
  }
  const double seconds = wall.seconds();
  const serve::ServerStats stats = server.stats();

  SweepPoint point;
  point.batch = batch;
  point.images = images;
  point.batches = stats.batches - 1;  // minus the warm wave
  point.wall_seconds = seconds;
  point.throughput = static_cast<double>(images) / seconds;
  point.p50_ms = latency.percentile(0.5) * 1e3;
  point.p99_ms = latency.percentile(0.99) * 1e3;
  return point;
}

bool write_json(const std::string& path, const std::vector<SweepPoint>& points,
                std::size_t workers, double speedup_8v1) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"context\": {\"name\": \"bench_serving\", "
               "\"workers\": %zu},\n  \"benchmarks\": [\n", workers);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"name\": \"serving/batch:%zu\", \"run_type\": \"iteration\", "
        "\"real_time\": %.1f, \"cpu_time\": %.1f, \"time_unit\": \"ns\", "
        "\"iterations\": %zu, \"images_per_second\": %.3f, "
        "\"batches\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        p.batch, 1e9 / p.throughput, 1e9 / p.throughput, p.images,
        p.throughput, static_cast<unsigned long long>(p.batches), p.p50_ms,
        p.p99_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup_batch8_vs_batch1\": %.3f\n}\n",
               speedup_8v1);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::size_t images =
      static_cast<std::size_t>(flags.get_int("images", 48));
  const std::size_t workers =
      static_cast<std::size_t>(flags.get_int("workers", 1));
  const double linger_ms = flags.get_double("linger-ms", 50.0);
  const std::string trace_out = init_tracing_from_flags(flags);

  std::printf("batch-serving throughput sweep (serve::BatchServer)\n");
  RnsBackend backend(bench_params());
  std::printf("params: %s\n", backend.params().describe().c_str());

  HeModelOptions base;
  base.encrypted_weights = false;  // CryptoNets setting: throughput focus
  serve::BatchModelSet models(backend, bench_spec(), base);
  std::printf("model: 64->32->act(deg2)->16, tile 64, max batch %zu; "
              "%zu images per point, %zu worker%s\n\n",
              models.max_batch(), images, workers, workers == 1 ? "" : "s");

  std::vector<SweepPoint> points;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}, std::size_t{16}}) {
    if (batch > models.max_batch()) {
      std::printf("skipping batch %zu (> max batch %zu)\n", batch,
                  models.max_batch());
      continue;
    }
    points.push_back(run_point(models, batch, images, workers, linger_ms));
  }

  const SweepPoint* base1 = nullptr;
  const SweepPoint* base8 = nullptr;
  for (const SweepPoint& p : points) {
    if (p.batch == 1) base1 = &p;
    if (p.batch == 8) base8 = &p;
  }

  TextTable table({"batch", "images", "evals", "wall (s)", "img/s",
                   "p50 (ms)", "p99 (ms)", "x vs batch=1"});
  for (const SweepPoint& p : points) {
    table.add_row({std::to_string(p.batch), std::to_string(p.images),
                   std::to_string(p.batches),
                   TextTable::fixed(p.wall_seconds, 2),
                   TextTable::fixed(p.throughput, 2),
                   TextTable::fixed(p.p50_ms, 1), TextTable::fixed(p.p99_ms, 1),
                   base1 ? TextTable::fixed(p.throughput / base1->throughput, 2)
                         : "-"});
  }
  std::printf("%s", table.render().c_str());

  const double speedup_8v1 =
      (base1 && base8) ? base8->throughput / base1->throughput : 0.0;
  if (base1 && base8) {
    std::printf("\nslot-packing amortization: batch=8 throughput is %.2fx "
                "batch=1 (one ciphertext, 8 images)\n", speedup_8v1);
  }

  if (flags.has("json")) {
    const std::string path = "BENCH_serving.json";
    if (!write_json(path, points, workers, speedup_8v1)) {
      std::fprintf(stderr, "bench_serving: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
  }
  return finish_tracing(trace_out) ? 0 : 1;
}
