// Reproduces TABLE II (CKKS-RNS security settings): builds the parameter set,
// verifies the generated moduli chain against the published shape, and checks
// the lambda = 128 claim against the HE security standard the paper cites.

#include <cmath>
#include <cstdio>

#include "ckks/params.hpp"
#include "ckks/rns_backend.hpp"
#include "ckks/security.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace pphe;

namespace {

void report(const char* title, const CkksParams& params) {
  std::printf("\n=== %s ===\n", title);
  TextTable table({"Parameter", "Value (paper)", "Value (this build)"});
  table.add_row({"lambda", "128",
                 std::to_string(estimate_security_level(
                     params.degree, params.log_q_with_special()))});
  table.add_row({"N", "2^14 = 16384", std::to_string(params.degree)});
  table.add_row({"Delta", "2^26",
                 "2^" + TextTable::fixed(std::log2(params.scale), 0)});
  table.add_row({"log q", "366",
                 std::to_string(params.log_q_with_special())});
  table.add_row({"L (moduli)", "13",
                 std::to_string(params.chain_length() + 1)});
  std::string chain = "[";
  for (std::size_t i = 0; i < params.q_bit_sizes.size(); ++i) {
    chain += std::to_string(params.q_bit_sizes[i]) + ", ";
  }
  chain += std::to_string(params.special_bit_size) + "]";
  table.add_row({"q (bit sizes)", "[40, 26, ..., 26, 40]", chain});
  std::printf("%s", table.render().c_str());
  std::printf("security: %s\n", describe_security(params).c_str());

  // Instantiate the backend to prove the chain actually exists: distinct
  // NTT-friendly primes of exactly the requested widths.
  const RnsBackend backend(params);
  std::printf("generated %zu ciphertext primes + 1 key-switching prime, "
              "all distinct, all = 1 mod 2N:\n  ",
              backend.q_moduli().size());
  for (const auto& m : backend.q_moduli()) {
    std::printf("%llu ", static_cast<unsigned long long>(m.value()));
  }
  std::printf("| special %llu\n",
              static_cast<unsigned long long>(backend.special_modulus()));
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  std::printf("TABLE II reproduction: CKKS-RNS security settings\n");

  report("paper profile (Table II exactly)", CkksParams::paper_table2());
  if (!flags.get_bool("paper-only", false)) {
    report("fast profile (smaller ring, same chain; default for benches)",
           CkksParams::fast_profile());
  }

  std::printf("\nHE-standard maximum log q at lambda=128:\n");
  TextTable bounds({"N", "max log q (classical, ternary secret)"});
  for (const std::size_t n : {1024u, 2048u, 4096u, 8192u, 16384u, 32768u}) {
    bounds.add_row({std::to_string(n),
                    std::to_string(he_standard_max_log_q(n, 128))});
  }
  std::printf("%s", bounds.render().c_str());
  return 0;
}
