// Numerical gradient checking for every trainable layer: the analytic
// backward pass must match central finite differences. This is the property
// that makes the §V.D training loop trustworthy.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/prng.hpp"
#include "nn/layers.hpp"

namespace pphe {
namespace {

constexpr float kEps = 1e-3f;
constexpr float kTol = 2e-2f;  // relative

float rel_err(float a, float b) {
  const float m = std::max({std::abs(a), std::abs(b), 1e-4f});
  return std::abs(a - b) / m;
}

/// Scalar loss = sum of outputs weighted by a fixed random mask, so gradient
/// checks exercise every output coordinate.
float masked_loss(Layer& layer, const Tensor& x, const Tensor& mask) {
  Tensor y = layer.forward(x, true);
  float loss = 0.0f;
  for (std::size_t i = 0; i < y.size(); ++i) loss += y[i] * mask[i];
  return loss;
}

void check_input_gradient(Layer& layer, Tensor x, std::size_t out_size,
                          std::uint64_t seed) {
  Prng prng(seed);
  Tensor mask({out_size});
  for (std::size_t i = 0; i < out_size; ++i) {
    mask[i] = static_cast<float>(prng.normal());
  }

  // Analytic input gradient.
  Tensor y = layer.forward(x, true);
  Tensor grad_out(y.shape());
  for (std::size_t i = 0; i < y.size(); ++i) grad_out[i] = mask[i];
  for (Param* p : layer.params()) p->grad.fill(0.0f);
  const Tensor grad_in = layer.backward(grad_out);

  // Numerical input gradient at a handful of coordinates.
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const std::size_t i = prng.uniform_below(x.size());
    const float orig = x[i];
    x[i] = orig + kEps;
    const float up = masked_loss(layer, x, mask);
    x[i] = orig - kEps;
    const float down = masked_loss(layer, x, mask);
    x[i] = orig;
    const float numeric = (up - down) / (2 * kEps);
    EXPECT_LT(rel_err(grad_in[i], numeric), kTol)
        << "input coord " << i << " analytic " << grad_in[i] << " numeric "
        << numeric;
  }
}

void check_param_gradient(Layer& layer, Tensor x, std::size_t out_size,
                          std::uint64_t seed) {
  Prng prng(seed ^ 0xabc);
  Tensor mask({out_size});
  for (std::size_t i = 0; i < out_size; ++i) {
    mask[i] = static_cast<float>(prng.normal());
  }

  Tensor y = layer.forward(x, true);
  Tensor grad_out(y.shape());
  for (std::size_t i = 0; i < y.size(); ++i) grad_out[i] = mask[i];
  for (Param* p : layer.params()) p->grad.fill(0.0f);
  layer.backward(grad_out);

  for (Param* p : layer.params()) {
    for (std::size_t trial = 0; trial < 8; ++trial) {
      const std::size_t i = prng.uniform_below(p->value.size());
      const float orig = p->value[i];
      p->value[i] = orig + kEps;
      const float up = masked_loss(layer, x, mask);
      p->value[i] = orig - kEps;
      const float down = masked_loss(layer, x, mask);
      p->value[i] = orig;
      const float numeric = (up - down) / (2 * kEps);
      EXPECT_LT(rel_err(p->grad[i], numeric), kTol)
          << "param coord " << i << " analytic " << p->grad[i] << " numeric "
          << numeric;
    }
  }
}

Tensor random_input(std::vector<std::size_t> shape, std::uint64_t seed) {
  Prng prng(seed);
  Tensor x(std::move(shape));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(prng.normal() * 0.7);
  }
  return x;
}

TEST(GradCheck, Conv2D) {
  Prng prng(1);
  Conv2D conv(2, 3, 3, 2, prng);
  const Tensor x = random_input({2, 2, 7, 7}, 11);
  check_input_gradient(conv, x, 2 * 3 * 3 * 3, 21);
  check_param_gradient(conv, x, 2 * 3 * 3 * 3, 22);
}

TEST(GradCheck, Dense) {
  Prng prng(2);
  Dense dense(10, 6, prng);
  const Tensor x = random_input({3, 10}, 12);
  check_input_gradient(dense, x, 18, 23);
  check_param_gradient(dense, x, 18, 24);
}

TEST(GradCheck, BatchNorm2D) {
  BatchNorm2D bn(3);
  const Tensor x = random_input({4, 3, 3, 3}, 13);
  check_input_gradient(bn, x, 4 * 27, 25);
  check_param_gradient(bn, x, 4 * 27, 26);
}

TEST(GradCheck, ReLU) {
  ReLU relu;
  // Keep inputs away from the kink at 0.
  Tensor x = random_input({2, 12}, 14);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  check_input_gradient(relu, x, 24, 27);
}

TEST(GradCheck, Square) {
  Square square;
  const Tensor x = random_input({2, 12}, 15);
  check_input_gradient(square, x, 24, 28);
}

TEST(GradCheck, SlafWithNonzeroCoefficients) {
  Slaf slaf(6, 3);
  Prng prng(16);
  for (std::size_t i = 0; i < slaf.coeffs().value.size(); ++i) {
    slaf.coeffs().value[i] = static_cast<float>(prng.normal() * 0.3);
  }
  const Tensor x = random_input({3, 6}, 17);
  check_input_gradient(slaf, x, 18, 29);
  check_param_gradient(slaf, x, 18, 30);
}

TEST(GradCheck, SlafAtZeroInitGetsCoefficientGradients) {
  // With zero coefficients the input gradient is zero but the coefficient
  // gradients must be the input powers — this is what lets the CNN-HE-SLAF
  // re-training phase escape the zero initialization (§III.B).
  Slaf slaf(2, 2);
  Tensor x({1, 2});
  x[0] = 2.0f;
  x[1] = -1.0f;
  slaf.forward(x, true);
  Tensor grad_out({1, 2});
  grad_out[0] = 1.0f;
  grad_out[1] = 1.0f;
  const Tensor grad_in = slaf.backward(grad_out);
  EXPECT_FLOAT_EQ(grad_in[0], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[1], 0.0f);
  EXPECT_FLOAT_EQ(slaf.coeffs().grad.at2(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(slaf.coeffs().grad.at2(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(slaf.coeffs().grad.at2(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(slaf.coeffs().grad.at2(1, 1), -1.0f);
  EXPECT_FLOAT_EQ(slaf.coeffs().grad.at2(1, 2), 1.0f);
}

}  // namespace
}  // namespace pphe
