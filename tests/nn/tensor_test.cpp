#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(Tensor, ConstructionZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullFills) {
  const Tensor t = Tensor::full({4}, 2.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, At2RowMajor) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at2(1, 2), 7.0f);
}

TEST(Tensor, At4Indexing) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r.dim(1), 4u);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
}

TEST(Tensor, ReshapeSizeMismatchThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({7}), Error);
}

TEST(Tensor, EmptyShapeThrows) {
  EXPECT_THROW(Tensor(std::vector<std::size_t>{}), Error);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).shape_string(), "(2, 3)");
  EXPECT_EQ(Tensor({5}).shape_string(), "(5)");
}

}  // namespace
}  // namespace pphe
