#include "nn/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(CrossEntropy, UniformLogitsGiveLogK) {
  Tensor logits({2, 10});
  Tensor grad;
  const float loss = cross_entropy(logits, {3, 7}, 0, grad);
  EXPECT_NEAR(loss, std::log(10.0f), 1e-5);
  // Gradient: (softmax - onehot) / batch.
  EXPECT_NEAR(grad.at2(0, 3), (0.1f - 1.0f) / 2.0f, 1e-5);
  EXPECT_NEAR(grad.at2(0, 4), 0.1f / 2.0f, 1e-5);
}

TEST(CrossEntropy, ConfidentCorrectPredictionLowLoss) {
  Tensor logits({1, 3});
  logits.at2(0, 1) = 20.0f;
  Tensor grad;
  const float loss = cross_entropy(logits, {1}, 0, grad);
  EXPECT_LT(loss, 1e-3);
}

TEST(CrossEntropy, NumericallyStableForLargeLogits) {
  Tensor logits({1, 3});
  logits.at2(0, 0) = 1e4f;
  logits.at2(0, 1) = 1e4f - 5;
  Tensor grad;
  const float loss = cross_entropy(logits, {0}, 0, grad);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(Sgd, MomentumAccumulates) {
  Param p({2});
  p.grad[0] = 1.0f;
  Sgd sgd(0.9f);
  sgd.step({&p}, 0.1f);
  EXPECT_NEAR(p.value[0], -0.1f, 1e-6);
  sgd.step({&p}, 0.1f);  // velocity: 0.9*(-0.1) - 0.1 = -0.19
  EXPECT_NEAR(p.value[0], -0.29f, 1e-6);
}

TEST(Sgd, ZeroGradClears) {
  Param p({2});
  p.grad[0] = 5.0f;
  Sgd sgd;
  sgd.zero_grad({&p});
  EXPECT_EQ(p.grad[0], 0.0f);
}

TEST(OneCycleLr, ShapeOfSchedule) {
  OneCycleLr sched(1.0f, 100, 0.3f, 25.0f, 1e4f);
  EXPECT_NEAR(sched.lr(0), 1.0f / 25.0f, 1e-5);   // warm start
  EXPECT_NEAR(sched.lr(30), 1.0f, 1e-2);          // peak at pct_start
  EXPECT_LT(sched.lr(99), 0.01f);                 // annealed at the end
  // Monotone rise during warm-up.
  for (std::size_t s = 1; s < 30; ++s) {
    EXPECT_GE(sched.lr(s), sched.lr(s - 1));
  }
  // Monotone decay afterwards.
  for (std::size_t s = 31; s < 100; ++s) {
    EXPECT_LE(sched.lr(s), sched.lr(s - 1) + 1e-6f);
  }
}

TEST(Network, LearnsLinearlySeparableToy) {
  // Tiny 2-class problem rendered into the (B,1,28,28) shape the stack uses:
  // class = whether the top-left patch is brighter than the bottom-right.
  Prng prng(7);
  const std::size_t n = 256;
  Dataset data;
  data.images = Tensor({n, 1, 28, 28});
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool cls = (prng.next_u64() & 1) != 0;
    data.labels[i] = cls ? 1 : 0;
    for (std::size_t y = 0; y < 28; ++y) {
      for (std::size_t x = 0; x < 28; ++x) {
        const bool top_left = y < 14 && x < 14;
        const bool bottom_right = y >= 14 && x >= 14;
        float v = 0.1f;
        if (cls && top_left) v = 0.9f;
        if (!cls && bottom_right) v = 0.9f;
        data.images.data()[(i * 28 + y) * 28 + x] =
            v + static_cast<float>(prng.normal() * 0.02);
      }
    }
  }

  Network net;
  Prng init(3);
  net.emplace<Flatten>();
  net.emplace<Dense>(784, 16, init);
  net.emplace<ReLU>();
  net.emplace<Dense>(16, 10, init);

  TrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 32;
  cfg.lr_max = 0.05f;
  const float acc = train(net, data, cfg);
  EXPECT_GT(acc, 95.0f);
  EXPECT_GT(evaluate(net, data), 95.0f);
}

TEST(Network, PredictReturnsArgmax) {
  Network net;
  Prng init(5);
  net.emplace<Flatten>();
  net.emplace<Dense>(784, 10, init);
  Tensor img({1, 1, 28, 28});
  const int pred = predict(net, img);
  EXPECT_GE(pred, 0);
  EXPECT_LT(pred, 10);
}

TEST(Network, DescribeListsLayers) {
  Network net;
  Prng init(5);
  net.emplace<Conv2D>(1, 5, 5, 2, init);
  net.emplace<Flatten>();
  net.emplace<Slaf>(720, 3);
  const std::string d = net.describe();
  EXPECT_NE(d.find("Conv2D"), std::string::npos);
  EXPECT_NE(d.find("SLAF"), std::string::npos);
}

TEST(Network, RestrictedTrainingOnlyUpdatesSelectedParams) {
  Network net;
  Prng init(9);
  net.emplace<Flatten>();
  Dense* d1 = net.emplace<Dense>(784, 8, init);
  net.emplace<Slaf>(8, 2);
  net.emplace<Dense>(8, 10, init);

  Dataset data;
  data.images = Tensor({32, 1, 28, 28});
  data.labels.assign(32, 1);

  const Tensor w_before = d1->weight().value;
  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 8;
  // Only SLAF coefficients may move.
  cfg.restrict_to = net.layers()[2]->params();
  train(net, data, cfg);
  for (std::size_t i = 0; i < w_before.size(); ++i) {
    ASSERT_EQ(d1->weight().value[i], w_before[i]);
  }
}

}  // namespace
}  // namespace pphe
