#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(Conv2D, OutputShapeValidStride2) {
  Prng prng(1);
  Conv2D conv(1, 5, 5, 2, prng);
  Tensor x({2, 1, 28, 28});
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 5, 12, 12}));
}

TEST(Conv2D, KnownSmallConvolution) {
  Prng prng(2);
  Conv2D conv(1, 1, 2, 1, prng);
  // Set the kernel to [[1,2],[3,4]], bias 0.5.
  conv.weight().value.at4(0, 0, 0, 0) = 1;
  conv.weight().value.at4(0, 0, 0, 1) = 2;
  conv.weight().value.at4(0, 0, 1, 0) = 3;
  conv.weight().value.at4(0, 0, 1, 1) = 4;
  conv.bias().value[0] = 0.5f;
  Tensor x({1, 1, 2, 2});
  x.at4(0, 0, 0, 0) = 1;
  x.at4(0, 0, 0, 1) = 2;
  x.at4(0, 0, 1, 0) = 3;
  x.at4(0, 0, 1, 1) = 4;
  const Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1 + 4 + 9 + 16 + 0.5f);
}

TEST(Conv2D, KaimingInitHasExpectedVariance) {
  Prng prng(3);
  Conv2D conv(3, 64, 5, 1, prng);
  double sum2 = 0.0;
  const auto& w = conv.weight().value;
  for (std::size_t i = 0; i < w.size(); ++i) sum2 += w[i] * w[i];
  const double var = sum2 / static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / (3 * 25), 2.0 / (3 * 25) * 0.2);
}

TEST(Conv2D, InputSmallerThanKernelThrows) {
  Prng prng(4);
  Conv2D conv(1, 1, 5, 1, prng);
  Tensor x({1, 1, 3, 3});
  EXPECT_THROW(conv.forward(x, false), Error);
}

TEST(Dense, ComputesAffineMap) {
  Prng prng(5);
  Dense dense(3, 2, prng);
  dense.weight().value.at2(0, 0) = 1;
  dense.weight().value.at2(0, 1) = 2;
  dense.weight().value.at2(0, 2) = 3;
  dense.weight().value.at2(1, 0) = -1;
  dense.weight().value.at2(1, 1) = 0;
  dense.weight().value.at2(1, 2) = 1;
  dense.bias().value[0] = 0.5f;
  dense.bias().value[1] = -0.5f;
  Tensor x({1, 3});
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  const Tensor y = dense.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1 + 4 + 9 + 0.5f);
  EXPECT_FLOAT_EQ(y[1], -1 + 3 - 0.5f);
}

TEST(BatchNorm2D, NormalizesTrainingBatch) {
  BatchNorm2D bn(2);
  Prng prng(6);
  Tensor x({8, 2, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(prng.normal() * 3.0 + 1.0);
  }
  const Tensor y = bn.forward(x, true);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, sum2 = 0.0;
    for (std::size_t b = 0; b < 8; ++b)
      for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) {
          const double v = y.at4(b, c, i, j);
          sum += v;
          sum2 += v * v;
        }
    const double mean = sum / 128.0;
    const double var = sum2 / 128.0 - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2D, FoldMatchesEvalForward) {
  BatchNorm2D bn(3);
  Prng prng(7);
  // Give it non-trivial running stats and affine parameters.
  for (int step = 0; step < 20; ++step) {
    Tensor x({4, 3, 2, 2});
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<float>(prng.normal() * 2.0 - 0.5);
    }
    bn.forward(x, true);
  }
  bn.params()[0]->value[1] = 1.7f;  // gamma
  bn.params()[1]->value[2] = -0.3f; // beta

  Tensor x({1, 3, 2, 2});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(prng.normal());
  }
  const Tensor y = bn.forward(x, false);
  const auto scale = bn.fold_scale();
  const auto shift = bn.fold_shift();
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        EXPECT_NEAR(y.at4(0, c, i, j),
                    scale[c] * x.at4(0, c, i, j) + shift[c], 1e-5);
      }
    }
  }
}

TEST(ReLUAndSquare, Forward) {
  ReLU relu;
  Square square;
  Tensor x({1, 4});
  x[0] = -1;
  x[1] = 0;
  x[2] = 2;
  x[3] = -3;
  const Tensor yr = relu.forward(x, false);
  EXPECT_FLOAT_EQ(yr[0], 0);
  EXPECT_FLOAT_EQ(yr[2], 2);
  const Tensor ys = square.forward(x, false);
  EXPECT_FLOAT_EQ(ys[0], 1);
  EXPECT_FLOAT_EQ(ys[3], 9);
}

TEST(Slaf, ZeroInitOutputsZero) {
  Slaf slaf(4, 3);
  Tensor x({2, 4});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = slaf.forward(x, false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 0.0f);
}

TEST(Slaf, EvaluatesPerNeuronPolynomial) {
  Slaf slaf(2, 3);
  // Neuron 0: 1 + 2x; neuron 1: x^2 - x^3.
  slaf.coeffs().value.at2(0, 0) = 1;
  slaf.coeffs().value.at2(0, 1) = 2;
  slaf.coeffs().value.at2(1, 2) = 1;
  slaf.coeffs().value.at2(1, 3) = -1;
  Tensor x({1, 2});
  x[0] = 3;
  x[1] = 2;
  const Tensor y = slaf.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f - 8.0f);
}

TEST(Slaf, DegreeZeroRejected) {
  EXPECT_THROW(Slaf(4, 0), Error);
}

TEST(FlattenReshape, RoundTrip) {
  Flatten flatten;
  Reshape4D reshape(2, 3, 4);
  Tensor x({5, 2, 3, 4});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const Tensor flat = flatten.forward(x, true);
  EXPECT_EQ(flat.shape(), (std::vector<std::size_t>{5, 24}));
  const Tensor back = reshape.forward(flat, true);
  EXPECT_EQ(back.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(back[i], x[i]);
}

}  // namespace
}  // namespace pphe
