#include "nn/data.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(SyntheticMnist, ShapesAndRanges) {
  const Dataset ds = generate_synthetic_mnist(100, 1);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.images.shape(), (std::vector<std::size_t>{100, 1, 28, 28}));
  for (std::size_t i = 0; i < ds.images.size(); ++i) {
    ASSERT_GE(ds.images[i], 0.0f);
    ASSERT_LE(ds.images[i], 1.0f);
  }
  for (const int label : ds.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 10);
  }
}

TEST(SyntheticMnist, DeterministicPerSeed) {
  const Dataset a = generate_synthetic_mnist(20, 5);
  const Dataset b = generate_synthetic_mnist(20, 5);
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    ASSERT_EQ(a.images[i], b.images[i]);
  }
  const Dataset c = generate_synthetic_mnist(20, 6);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    if (a.images[i] != c.images[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticMnist, AllClassesPresent) {
  const Dataset ds = generate_synthetic_mnist(500, 2);
  std::array<int, 10> counts{};
  for (const int l : ds.labels) ++counts[static_cast<std::size_t>(l)];
  for (const int c : counts) EXPECT_GT(c, 20);
}

TEST(SyntheticMnist, DigitsHaveInk) {
  const Dataset ds = generate_synthetic_mnist(50, 3);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    float total = 0.0f;
    for (std::size_t p = 0; p < 784; ++p) {
      total += ds.images[i * 784 + p];
    }
    // A digit has a visible stroke: neither blank nor saturated.
    ASSERT_GT(total, 15.0f) << "image " << i;
    ASSERT_LT(total, 500.0f) << "image " << i;
  }
}

TEST(SyntheticMnist, ImagesWithinClassVary) {
  const Dataset ds = generate_synthetic_mnist(200, 4);
  // Find two images of the same digit and check they differ (augmentation).
  for (int digit = 0; digit < 3; ++digit) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < ds.size() && idx.size() < 2; ++i) {
      if (ds.labels[i] == digit) idx.push_back(i);
    }
    ASSERT_EQ(idx.size(), 2u);
    bool differ = false;
    for (std::size_t p = 0; p < 784; ++p) {
      if (ds.images[idx[0] * 784 + p] != ds.images[idx[1] * 784 + p]) {
        differ = true;
        break;
      }
    }
    EXPECT_TRUE(differ);
  }
}

TEST(Dataset, ImageExtractsSingleExample) {
  const Dataset ds = generate_synthetic_mnist(3, 7);
  const Tensor img = ds.image(2);
  EXPECT_EQ(img.shape(), (std::vector<std::size_t>{1, 1, 28, 28}));
  for (std::size_t p = 0; p < 784; ++p) {
    ASSERT_EQ(img[p], ds.images[2 * 784 + p]);
  }
  EXPECT_THROW(ds.image(3), Error);
}

TEST(MnistIdx, MissingDirectoryReturnsNullopt) {
  EXPECT_FALSE(load_mnist_idx("/nonexistent-dir", true).has_value());
}

TEST(MnistIdx, RoundTripThroughWrittenFiles) {
  // Write a tiny IDX pair and read it back.
  const std::string dir = ::testing::TempDir();
  auto write_be32 = [](std::ofstream& out, std::uint32_t v) {
    const unsigned char b[4] = {
        static_cast<unsigned char>(v >> 24),
        static_cast<unsigned char>(v >> 16),
        static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
    out.write(reinterpret_cast<const char*>(b), 4);
  };
  {
    std::ofstream img(dir + "/train-images-idx3-ubyte", std::ios::binary);
    write_be32(img, 0x803);
    write_be32(img, 2);
    write_be32(img, 28);
    write_be32(img, 28);
    for (int i = 0; i < 2 * 784; ++i) {
      const char c = static_cast<char>(i % 251);
      img.write(&c, 1);
    }
    std::ofstream lbl(dir + "/train-labels-idx1-ubyte", std::ios::binary);
    write_be32(lbl, 0x801);
    write_be32(lbl, 2);
    const char labels[2] = {3, 9};
    lbl.write(labels, 2);
  }
  const auto ds = load_mnist_idx(dir, true);
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->labels[0], 3);
  EXPECT_EQ(ds->labels[1], 9);
  EXPECT_NEAR(ds->images[1], 1.0f / 255.0f, 1e-6);
}

}  // namespace
}  // namespace pphe
