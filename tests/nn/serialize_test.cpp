#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>

#include "common/prng.hpp"

namespace pphe {
namespace {

std::unique_ptr<Network> make_net(std::uint64_t seed) {
  Prng prng(seed);
  auto net = std::make_unique<Network>();
  net->emplace<Conv2D>(1, 3, 5, 2, prng);
  net->emplace<BatchNorm2D>(3);
  net->emplace<Flatten>();
  net->emplace<Slaf>(432, 3);
  net->emplace<Dense>(432, 10, prng);
  return net;
}

TEST(Serialize, RoundTripRestoresAllState) {
  auto a = make_net(1);
  // Perturb: run a training-mode forward so batchnorm stats move.
  Prng prng(9);
  Tensor x({4, 1, 28, 28});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(prng.uniform_double());
  }
  a->forward(x, true);
  for (Param* p : a->params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value[i] += 0.01f * static_cast<float>(prng.normal());
    }
  }

  const std::string path = ::testing::TempDir() + "/weights.bin";
  save_weights(*a, path);

  auto b = make_net(2);  // different init
  ASSERT_TRUE(load_weights(*b, path));

  // Same eval-mode outputs (checks params AND batchnorm running stats).
  const Tensor ya = a->forward(x, false);
  const Tensor yb = b->forward(x, false);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    ASSERT_FLOAT_EQ(ya[i], yb[i]);
  }
}

TEST(Serialize, MissingFileReturnsFalse) {
  auto net = make_net(1);
  EXPECT_FALSE(load_weights(*net, "/nonexistent/weights.bin"));
}

TEST(Serialize, ShapeMismatchReturnsFalse) {
  auto a = make_net(1);
  const std::string path = ::testing::TempDir() + "/weights2.bin";
  save_weights(*a, path);

  Prng prng(3);
  Network different;
  different.emplace<Dense>(10, 10, prng);
  EXPECT_FALSE(load_weights(different, path));
}

TEST(Serialize, CorruptMagicReturnsFalse) {
  const std::string path = ::testing::TempDir() + "/weights3.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    out.write(junk, 8);
  }
  auto net = make_net(1);
  EXPECT_FALSE(load_weights(*net, path));
}

}  // namespace
}  // namespace pphe
