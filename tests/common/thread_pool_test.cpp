#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(ThreadPool, InlineModeRunsAllIterations) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, MultiThreadedRunsAllIterationsOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t i) {
                          if (i == 3) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, InlinePropagatesExceptions) {
  ThreadPool pool(0);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t i) {
                          if (i == 1) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, ChunkSizeArithmetic) {
  // Small loops (residue channels) keep per-iteration stealing...
  EXPECT_EQ(ThreadPool::chunk_size(8, 4), 1u);
  EXPECT_EQ(ThreadPool::chunk_size(1, 16), 1u);
  // ...large flat loops claim big chunks: ~4 per participant.
  EXPECT_EQ(ThreadPool::chunk_size(1'000'000, 4), 50'001u);
  EXPECT_GE(ThreadPool::chunk_size(1'000'000, 0), 250'000u);
}

TEST(ThreadPool, ChunkedStridingCoversEveryIterationOnce) {
  ThreadPool pool(4);
  const std::size_t count = 100'003;  // prime: no chunk-boundary alignment
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(count, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ContentionRegressionEnqueuesBoundedHelperTasks) {
  // The regression this pins: parallel_for must enqueue at most one helper
  // per worker AND never more helpers than chunks (a tiny loop on a wide
  // pool must not wake the whole pool).
  ThreadPool pool(4);
  const std::uint64_t before = pool.tasks_enqueued();
  pool.parallel_for(100'000, [](std::size_t) {});
  const std::uint64_t large_delta = pool.tasks_enqueued() - before;
  EXPECT_LE(large_delta, 4u);
  EXPECT_GE(large_delta, 1u);

  // 2 iterations with chunk 1 -> 2 chunks -> at most 2 helpers woken.
  const std::uint64_t before_small = pool.tasks_enqueued();
  pool.parallel_for(2, [](std::size_t) {});
  EXPECT_LE(pool.tasks_enqueued() - before_small, 2u);

  // Inline fallback (count == 1) enqueues nothing.
  const std::uint64_t before_inline = pool.tasks_enqueued();
  pool.parallel_for(1, [](std::size_t) {});
  EXPECT_EQ(pool.tasks_enqueued() - before_inline, 0u);
}

TEST(ThreadPool, GlobalPoolExists) {
  auto& pool = ThreadPool::global();
  std::atomic<int> n{0};
  pool.parallel_for(16, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
}

}  // namespace
}  // namespace pphe
