#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(ThreadPool, InlineModeRunsAllIterations) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, MultiThreadedRunsAllIterationsOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t i) {
                          if (i == 3) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, InlinePropagatesExceptions) {
  ThreadPool pool(0);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t i) {
                          if (i == 1) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, GlobalPoolExists) {
  auto& pool = ThreadPool::global();
  std::atomic<int> n{0};
  pool.parallel_for(16, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
}

}  // namespace
}  // namespace pphe
