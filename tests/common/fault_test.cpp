#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace pphe::fault {
namespace {

/// Every test disarms on exit so later tests (and other suites in this
/// binary) see the default quiescent state.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { disarm(); }
};

TEST_F(FaultTest, DisarmedHooksAreNoOps) {
  ASSERT_FALSE(armed());
  std::string bytes = "hello wire";
  corrupt_wire(Site::kWireUpload, bytes);
  EXPECT_EQ(bytes, "hello wire");
  EXPECT_FALSE(should_fire(Site::kWorker, Kind::kCrashWorker));
  EXPECT_NO_THROW(worker_checkpoint());
  EXPECT_EQ(stats().total, 0u);
}

TEST_F(FaultTest, ParseRoundTripsTheGrammar) {
  const FaultSpec spec =
      FaultSpec::parse("seed=7,wire.upload:garbage@0.5,worker:crash*1");
  EXPECT_EQ(spec.seed, 7u);
  ASSERT_EQ(spec.rules.size(), 2u);
  EXPECT_EQ(spec.rules[0].site, Site::kWireUpload);
  EXPECT_EQ(spec.rules[0].kind, Kind::kGarbage);
  EXPECT_DOUBLE_EQ(spec.rules[0].probability, 0.5);
  EXPECT_EQ(spec.rules[1].site, Site::kWorker);
  EXPECT_EQ(spec.rules[1].kind, Kind::kCrashWorker);
  EXPECT_EQ(spec.rules[1].budget, 1u);
  // describe() emits the same grammar.
  const FaultSpec again = FaultSpec::parse(spec.describe());
  EXPECT_EQ(again.rules.size(), spec.rules.size());
  EXPECT_EQ(again.seed, spec.seed);
}

TEST_F(FaultTest, ParseRejectsGarbage) {
  EXPECT_THROW(FaultSpec::parse("no-colon-here"), Error);
  EXPECT_THROW(FaultSpec::parse("mars.base:bitflip"), Error);
  EXPECT_THROW(FaultSpec::parse("wire.upload:frobnicate"), Error);
  // Kind not applicable at the site.
  EXPECT_THROW(FaultSpec::parse("worker:bitflip"), Error);
  EXPECT_THROW(FaultSpec::parse("wire.upload:crash"), Error);
  EXPECT_THROW(FaultSpec::parse("eval.input:bitflip@1.5"), Error);
}

TEST_F(FaultTest, BudgetBoundsFirings) {
  FaultSpec spec;
  spec.rules.push_back({Site::kWorker, Kind::kCrashWorker, 1.0, 2});
  configure(spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (should_fire(Site::kWorker, Kind::kCrashWorker)) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(stats().total, 2u);
}

TEST_F(FaultTest, DecisionsAreDeterministicInTheSeed) {
  const auto run = [](std::uint64_t seed) {
    FaultSpec spec;
    spec.seed = seed;
    spec.rules.push_back({Site::kWireUpload, Kind::kGarbage, 0.5, ~0ull});
    configure(spec);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(should_fire(Site::kWireUpload, Kind::kGarbage));
    }
    return fires;
  };
  const auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 flake odds
  // p=0.5 over 64 opportunities: both outcomes occur.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FaultTest, CorruptWireIsDeterministicAndMutates) {
  const auto run = [] {
    FaultSpec spec;
    spec.seed = 5;
    spec.rules.push_back({Site::kWireUpload, Kind::kGarbage, 1.0, ~0ull});
    configure(spec);
    std::string bytes(256, '\x42');
    corrupt_wire(Site::kWireUpload, bytes);
    return bytes;
  };
  const std::string a = run(), b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, std::string(256, '\x42'));
  EXPECT_EQ(a.size(), 256u);  // garbage overwrites, never resizes
}

TEST_F(FaultTest, TruncateKeepsAtLeastOneByte) {
  FaultSpec spec;
  spec.rules.push_back({Site::kWireDownload, Kind::kTruncate, 1.0, ~0ull});
  configure(spec);
  for (int i = 0; i < 16; ++i) {
    std::string bytes(100 + i, 'x');
    corrupt_wire(Site::kWireDownload, bytes);
    EXPECT_GE(bytes.size(), 1u);
    EXPECT_LT(bytes.size(), 100u + static_cast<std::size_t>(i));
  }
}

TEST_F(FaultTest, FlipLimbFlipsExactlyOneBit) {
  FaultSpec spec;
  spec.rules.push_back({Site::kEvalInput, Kind::kLimbBitFlip, 1.0, 1});
  configure(spec);
  std::vector<std::uint64_t> words(32, 0);
  EXPECT_TRUE(flip_limb(Site::kEvalInput, words));
  int set_bits = 0;
  for (const auto w : words) set_bits += __builtin_popcountll(w);
  EXPECT_EQ(set_bits, 1);
  // Budget exhausted: second call is a no-op.
  EXPECT_FALSE(flip_limb(Site::kEvalInput, words));
}

TEST_F(FaultTest, WorkerCrashThrowsTypedError) {
  FaultSpec spec;
  spec.rules.push_back({Site::kWorker, Kind::kCrashWorker, 1.0, 1});
  configure(spec);
  try {
    worker_checkpoint();
    FAIL() << "expected Error(kWorkerCrash)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kWorkerCrash);
  }
  EXPECT_NO_THROW(worker_checkpoint());  // budget spent
}

TEST_F(FaultTest, PerturbHelpersTouchMetadata) {
  FaultSpec spec;
  spec.rules.push_back({Site::kEvalInput, Kind::kScaleMismatch, 1.0, 1});
  spec.rules.push_back({Site::kEvalInput, Kind::kLevelMismatch, 1.0, 1});
  configure(spec);
  double scale = 1024.0;
  EXPECT_TRUE(perturb_scale(Site::kEvalInput, scale));
  EXPECT_NE(scale, 1024.0);
  int level = 0;
  EXPECT_TRUE(perturb_level(Site::kEvalInput, level));
  EXPECT_NE(level, 0);
  EXPECT_GE(level, 0);  // level 0 perturbs upward, staying representable
  EXPECT_EQ(stats().total, 2u);
}

TEST_F(FaultTest, SiteKindsCoverEveryKindOnce) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    total += site_kinds(static_cast<Site>(s)).size();
  }
  // wire.upload/download take 3 byte kinds each, eval.input 3, worker 2.
  EXPECT_EQ(total, 11u);
}

}  // namespace
}  // namespace pphe::fault
