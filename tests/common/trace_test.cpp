#include "common/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace pphe::trace {
namespace {

#if !PPHE_TRACE_COMPILED

TEST(TraceCompiledOut, SpansAreInertNoOps) {
  set_enabled(true);
  {
    Span span("ignored", "test");
    span.attr("x", 1.0);
    EXPECT_FALSE(span.recording());
  }
  set_enabled(false);
  EXPECT_EQ(event_count(), 0u);
}

#else  // PPHE_TRACE_COMPILED

/// Every trace test owns the global recorder for its duration: start from a
/// clean, disabled state and leave it that way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    clear();
  }
  void TearDown() override {
    set_enabled(false);
    clear();
  }
};

const Event* find_event(const std::vector<Event>& events, const char* name) {
  for (const Event& ev : events) {
    if (std::string(ev.name) == name) return &ev;
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(enabled());
  {
    Span span("ignored", "test");
    span.attr("x", 1.0);
    EXPECT_FALSE(span.recording());
  }
  EXPECT_EQ(event_count(), 0u);
}

TEST_F(TraceTest, RecordsNameCategoryDurationAndAttrs) {
  set_enabled(true);
  {
    Span span("multiply", "he");
    EXPECT_TRUE(span.recording());
    span.attr("level", 3.0);
    span.attr("scale_log2", 26.0);
  }
  set_enabled(false);
  const auto events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  const Event& ev = events[0];
  EXPECT_STREQ(ev.name, "multiply");
  EXPECT_STREQ(ev.cat, "he");
  ASSERT_EQ(ev.attr_count, 2u);
  EXPECT_STREQ(ev.attrs[0].key, "level");
  EXPECT_DOUBLE_EQ(ev.attrs[0].value, 3.0);
  EXPECT_STREQ(ev.attrs[1].key, "scale_log2");
  EXPECT_DOUBLE_EQ(ev.attrs[1].value, 26.0);
  // steady_clock is monotone; the span closed after it opened.
  EXPECT_GE(ev.dur_ns, 0u);
}

TEST_F(TraceTest, NestedSpansRecordDepth) {
  set_enabled(true);
  {
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
      { Span deepest("deepest", "test"); }
    }
    { Span sibling("sibling", "test"); }
  }
  set_enabled(false);
  const auto events = snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(find_event(events, "outer")->depth, 0u);
  EXPECT_EQ(find_event(events, "inner")->depth, 1u);
  EXPECT_EQ(find_event(events, "deepest")->depth, 2u);
  EXPECT_EQ(find_event(events, "sibling")->depth, 1u);
  // Depth unwinds fully: a fresh span is top-level again.
  set_enabled(true);
  { Span after("after", "test"); }
  set_enabled(false);
  EXPECT_EQ(find_event(snapshot(), "after")->depth, 0u);
}

TEST_F(TraceTest, OverlongNamesAreTruncatedNotOverrun) {
  set_enabled(true);
  const std::string long_name(4 * Event::kNameCap, 'x');
  {
    Span span(long_name.c_str(), "test");
    span.attr("a_really_quite_long_attribute_key", 1.0);
  }
  set_enabled(false);
  const auto events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name).size(), Event::kNameCap - 1);
  EXPECT_EQ(std::string(events[0].attrs[0].key).size(), Event::kKeyCap - 1);
}

TEST_F(TraceTest, AttrsBeyondCapacityAreDropped) {
  set_enabled(true);
  {
    Span span("busy", "test");
    for (int i = 0; i < 20; ++i) span.attr("k", static_cast<double>(i));
  }
  set_enabled(false);
  const auto events = snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].attr_count, Event::kMaxAttrs);
}

TEST_F(TraceTest, ThreadsRecordConcurrentlyWithoutLoss) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("work", "test");
        span.attr("thread", static_cast<double>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  set_enabled(false);
  EXPECT_EQ(event_count(), static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(dropped_count(), 0u);
  // Within each thread the ring is chronological: start times never regress.
  std::map<std::uint32_t, std::uint64_t> last_start;
  for (const Event& ev : snapshot()) {
    auto [it, fresh] = last_start.try_emplace(ev.tid, ev.start_ns);
    if (!fresh) {
      EXPECT_GE(ev.start_ns, it->second);
      it->second = ev.start_ns;
    }
  }
}

TEST_F(TraceTest, RingOverflowCountsDroppedEvents) {
  constexpr std::size_t kTotal = 50000;  // > per-thread ring capacity (2^15)
  set_enabled(true);
  // A dedicated thread gets a fresh ring, so the arithmetic below is exact.
  std::thread([] {
    for (std::size_t i = 0; i < kTotal; ++i) Span span("spin", "test");
  }).join();
  set_enabled(false);
  EXPECT_GT(dropped_count(), 0u);
  EXPECT_EQ(event_count() + dropped_count(), kTotal);
  clear();
  EXPECT_EQ(event_count(), 0u);
  EXPECT_EQ(dropped_count(), 0u);
}

TEST_F(TraceTest, ClearDiscardsEvents) {
  set_enabled(true);
  { Span span("a", "test"); }
  { Span span("b", "test"); }
  EXPECT_EQ(event_count(), 2u);
  clear();
  EXPECT_EQ(event_count(), 0u);
  { Span span("c", "test"); }
  set_enabled(false);
  EXPECT_EQ(event_count(), 1u);
}

TEST_F(TraceTest, HistogramsFilterByCategory) {
  set_enabled(true);
  { Span span("multiply", "he"); }
  { Span span("multiply", "he"); }
  { Span span("key_switch", "kernel"); }
  set_enabled(false);
  const auto he = op_histograms("he");
  ASSERT_EQ(he.size(), 1u);
  EXPECT_EQ(he.at("multiply").count(), 2u);
  const auto all = op_histograms("");
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("key_switch").count(), 1u);
  const std::string table = summary_table("he");
  EXPECT_NE(table.find("multiply"), std::string::npos);
  EXPECT_EQ(table.find("key_switch"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON export

/// Minimal structural JSON checker: verifies braces/brackets balance outside
/// strings, string escapes are legal, and no raw control characters leak.
bool json_is_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (i + 1 >= s.size()) return false;
        const char e = s[++i];
        if (std::string("\"\\/bfnrtu").find(e) == std::string::npos) {
          return false;
        }
        if (e == 'u') {
          if (i + 4 >= s.size()) return false;
          for (int k = 0; k < 4; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(s[++i]))) {
              return false;
            }
          }
        }
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  set_enabled(true);
  {
    Span span("add", "he");
    span.attr("level", 2.0);
  }
  {  // Hostile name: quotes, backslash, newline, tab must all be escaped.
    Span span("we\"ird\\na\nme\t", "he");
  }
  set_enabled(false);
  const std::string json = to_chrome_json();
  EXPECT_TRUE(json_is_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"add\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"level\":2}"), std::string::npos);
  EXPECT_NE(json.find("we\\\"ird\\\\na\\nme\\t"), std::string::npos);
  EXPECT_NE(json.find("\"otherData\":{\"dropped\":0}"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceStillSerializes) {
  const std::string json = to_chrome_json();
  EXPECT_TRUE(json_is_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST_F(TraceTest, WriteChromeJsonRoundTrips) {
  set_enabled(true);
  { Span span("encode", "he"); }
  set_enabled(false);
  const std::string path =
      ::testing::TempDir() + "/pphe_trace_test_roundtrip.json";
  ASSERT_TRUE(write_chrome_json(path));
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), to_chrome_json());
  EXPECT_FALSE(write_chrome_json("/nonexistent-dir-zz/trace.json"));
}

#endif  // PPHE_TRACE_COMPILED

}  // namespace
}  // namespace pphe::trace
