#include "common/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pphe {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, ZeroSeedWorks) {
  Prng p(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(p.next_u64());
  EXPECT_GT(seen.size(), 30u);  // not stuck in a fixed point
}

TEST(Prng, UniformBelowRespectsBound) {
  Prng p(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(p.uniform_below(bound), bound);
    }
  }
}

TEST(Prng, UniformBelowOneIsZero) {
  Prng p(7);
  EXPECT_EQ(p.uniform_below(1), 0u);
  EXPECT_EQ(p.uniform_below(0), 0u);
}

TEST(Prng, UniformBelowIsRoughlyUniform) {
  Prng p(123);
  constexpr std::uint64_t kBound = 10;
  std::array<int, kBound> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[p.uniform_below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 600);
  }
}

TEST(Prng, UniformDoubleInUnitInterval) {
  Prng p(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = p.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, NormalHasUnitVariance) {
  Prng p(11);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = p.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Prng, ForkedStreamsAreDecorrelated) {
  Prng parent(99);
  Prng a = parent.fork(0);
  Prng b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, ForkIsDeterministic) {
  Prng p1(4), p2(4);
  Prng f1 = p1.fork(9);
  Prng f2 = p2.fork(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

}  // namespace
}  // namespace pphe
