#include "common/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pphe {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Model", "Lat (s)"});
  t.add_row({"CNN1-HE", "3.56"});
  t.add_row({"CNN1-HE-RNS", "2.27"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("CNN1-HE-RNS"), std::string::npos);
  EXPECT_NE(out.find("2.27"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnsSizedToWidestCell) {
  TextTable t({"A"});
  t.add_row({"wide-cell-content"});
  const std::string out = t.render();
  const auto first_newline = out.find('\n');
  const auto second_line_end = out.find('\n', first_newline + 1);
  // Header line and rule line have equal width.
  EXPECT_EQ(first_newline, second_line_end - first_newline - 1);
}

TEST(TextTable, MissingTrailingCellsRenderEmpty) {
  TextTable t({"A", "B"});
  t.add_row({"only-a"});
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, FixedFormatsPrecision) {
  EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fixed(2.0, 1), "2.0");
  EXPECT_EQ(TextTable::integer(42), "42");
}

}  // namespace
}  // namespace pphe
