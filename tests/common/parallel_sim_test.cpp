#include "common/parallel_sim.hpp"

#include <gtest/gtest.h>

namespace pphe {
namespace {

TEST(ParallelSim, SequentialIsSumOfSections) {
  ParallelSim sim;
  sim.record_serial(1.0);
  sim.record_parallel(4, 2.0);
  sim.record_parallel(8, 4.0);
  EXPECT_DOUBLE_EQ(sim.sequential_seconds(), 7.0);
}

TEST(ParallelSim, SimulateWithEnoughWorkersDividesByFanout) {
  ParallelSim sim;
  sim.record_serial(1.0);
  sim.record_parallel(4, 2.0);
  // 4 units on 4 workers: one wave -> 2.0/4.
  EXPECT_DOUBLE_EQ(sim.simulate(4), 1.0 + 0.5);
  // Plenty of workers changes nothing beyond the fan-out.
  EXPECT_DOUBLE_EQ(sim.simulate(64), 1.0 + 0.5);
}

TEST(ParallelSim, SimulateWithFewWorkersUsesWaves) {
  ParallelSim sim;
  sim.record_parallel(10, 10.0);
  // 10 units on 3 workers: ceil(10/3)=4 waves of avg unit time 1.0.
  EXPECT_DOUBLE_EQ(sim.simulate(3), 4.0);
  // One worker: no speedup.
  EXPECT_DOUBLE_EQ(sim.simulate(1), 10.0);
  // Zero workers treated as one.
  EXPECT_DOUBLE_EQ(sim.simulate(0), 10.0);
}

TEST(ParallelSim, ResetClears) {
  ParallelSim sim;
  sim.record_parallel(2, 5.0);
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.sequential_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(sim.simulate(2), 0.0);
}

TEST(ParallelSim, FanoutScopeMultiplies) {
  ParallelSim sim;
  {
    ParallelSim::FanoutScope scope(3);
    sim.record_parallel(4, 6.0);  // recorded as fan-out 12
  }
  sim.record_parallel(4, 4.0);  // plain fan-out 4
  // 12-way section on 12 workers: 0.5; 4-way on 12 workers: 1.0.
  EXPECT_DOUBLE_EQ(sim.simulate(12), 6.0 / 12.0 + 1.0);
}

TEST(ParallelSim, NestedFanoutScopesCompose) {
  ParallelSim sim;
  {
    ParallelSim::FanoutScope a(2);
    ParallelSim::FanoutScope b(3);
    sim.record_parallel(1, 6.0);  // fan-out 6
  }
  EXPECT_DOUBLE_EQ(sim.simulate(6), 1.0);
}

TEST(ParallelSim, GlobalInstanceIsUsable) {
  ParallelSim::global().reset();
  ParallelSim::global().record_parallel(2, 0.5);
  EXPECT_DOUBLE_EQ(ParallelSim::global().sequential_seconds(), 0.5);
  ParallelSim::global().reset();
}

}  // namespace
}  // namespace pphe
