#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pphe {
namespace {

CliFlags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return CliFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(CliFlags, ParsesSeparateValue) {
  const auto flags = make_flags({"--name", "value"});
  EXPECT_TRUE(flags.has("name"));
  EXPECT_EQ(flags.get("name", ""), "value");
}

TEST(CliFlags, ParsesEqualsValue) {
  const auto flags = make_flags({"--count=42"});
  EXPECT_EQ(flags.get_int("count", 0), 42);
}

TEST(CliFlags, BooleanFlagWithoutValue) {
  const auto flags = make_flags({"--paper", "--other", "x"});
  EXPECT_TRUE(flags.get_bool("paper"));
  EXPECT_FALSE(flags.get_bool("missing"));
}

TEST(CliFlags, FalseValues) {
  EXPECT_FALSE(make_flags({"--opt=false"}).get_bool("opt", true));
  EXPECT_FALSE(make_flags({"--opt=0"}).get_bool("opt", true));
  EXPECT_FALSE(make_flags({"--opt=no"}).get_bool("opt", true));
  EXPECT_TRUE(make_flags({"--opt=yes"}).get_bool("opt", false));
}

TEST(CliFlags, Fallbacks) {
  const auto flags = make_flags({});
  EXPECT_EQ(flags.get("missing", "d"), "d");
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 1.5), 1.5);
}

TEST(CliFlags, DoubleParsing) {
  const auto flags = make_flags({"--scale", "2.5"});
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 0.0), 2.5);
}

TEST(CliFlags, BadIntegerThrows) {
  const auto flags = make_flags({"--n", "abc"});
  EXPECT_THROW(flags.get_int("n", 0), Error);
}

TEST(CliFlags, NegativeNumbersAsValues) {
  const auto flags = make_flags({"--step=-5"});
  EXPECT_EQ(flags.get_int("step", 0), -5);
}

TEST(CliFlags, PositionalArguments) {
  const auto flags = make_flags({"pos1", "--a", "1", "pos2"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "pos2");
}

}  // namespace
}  // namespace pphe
