#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = sw.seconds();
  EXPECT_GE(t, 0.015);
  EXPECT_LT(t, 2.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.01);
}

TEST(LatencyStats, MinMaxAvg) {
  LatencyStats s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.avg(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(LatencyStats, EmptyThrows) {
  LatencyStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.avg(), Error);
}

TEST(LatencyStats, SingleSampleStddevIsZero) {
  LatencyStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(LatencyStats, StddevMatchesKnownValue) {
  LatencyStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  // Sample stddev of this classic dataset is ~2.138.
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(LatencyStats, Percentiles) {
  LatencyStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_THROW(s.percentile(1.5), Error);
}

TEST(LatencyStats, SummaryFormat) {
  LatencyStats s;
  s.add(1.234);
  s.add(2.345);
  EXPECT_EQ(s.summary(2), "1.23/2.35/1.79");
}

TEST(Histogram, EmptyThrows) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_THROW(h.min_ns(), Error);
  EXPECT_THROW(h.max_ns(), Error);
  EXPECT_THROW(h.avg_ns(), Error);
  EXPECT_THROW(h.percentile_ns(0.5), Error);
}

TEST(Histogram, MinMaxAvgTotal) {
  Histogram h;
  h.add_ns(100);
  h.add_ns(1000);
  h.add_ns(400);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_ns(), 100u);
  EXPECT_EQ(h.max_ns(), 1000u);
  EXPECT_DOUBLE_EQ(h.avg_ns(), 500.0);
  EXPECT_DOUBLE_EQ(h.total_ns(), 1500.0);
}

TEST(Histogram, BucketsAreLog2Ns) {
  Histogram h;
  h.add_ns(1);     // bucket 0
  h.add_ns(1000);  // 2^9 <= 1000 < 2^10 -> bucket 9
  h.add_ns(1023);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 2u);
}

TEST(Histogram, PercentileStaysWithinBucketBounds) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add_ns(1000);
  // All samples in the 2^9..2^10 bucket; any quantile must land inside it.
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double p = h.percentile_ns(q);
    EXPECT_GE(p, 512.0);
    EXPECT_LE(p, 1024.0);
  }
  EXPECT_THROW(h.percentile_ns(-0.1), Error);
  EXPECT_THROW(h.percentile_ns(1.1), Error);
}

TEST(Histogram, PercentileSeparatesModes) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.add_ns(100);      // fast mode
  for (int i = 0; i < 10; ++i) h.add_ns(1 << 20);  // slow tail
  EXPECT_LT(h.percentile_ns(0.5), 256.0);
  EXPECT_GT(h.percentile_ns(0.95), 1e5);
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  a.add_ns(100);
  b.add_ns(10000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min_ns(), 100u);
  EXPECT_EQ(a.max_ns(), 10000u);
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Histogram, RenderShowsOccupiedRange) {
  Histogram h;
  h.add_ns(1000);
  const std::string r = h.render();
  EXPECT_NE(r.find("2^9"), std::string::npos);
  EXPECT_NE(r.find("1"), std::string::npos);
  EXPECT_EQ(Histogram().render(), "(empty)");
}

}  // namespace
}  // namespace pphe
