#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = sw.seconds();
  EXPECT_GE(t, 0.015);
  EXPECT_LT(t, 2.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.01);
}

TEST(LatencyStats, MinMaxAvg) {
  LatencyStats s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.avg(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(LatencyStats, EmptyThrows) {
  LatencyStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.avg(), Error);
}

TEST(LatencyStats, SingleSampleStddevIsZero) {
  LatencyStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(LatencyStats, StddevMatchesKnownValue) {
  LatencyStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  // Sample stddev of this classic dataset is ~2.138.
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(LatencyStats, Percentiles) {
  LatencyStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_THROW(s.percentile(1.5), Error);
}

TEST(LatencyStats, SummaryFormat) {
  LatencyStats s;
  s.add(1.234);
  s.add(2.345);
  EXPECT_EQ(s.summary(2), "1.23/2.35/1.79");
}

}  // namespace
}  // namespace pphe
