// Deterministic concurrency tests for the admission-control queue: FIFO
// order, typed kOverloaded rejection when full, multi-producer fill with no
// loss or duplication, close/drain semantics, and push_wait backpressure.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "serve/request_queue.hpp"

namespace pphe::serve {
namespace {

using Queue = RequestQueue<int>;
using PopStatus = Queue::PopStatus;

TEST(RequestQueue, FifoOrderSingleThread) {
  Queue q(8);
  for (int i = 0; i < 5; ++i) q.push(i);
  EXPECT_EQ(q.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
}

TEST(RequestQueue, FullQueueRejectsWithTypedOverloaded) {
  Queue q(2);
  q.push(1);
  q.push(2);
  try {
    q.push(3);
    FAIL() << "push on a full queue must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
    EXPECT_NE(std::string(e.what()).find("backpressure"), std::string::npos);
  }
  // Rejection sheds only the new item; queued work is untouched.
  EXPECT_EQ(q.size(), 2u);
  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  q.push(3);  // space freed: admission resumes
  EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueue, MultiProducerFillLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  Queue q(kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (auto& t : producers) t.join();
  ASSERT_EQ(q.size(), static_cast<std::size_t>(kProducers * kPerProducer));

  // Two consumers drain concurrently; together they must see every item
  // exactly once.
  std::vector<int> seen_a, seen_b;
  q.close();
  auto consume = [&q](std::vector<int>& seen) {
    int out = -1;
    while (q.pop_until(out, std::nullopt) == PopStatus::kItem) {
      seen.push_back(out);
    }
  };
  std::thread ca(consume, std::ref(seen_a));
  std::thread cb(consume, std::ref(seen_b));
  ca.join();
  cb.join();
  std::vector<int> all = seen_a;
  all.insert(all.end(), seen_b.begin(), seen_b.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int i = 0; i < kProducers * kPerProducer; ++i) EXPECT_EQ(all[i], i);
}

TEST(RequestQueue, PopUntilTimesOutOnEmptyQueue) {
  Queue q(4);
  int out = -1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(q.pop_until(out, deadline), PopStatus::kTimeout);
}

TEST(RequestQueue, CloseDrainsQueuedItemsBeforeReportingClosed) {
  Queue q(4);
  q.push(10);
  q.push(11);
  q.close();
  EXPECT_THROW(q.push(12), Error);
  int out = -1;
  EXPECT_EQ(q.pop_until(out, std::nullopt), PopStatus::kItem);
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 11);
  EXPECT_EQ(q.pop_until(out, std::nullopt), PopStatus::kClosed);
}

TEST(RequestQueue, PushWaitBlocksUntilSpaceThenSucceeds) {
  Queue q(1);
  q.push(1);
  std::thread producer([&q] { EXPECT_TRUE(q.push_wait(2)); });
  // Give the producer a moment to reach the wait; then free a slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 2);
}

TEST(RequestQueue, PushWaitReturnsFalseWhenClosed) {
  Queue q(1);
  q.push(1);  // full: push_wait below must block, then observe close()
  std::thread producer([&q] { EXPECT_FALSE(q.push_wait(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

TEST(RequestQueue, ZeroCapacityRejected) {
  EXPECT_THROW(Queue(0), Error);
}

}  // namespace
}  // namespace pphe::serve
