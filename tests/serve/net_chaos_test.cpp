// The chaos matrix driven over a REAL loopback socket: every (site,
// applicable-kind) fault cell fires once against a live NetServer
// connection. Wire-site corruption now lands on the actual TCP frame bytes
// (the client's request frames pass through the Site::kWireUpload hook, the
// server's reply frames through Site::kWireDownload after the internal
// round trip has had its chance); eval/worker cells fire inside the
// hardened batch evaluation as before. The contract under every cell:
//
//   * the outcome is TYPED — either the internal retry recovered (ok reply
//     with the fault in its attempt history) or a typed error/rejection
//     reached the client; never wrong logits, never a crash;
//   * the server stays healthy — a clean follow-up connection classifies
//     correctly after every cell.
//
// Lives in the robustness binary: fault plans are process-global.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/prng.hpp"
#include "core/serving.hpp"
#include "serve/net/net_client.hpp"
#include "serve/net/net_server.hpp"
#include "serve/server.hpp"

namespace pphe::serve::net {
namespace {

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

ModelSpec tiny_spec(std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "net-chaos-tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(12, 8));
  spec.stages.push_back(linear(8, 5));
  return spec;
}

std::vector<float> chaos_image() {
  Prng prng(70);
  std::vector<float> img(12);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

struct Rig {
  RnsBackend backend;
  serve::BatchModelSet models;
  int baseline = -1;  // fault-free prediction for chaos_image()
  Rig()
      : backend(tiny_params()), models(backend, tiny_spec(53), [] {
          HeModelOptions o;
          o.encrypted_weights = false;
          return o;
        }()) {
    const auto outcome =
        serve_classify_batch(backend, models.model_for(1), {chaos_image()});
    baseline = outcome.predicted.at(0);
  }
};

Rig& rig() {
  static Rig r;
  return r;
}

/// Typed codes a wire-upload fault may surface as, by kind. The corruption
/// hits the raw frame bytes, so what trips depends on WHERE the seeded
/// damage lands: magic -> kSerialization, any other header byte -> the
/// header checksum, payload bytes -> the payload checksum; a truncated
/// frame stalls the server's deadline-driven read into kTimeout (or EOF
/// kSerialization when the connection ends first).
std::vector<ErrorCode> upload_codes(fault::Kind kind) {
  switch (kind) {
    case fault::Kind::kTruncate:
      return {ErrorCode::kTimeout, ErrorCode::kSerialization};
    case fault::Kind::kLimbBitFlip:
    case fault::Kind::kGarbage:
      return {ErrorCode::kChecksumMismatch, ErrorCode::kSerialization};
    default:
      return {};
  }
}

class NetChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }
};

TEST_F(NetChaosTest, MatrixOverLiveSocketIsTypedAndServerSurvives) {
  rig();  // build backend/models/baseline before any fault plan is armed

  serve::ServerOptions sopts;
  sopts.serving.max_retries = 2;
  sopts.serving.watchdog_seconds = 2.0;
  serve::BatchServer server(rig().models, sopts);
  NetServerOptions nopts;
  nopts.idle_timeout_seconds = 2.0;  // truncated frames stall only briefly
  NetServer net(server, rig().backend, nopts);

  NetClientOptions copts;
  copts.port = net.port();

  std::size_t cells = 0;
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    const auto site = static_cast<fault::Site>(s);
    for (const fault::Kind kind : fault::site_kinds(site)) {
      const std::string label = std::string(fault::site_name(site)) + ":" +
                                fault::kind_name(kind);
      ++cells;
      fault::FaultSpec spec;
      spec.seed = 911 + cells;
      spec.slow_seconds = 3.0;
      spec.rules.push_back({site, kind, 1.0, /*budget=*/1});
      fault::configure(spec);

      if (site == fault::Site::kWireUpload) {
        // The client's request frame is corrupted on the socket (the
        // single-budget rule fires there before the internal ship() can
        // see it): the server must reject it with a TYPED code, delivered
        // back as a typed error frame.
        NetClient client(rig().backend.params(), copts);
        client.upload_keys({});
        try {
          const NetReply reply = client.classify(chaos_image());
          ADD_FAILURE() << label << ": corrupted request frame was answered"
                        << " (ok=" << reply.ok << ")";
        } catch (const Error& e) {
          const auto allowed = upload_codes(kind);
          bool code_ok = false;
          for (const ErrorCode c : allowed) code_ok |= (c == e.code());
          EXPECT_TRUE(code_ok) << label << " surfaced unexpected code "
                               << error_code_name(e.code());
        }
      } else {
        // Download/eval/worker cells fire inside the hardened batch round
        // trip, BEFORE the reply frame is built: the internal retry
        // recovers, and the wire reply carries the fault-free prediction
        // with the attempt history count.
        NetClient client(rig().backend.params(), copts);
        client.upload_keys({});
        const NetReply reply = client.classify(chaos_image());
        ASSERT_TRUE(reply.ok) << label << ": " << reply.message;
        EXPECT_EQ(reply.attempts, 2) << label;
        EXPECT_EQ(reply.predicted, rig().baseline) << label;
        client.bye();
      }
      fault::disarm();

      // Server-healthy probe: a clean connection classifies correctly
      // after EVERY cell.
      NetClient probe(rig().backend.params(), copts);
      probe.upload_keys({});
      const NetReply clean = probe.classify(chaos_image());
      ASSERT_TRUE(clean.ok) << label << " left the server unhealthy: "
                            << clean.message;
      EXPECT_EQ(clean.predicted, rig().baseline) << label;
      probe.bye();
    }
  }
  EXPECT_EQ(cells, 11u) << "the chaos matrix grew; update this sweep";

  // Every socket-level rejection was counted somewhere typed.
  const NetServerStats ns = net.stats();
  std::uint64_t typed_rejects = 0;
  for (const auto n : ns.frame_rejects) typed_rejects += n;
  EXPECT_GE(typed_rejects, 3u);  // the three wire-upload kinds
}

TEST_F(NetChaosTest, TieredAdmissionShedsBatchTrafficBeforeStandard) {
  // Deterministic queue pressure: a kSlowWorker stall (budget 1) pins the
  // single worker, so in-process stuffer requests hold the queue at a KNOWN
  // stable depth while the network tiers probe admission. This lives in the
  // robustness binary because the stall is a fault plan.
  rig();
  serve::ServerOptions sopts;
  sopts.workers = 1;
  sopts.max_batch = 1;
  sopts.linger_ms = 0.0;
  sopts.queue_capacity = 8;
  sopts.serving.watchdog_seconds = 30.0;  // the stall must ride, not trip
  serve::BatchServer server(rig().models, sopts);
  NetServerOptions nopts;
  nopts.admit_fill = {0.25, 0.5, 1.0};  // tier caps: 2 / 4 / 8
  NetServer net(server, rig().backend, nopts);

  NetClientOptions batch_opts;
  batch_opts.port = net.port();
  batch_opts.tier = Tier::kBatch;
  NetClient batch_client(rig().backend.params(), batch_opts);
  batch_client.upload_keys({});
  NetClientOptions std_opts;
  std_opts.port = net.port();
  std_opts.tier = Tier::kStandard;
  NetClient std_client(rig().backend.params(), std_opts);
  std_client.upload_keys({});

  fault::FaultSpec spec;
  spec.seed = 17;
  spec.slow_seconds = 4.0;
  spec.rules.push_back(
      {fault::Site::kWorker, fault::Kind::kSlowWorker, 1.0, /*budget=*/1});
  fault::configure(spec);

  // Stuff in two waves. Wave 1 (3 requests): the first reaches the stalled
  // worker, the second waits in the dispatch lane, the third is in the hand
  // of the batcher, blocked in push_wait. That matters because the batcher
  // SLURPS the queue into its own groups whenever it is awake — only once
  // it is blocked does the queue itself hold depth. Wave 2 (3 more) then
  // stays queued: a depth of exactly 3 for the remainder of the stall.
  std::vector<std::future<ServeReply>> stuffers;
  for (int i = 0; i < 3; ++i) {
    stuffers.push_back(server.submit(chaos_image()));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (int i = 0; i < 3; ++i) {
    stuffers.push_back(server.submit(chaos_image()));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.queue_depth() != 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(server.queue_depth(), 3u);

  // Batch tier (cap 2): depth 3 sheds it with the typed kOverloaded code.
  const NetReply shed = batch_client.classify(chaos_image());
  EXPECT_TRUE(shed.rejected);
  EXPECT_EQ(shed.error, ErrorCode::kOverloaded);

  // Standard tier (cap 4): the SAME depth admits it, and once the stall
  // clears it evaluates to the fault-free prediction.
  const NetReply admitted = std_client.classify(chaos_image());
  ASSERT_TRUE(admitted.ok) << admitted.message;
  EXPECT_EQ(admitted.predicted, rig().baseline);

  const NetServerStats ns = net.stats();
  EXPECT_EQ(ns.sheds[static_cast<std::size_t>(Tier::kBatch)], 1u);
  EXPECT_EQ(ns.sheds[static_cast<std::size_t>(Tier::kStandard)], 0u);

  for (auto& f : stuffers) f.get();  // drain before teardown
}

TEST_F(NetChaosTest, ReplyFrameCorruptionOnTheSocketIsTypedAtTheClient) {
  rig();
  serve::ServerOptions sopts;
  sopts.serving.max_retries = 0;  // no internal wire hops consume the budget
  serve::BatchServer server(rig().models, sopts);
  NetServer net(server, rig().backend, {});

  // With retries off the internal round trip has no fault site... except it
  // still ships bytes once; aim the budget at the SECOND download hop — the
  // reply frame on the socket — by letting the internal hop consume one
  // budget and corrupting with budget 2.
  fault::FaultSpec spec;
  spec.seed = 31;
  spec.rules.push_back(
      {fault::Site::kWireDownload, fault::Kind::kLimbBitFlip, 1.0,
       /*budget=*/2});
  fault::configure(spec);

  NetClientOptions copts;
  copts.port = net.port();
  NetClient client(rig().backend.params(), copts);
  client.upload_keys({});
  try {
    const NetReply reply = client.classify(chaos_image());
    // The internal hop detected its corruption first and, with no retries,
    // failed the batch — also a typed, acceptable outcome.
    EXPECT_FALSE(reply.ok) << "corrupted internal download must not be ok";
  } catch (const Error& e) {
    // The reply frame itself was corrupted: the client's checksum caught it.
    EXPECT_EQ(e.code(), ErrorCode::kChecksumMismatch);
  }
  fault::disarm();

  // Either way: server healthy afterwards.
  NetClient probe(rig().backend.params(), copts);
  probe.upload_keys({});
  const NetReply clean = probe.classify(chaos_image());
  ASSERT_TRUE(clean.ok) << clean.message;
  EXPECT_EQ(clean.predicted, rig().baseline);
}

}  // namespace
}  // namespace pphe::serve::net
