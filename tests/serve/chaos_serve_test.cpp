// Chaos-matrix extension through the BATCHED serving path: every (site,
// applicable-kind) fault cell is swept through serve_classify_batch on a
// padded partial batch, and the full server pipeline attributes batch-level
// faults to each member request's reply. Also pins the hoisted-session-setup
// contract: a retry re-sends inputs, never key material (op-counter proof).
//
// Lives in the robustness binary: fault plans are process-global, so these
// tests must not share a process with suites that assume injection is off.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/prng.hpp"
#include "core/serving.hpp"
#include "serve/server.hpp"

namespace pphe {
namespace {

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

ModelSpec tiny_spec(std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "chaos-batch-tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(12, 8));
  spec.stages.push_back(linear(8, 5));
  return spec;
}

std::vector<std::vector<float>> chaos_images() {
  std::vector<std::vector<float>> images;
  for (std::uint64_t s = 0; s < 3; ++s) {
    Prng prng(70 + s);
    std::vector<float> img(12);
    for (auto& v : img) v = static_cast<float>(prng.uniform_double());
    images.push_back(std::move(img));
  }
  return images;
}

struct Rig {
  RnsBackend backend;
  serve::BatchModelSet models;
  std::vector<int> baseline;  // fault-free per-image predictions
  Rig()
      : backend(tiny_params()), models(backend, tiny_spec(53), [] {
          HeModelOptions o;
          o.encrypted_weights = false;
          return o;
        }()) {
    const auto outcome =
        serve_classify_batch(backend, models.model_for(4), chaos_images());
    baseline = outcome.predicted;
  }
};

Rig& rig() {
  static Rig r;
  return r;
}

std::vector<ErrorCode> allowed_codes(fault::Site site, fault::Kind kind) {
  using fault::Kind;
  using fault::Site;
  if (site == Site::kWireUpload || site == Site::kWireDownload) {
    switch (kind) {
      case Kind::kTruncate:
        return {ErrorCode::kSerialization};
      case Kind::kLimbBitFlip:
      case Kind::kGarbage:
        return {ErrorCode::kChecksumMismatch, ErrorCode::kSerialization,
                ErrorCode::kIntegrity};
      default:
        break;
    }
  }
  if (site == Site::kEvalInput) {
    switch (kind) {
      case Kind::kLimbBitFlip:
        return {ErrorCode::kIntegrity};
      case Kind::kScaleMismatch:
        return {ErrorCode::kScaleMismatch};
      case Kind::kLevelMismatch:
        return {ErrorCode::kIntegrity, ErrorCode::kLevelMismatch};
      default:
        break;
    }
  }
  if (site == Site::kWorker) {
    return kind == Kind::kSlowWorker
               ? std::vector<ErrorCode>{ErrorCode::kTimeout}
               : std::vector<ErrorCode>{ErrorCode::kWorkerCrash};
  }
  return {};
}

class ChaosBatchTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }
};

TEST_F(ChaosBatchTest, MatrixThroughBatchedPathDetectedOrTolerated) {
  rig();  // build the rig (and its fault-free baseline) before arming
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    const auto site = static_cast<fault::Site>(s);
    for (const fault::Kind kind : fault::site_kinds(site)) {
      const std::string label = std::string(fault::site_name(site)) + ":" +
                                fault::kind_name(kind);
      fault::FaultSpec spec;
      spec.seed = 911;
      spec.slow_seconds = 3.0;
      spec.rules.push_back({site, kind, 1.0, /*budget=*/1});
      fault::configure(spec);

      ServingOptions options;
      options.max_retries = 2;
      options.watchdog_seconds = 2.0;
      // A 3-image batch on the batch-4 model: padding rides through the
      // fault path too.
      const ServeBatchOutcome outcome = serve_classify_batch(
          rig().backend, rig().models.model_for(4), chaos_images(), options);
      fault::disarm();

      ASSERT_TRUE(outcome.ok) << label;
      EXPECT_EQ(outcome.attempts, 2) << label;
      ASSERT_EQ(outcome.faults.size(), 1u) << label;
      const auto allowed = allowed_codes(site, kind);
      bool code_ok = false;
      for (const ErrorCode c : allowed) code_ok |= (c == outcome.faults[0].code);
      EXPECT_TRUE(code_ok) << label << " surfaced unexpected code "
                           << error_code_name(outcome.faults[0].code);
      // Recovery converged on the fault-free prediction for EVERY member of
      // the shared ciphertext, not just some.
      ASSERT_EQ(outcome.predicted.size(), rig().baseline.size()) << label;
      for (std::size_t i = 0; i < outcome.predicted.size(); ++i) {
        EXPECT_EQ(outcome.predicted[i], rig().baseline[i]) << label << " " << i;
      }
    }
  }
}

TEST_F(ChaosBatchTest, RetryReencryptsInputsButNeverReuploadsKeyMaterial) {
  rig();  // build the rig (and its fault-free baseline) before arming
  fault::FaultSpec spec;
  spec.seed = 5;
  spec.rules.push_back(
      {fault::Site::kWireUpload, fault::Kind::kLimbBitFlip, 1.0, 1});
  fault::configure(spec);

  const HeModel& model = rig().models.model_for(4);
  const std::uint64_t keys_before =
      rig().backend.op_count(OpKind::kGaloisKeys);
  const std::uint64_t encrypts_before =
      rig().backend.op_count(OpKind::kEncrypt);
  const ServeBatchOutcome outcome =
      serve_classify_batch(rig().backend, model, chaos_images());
  ASSERT_TRUE(outcome.ok);
  ASSERT_EQ(outcome.attempts, 2);  // one detected corruption, one recompute
  // Hoisted session setup: exactly ONE ensure_galois_keys for the whole
  // serve call — the retry added no key-switch-key regeneration/re-upload.
  EXPECT_EQ(rig().backend.op_count(OpKind::kGaloisKeys) - keys_before, 1u);
  // ...while the inputs WERE re-encrypted (retry-by-recompute): one branch
  // ciphertext per attempt.
  EXPECT_EQ(rig().backend.op_count(OpKind::kEncrypt) - encrypts_before, 2u);
}

TEST_F(ChaosBatchTest, ServerAttributesBatchFaultsToEveryMemberReply) {
  rig();  // build the rig (and its fault-free baseline) before arming
  fault::FaultSpec spec;
  spec.seed = 8;
  spec.rules.push_back(
      {fault::Site::kWireUpload, fault::Kind::kGarbage, 1.0, 1});
  fault::configure(spec);

  serve::ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 4;
  opts.linger_ms = 50.0;  // the three submits coalesce into one batch
  serve::BatchServer server(rig().models, opts);
  std::vector<std::future<serve::ServeReply>> futures;
  for (auto& img : chaos_images()) futures.push_back(server.submit(img));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::ServeReply reply = futures[i].get();
    ASSERT_TRUE(reply.ok) << i;
    EXPECT_EQ(reply.batch_size, 3u) << i;
    EXPECT_EQ(reply.attempts, 2) << i;
    // Every member of the shared ciphertext carries the batch's fault
    // history — per-request attribution of a batch-level failure.
    ASSERT_EQ(reply.faults.size(), 1u) << i;
    EXPECT_EQ(reply.predicted, rig().baseline[i]) << i;
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.ok, 3u);
}

TEST_F(ChaosBatchTest, NoiseBudgetRefusalIsDegradedAndFinalForTheWholeBatch) {
  HeModelOptions options;
  options.encrypted_weights = false;
  options.min_noise_budget_bits = 1e6;  // a floor fresh inputs cannot meet
  options.batch = 4;
  const HeModel guarded(rig().backend, tiny_spec(53), options);
  const ServeBatchOutcome outcome =
      serve_classify_batch(rig().backend, guarded, chaos_images());
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.attempts, 1);  // no retry: recompute cannot add modulus
  ASSERT_EQ(outcome.faults.size(), 1u);
  EXPECT_EQ(outcome.faults[0].code, ErrorCode::kNoiseBudget);
  EXPECT_TRUE(outcome.logits.empty());
}

}  // namespace
}  // namespace pphe
