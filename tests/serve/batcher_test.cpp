// Deterministic micro-batcher tests: the batcher is pure decision logic fed
// fabricated time points, so every linger-expiry/full-batch race is replayed
// exactly — no sleeps, no clocks, no flakiness.

#include <gtest/gtest.h>

#include <chrono>
#include <optional>

#include "serve/batcher.hpp"

namespace pphe::serve {
namespace {

using Batcher = MicroBatcher<int>;
using Clock = Batcher::Clock;
using std::chrono::milliseconds;

Clock::time_point t(int ms) { return Clock::time_point(milliseconds(ms)); }

TEST(MicroBatcher, FullBatchCutsImmediatelyWithoutWaitingOutTheLinger) {
  Batcher b(/*max_batch=*/4, milliseconds(100));
  for (int i = 0; i < 4; ++i) b.add(0, i, t(0));
  // Deadline is far away; the full group must still cut right now.
  auto batch = b.cut(t(1));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items.size(), 4u);
  EXPECT_EQ(batch->oldest_arrival, t(0));
  EXPECT_EQ(b.pending(), 0u);
  EXPECT_FALSE(b.cut(t(1)).has_value());
}

TEST(MicroBatcher, PartialBatchWaitsUntilLingerExpiry) {
  Batcher b(/*max_batch=*/8, milliseconds(10));
  b.add(0, 1, t(0));
  b.add(0, 2, t(3));
  // Before the oldest member's deadline: nothing to cut.
  EXPECT_FALSE(b.cut(t(9)).has_value());
  ASSERT_TRUE(b.next_deadline().has_value());
  EXPECT_EQ(*b.next_deadline(), t(10));  // oldest arrival + linger
  // At the deadline the partial batch dispatches with both members.
  auto batch = b.cut(t(10));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items.size(), 2u);
  EXPECT_EQ(batch->items[0], 1);
  EXPECT_EQ(batch->items[1], 2);
}

TEST(MicroBatcher, ArrivalOrderPreservedWithinABatch) {
  Batcher b(4, milliseconds(10));
  for (int i = 0; i < 4; ++i) b.add(0, 10 + i, t(i));
  auto batch = b.cut(t(4));
  ASSERT_TRUE(batch.has_value());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(batch->items[i], 10 + i);
}

TEST(MicroBatcher, IncompatibleKeysNeverShareABatch) {
  Batcher b(4, milliseconds(10));
  b.add(/*key=*/1, 100, t(0));
  b.add(/*key=*/2, 200, t(1));
  b.add(/*key=*/1, 101, t(2));
  // Both groups expire; each cut returns ONE key's items, oldest group first.
  auto first = b.cut(t(50));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->key, 1u);
  EXPECT_EQ(first->items.size(), 2u);
  auto second = b.cut(t(50));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->key, 2u);
  EXPECT_EQ(second->items.size(), 1u);
  EXPECT_EQ(second->items[0], 200);
}

TEST(MicroBatcher, OversizeGroupCutsMaxBatchAndRemainderKeepsFreshDeadline) {
  Batcher b(4, milliseconds(10));
  for (int i = 0; i < 6; ++i) b.add(0, i, t(i));
  auto batch = b.cut(t(6));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items.size(), 4u);  // exactly max_batch, oldest first
  EXPECT_EQ(batch->items[0], 0);
  EXPECT_EQ(batch->items[3], 3);
  EXPECT_EQ(b.pending(), 2u);
  // The remainder's deadline derives from ITS oldest member (arrival t(4)).
  ASSERT_TRUE(b.next_deadline().has_value());
  EXPECT_EQ(*b.next_deadline(), t(14));
  EXPECT_FALSE(b.cut(t(13)).has_value());
  auto rest = b.cut(t(14));
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(rest->items.size(), 2u);
  EXPECT_EQ(rest->items[0], 4);
}

TEST(MicroBatcher, NextDeadlineIsEarliestAcrossGroups) {
  Batcher b(4, milliseconds(10));
  EXPECT_FALSE(b.next_deadline().has_value());  // idle: sleep indefinitely
  b.add(1, 1, t(5));
  b.add(2, 2, t(3));
  ASSERT_TRUE(b.next_deadline().has_value());
  EXPECT_EQ(*b.next_deadline(), t(13));  // key 2 arrived first
}

TEST(MicroBatcher, ExpiredGroupsCutOldestFirst) {
  Batcher b(4, milliseconds(10));
  b.add(1, 1, t(8));
  b.add(2, 2, t(2));
  auto batch = b.cut(t(100));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->key, 2u);  // oldest waiting request wins
}

TEST(MicroBatcher, CutAnyDrainsEverythingRegardlessOfDeadlines) {
  Batcher b(4, milliseconds(1000));
  b.add(1, 1, t(0));
  b.add(2, 2, t(0));
  for (int i = 0; i < 5; ++i) b.add(3, 10 + i, t(i));
  std::size_t total = 0;
  std::size_t batches = 0;
  while (auto batch = b.cut_any()) {
    EXPECT_LE(batch->items.size(), 4u);  // drain respects max_batch
    total += batch->items.size();
    ++batches;
  }
  EXPECT_EQ(total, 7u);
  EXPECT_EQ(batches, 4u);  // 1 + 1 + (4 + 1)
  EXPECT_EQ(b.pending(), 0u);
}

}  // namespace
}  // namespace pphe::serve
