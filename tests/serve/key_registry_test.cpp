// The per-client evaluation-key registry: LRU eviction order under the byte
// quota, exact accounting across re-registration and release, the typed
// oversize refusal, and (for the TSan sweep) concurrent sessions hammering
// register/touch/release on one registry.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "serve/net/key_registry.hpp"

namespace pphe::serve::net {
namespace {

TEST(KeyRegistryTest, RegistersAndAccounts) {
  KeyRegistry reg(100);
  EXPECT_TRUE(reg.register_session(1, 40).empty());
  EXPECT_TRUE(reg.register_session(2, 40).empty());
  EXPECT_TRUE(reg.contains(1));
  EXPECT_TRUE(reg.contains(2));
  const auto s = reg.stats();
  EXPECT_EQ(s.sessions, 2u);
  EXPECT_EQ(s.bytes_pinned, 80u);
  EXPECT_EQ(s.quota_bytes, 100u);
  EXPECT_EQ(s.registrations, 2u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(KeyRegistryTest, EvictsLeastRecentlyUsedFirst) {
  KeyRegistry reg(100);
  reg.register_session(1, 40);
  reg.register_session(2, 40);
  // Touch 1 so 2 becomes the LRU tail.
  EXPECT_TRUE(reg.touch(1));
  const auto evicted = reg.register_session(3, 40);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
  EXPECT_TRUE(reg.contains(1));
  EXPECT_FALSE(reg.contains(2));
  EXPECT_TRUE(reg.contains(3));
  EXPECT_EQ(reg.stats().evictions, 1u);
  // The evicted session's next touch reports "not registered" — the caller
  // turns that into the typed kKeyEvicted reply.
  EXPECT_FALSE(reg.touch(2));
}

TEST(KeyRegistryTest, EvictsAsManySessionsAsTheUploadNeeds) {
  KeyRegistry reg(100);
  reg.register_session(1, 30);
  reg.register_session(2, 30);
  reg.register_session(3, 30);
  // 90 pinned; a 95-byte upload must displace all three, oldest first.
  const auto evicted = reg.register_session(4, 95);
  ASSERT_EQ(evicted.size(), 3u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_EQ(evicted[1], 2u);
  EXPECT_EQ(evicted[2], 3u);
  const auto s = reg.stats();
  EXPECT_EQ(s.sessions, 1u);
  EXPECT_EQ(s.bytes_pinned, 95u);
}

TEST(KeyRegistryTest, ReRegistrationReplacesAccountingAndPromotes) {
  KeyRegistry reg(100);
  reg.register_session(1, 40);
  reg.register_session(2, 40);
  // Session 1 re-registers with a bigger upload: its old 40 bytes are
  // RELEASED first (not double-counted), and it must not evict itself.
  EXPECT_TRUE(reg.register_session(1, 60).empty());
  const auto s = reg.stats();
  EXPECT_EQ(s.sessions, 2u);
  EXPECT_EQ(s.bytes_pinned, 100u);
  EXPECT_EQ(s.evictions, 0u);
  // And it is now most recently used: a squeeze evicts 2, not 1.
  const auto evicted = reg.register_session(3, 40);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
}

TEST(KeyRegistryTest, ReRegistrationAfterEvictionWorks) {
  KeyRegistry reg(100);
  reg.register_session(1, 60);
  reg.register_session(2, 60);  // evicts 1
  EXPECT_FALSE(reg.contains(1));
  // The kKeyEvicted recovery path: the client re-sends keys and is re-pinned.
  const auto evicted = reg.register_session(1, 60);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
  EXPECT_TRUE(reg.touch(1));
  EXPECT_EQ(reg.stats().bytes_pinned, 60u);
}

TEST(KeyRegistryTest, OversizeUploadIsTypedRejectionNotEvictionStorm) {
  KeyRegistry reg(100);
  reg.register_session(1, 40);
  try {
    reg.register_session(2, 101);
    FAIL() << "oversize registration should throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
  // Nobody was evicted to make room for an upload that could never fit.
  EXPECT_TRUE(reg.contains(1));
  const auto s = reg.stats();
  EXPECT_EQ(s.rejected_oversize, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.bytes_pinned, 40u);
}

TEST(KeyRegistryTest, ReleaseFreesBytesAndIsIdempotent) {
  KeyRegistry reg(100);
  reg.register_session(1, 70);
  reg.release(1);
  reg.release(1);  // no-op
  EXPECT_FALSE(reg.contains(1));
  EXPECT_EQ(reg.stats().bytes_pinned, 0u);
  // The freed room admits a new full-size registration without eviction.
  EXPECT_TRUE(reg.register_session(2, 100).empty());
}

TEST(KeyRegistryTest, ConcurrentSessionsStayConsistent) {
  // The TSan target runs this binary: many threads register/touch/release
  // against one registry; afterwards the accounting must be exact.
  KeyRegistry reg(1 << 20);
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<std::uint64_t> evicted_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const std::uint64_t session =
            static_cast<std::uint64_t>(t) * kRounds + r;
        const auto evicted = reg.register_session(session, 4096);
        evicted_seen.fetch_add(evicted.size(), std::memory_order_relaxed);
        reg.touch(session);
        if (r % 3 == 0) reg.release(session);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = reg.stats();
  EXPECT_EQ(s.bytes_pinned, s.sessions * 4096u);
  EXPECT_LE(s.bytes_pinned, s.quota_bytes);
  EXPECT_EQ(s.registrations, static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(s.evictions, evicted_seen.load());
}

}  // namespace
}  // namespace pphe::serve::net
