// BatchServer end-to-end: coalescing, padding, de-interleaving, admission
// control, stats accounting, and shutdown drain — all on the real HE round
// trip (no fault injection here; the chaos extension lives in the
// robustness binary because fault plans are process-global).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"
#include "serve/server.hpp"

namespace pphe::serve {
namespace {

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

ModelSpec tiny_spec(std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "server-tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(12, 8));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = 8;
    s.activation.degree = 2;
    s.activation.coeffs.resize(8 * 3);
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(8, 5));
  return spec;
}

std::vector<float> make_image(std::uint64_t seed) {
  Prng prng(seed);
  std::vector<float> img(12);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

/// Backend + model set shared across the binary (weight encoding dominates
/// otherwise). Servers are cheap; each test builds its own with the knobs
/// under test.
struct Rig {
  RnsBackend backend;
  BatchModelSet models;
  Rig()
      : backend(tiny_params()), models(backend, tiny_spec(31), [] {
          HeModelOptions o;
          o.encrypted_weights = false;
          return o;
        }()) {}
};

Rig& rig() {
  static Rig r;
  return r;
}

TEST(BatchServer, SingleRequestRoundTrip) {
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 4;
  opts.linger_ms = 1.0;
  BatchServer server(rig().models, opts);
  auto future = server.submit(make_image(1));
  const ServeReply reply = future.get();
  ASSERT_TRUE(reply.ok);
  EXPECT_FALSE(reply.degraded);
  EXPECT_EQ(reply.attempts, 1);
  EXPECT_EQ(reply.batch_size, 1u);
  ASSERT_EQ(reply.logits.size(), 5u);
  const InferenceResult direct = rig().models.model_for(1).infer(make_image(1));
  EXPECT_EQ(reply.predicted, direct.predicted);
  for (std::size_t i = 0; i < reply.logits.size(); ++i) {
    EXPECT_NEAR(reply.logits[i], direct.logits[i], 1e-3) << i;
  }
}

TEST(BatchServer, BatchOfEightMatchesEightSequentialSingles) {
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 8;
  // Generous linger: all eight submits (microseconds apart) coalesce, and
  // the full batch cuts immediately on the eighth — well before expiry.
  opts.linger_ms = 2000.0;
  BatchServer server(rig().models, opts);
  std::vector<std::future<ServeReply>> futures;
  for (std::uint64_t i = 0; i < 8; ++i) {
    futures.push_back(server.submit(make_image(100 + i)));
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    const ServeReply reply = futures[i].get();
    ASSERT_TRUE(reply.ok) << i;
    EXPECT_EQ(reply.batch_size, 8u) << i;  // one slot-packed evaluation
    // The de-interleaved logits match a sequential single-image inference
    // of the same image: same argmax, logits within the encrypted-noise
    // tolerance (encryption is randomized, so bit-identity across separate
    // encryptions is impossible by design; the bit-level contract is pinned
    // by DeinterleaveFirstRowIsTheSingleDecodePath below).
    const InferenceResult direct =
        rig().models.model_for(1).infer(make_image(100 + i));
    EXPECT_EQ(reply.predicted, direct.predicted) << i;
    ASSERT_EQ(reply.logits.size(), direct.logits.size()) << i;
    for (std::size_t t = 0; t < reply.logits.size(); ++t) {
      EXPECT_NEAR(reply.logits[t], direct.logits[t], 1e-3) << i << "," << t;
    }
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batch_sizes.at(8), 1u);
}

TEST(BatchServer, DeinterleaveFirstRowIsTheSingleDecodePath) {
  // On the SAME ciphertext the two decode paths are bit-identical:
  // decrypt_logits(ct) is defined as decrypt_logits_batch(ct)[0].
  const HeModel& model = rig().models.model_for(8);
  std::vector<std::vector<float>> images;
  for (std::uint64_t i = 0; i < 8; ++i) images.push_back(make_image(200 + i));
  const Ciphertext out = model.eval(model.encrypt_batch(images));
  const auto rows = model.decrypt_logits_batch(out);
  const auto single = model.decrypt_logits(out);
  ASSERT_EQ(rows.size(), 8u);
  ASSERT_EQ(single.size(), rows[0].size());
  for (std::size_t t = 0; t < single.size(); ++t) {
    EXPECT_EQ(single[t], rows[0][t]) << t;  // exact, not NEAR
  }
}

TEST(BatchServer, PartialBatchPadsToThePowerOfTwoAbove) {
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 8;
  opts.linger_ms = 5.0;
  BatchServer server(rig().models, opts);
  std::vector<std::future<ServeReply>> futures;
  for (std::uint64_t i = 0; i < 3; ++i) {
    futures.push_back(server.submit(make_image(300 + i)));
  }
  for (std::uint64_t i = 0; i < 3; ++i) {
    const ServeReply reply = futures[i].get();
    ASSERT_TRUE(reply.ok) << i;
    EXPECT_EQ(reply.batch_size, 3u) << i;  // 3 real images, padded to 4
    const InferenceResult direct =
        rig().models.model_for(1).infer(make_image(300 + i));
    EXPECT_EQ(reply.predicted, direct.predicted) << i;
    for (std::size_t t = 0; t < reply.logits.size(); ++t) {
      EXPECT_NEAR(reply.logits[t], direct.logits[t], 1e-3) << i << "," << t;
    }
  }
}

TEST(BatchServer, OverloadRejectsWithTypedErrorAndServesTheAdmitted) {
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 1;  // every request is its own evaluation: slow drain
  opts.linger_ms = 0.0;
  opts.queue_capacity = 2;
  BatchServer server(rig().models, opts);
  std::vector<std::future<ServeReply>> admitted;
  std::size_t rejected = 0;
  for (std::uint64_t i = 0; i < 40; ++i) {
    try {
      admitted.push_back(server.submit(make_image(400 + i)));
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
      ++rejected;
    }
  }
  // A 2-deep queue against millisecond evaluations cannot admit 40
  // microsecond-spaced submits.
  EXPECT_GT(rejected, 0u);
  ASSERT_FALSE(admitted.empty());
  for (auto& f : admitted) {
    const ServeReply reply = f.get();
    EXPECT_TRUE(reply.ok);  // backpressure never cancels admitted work
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected[static_cast<std::size_t>(ErrorCode::kOverloaded)],
            rejected);
  EXPECT_EQ(stats.submitted, admitted.size());
  EXPECT_EQ(stats.completed, admitted.size());
}

TEST(BatchServer, WrongImageDimensionRejectedAtSubmitTime) {
  ServerOptions opts;
  opts.workers = 1;
  BatchServer server(rig().models, opts);
  try {
    server.submit(std::vector<float>(5, 0.1f));
    FAIL() << "submit with a wrong-dimension image must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(std::string(e.what()).find("12"), std::string::npos);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(
      stats.rejected[static_cast<std::size_t>(ErrorCode::kInvalidArgument)],
      1u);
  EXPECT_EQ(stats.submitted, 0u);
}

TEST(BatchServer, StatsAccountForEveryRequestAndBatch) {
  ServerOptions opts;
  opts.workers = 2;
  opts.max_batch = 4;
  opts.linger_ms = 5.0;
  BatchServer server(rig().models, opts);
  std::vector<std::future<ServeReply>> futures;
  for (std::uint64_t i = 0; i < 6; ++i) {
    futures.push_back(server.submit(make_image(500 + i)));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.ok, 6u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.batches_in_flight, 0u);
  EXPECT_GE(stats.batches, 1u);
  std::uint64_t through_batches = 0;
  for (const auto& [size, count] : stats.batch_sizes) {
    through_batches += size * count;
  }
  EXPECT_EQ(through_batches, 6u);
  EXPECT_EQ(stats.queue_ns.count(), 6u);
  EXPECT_EQ(stats.linger_ns.count(), stats.batches);
  EXPECT_EQ(stats.eval_ns.count(), stats.batches);
}

TEST(BatchServer, ShutdownDrainsAcceptedWorkAndRefusesNewWork) {
  ServerOptions opts;
  opts.workers = 1;
  opts.max_batch = 8;
  opts.linger_ms = 60000.0;  // would linger for a minute — drain must not
  BatchServer server(rig().models, opts);
  std::vector<std::future<ServeReply>> futures;
  for (std::uint64_t i = 0; i < 3; ++i) {
    futures.push_back(server.submit(make_image(600 + i)));
  }
  server.shutdown();  // force-cuts the lingering partial batch
  for (auto& f : futures) {
    const ServeReply reply = f.get();
    EXPECT_TRUE(reply.ok);
  }
  EXPECT_THROW(server.submit(make_image(1)), Error);
  server.shutdown();  // idempotent
}

}  // namespace
}  // namespace pphe::serve
