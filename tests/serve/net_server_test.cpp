// The networked serving stack end-to-end on real loopback TCP: versioned
// handshake (and its typed refusals), key registration, framed encrypted
// classification from concurrent network clients, tiered admission
// shedding, LRU key eviction with the re-send-keys recovery loop, and the
// /metrics endpoint scraped over raw HTTP. No fault injection here — the
// wire chaos matrix lives in the robustness binary.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"
#include "core/serving.hpp"
#include "serve/net/net_client.hpp"
#include "serve/net/net_server.hpp"
#include "serve/server.hpp"

namespace pphe::serve::net {
namespace {

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

ModelSpec tiny_spec(std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "net-tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(12, 8));
  spec.stages.push_back(linear(8, 5));
  return spec;
}

std::vector<float> make_image(std::uint64_t seed) {
  Prng prng(seed);
  std::vector<float> img(12);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

/// Backend + model set + fault-free single-image baselines, shared across
/// the binary (weight encoding dominates otherwise).
struct Rig {
  RnsBackend backend;
  BatchModelSet models;
  Rig()
      : backend(tiny_params()), models(backend, tiny_spec(77), [] {
          HeModelOptions o;
          o.encrypted_weights = false;
          return o;
        }()) {}

  int baseline(const std::vector<float>& image) {
    const auto outcome =
        serve_classify_batch(backend, models.model_for(1), {image});
    return outcome.predicted.at(0);
  }
};

Rig& rig() {
  static Rig r;
  return r;
}

NetClientOptions client_options(std::uint16_t port) {
  NetClientOptions o;
  o.port = port;
  return o;
}

TEST(NetServerTest, HandshakeAdvertisesSessionAndLimits) {
  BatchServer server(rig().models, {});
  NetServer net(server, rig().backend, {});
  ASSERT_GT(net.port(), 0);

  NetClient client(rig().backend.params(), client_options(net.port()));
  EXPECT_GT(client.session().session_id, 0u);
  EXPECT_EQ(client.session().input_dim, 12u);
  EXPECT_GT(client.session().max_frame_bytes, 0u);
  EXPECT_GT(client.session().key_quota_bytes, 0u);
  EXPECT_EQ(net.stats().handshakes, 1u);
}

TEST(NetServerTest, ParameterDigestMismatchIsTypedProtocolRefusal) {
  BatchServer server(rig().models, {});
  NetServer net(server, rig().backend, {});

  CkksParams other = tiny_params();
  other.q_bit_sizes.pop_back();  // a client built against different moduli
  try {
    NetClient client(other, client_options(net.port()));
    FAIL() << "handshake should refuse a mismatched parameter digest";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocol);
  }
  EXPECT_EQ(net.stats().handshakes, 0u);
}

TEST(NetServerTest, ClassifiesOverTheSocketMatchingInProcessBaseline) {
  BatchServer server(rig().models, {});
  NetServer net(server, rig().backend, {});

  const std::vector<float> image = make_image(5);
  const int expected = rig().baseline(image);

  NetClient client(rig().backend.params(), client_options(net.port()));
  client.upload_keys({1, 2, 4});
  const NetReply reply = client.classify(image);
  ASSERT_TRUE(reply.ok) << reply.message;
  EXPECT_EQ(reply.predicted, expected);
  EXPECT_EQ(reply.logits.size(), 5u);
  EXPECT_GE(reply.batch_size, 1u);
  client.bye();

  const NetServerStats ns = net.stats();
  EXPECT_EQ(ns.requests, 1u);
  EXPECT_EQ(ns.replies_ok, 1u);
  // bye releases the registration; the frame is processed by the handler
  // thread, so poll briefly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (net.key_stats().sessions != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(net.key_stats().sessions, 0u);
}

TEST(NetServerTest, RequestWithoutKeysIsTypedKeyEvictedRejection) {
  BatchServer server(rig().models, {});
  NetServer net(server, rig().backend, {});

  NetClientOptions opts = client_options(net.port());
  opts.auto_resend_keys = false;
  NetClient client(rig().backend.params(), opts);
  const NetReply reply = client.classify(make_image(6));
  EXPECT_FALSE(reply.ok);
  EXPECT_TRUE(reply.rejected);
  EXPECT_EQ(reply.error, ErrorCode::kKeyEvicted);
  EXPECT_EQ(net.stats().key_evicted_rejects, 1u);
}

TEST(NetServerTest, ConcurrentNetworkClientsGetCorrectLogits) {
  ServerOptions sopts;
  sopts.workers = 2;
  sopts.max_batch = 4;
  sopts.linger_ms = 5.0;
  BatchServer server(rig().models, sopts);
  NetServer net(server, rig().backend, {});

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 3;
  std::vector<std::vector<float>> images;
  std::vector<int> expected;
  for (std::size_t i = 0; i < kClients * kPerClient; ++i) {
    images.push_back(make_image(100 + i));
    expected.push_back(rig().baseline(images.back()));
  }

  std::vector<int> got(images.size(), -1);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client(rig().backend.params(), client_options(net.port()));
      client.upload_keys({});
      for (std::size_t r = 0; r < kPerClient; ++r) {
        const std::size_t idx = c * kPerClient + r;
        const NetReply reply = client.classify(images[idx]);
        ASSERT_TRUE(reply.ok) << reply.message;
        got[idx] = reply.predicted;
      }
      client.bye();
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "request " << i;
  }
  const NetServerStats ns = net.stats();
  EXPECT_EQ(ns.handshakes, kClients);
  EXPECT_EQ(ns.replies_ok, kClients * kPerClient);
}

TEST(NetServerTest, LruEvictionUnderQuotaPressureRecoversByResendingKeys) {
  BatchServer server(rig().models, {});
  NetServerOptions nopts;
  // Room for exactly ONE declared registration at a time.
  nopts.key_quota_bytes = 1500;
  NetServer net(server, rig().backend, nopts);

  NetClient a(rig().backend.params(), client_options(net.port()));
  NetClient b(rig().backend.params(), client_options(net.port()));
  a.upload_keys({1, 2}, /*declared_bytes=*/1000);
  b.upload_keys({1, 2}, /*declared_bytes=*/1000);  // evicts a
  EXPECT_EQ(net.key_stats().sessions, 1u);
  EXPECT_EQ(net.key_stats().evictions, 1u);

  // a's next request hits the typed kKeyEvicted rejection; the client's
  // recovery loop re-sends its remembered keys and resubmits once.
  const std::vector<float> image = make_image(9);
  const NetReply reply = a.classify(image);
  ASSERT_TRUE(reply.ok) << reply.message;
  EXPECT_EQ(reply.predicted, rig().baseline(image));

  const NetServerStats ns = net.stats();
  EXPECT_EQ(ns.key_evicted_rejects, 1u);
  EXPECT_GE(net.key_stats().evictions, 2u);  // b displaced in turn
}

TEST(NetServerTest, MetricsEndpointServesPrometheusTextOverRawHttp) {
  BatchServer server(rig().models, {});
  NetServer net(server, rig().backend, {});

  // Generate a little traffic first so the series are non-trivial.
  NetClient client(rig().backend.params(), client_options(net.port()));
  client.upload_keys({});
  ASSERT_TRUE(client.classify(make_image(11)).ok);

  TcpConn http = tcp_connect("127.0.0.1", net.port(), 5.0);
  http.send_all("GET /metrics HTTP/1.0\r\n\r\n");
  std::string text;
  char buf[4096];
  for (;;) {
    const std::size_t n = http.recv_some(buf, sizeof(buf), 5.0);
    if (n == 0) break;
    text.append(buf, n);
  }
  EXPECT_NE(text.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(text.find("pphe_requests_submitted_total 1"), std::string::npos);
  EXPECT_NE(text.find("pphe_requests_completed_total{result=\"ok\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pphe_net_handshakes_total"), std::string::npos);
  EXPECT_NE(text.find("pphe_latency_seconds{stage=\"eval\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pphe_key_registrations_total 1"), std::string::npos);
  EXPECT_NE(text.find("pphe_backend_ops_total"), std::string::npos);
  EXPECT_EQ(net.stats().http_scrapes, 1u);

  // Unknown paths 404 without disturbing the server.
  TcpConn miss = tcp_connect("127.0.0.1", net.port(), 5.0);
  miss.send_all("GET /nope HTTP/1.0\r\n\r\n");
  std::string miss_text;
  for (;;) {
    const std::size_t n = miss.recv_some(buf, sizeof(buf), 5.0);
    if (n == 0) break;
    miss_text.append(buf, n);
  }
  EXPECT_NE(miss_text.find("404"), std::string::npos);
  ASSERT_TRUE(client.classify(make_image(12)).ok);
}

TEST(NetServerTest, ShutdownUnblocksIdleConnections) {
  BatchServer server(rig().models, {});
  auto net = std::make_unique<NetServer>(server, rig().backend,
                                         NetServerOptions{});
  NetClient client(rig().backend.params(), client_options(net->port()));
  // The client sits idle (its handler blocked in read_frame); shutdown must
  // interrupt that read and join, not hang.
  net->shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace pphe::serve::net
