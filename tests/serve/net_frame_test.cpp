// The framing layer in isolation, over real loopback sockets: round trips,
// the self-checking header (bit-flips, truncation, oversize, bad checksums
// all surface as TYPED errors before any payload byte is trusted), the
// framed-vs-unframed distinction that decides whether a connection
// survives, and the bounds-checked payload codecs.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "ckks/serialize.hpp"
#include "common/check.hpp"
#include "serve/net/frame.hpp"
#include "serve/net/socket.hpp"

namespace pphe::serve::net {
namespace {

/// One connected loopback socket pair.
struct Pair {
  TcpListener listener{0};
  TcpConn client;
  TcpConn server;
  Pair() {
    client = tcp_connect("127.0.0.1", listener.port(), 5.0);
    server = listener.accept(5.0);
    EXPECT_TRUE(client.valid());
    EXPECT_TRUE(server.valid());
  }
};

ErrorCode read_should_throw(const TcpConn& conn, bool* framed = nullptr,
                            double timeout = 5.0) {
  Frame frame;
  try {
    read_frame(conn, frame, timeout, kDefaultMaxFrameBytes, framed);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "read_frame should have thrown";
  return ErrorCode::kGeneric;
}

TEST(NetFrameTest, RoundTripsAllTypes) {
  Pair p;
  for (const FrameType type :
       {FrameType::kHello, FrameType::kKeyUpload, FrameType::kRequest,
        FrameType::kReply, FrameType::kBye}) {
    const std::string payload(type == FrameType::kBye ? 0 : 1000, 'x');
    p.client.send_all(encode_frame(type, payload));
    Frame got;
    bool framed = false;
    ASSERT_TRUE(read_frame(p.server, got, 5.0, kDefaultMaxFrameBytes, &framed));
    EXPECT_EQ(got.type, type);
    EXPECT_EQ(got.payload, payload);
    EXPECT_TRUE(framed);
  }
}

TEST(NetFrameTest, CleanEofAtBoundaryIsFalseNotError) {
  Pair p;
  p.client.send_all(encode_frame(FrameType::kBye, ""));
  p.client.close();
  Frame got;
  ASSERT_TRUE(read_frame(p.server, got, 5.0));  // the bye still arrives
  EXPECT_FALSE(read_frame(p.server, got, 5.0));  // then clean EOF
}

TEST(NetFrameTest, HeaderBitFlipIsTypedChecksumMismatchAndUnframed) {
  Pair p;
  std::string bytes = encode_frame(FrameType::kRequest, "payload-bytes");
  bytes[9] = static_cast<char>(bytes[9] ^ 0x10);  // inside payload_len field
  p.client.send_all(bytes);
  bool framed = true;
  EXPECT_EQ(read_should_throw(p.server, &framed),
            ErrorCode::kChecksumMismatch);
  // Header damage loses framing: the server must drop this connection.
  EXPECT_FALSE(framed);
}

TEST(NetFrameTest, PayloadBitFlipIsTypedButStaysFramed) {
  Pair p;
  std::string bytes = encode_frame(FrameType::kRequest, "payload-bytes");
  bytes[kFrameHeaderBytes + 3] ^= 0x01;
  p.client.send_all(bytes);
  bool framed = false;
  EXPECT_EQ(read_should_throw(p.server, &framed),
            ErrorCode::kChecksumMismatch);
  // The header was intact and every advertised byte was consumed, so the
  // NEXT frame on the same connection still parses.
  EXPECT_TRUE(framed);
  p.client.send_all(encode_frame(FrameType::kRequest, "clean"));
  Frame got;
  ASSERT_TRUE(read_frame(p.server, got, 5.0));
  EXPECT_EQ(got.payload, "clean");
}

TEST(NetFrameTest, BadMagicIsTypedSerialization) {
  Pair p;
  std::string bytes = encode_frame(FrameType::kHello, "x");
  bytes[0] = 'Q';
  p.client.send_all(bytes);
  EXPECT_EQ(read_should_throw(p.server), ErrorCode::kSerialization);
}

TEST(NetFrameTest, TruncatedFrameIsTypedSerializationOnEof) {
  Pair p;
  const std::string bytes = encode_frame(FrameType::kRequest, "0123456789");
  p.client.send_all(bytes.substr(0, bytes.size() - 4));
  p.client.close();
  bool framed = true;
  EXPECT_EQ(read_should_throw(p.server, &framed), ErrorCode::kSerialization);
  EXPECT_FALSE(framed);
}

TEST(NetFrameTest, StalledFrameIsTypedTimeout) {
  Pair p;
  const std::string bytes = encode_frame(FrameType::kRequest, "0123456789");
  p.client.send_all(bytes.substr(0, 10));  // header fragment, then silence
  bool framed = true;
  EXPECT_EQ(read_should_throw(p.server, &framed, 0.2), ErrorCode::kTimeout);
  EXPECT_FALSE(framed);
}

TEST(NetFrameTest, OversizePayloadRefusedBeforeAllocation) {
  Pair p;
  // A forged header advertising a huge payload — with a VALID header
  // checksum, so only the length bound can refuse it.
  std::string huge(100, 'x');
  std::string bytes = encode_frame(FrameType::kRequest, huge);
  p.client.send_all(bytes);
  Frame got;
  try {
    read_frame(p.server, got, 5.0, /*max_frame_bytes=*/64);
    FAIL() << "oversize frame should throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSerialization);
  }
}

TEST(NetFrameTest, WrongVersionIsTypedProtocol) {
  Pair p;
  std::string payload = "v";
  std::string bytes = encode_frame(FrameType::kHello, payload);
  // Re-forge the header with a bumped version and a RECOMPUTED header
  // checksum, so version — not the checksum — is what refuses it.
  bytes[4] = static_cast<char>(kProtocolVersion + 1);
  const std::uint64_t hsum = wire_checksum(bytes.data(), 24);
  for (int i = 0; i < 8; ++i) {
    bytes[24 + i] = static_cast<char>(hsum >> (8 * i));
  }
  p.client.send_all(bytes);
  EXPECT_EQ(read_should_throw(p.server), ErrorCode::kProtocol);
}

TEST(NetFrameTest, PayloadCodecRoundTrips) {
  PayloadWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(123456789);
  w.u64(0x1122334455667788ull);
  w.i32(-42);
  w.f64(3.14159);
  w.f32(2.5f);
  w.str("hello");
  const std::string bytes = w.take();

  PayloadReader r(bytes);
  EXPECT_EQ(r.u8("a"), 7);
  EXPECT_EQ(r.u16("b"), 65535);
  EXPECT_EQ(r.u32("c"), 123456789u);
  EXPECT_EQ(r.u64("d"), 0x1122334455667788ull);
  EXPECT_EQ(r.i32("e"), -42);
  EXPECT_DOUBLE_EQ(r.f64("f"), 3.14159);
  EXPECT_FLOAT_EQ(r.f32("g"), 2.5f);
  EXPECT_EQ(r.str("h"), "hello");
  r.expect_done("roundtrip");
}

TEST(NetFrameTest, PayloadOverrunsAreTypedWithFieldName) {
  PayloadWriter w;
  w.u16(99);
  const std::string bytes = w.take();
  PayloadReader r(bytes);
  try {
    r.u64("needs_eight");
    FAIL() << "overrun should throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSerialization);
    EXPECT_NE(std::string(e.what()).find("needs_eight"), std::string::npos);
  }
}

TEST(NetFrameTest, PayloadStringClaimingTooMuchIsTyped) {
  PayloadWriter w;
  w.u32(1000);  // string length prefix with only 2 real bytes behind it
  w.u16(0);
  const std::string bytes = w.take();
  PayloadReader r(bytes);
  try {
    r.str("name");
    FAIL() << "oversized string claim should throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSerialization);
  }
}

TEST(NetFrameTest, TrailingBytesAreTypedProtocol) {
  PayloadWriter w;
  w.u32(1);
  w.u32(2);
  const std::string bytes = w.take();
  PayloadReader r(bytes);
  r.u32("only");
  try {
    r.expect_done("message");
    FAIL() << "trailing bytes should throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocol);
  }
}

}  // namespace
}  // namespace pphe::serve::net
