// BatchModelSet: lazy per-power-of-two compilation with a shared weight
// cache, plus the typed --batch validation surface (HeModel::validate_batch)
// the CLI layers route through.

#include <gtest/gtest.h>

#include <string>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"
#include "serve/model_set.hpp"

namespace pphe::serve {
namespace {

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

ModelSpec tiny_spec(std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "model-set-tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(12, 8));
  spec.stages.push_back(linear(8, 5));
  return spec;
}

HeModelOptions plain_options() {
  HeModelOptions o;
  o.encrypted_weights = false;
  return o;
}

struct Rig {
  RnsBackend backend;
  BatchModelSet models;
  Rig()
      : backend(tiny_params()),
        models(backend, tiny_spec(21), plain_options()) {}
};

Rig& rig() {
  static Rig r;
  return r;
}

TEST(BatchModelSet, MaxBatchMatchesSlotCapacity) {
  // Largest layer dim 12 -> tile 16; 1024 slots / 16 = 64 images.
  EXPECT_EQ(rig().models.max_batch(), 64u);
  EXPECT_EQ(rig().models.input_dim(), 12u);
}

TEST(BatchModelSet, ModelsAreCachedAndSharedPerSize) {
  const HeModel& a = rig().models.model_for(4);
  const HeModel& b = rig().models.model_for(4);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.options().batch, 4u);
}

TEST(BatchModelSet, PartialSizesRoundUpToTheNextPowerOfTwo) {
  const HeModel& three = rig().models.model_for(3);
  const HeModel& four = rig().models.model_for(4);
  EXPECT_EQ(&three, &four);
  EXPECT_EQ(three.options().batch, 4u);
  EXPECT_EQ(rig().models.model_for(1).options().batch, 1u);
}

TEST(BatchModelSet, MembersShareOneWeightCache) {
  ASSERT_NE(rig().models.weight_cache(), nullptr);
  rig().models.model_for(1);
  const auto before = rig().models.weight_cache()->stats();
  EXPECT_GT(before.entries, 0u);
  rig().models.model_for(2);
  const auto after = rig().models.weight_cache()->stats();
  // The batch-2 compile went through the SAME cache (entries grew or hit).
  EXPECT_GE(after.entries + after.hits, before.entries + before.hits);
  EXPECT_GT(after.misses + after.hits, before.misses + before.hits);
}

TEST(BatchModelSet, OutOfRangeSizesRejectedWithTypedError) {
  for (const std::size_t bad : {std::size_t{0}, std::size_t{65},
                                std::size_t{1024}}) {
    try {
      rig().models.model_for(bad);
      FAIL() << "model_for(" << bad << ") must throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument) << bad;
    }
  }
}

// --- the --batch validation surface (satellite of this PR) ----------------

TEST(ValidateBatch, NonPowerOfTwoRejectedWithAllowedRangeInMessage) {
  for (const std::size_t bad : {3u, 5u, 6u, 7u, 12u, 63u}) {
    try {
      HeModel::validate_batch(rig().backend, rig().models.spec(), bad);
      FAIL() << "batch " << bad << " must be rejected";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument) << bad;
      const std::string msg = e.what();
      EXPECT_NE(msg.find("power"), std::string::npos) << msg;
      EXPECT_NE(msg.find("64"), std::string::npos)
          << "message must name the allowed maximum: " << msg;
    }
  }
}

TEST(ValidateBatch, OverCapacityRejectedWithTypedError) {
  for (const std::size_t bad : {128u, 256u, 1024u, 2048u}) {
    try {
      HeModel::validate_batch(rig().backend, rig().models.spec(), bad);
      FAIL() << "batch " << bad << " must be rejected";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument) << bad;
    }
  }
}

TEST(ValidateBatch, EveryPowerOfTwoUpToCapacityAccepted) {
  for (std::size_t b = 1; b <= 64; b *= 2) {
    EXPECT_NO_THROW(
        HeModel::validate_batch(rig().backend, rig().models.spec(), b))
        << b;
  }
}

}  // namespace
}  // namespace pphe::serve
