// Homomorphism property suite run identically against BOTH evaluators
// (CKKS-RNS and the multiprecision baseline): the two backends must agree
// with plaintext arithmetic on every §II primitive. Parameterized over the
// backend kind, per the reproduction requirement that the RNS representation
// "does not compromise accuracy".

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ckks/big_backend.hpp"
#include "ckks/rns_backend.hpp"
#include "ckks/serialize.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

std::unique_ptr<HeBackend> make(const std::string& kind) {
  CkksParams params = CkksParams::test_small();
  if (kind == "rns") return std::make_unique<RnsBackend>(params);
  return std::make_unique<BigBackend>(params);
}

class BackendProperty : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    backend_ = make(GetParam());
    slots_ = backend_->slot_count();
    Prng prng(2024);
    a_.resize(slots_);
    b_.resize(slots_);
    for (std::size_t i = 0; i < slots_; ++i) {
      a_[i] = (prng.uniform_double() - 0.5) * 4.0;
      b_[i] = (prng.uniform_double() - 0.5) * 4.0;
    }
  }

  Ciphertext encrypt(const std::vector<double>& v) {
    return backend_->encrypt(
        backend_->encode(v, backend_->params().scale, backend_->max_level()));
  }

  void expect_close(const Ciphertext& ct, const std::vector<double>& want,
                    double tol) {
    const auto got = backend_->decrypt_decode(ct);
    ASSERT_GE(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(got[i], want[i], tol) << "slot " << i;
    }
  }

  std::unique_ptr<HeBackend> backend_;
  std::size_t slots_ = 0;
  std::vector<double> a_, b_;
};

TEST_P(BackendProperty, EncryptDecryptRoundTrip) {
  expect_close(encrypt(a_), a_, 2e-3);
}

TEST_P(BackendProperty, AdditionHomomorphism) {
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[i] + b_[i];
  expect_close(backend_->add(encrypt(a_), encrypt(b_)), want, 4e-3);
}

TEST_P(BackendProperty, SubtractionHomomorphism) {
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[i] - b_[i];
  expect_close(backend_->sub(encrypt(a_), encrypt(b_)), want, 4e-3);
}

TEST_P(BackendProperty, NegationHomomorphism) {
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = -a_[i];
  expect_close(backend_->negate(encrypt(a_)), want, 2e-3);
}

TEST_P(BackendProperty, MultiplicationWithRelinAndRescale) {
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[i] * b_[i];
  Ciphertext prod = backend_->multiply(encrypt(a_), encrypt(b_));
  EXPECT_EQ(prod.size(), 3u);
  prod = backend_->relinearize(prod);
  EXPECT_EQ(prod.size(), 2u);
  prod = backend_->rescale(prod);
  EXPECT_EQ(prod.level(), backend_->max_level() - 1);
  expect_close(prod, want, 2e-2);
}

TEST_P(BackendProperty, Size3DecryptionIsValid) {
  // Decrypting before relinearization must also work (m = c0 + c1 s + c2 s²);
  // the product ciphertext carries scale Delta^2, which decode divides out.
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[i] * b_[i];
  const Ciphertext prod = backend_->multiply(encrypt(a_), encrypt(b_));
  EXPECT_DOUBLE_EQ(prod.scale(),
                   backend_->params().scale * backend_->params().scale);
  const auto got = backend_->decrypt_decode(prod);
  for (std::size_t i = 0; i < slots_; ++i) {
    ASSERT_NEAR(got[i], want[i], 2e-2) << i;
  }
}

TEST_P(BackendProperty, PlainMultiplication) {
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[i] * b_[i];
  const Plaintext pb =
      backend_->encode(b_, backend_->params().scale, backend_->max_level());
  const Ciphertext prod = backend_->rescale(
      backend_->multiply_plain(encrypt(a_), pb));
  expect_close(prod, want, 1e-2);
}

TEST_P(BackendProperty, PlainAddition) {
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[i] + b_[i];
  const Plaintext pb =
      backend_->encode(b_, backend_->params().scale, backend_->max_level());
  expect_close(backend_->add_plain(encrypt(a_), pb), want, 4e-3);
}

TEST_P(BackendProperty, RotationBySeveralSteps) {
  backend_->ensure_galois_keys({1, 7, -3});
  for (const int step : {1, 7, -3}) {
    std::vector<double> want(slots_);
    for (std::size_t i = 0; i < slots_; ++i) {
      const std::size_t src =
          (i + static_cast<std::size_t>(
                   (step % static_cast<int>(slots_) + static_cast<int>(slots_)))) %
          slots_;
      want[i] = a_[src];
    }
    expect_close(backend_->rotate(encrypt(a_), step), want, 5e-3);
  }
}

TEST_P(BackendProperty, RotationComposition) {
  backend_->ensure_galois_keys({2, 3, 5});
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[(i + 5) % slots_];
  const Ciphertext r =
      backend_->rotate(backend_->rotate(encrypt(a_), 2), 3);
  expect_close(r, want, 8e-3);
  expect_close(backend_->rotate(encrypt(a_), 5), want, 5e-3);
}

TEST_P(BackendProperty, DepthThreeChain) {
  // ((a*b) * a) * b with rescaling after every multiplication.
  std::vector<double> small_a(slots_), small_b(slots_), want(slots_);
  Prng prng(7);
  for (std::size_t i = 0; i < slots_; ++i) {
    small_a[i] = prng.uniform_double() - 0.5;
    small_b[i] = prng.uniform_double() - 0.5;
    want[i] = small_a[i] * small_b[i] * small_a[i] * small_b[i];
  }
  const Ciphertext ca = encrypt(small_a);
  const Ciphertext cb = encrypt(small_b);
  Ciphertext t = backend_->rescale(
      backend_->relinearize(backend_->multiply(ca, cb)));
  t = backend_->rescale(backend_->relinearize(backend_->multiply(t, ca)));
  t = backend_->rescale(backend_->relinearize(backend_->multiply(t, cb)));
  EXPECT_EQ(t.level(), backend_->max_level() - 3);
  expect_close(t, want, 5e-2);
}

TEST_P(BackendProperty, ModDropPreservesPlaintext) {
  const Ciphertext ct = encrypt(a_);
  const Ciphertext dropped = backend_->mod_drop_to(ct, 1);
  EXPECT_EQ(dropped.level(), 1);
  EXPECT_DOUBLE_EQ(dropped.scale(), ct.scale());
  expect_close(dropped, a_, 2e-3);
}

TEST_P(BackendProperty, AddAutoAlignsLevels) {
  const Ciphertext ca = encrypt(a_);
  const Ciphertext cb = backend_->mod_drop_to(encrypt(b_), 2);
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[i] + b_[i];
  const Ciphertext sum = backend_->add(ca, cb);
  EXPECT_EQ(sum.level(), 2);
  expect_close(sum, want, 4e-3);
}

TEST_P(BackendProperty, ScalarHelpers) {
  std::vector<double> want(slots_);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[i] * 2.5;
  expect_close(backend_->rescale(backend_->multiply_scalar(encrypt(a_), 2.5)),
               want, 1e-2);
  for (std::size_t i = 0; i < slots_; ++i) want[i] = a_[i] + 2.5;
  expect_close(backend_->add_scalar(encrypt(a_), 2.5), want, 4e-3);
}

TEST_P(BackendProperty, RescaleAtLevelZeroThrows) {
  Ciphertext ct = backend_->mod_drop_to(encrypt(a_), 0);
  EXPECT_THROW(backend_->rescale(ct), Error);
}

TEST_P(BackendProperty, MissingGaloisKeyThrows) {
  EXPECT_THROW(backend_->rotate(encrypt(a_), 123), Error);
}

TEST_P(BackendProperty, MultiplyRequiresSize2) {
  const Ciphertext prod = backend_->multiply(encrypt(a_), encrypt(b_));
  EXPECT_THROW(backend_->multiply(prod, encrypt(a_)), Error);
}

TEST_P(BackendProperty, MismatchedScaleAddThrows) {
  const Ciphertext ca = encrypt(a_);
  const Plaintext pb =
      backend_->encode(b_, backend_->params().scale * 2.0, backend_->max_level());
  const Ciphertext cb = backend_->encrypt(pb);
  EXPECT_THROW(backend_->add(ca, cb), Error);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendProperty,
                         ::testing::Values("rns", "big"));

TEST(BackendAgreement, RnsAndBigDecryptTheSameComputation) {
  // The two representations evaluate literally the same rings with the same
  // deterministic key material, so an identical pipeline run on both must
  // land on the same plaintext (up to each scheme's own approximation noise).
  const CkksParams params = CkksParams::test_small();
  RnsBackend rns(params);
  BigBackend big(params);
  const std::size_t slots = rns.slot_count();
  ASSERT_EQ(slots, big.slot_count());
  std::vector<double> a(slots), b(slots);
  Prng prng(31337);
  for (std::size_t i = 0; i < slots; ++i) {
    a[i] = prng.uniform_double() - 0.5;
    b[i] = prng.uniform_double() - 0.5;
  }
  auto run = [&](HeBackend& be) {
    const Ciphertext ca =
        be.encrypt(be.encode(a, params.scale, be.max_level()));
    const Ciphertext cb =
        be.encrypt(be.encode(b, params.scale, be.max_level()));
    const Ciphertext sum = be.add(ca, cb);
    Ciphertext t = be.rescale(be.relinearize(be.multiply(sum, cb)));
    return be.decrypt_decode(t);
  };
  const auto got_rns = run(rns);
  const auto got_big = run(big);
  for (std::size_t i = 0; i < slots; ++i) {
    const double want = (a[i] + b[i]) * b[i];
    ASSERT_NEAR(got_rns[i], want, 2e-2) << i;
    ASSERT_NEAR(got_big[i], want, 2e-2) << i;
    ASSERT_NEAR(got_rns[i], got_big[i], 4e-2) << i;
  }
}

TEST(SerializedGolden, CiphertextBitstreamMatchesPreRefactorFixture) {
  // Golden fixture for wire format v2 (checksummed sections): storage-layer
  // refactors must not change a single serialized byte. Identity is checked
  // as length + FNV-1a over the stream rather than 160 KiB of hex. The v1
  // fixture was 163884 bytes / 0x176640f4fcd8f2f7; v2 adds the metadata and
  // per-poly section checksums.
  CkksParams p = CkksParams::test_small();
  p.seed = 424242;
  const RnsBackend be(p);
  std::vector<double> v(be.slot_count());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(0.05 * static_cast<double>(i));
  }
  const Ciphertext ct = be.encrypt(be.encode(v, p.scale, be.max_level()));
  const std::string bytes = ciphertext_to_string(be, ct);
  EXPECT_EQ(bytes.size(), 163908u);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  EXPECT_EQ(h, 0x94c5341b255c63f3ull);
  // And the stream still round-trips through the refactored reader.
  const Ciphertext back = ciphertext_from_string(bytes, be);
  const auto got = be.decrypt_decode(back);
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_NEAR(got[i], v[i], 2e-3) << i;
  }
}

}  // namespace
}  // namespace pphe
