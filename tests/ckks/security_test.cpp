#include "ckks/security.hpp"

#include <gtest/gtest.h>

#include "ckks/params.hpp"

namespace pphe {
namespace {

TEST(Security, StandardTableKnownEntries) {
  EXPECT_EQ(he_standard_max_log_q(16384, 128), 438);
  EXPECT_EQ(he_standard_max_log_q(8192, 128), 218);
  EXPECT_EQ(he_standard_max_log_q(32768, 128), 881);
  EXPECT_EQ(he_standard_max_log_q(16384, 192), 305);
  EXPECT_EQ(he_standard_max_log_q(16384, 256), 237);
}

TEST(Security, UnknownDegreeOrLambdaGivesZero) {
  EXPECT_EQ(he_standard_max_log_q(12345, 128), 0);
  EXPECT_EQ(he_standard_max_log_q(16384, 100), 0);
}

TEST(Security, PaperSettingIs128Bit) {
  // Table II: N = 2^14, log q = 366 (incl. key-switching modulus) <= 438.
  EXPECT_EQ(estimate_security_level(16384, 366), 128);
}

TEST(Security, LevelBoundaries) {
  EXPECT_EQ(estimate_security_level(16384, 237), 256);
  EXPECT_EQ(estimate_security_level(16384, 238), 192);
  EXPECT_EQ(estimate_security_level(16384, 305), 192);
  EXPECT_EQ(estimate_security_level(16384, 306), 128);
  EXPECT_EQ(estimate_security_level(16384, 439), 0);
}

TEST(Security, FastProfileIsFlaggedBelowStandard) {
  // N = 2^13 with the paper's 366-bit modulus exceeds the 218-bit bound.
  const CkksParams fast = CkksParams::fast_profile();
  EXPECT_EQ(estimate_security_level(fast.degree, fast.log_q_with_special()), 0);
  const std::string desc = describe_security(fast);
  EXPECT_NE(desc.find("BELOW"), std::string::npos);
}

TEST(Security, PaperProfileIsDescribedAsSecure) {
  const std::string desc = describe_security(CkksParams::paper_table2());
  EXPECT_NE(desc.find("lambda=128"), std::string::npos);
}

}  // namespace
}  // namespace pphe
