// Property sweep across PARAMETER SETS: the §II primitives must hold for
// every ring degree / chain shape / scale combination, not just the default
// test profile. TEST_P over a grid of configurations, RNS backend (the
// deployed representation; cross-backend agreement is covered elsewhere).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "ckks/rns_backend.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

// (log2 degree, middle prime bits, chain length, log2 scale)
using Config = std::tuple<int, int, int, int>;

class MultiParams : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    const auto [log_n, prime_bits, chain, log_scale] = GetParam();
    CkksParams p;
    p.degree = std::size_t{1} << log_n;
    p.q_bit_sizes.assign(static_cast<std::size_t>(chain), prime_bits);
    p.q_bit_sizes.front() = std::min(prime_bits + 14, 60);
    p.special_bit_size = std::min(prime_bits + 14, 60);
    p.scale = std::ldexp(1.0, log_scale);
    p.hamming_weight = 32;
    backend_ = std::make_unique<RnsBackend>(p);
    tolerance_ = 64.0 * static_cast<double>(p.degree) / p.scale;
  }

  std::vector<double> random_vec(double amp, std::uint64_t seed) const {
    Prng prng(seed);
    std::vector<double> v(backend_->slot_count());
    for (auto& x : v) x = (prng.uniform_double() - 0.5) * 2.0 * amp;
    return v;
  }

  Ciphertext encrypt(const std::vector<double>& v) const {
    return backend_->encrypt(backend_->encode(
        v, backend_->params().scale, backend_->max_level()));
  }

  std::unique_ptr<RnsBackend> backend_;
  double tolerance_ = 0.0;
};

TEST_P(MultiParams, EncryptDecrypt) {
  const auto v = random_vec(2.0, 1);
  const auto got = backend_->decrypt_decode(encrypt(v));
  for (std::size_t i = 0; i < v.size(); i += 17) {
    ASSERT_NEAR(got[i], v[i], tolerance_) << i;
  }
}

TEST_P(MultiParams, MultRelinRescale) {
  const auto va = random_vec(1.5, 2);
  const auto vb = random_vec(1.5, 3);
  const auto prod = backend_->rescale(
      backend_->relinearize(backend_->multiply(encrypt(va), encrypt(vb))));
  const auto got = backend_->decrypt_decode(prod);
  for (std::size_t i = 0; i < va.size(); i += 17) {
    ASSERT_NEAR(got[i], va[i] * vb[i], 8.0 * tolerance_) << i;
  }
}

TEST_P(MultiParams, RotationWorks) {
  backend_->ensure_galois_keys({3});
  const auto v = random_vec(1.0, 4);
  const auto got = backend_->decrypt_decode(backend_->rotate(encrypt(v), 3));
  for (std::size_t i = 0; i < v.size(); i += 29) {
    ASSERT_NEAR(got[i], v[(i + 3) % v.size()], 8.0 * tolerance_) << i;
  }
}

TEST_P(MultiParams, FullDepthChainIsUsable) {
  // Square repeatedly until the chain runs out; the result must stay finite
  // and roughly correct (value 1.1^(2^depth) kept small via 1.01).
  std::vector<double> v(backend_->slot_count(), 1.01);
  Ciphertext ct = encrypt(v);
  double want = 1.01;
  while (ct.level() > 0) {
    ct = backend_->rescale(backend_->relinearize(backend_->multiply(ct, ct)));
    want *= want;
  }
  const auto got = backend_->decrypt_decode(ct);
  EXPECT_NEAR(got[0], want, 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiParams,
    ::testing::Values(
        Config{10, 26, 3, 26},   // tiny ring, short chain
        Config{11, 30, 4, 30},   // mid ring, wider primes
        Config{12, 26, 6, 26},   // bench-profile ring
        Config{11, 40, 3, 40},   // high-precision scale
        Config{11, 20, 5, 20}),  // narrow primes / low precision
    [](const ::testing::TestParamInfo<Config>& info) {
      // NOTE: no structured bindings here — the commas inside the binding
      // list would split the INSTANTIATE macro's arguments.
      return "N" + std::to_string(1 << std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_L" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace pphe
