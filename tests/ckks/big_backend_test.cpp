// Multiprecision-baseline-specific behaviour: the modulus ladder, the
// auxiliary key-switching modulus, and cross-backend agreement (the central
// "RNS does not change results" claim of the paper).

#include "ckks/big_backend.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

CkksParams small() { return CkksParams::test_small(); }

std::vector<double> wave(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::cos(0.05 * static_cast<double>(i)) * 2.0;
  }
  return v;
}

TEST(BigBackend, LadderIsStrictlyIncreasingProducts) {
  const BigBackend be(small());
  BigUInt prev(1);
  for (int l = 0; l <= be.max_level(); ++l) {
    const BigUInt& q = be.level_modulus(l);
    EXPECT_GT(q, prev);
    if (l > 0) {
      // Each ladder step multiplies by exactly one word prime.
      const auto dm = q.divmod(prev);
      EXPECT_TRUE(dm.remainder.is_zero());
      EXPECT_EQ(dm.quotient.limb_count(), 1u);
    }
    prev = q;
  }
}

TEST(BigBackend, AuxModulusDominatesLadder) {
  const BigBackend be(small());
  EXPECT_GE(be.aux_modulus(), be.level_modulus(be.max_level()));
}

TEST(BigBackend, LogQMatchesParams) {
  const BigBackend be(small());
  const int expected = small().log_q();
  const auto bits =
      static_cast<int>(be.level_modulus(be.max_level()).bit_length());
  EXPECT_NEAR(bits, expected, 1);
}

TEST(BigBackend, AgreesWithRnsBackendOnSameComputation) {
  // THE core claim (Tables III/V): the two representations compute the same
  // function. Run an identical mult-rotate-add pipeline on both backends and
  // compare decrypted outputs slot by slot.
  const CkksParams p = small();
  RnsBackend rns(p);
  BigBackend big(p);
  rns.ensure_galois_keys({3});
  big.ensure_galois_keys({3});

  const auto v = wave(rns.slot_count());
  auto run = [&](HeBackend& be) {
    const auto ct = be.encrypt(be.encode(v, p.scale, be.max_level()));
    auto prod = be.rescale(be.relinearize(be.multiply(ct, ct)));
    auto rot = be.rotate(prod, 3);
    return be.decrypt_decode(be.add(prod, rot));
  };
  const auto from_rns = run(rns);
  const auto from_big = run(big);
  for (std::size_t i = 0; i < rns.slot_count(); ++i) {
    const double want = v[i] * v[i] + v[(i + 3) % rns.slot_count()] *
                                         v[(i + 3) % rns.slot_count()];
    ASSERT_NEAR(from_rns[i], want, 5e-2) << i;
    ASSERT_NEAR(from_big[i], want, 5e-2) << i;
    // The two backends differ only by (independent) encryption noise.
    ASSERT_NEAR(from_rns[i], from_big[i], 1e-1) << i;
  }
}

TEST(BigBackend, KeySwitchAtLowerLevelUsesReducedKeys) {
  BigBackend be(small());
  be.ensure_galois_keys({2});
  const auto v = wave(be.slot_count());
  auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  ct = be.mod_drop_to(ct, 1);
  const auto rot = be.rotate(ct, 2);  // exercises the per-level key cache
  const auto got = be.decrypt_decode(rot);
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_NEAR(got[i], v[(i + 2) % be.slot_count()], 5e-3);
  }
  // Second rotation at the same level hits the cache.
  const auto rot2 = be.rotate(rot, 2);
  const auto got2 = be.decrypt_decode(rot2);
  EXPECT_NEAR(got2[0], v[4], 8e-3);
}

TEST(BigBackend, RescaleDividesScaleByDroppedPrime) {
  const BigBackend be(small());
  const auto ct = be.encrypt(
      be.encode(wave(be.slot_count()), small().scale, be.max_level()));
  const auto prod = be.relinearize(be.multiply(ct, ct));
  const double prime = be.level_prime(be.max_level());
  const auto rescaled = be.rescale(prod);
  EXPECT_DOUBLE_EQ(rescaled.scale(), small().scale * small().scale / prime);
  EXPECT_EQ(rescaled.level(), be.max_level() - 1);
}

TEST(BigBackend, EncryptAtLowerLevel) {
  const BigBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, 1));
  EXPECT_EQ(ct.level(), 1);
  const auto got = be.decrypt_decode(ct);
  EXPECT_NEAR(got[7], v[7], 2e-3);
}

TEST(BigBackend, SameSeedSamePrimesAsRns) {
  // The two backends share the chain primes so they operate over the same
  // rings — the comparison in the benches is apples-to-apples.
  const RnsBackend rns(small());
  const BigBackend big(small());
  BigUInt product(1);
  for (const auto& m : rns.q_moduli()) product *= BigUInt(m.value());
  EXPECT_EQ(product, big.level_modulus(big.max_level()));
}

}  // namespace
}  // namespace pphe
