#include "ckks/params.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(CkksParams, PaperTable2MatchesThePaper) {
  const CkksParams p = CkksParams::paper_table2();
  EXPECT_EQ(p.degree, 1u << 14);                  // N = 2^14
  EXPECT_DOUBLE_EQ(p.scale, std::ldexp(1.0, 26)); // Delta = 2^26
  // q = [40, 26, ..., 26, 40]: log q = 366, L = 13 moduli in total.
  EXPECT_EQ(p.log_q() + p.special_bit_size, 366);
  EXPECT_EQ(p.chain_length() + 1, 13u);
  EXPECT_EQ(p.q_bit_sizes.front(), 40);
  EXPECT_EQ(p.special_bit_size, 40);
  EXPECT_NO_THROW(p.validate());
}

TEST(CkksParams, FastProfileSameChainSmallerRing) {
  const CkksParams fast = CkksParams::fast_profile();
  const CkksParams paper = CkksParams::paper_table2();
  EXPECT_LT(fast.degree, paper.degree);
  EXPECT_EQ(fast.q_bit_sizes, paper.q_bit_sizes);
}

TEST(CkksParams, ValidationCatchesBadConfigs) {
  CkksParams p = CkksParams::test_small();
  EXPECT_NO_THROW(p.validate());

  CkksParams bad = p;
  bad.degree = 1000;  // not a power of two
  EXPECT_THROW(bad.validate(), Error);

  bad = p;
  bad.q_bit_sizes.clear();
  EXPECT_THROW(bad.validate(), Error);

  bad = p;
  bad.q_bit_sizes.push_back(61);  // too wide
  EXPECT_THROW(bad.validate(), Error);

  bad = p;
  bad.special_bit_size = 20;  // narrower than the widest q prime
  EXPECT_THROW(bad.validate(), Error);

  bad = p;
  bad.hamming_weight = bad.degree + 1;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(CkksParams, WithChainLengthLongChainsKeepPaperScale) {
  const CkksParams p = CkksParams::with_chain_length(12, 1 << 13, 10);
  EXPECT_EQ(p.chain_length(), 12u);
  EXPECT_DOUBLE_EQ(p.scale, std::ldexp(1.0, 26));
  EXPECT_NO_THROW(p.validate());
}

TEST(CkksParams, WithChainLengthShortChainsShrinkScale) {
  const CkksParams p = CkksParams::with_chain_length(3, 1 << 13, 10);
  EXPECT_EQ(p.chain_length(), 3u);
  EXPECT_LT(p.scale, std::ldexp(1.0, 26));
  EXPECT_GE(p.scale, std::ldexp(1.0, 8));
  EXPECT_NO_THROW(p.validate());
}

TEST(CkksParams, WithChainLengthRejectsOne) {
  // Chain length 1 is the multiprecision backend, not an RNS chain.
  EXPECT_THROW(CkksParams::with_chain_length(1, 1 << 13, 5), Error);
}

TEST(CkksParams, DescribeMentionsKeyNumbers) {
  const std::string d = CkksParams::paper_table2().describe();
  EXPECT_NE(d.find("16384"), std::string::npos);
  EXPECT_NE(d.find("326"), std::string::npos);  // log q without special
}

}  // namespace
}  // namespace pphe
