// Regression tests for the typed op-precondition checks: mismatched
// operands must fail fast with a message naming the op and the offending
// levels/scales, instead of producing silently wrong slots.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "ckks/big_backend.hpp"
#include "ckks/rns_backend.hpp"
#include "common/check.hpp"

namespace pphe {
namespace {

CkksParams small() { return CkksParams::test_small(); }

std::unique_ptr<HeBackend> make(const std::string& kind) {
  if (kind == "rns") return std::make_unique<RnsBackend>(small());
  return std::make_unique<BigBackend>(small());
}

std::vector<double> ramp(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 0.001 * static_cast<double>(i);
  return v;
}

/// Runs `fn` expecting an Error whose message contains every `needle`.
template <typename Fn>
void expect_error_naming(Fn&& fn, std::initializer_list<const char*> needles) {
  try {
    fn();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    for (const char* needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "missing \"" << needle << "\" in: " << msg;
    }
  }
}

/// Runs `fn` expecting an Error carrying the given typed code (what a
/// serving recovery loop routes on, instead of parsing messages).
template <typename Fn>
void expect_error_code(Fn&& fn, ErrorCode code) {
  try {
    fn();
    FAIL() << "expected Error(" << error_code_name(code) << ")";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), code)
        << "got " << error_code_name(e.code()) << ": " << e.what();
  }
}

class OpPreconditionsTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<HeBackend> backend_ = make(GetParam());
};

TEST_P(OpPreconditionsTest, MismatchedScaleAddThrowsWithOpAndScales) {
  HeBackend& be = *backend_;
  const auto v = ramp(be.slot_count());
  const double s = small().scale;
  const auto a = be.encrypt(be.encode(v, s, be.max_level()));
  const auto b = be.encrypt(be.encode(v, 2.0 * s, be.max_level()));
  expect_error_naming([&] { (void)be.add(a, b); },
                      {"add", "scales differ", "2^26", "2^27"});
}

TEST_P(OpPreconditionsTest, MatchedAddStillWorks) {
  HeBackend& be = *backend_;
  const auto v = ramp(be.slot_count());
  const auto a = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const auto got = be.decrypt_decode(be.add(a, a));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(got[i], 2.0 * v[i], 1e-3);
}

TEST_P(OpPreconditionsTest, MultiplyBeyondModulusCapacityThrows) {
  HeBackend& be = *backend_;
  const auto v = ramp(be.slot_count());
  // At level 0 only the 40-bit base prime remains; a 26+26 = 52-bit product
  // scale cannot be represented and used to wrap silently.
  const auto ct = be.mod_drop_to(
      be.encrypt(be.encode(v, small().scale, be.max_level())), 0);
  expect_error_naming([&] { (void)be.multiply(ct, ct); },
                      {"multiply", "product scale", "capacity", "level 0"});
}

TEST_P(OpPreconditionsTest, MismatchedScaleAddPlainThrows) {
  HeBackend& be = *backend_;
  const auto v = ramp(be.slot_count());
  const double s = small().scale;
  const auto ct = be.encrypt(be.encode(v, s, be.max_level()));
  const auto pt = be.encode(v, 2.0 * s, be.max_level());
  expect_error_naming([&] { (void)be.add_plain(ct, pt); },
                      {"add_plain", "scales differ"});
}

TEST_P(OpPreconditionsTest, CompatibilityChecksCarryTypedCodes) {
  HeBackend& be = *backend_;
  const auto v = ramp(be.slot_count());
  const double s = small().scale;
  const auto a = be.encrypt(be.encode(v, s, be.max_level()));
  // Scale mismatch -> kScaleMismatch.
  const auto b = be.encrypt(be.encode(v, 2.0 * s, be.max_level()));
  expect_error_code([&] { (void)be.add(a, b); }, ErrorCode::kScaleMismatch);
  // Level mismatch -> kLevelMismatch. add() auto-aligns ciphertext levels,
  // so the check fires on add_plain, where a stale plaintext encoding is
  // unrecoverable (RNS needs pt level >= ct level, Big needs equality).
  const auto stale = be.encode(v, s, be.max_level() - 1);
  expect_error_code([&] { (void)be.add_plain(a, stale); },
                    ErrorCode::kLevelMismatch);
  // Capacity overflow -> kCapacityExceeded.
  const auto bottom = be.mod_drop_to(a, 0);
  expect_error_code([&] { (void)be.multiply(bottom, bottom); },
                    ErrorCode::kCapacityExceeded);
  // Unclassified precondition failures keep the default code.
  expect_error_code([&] { (void)be.encode(v, s, be.max_level() + 1); },
                    ErrorCode::kGeneric);
}

TEST_P(OpPreconditionsTest, BaseValidateCiphertextChecksHandleMetadata) {
  HeBackend& be = *backend_;
  const auto v = ramp(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  EXPECT_NO_THROW(be.validate_ciphertext(ct));
  expect_error_code([&] { be.validate_ciphertext(Ciphertext()); },
                    ErrorCode::kIntegrity);
  expect_error_code(
      [&] {
        be.validate_ciphertext(Ciphertext(ct.impl(), ct.scale(),
                                          be.max_level() + 3, ct.size()));
      },
      ErrorCode::kLevelMismatch);
  expect_error_code(
      [&] {
        be.validate_ciphertext(
            Ciphertext(ct.impl(), -1.0, ct.level(), ct.size()));
      },
      ErrorCode::kScaleMismatch);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, OpPreconditionsTest,
                         ::testing::Values("rns", "big"),
                         [](const auto& info) { return info.param; });

TEST(OpPreconditionsBig, AddPlainLevelMismatchNamesLevels) {
  BigBackend be(small());
  const auto v = ramp(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const auto pt = be.encode(v, small().scale, be.max_level() - 1);
  expect_error_naming([&] { (void)be.add_plain(ct, pt); },
                      {"add_plain", "level"});
}

TEST(OpPreconditions, OpCountsUseTypedKinds) {
  RnsBackend be(small());
  be.reset_op_counts();
  const auto v = ramp(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  (void)be.add(ct, ct);
  (void)be.add(ct, ct);
  EXPECT_EQ(be.op_count(OpKind::kEncode), 1u);
  EXPECT_EQ(be.op_count(OpKind::kEncrypt), 1u);
  EXPECT_EQ(be.op_count(OpKind::kAdd), 2u);
  EXPECT_EQ(be.op_count(OpKind::kMultiply), 0u);
  const auto counts = be.op_counts();
  EXPECT_EQ(counts.at("add"), 2u);
  EXPECT_EQ(counts.count("multiply"), 0u);  // zero entries are omitted
  be.reset_op_counts();
  EXPECT_TRUE(be.op_counts().empty());
}

}  // namespace
}  // namespace pphe
