#include "ckks/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

CkksParams small() { return CkksParams::test_small(); }

std::vector<double> wave(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.03 * static_cast<double>(i)) * 1.5;
  }
  return v;
}

TEST(Serialize, ParamsRoundTrip) {
  const CkksParams p = CkksParams::paper_table2();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_params(ss, p);
  const CkksParams back = read_params(ss);
  EXPECT_EQ(back.degree, p.degree);
  EXPECT_EQ(back.q_bit_sizes, p.q_bit_sizes);
  EXPECT_EQ(back.special_bit_size, p.special_bit_size);
  EXPECT_DOUBLE_EQ(back.scale, p.scale);
  EXPECT_EQ(back.hamming_weight, p.hamming_weight);
  EXPECT_EQ(back.seed, p.seed);
}

TEST(Serialize, CiphertextRoundTripDecrypts) {
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));

  const std::string bytes = ciphertext_to_string(be, ct);
  EXPECT_EQ(bytes.size(), ciphertext_byte_size(be, ct));
  const Ciphertext back = ciphertext_from_string(bytes, be);
  EXPECT_EQ(back.level(), ct.level());
  EXPECT_DOUBLE_EQ(back.scale(), ct.scale());
  EXPECT_EQ(back.size(), ct.size());

  const auto got = be.decrypt_decode(back);
  for (std::size_t i = 0; i < be.slot_count(); i += 53) {
    ASSERT_NEAR(got[i], v[i], 2e-3);
  }
}

TEST(Serialize, DeserializedCiphertextIsComputable) {
  // The cloud receives bytes and must be able to operate on them (Fig. 1).
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const Ciphertext back =
      ciphertext_from_string(ciphertext_to_string(be, ct), be);
  const auto prod = be.rescale(be.relinearize(be.multiply(back, back)));
  const auto got = be.decrypt_decode(prod);
  for (std::size_t i = 0; i < be.slot_count(); i += 53) {
    ASSERT_NEAR(got[i], v[i] * v[i], 2e-2);
  }
}

TEST(Serialize, LowerLevelCiphertextSmallerOnTheWire) {
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const auto dropped = be.mod_drop_to(ct, 1);
  EXPECT_LT(ciphertext_byte_size(be, dropped), ciphertext_byte_size(be, ct));
  const Ciphertext back =
      ciphertext_from_string(ciphertext_to_string(be, dropped), be);
  EXPECT_EQ(back.level(), 1);
  EXPECT_NEAR(be.decrypt_decode(back)[7], v[7], 2e-3);
}

TEST(Serialize, PlaintextRoundTrip) {
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto pt = be.encode(v, small().scale, 2);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_plaintext(ss, be, pt);
  const Plaintext back = read_plaintext(ss, be);
  EXPECT_EQ(back.level(), 2);
  // Encrypt the deserialized plaintext and check the values survive.
  const auto got = be.decrypt_decode(be.encrypt(back));
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_NEAR(got[i], v[i], 2e-3);
  }
}

/// Decodes and returns the typed code of the Error it throws (kGeneric when
/// it unexpectedly succeeds, which the callers then fail on).
ErrorCode decode_code(const std::string& bytes, const RnsBackend& be) {
  try {
    (void)ciphertext_from_string(bytes, be);
  } catch (const Error& e) {
    return e.code();
  }
  return ErrorCode::kGeneric;
}

TEST(Serialize, RejectsWrongMagic) {
  RnsBackend be(small());
  std::istringstream bad(std::string(64, 'x'), std::ios::binary);
  try {
    read_ciphertext(bad, be);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSerialization);
  }
}

TEST(Serialize, RejectsTruncatedStream) {
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  std::string bytes = ciphertext_to_string(be, ct);
  bytes.resize(bytes.size() / 2);
  EXPECT_EQ(decode_code(bytes, be), ErrorCode::kSerialization);
}

TEST(Serialize, FlippedPayloadBitSurfacesAsChecksumMismatch) {
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  std::string bytes = ciphertext_to_string(be, ct);
  // A LOW bit of some residue: the value stays below its modulus, so only
  // the section checksum can catch it (v1 would have decrypted garbage).
  bytes[100] = static_cast<char>(bytes[100] ^ 0x01);
  EXPECT_EQ(decode_code(bytes, be), ErrorCode::kChecksumMismatch);
}

TEST(Serialize, CorruptedMetadataRejectedBeforeAllocation) {
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  std::string bytes = ciphertext_to_string(be, ct);
  // Level field sits right after the 8-byte header + 8-byte degree. Claiming
  // a huge level must fail in the metadata section, not at a later slab.
  bytes[16] = static_cast<char>(0x7f);
  const ErrorCode code = decode_code(bytes, be);
  EXPECT_TRUE(code == ErrorCode::kSerialization ||
              code == ErrorCode::kChecksumMismatch)
      << error_code_name(code);
}

TEST(Serialize, DeserializedCiphertextPassesValidation) {
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const Ciphertext back =
      ciphertext_from_string(ciphertext_to_string(be, ct), be);
  EXPECT_NO_THROW(be.validate_ciphertext(back));
}

TEST(Serialize, PostDecodeLimbCorruptionCaughtByDigest) {
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const Ciphertext back =
      ciphertext_from_string(ciphertext_to_string(be, ct), be);
  // Corrupt storage AFTER the wire checks passed: flip a low bit of one limb
  // word; the residue stays in range, so only the digest recheck catches it.
  const Ciphertext bad =
      be.clone_mutate_limbs(back, [](std::span<std::uint64_t> words) {
        words[words.size() / 2] ^= 1u;
      });
  try {
    be.validate_ciphertext(bad);
    FAIL() << "expected Error(kIntegrity)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIntegrity);
  }
  // Locally produced ciphertexts carry no digest: mutation is not detected
  // by validation (they never crossed a trust boundary).
  EXPECT_NO_THROW(be.validate_ciphertext(ct));
}

TEST(Serialize, RejectsWrongDegree) {
  RnsBackend be(small());
  CkksParams other = small();
  other.degree *= 2;
  RnsBackend be2(other);
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const std::string bytes = ciphertext_to_string(be, ct);
  EXPECT_THROW(ciphertext_from_string(bytes, be2), Error);
}

TEST(Serialize, RejectsCorruptedResidues) {
  RnsBackend be(small());
  const auto v = wave(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  std::string bytes = ciphertext_to_string(be, ct);
  // Smash eight bytes in the middle of the first polynomial with 0xFF:
  // the resulting residue exceeds its modulus and must be rejected.
  for (std::size_t i = 60; i < 68; ++i) bytes[i] = static_cast<char>(0xff);
  EXPECT_THROW(ciphertext_from_string(bytes, be), Error);
}

}  // namespace
}  // namespace pphe
