#include "ckks/encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

std::vector<double> as_double(const std::vector<std::int64_t>& v) {
  return std::vector<double>(v.begin(), v.end());
}

TEST(Encoder, PaperSection3cWorkedExample) {
  // §III.C of the paper: M = 8 (N = 4), Delta = 64, z = (0.1, -0.01).
  // The paper derives the real polynomial 0.045 + 0.039X - 0.039X^3, whose
  // scaled rounding is m(X) = 3 + 2X - 2X^3, and observes that decoding
  // yields (0.09107, 0.00268): the second value has LOST ITS SIGN — the
  // zero-neighbourhood encoding error the section warns about.
  const CkksEncoder enc(4);
  const std::vector<double> z{0.1, -0.01};
  const auto coeffs = enc.encode(z, 64.0);
  EXPECT_EQ(coeffs, (std::vector<std::int64_t>{3, 2, 0, -2}));

  const auto decoded = enc.decode_real(as_double(coeffs), 64.0);
  EXPECT_NEAR(decoded[0], 0.09107, 5e-5);
  EXPECT_NEAR(decoded[1], 0.00268, 5e-5);
  EXPECT_GT(decoded[1], 0.0);  // sign flipped versus the input -0.01
}

TEST(Encoder, LargerScaleShrinksTheSection3cError) {
  // §III.C: "increasing Delta allows to reduce the absolute value" of the
  // rounding error.
  const CkksEncoder enc(4);
  const std::vector<double> z{0.1, -0.01};
  double prev_err = 1e9;
  for (const double delta : {64.0, 1024.0, 65536.0, 1048576.0}) {
    const auto coeffs = enc.encode(z, delta);
    const auto decoded = enc.decode_real(as_double(coeffs), delta);
    const double err = std::max(std::abs(decoded[0] - z[0]),
                                std::abs(decoded[1] - z[1]));
    EXPECT_LT(err, prev_err + 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-5);
}

class EncoderRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EncoderRoundTrip, HighScaleRoundTripIsAccurate) {
  const std::size_t degree = GetParam();
  const CkksEncoder enc(degree);
  Prng prng(degree);
  std::vector<double> v(enc.slot_count());
  for (auto& x : v) x = (prng.uniform_double() - 0.5) * 10.0;
  const double scale = std::ldexp(1.0, 40);
  const auto coeffs = enc.encode(v, scale);
  const auto back = enc.decode_real(as_double(coeffs), scale);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i], v[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, EncoderRoundTrip,
                         ::testing::Values(8, 64, 1024, 8192));

TEST(Encoder, ShortInputPadsWithZeros) {
  const CkksEncoder enc(64);
  const std::vector<double> v{1.0, 2.0};
  const auto coeffs = enc.encode(v, std::ldexp(1.0, 30));
  const auto back = enc.decode_real(as_double(coeffs), std::ldexp(1.0, 30));
  EXPECT_NEAR(back[0], 1.0, 1e-6);
  EXPECT_NEAR(back[1], 2.0, 1e-6);
  for (std::size_t i = 2; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], 0.0, 1e-6);
  }
}

TEST(Encoder, TooManyValuesThrows) {
  const CkksEncoder enc(8);
  const std::vector<double> v(5, 1.0);  // slot_count is 4
  EXPECT_THROW(enc.encode(v, 64.0), Error);
}

TEST(Encoder, CoefficientOverflowThrows) {
  const CkksEncoder enc(8);
  const std::vector<double> v{1e10};
  EXPECT_THROW(enc.encode(v, std::ldexp(1.0, 55)), Error);
}

TEST(Encoder, SlotwiseMultiplicationIsRingMultiplication) {
  // Slots are evaluations at roots of X^N + 1: multiplying polynomials in
  // the ring must multiply slot values.
  const std::size_t n = 32;
  const CkksEncoder enc(n);
  Prng prng(12);
  std::vector<double> a(enc.slot_count()), b(enc.slot_count());
  for (auto& x : a) x = prng.uniform_double() + 0.5;
  for (auto& x : b) x = prng.uniform_double() + 0.5;
  const double scale = std::ldexp(1.0, 24);
  const auto ca = enc.encode(a, scale);
  const auto cb = enc.encode(b, scale);

  // Negacyclic product with exact integer arithmetic.
  std::vector<double> prod(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double term = static_cast<double>(ca[i]) * static_cast<double>(cb[j]);
      const std::size_t k = i + j;
      if (k < n) {
        prod[k] += term;
      } else {
        prod[k - n] -= term;
      }
    }
  }
  const auto slots = enc.decode_real(prod, scale * scale);
  for (std::size_t i = 0; i < enc.slot_count(); ++i) {
    EXPECT_NEAR(slots[i], a[i] * b[i], 1e-4);
  }
}

TEST(Encoder, ComplexValuesRoundTrip) {
  const CkksEncoder enc(64);
  Prng prng(13);
  std::vector<std::complex<double>> v(enc.slot_count());
  for (auto& x : v) {
    x = {prng.uniform_double() - 0.5, prng.uniform_double() - 0.5};
  }
  const double scale = std::ldexp(1.0, 40);
  const auto coeffs = enc.encode(v, scale);
  std::vector<double> dc(coeffs.begin(), coeffs.end());
  const auto back = enc.decode(dc, scale);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i].real(), v[i].real(), 1e-8);
    EXPECT_NEAR(back[i].imag(), v[i].imag(), 1e-8);
  }
}

TEST(Encoder, EmbedUnroundedIsExactInverse) {
  const CkksEncoder enc(16);
  Prng prng(14);
  std::vector<std::complex<double>> v(enc.slot_count());
  for (auto& x : v) x = {prng.uniform_double(), 0.0};
  const auto raw = enc.embed_unrounded(v, 1.0);
  const auto back = enc.decode(raw, 1.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i].real(), v[i].real(), 1e-12);
  }
}

}  // namespace
}  // namespace pphe
