// Corpus-driven decode hardening: read_ciphertext / read_params must reject
// EVERY adversarial byte stream with a typed pphe::Error — never crash, read
// out of bounds, or over-allocate. The whole suite runs under the sanitizer
// verify target (ROADMAP.md), so an OOB read or runaway allocation fails the
// build even when it happens not to segfault here.

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

#include "ckks/rns_backend.hpp"
#include "ckks/serialize.hpp"
#include "common/check.hpp"

namespace pphe {
namespace {

CkksParams small() { return CkksParams::test_small(); }

/// Decode must either succeed (a mutation can miss every guarded byte — for
/// example flipping a bit the checksum of an already-invalid section "fixes")
/// or throw pphe::Error. Anything else (other exception types, crashes)
/// fails the test; sanitizers catch the silent memory errors.
void expect_throw_or_succeed(const std::string& bytes,
                             const RnsBackend& be) {
  try {
    (void)ciphertext_from_string(bytes, be);
  } catch (const Error&) {
    // typed rejection: the expected outcome for corrupt bytes
  }
}

void expect_params_throw_or_succeed(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  try {
    (void)read_params(in);
  } catch (const Error&) {
  }
}

class DecodeGarbageTest : public ::testing::Test {
 protected:
  DecodeGarbageTest() : be_(small()) {
    const std::vector<double> v(be_.slot_count(), 0.625);
    const auto ct =
        be_.encrypt(be_.encode(v, small().scale, be_.max_level()));
    good_ = ciphertext_to_string(be_, ct);
  }

  RnsBackend be_;
  std::string good_;
};

TEST_F(DecodeGarbageTest, EveryTruncationLengthRejectsCleanly) {
  // All short prefixes plus a coarse sweep of the long ones: every possible
  // "connection dropped mid-transfer" point hits a fail-fast path.
  for (std::size_t len = 0; len < 256; ++len) {
    expect_throw_or_succeed(good_.substr(0, len), be_);
  }
  std::mt19937_64 rng(2024);
  for (int i = 0; i < 200; ++i) {
    expect_throw_or_succeed(good_.substr(0, rng() % good_.size()), be_);
  }
}

TEST_F(DecodeGarbageTest, RandomBitFlipCorpusRejectsCleanly) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 300; ++i) {
    std::string bytes = good_;
    const std::size_t bit = rng() % (bytes.size() * 8);
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    expect_throw_or_succeed(bytes, be_);
  }
}

TEST_F(DecodeGarbageTest, RandomGarbageSpanCorpusRejectsCleanly) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 200; ++i) {
    std::string bytes = good_;
    const std::size_t span = 1 + rng() % 128;
    const std::size_t start = rng() % (bytes.size() - span);
    for (std::size_t j = 0; j < span; ++j) {
      bytes[start + j] = static_cast<char>(rng() & 0xff);
    }
    expect_throw_or_succeed(bytes, be_);
  }
}

TEST_F(DecodeGarbageTest, PureNoiseStreamsRejectCleanly) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 100; ++i) {
    std::string bytes(1 + rng() % 4096, '\0');
    for (auto& b : bytes) b = static_cast<char>(rng() & 0xff);
    expect_throw_or_succeed(bytes, be_);
  }
  // Valid header, noise body: exercises the paths past the magic check.
  for (int i = 0; i < 100; ++i) {
    std::string bytes = good_.substr(0, 8);
    bytes.resize(8 + rng() % 512);
    for (std::size_t j = 8; j < bytes.size(); ++j) {
      bytes[j] = static_cast<char>(rng() & 0xff);
    }
    expect_throw_or_succeed(bytes, be_);
  }
}

TEST_F(DecodeGarbageTest, HugeClaimedSizesCannotForceAllocation) {
  // All-0xFF metadata claims absurd degree/level/size values; the reader
  // must reject on the structure checks (or the metadata checksum) without
  // sizing any buffer from attacker-controlled fields.
  std::string bytes = good_;
  for (std::size_t i = 8; i < 40 && i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(0xff);
  }
  expect_throw_or_succeed(bytes, be_);
}

TEST_F(DecodeGarbageTest, ParamsDecoderSurvivesTheSameCorpus) {
  std::ostringstream out(std::ios::binary);
  write_params(out, CkksParams::paper_table2());
  const std::string good = std::move(out).str();
  std::mt19937_64 rng(17);
  for (std::size_t len = 0; len <= good.size(); ++len) {
    expect_params_throw_or_succeed(good.substr(0, len));
  }
  for (int i = 0; i < 300; ++i) {
    std::string bytes = good;
    const std::size_t bit = rng() % (bytes.size() * 8);
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
    expect_params_throw_or_succeed(bytes);
  }
  for (int i = 0; i < 100; ++i) {
    std::string bytes(1 + rng() % 256, '\0');
    for (auto& b : bytes) b = static_cast<char>(rng() & 0xff);
    expect_params_throw_or_succeed(bytes);
  }
}

}  // namespace
}  // namespace pphe
