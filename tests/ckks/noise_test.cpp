#include "ckks/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ckks/rns_backend.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

CkksParams small() { return CkksParams::test_small(); }

std::vector<double> random_slots(std::size_t n, double amplitude,
                                 std::uint64_t seed) {
  Prng prng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = (prng.uniform_double() - 0.5) * 2.0 * amplitude;
  return v;
}

TEST(NoiseTracker, FreshEncryptionBoundHolds) {
  const CkksParams p = small();
  RnsBackend be(p);
  const NoiseTracker tracker(p);
  const auto v = random_slots(be.slot_count(), 2.0, 1);
  const auto ct = be.encrypt(be.encode(v, p.scale, be.max_level()));
  const double measured = measured_slot_error(be, ct, v);
  const double predicted =
      NoiseTracker::slot_error(tracker.fresh_encryption(), p.scale);
  EXPECT_LT(measured, predicted);
  // The bound is useful, not vacuous: within ~3 orders of magnitude.
  EXPECT_GT(measured, predicted * 1e-4);
}

TEST(NoiseTracker, AdditionBoundHolds) {
  const CkksParams p = small();
  RnsBackend be(p);
  const NoiseTracker tracker(p);
  const auto va = random_slots(be.slot_count(), 2.0, 2);
  const auto vb = random_slots(be.slot_count(), 2.0, 3);
  const auto ca = be.encrypt(be.encode(va, p.scale, be.max_level()));
  const auto cb = be.encrypt(be.encode(vb, p.scale, be.max_level()));
  std::vector<double> want(be.slot_count());
  for (std::size_t i = 0; i < want.size(); ++i) want[i] = va[i] + vb[i];
  const double measured = measured_slot_error(be, be.add(ca, cb), want);
  const double n = NoiseTracker::add(tracker.fresh_encryption(),
                                     tracker.fresh_encryption());
  EXPECT_LT(measured, NoiseTracker::slot_error(n, p.scale));
}

TEST(NoiseTracker, MultiplyRescaleBoundHolds) {
  const CkksParams p = small();
  RnsBackend be(p);
  const NoiseTracker tracker(p);
  const auto va = random_slots(be.slot_count(), 2.0, 4);
  const auto vb = random_slots(be.slot_count(), 2.0, 5);
  const auto ca = be.encrypt(be.encode(va, p.scale, be.max_level()));
  const auto cb = be.encrypt(be.encode(vb, p.scale, be.max_level()));
  std::vector<double> want(be.slot_count());
  for (std::size_t i = 0; i < want.size(); ++i) want[i] = va[i] * vb[i];

  const auto prod = be.rescale(be.relinearize(be.multiply(ca, cb)));
  const double measured = measured_slot_error(be, prod, want);

  const double fresh = tracker.fresh_encryption();
  double n = tracker.multiply(fresh, fresh, p.scale, p.scale, 2.0, 2.0);
  n = NoiseTracker::add(n, tracker.key_switch(be.max_level()));
  n = tracker.rescale(n, be.level_prime(be.max_level()));
  EXPECT_LT(measured, NoiseTracker::slot_error(n, prod.scale()));
}

TEST(NoiseTracker, RotationBoundHolds) {
  const CkksParams p = small();
  RnsBackend be(p);
  be.ensure_galois_keys({5});
  const NoiseTracker tracker(p);
  const auto v = random_slots(be.slot_count(), 2.0, 6);
  const auto ct = be.encrypt(be.encode(v, p.scale, be.max_level()));
  std::vector<double> want(be.slot_count());
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = v[(i + 5) % be.slot_count()];
  }
  const double measured = measured_slot_error(be, be.rotate(ct, 5), want);
  const double n = NoiseTracker::add(tracker.fresh_encryption(),
                                     tracker.key_switch(be.max_level()));
  EXPECT_LT(measured, NoiseTracker::slot_error(n, p.scale));
}

TEST(NoiseBudget, DecreasesWithRescale) {
  const CkksParams p = small();
  RnsBackend be(p);
  const auto v = random_slots(be.slot_count(), 1.0, 7);
  auto ct = be.encrypt(be.encode(v, p.scale, be.max_level()));
  const double fresh_budget = noise_budget_bits(be, ct);
  EXPECT_GT(fresh_budget, 60.0);  // 144-bit chain minus 26-bit scale
  ct = be.rescale(be.relinearize(be.multiply(ct, ct)));
  EXPECT_LT(noise_budget_bits(be, ct), fresh_budget);
  EXPECT_GT(noise_budget_bits(be, ct), 0.0);
}

TEST(NoiseBudget, ModDropReducesBudget) {
  const CkksParams p = small();
  RnsBackend be(p);
  const auto v = random_slots(be.slot_count(), 1.0, 8);
  const auto ct = be.encrypt(be.encode(v, p.scale, be.max_level()));
  const auto dropped = be.mod_drop_to(ct, 0);
  EXPECT_LT(noise_budget_bits(be, dropped), noise_budget_bits(be, ct));
}

}  // namespace
}  // namespace pphe
