// RNS-specific behaviour: channel structure, noise scale, conjugation, the
// relationship between the chain and rescaling.

#include "ckks/rns_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

CkksParams small() { return CkksParams::test_small(); }

std::vector<double> ramp(std::size_t n, double scale = 1.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = scale * std::sin(0.1 * static_cast<double>(i));
  }
  return v;
}

TEST(RnsBackend, ModuliMatchRequestedBitSizes) {
  const RnsBackend be(small());
  const auto& mods = be.q_moduli();
  ASSERT_EQ(mods.size(), small().q_bit_sizes.size());
  for (std::size_t i = 0; i < mods.size(); ++i) {
    EXPECT_EQ(mods[i].bit_count(), small().q_bit_sizes[i]);
    // NTT-friendly: 1 mod 2N.
    EXPECT_EQ(mods[i].value() % (2 * small().degree), 1u);
  }
  EXPECT_NE(be.special_modulus(), 0u);
}

TEST(RnsBackend, SpecialPrimeDistinctFromChain) {
  const RnsBackend be(small());
  for (const auto& m : be.q_moduli()) {
    EXPECT_NE(m.value(), be.special_modulus());
  }
}

TEST(RnsBackend, FreshCiphertextShape) {
  const RnsBackend be(small());
  const auto ct = be.encrypt(be.encode(ramp(be.slot_count()),
                                       small().scale, be.max_level()));
  EXPECT_EQ(ct.size(), 2u);
  EXPECT_EQ(ct.level(), be.max_level());
  EXPECT_DOUBLE_EQ(ct.scale(), small().scale);
}

TEST(RnsBackend, RescaleDividesScaleByDroppedPrime) {
  const RnsBackend be(small());
  const auto ct = be.encrypt(be.encode(ramp(be.slot_count()),
                                       small().scale, be.max_level()));
  const auto prod = be.relinearize(be.multiply(ct, ct));
  const auto dropped_prime =
      be.q_moduli()[static_cast<std::size_t>(be.max_level())].value();
  const auto rescaled = be.rescale(prod);
  EXPECT_DOUBLE_EQ(rescaled.scale(),
                   small().scale * small().scale /
                       static_cast<double>(dropped_prime));
}

TEST(RnsBackend, ConjugateOfRealVectorIsIdentity) {
  RnsBackend be(small());
  be.ensure_galois_keys({0});  // step 0 = conjugation key
  const auto v = ramp(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const auto conj = be.conjugate(ct);
  const auto got = be.decrypt_decode(conj);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_NEAR(got[i], v[i], 5e-3);
  }
}

TEST(RnsBackend, DecryptCoefficientsHaveExpectedMagnitude) {
  const RnsBackend be(small());
  const std::vector<double> v(be.slot_count(), 1.0);
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const auto coeffs = be.decrypt_coefficients(ct);
  // The constant-1 vector encodes as Delta in coefficient 0 and ~0 elsewhere;
  // noise stays orders of magnitude below Delta.
  EXPECT_NEAR(coeffs[0], small().scale, small().scale * 0.01);
  double max_rest = 0.0;
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    max_rest = std::max(max_rest, std::abs(coeffs[i]));
  }
  EXPECT_LT(max_rest, small().scale * 0.01);
}

TEST(RnsBackend, EncryptionIsRandomized) {
  const RnsBackend be(small());
  const auto pt = be.encode(ramp(be.slot_count()), small().scale,
                            be.max_level());
  const auto c1 = be.encrypt(pt);
  const auto c2 = be.encrypt(pt);
  const auto& b1 = *static_cast<const RnsCtBody*>(c1.impl().get());
  const auto& b2 = *static_cast<const RnsCtBody*>(c2.impl().get());
  const auto s1 = b1.polys[0].ch(0);
  const auto s2 = b2.polys[0].ch(0);
  EXPECT_FALSE(std::equal(s1.begin(), s1.end(), s2.begin(), s2.end()));
}

TEST(RnsBackend, DeterministicForSameSeed) {
  CkksParams p = small();
  p.seed = 99;
  const RnsBackend be1(p), be2(p);
  const auto v = ramp(be1.slot_count());
  const auto c1 = be1.encrypt(be1.encode(v, p.scale, be1.max_level()));
  const auto c2 = be2.encrypt(be2.encode(v, p.scale, be2.max_level()));
  const auto& b1 = *static_cast<const RnsCtBody*>(c1.impl().get());
  const auto& b2 = *static_cast<const RnsCtBody*>(c2.impl().get());
  for (std::size_t t = 0; t < 2; ++t) {
    const auto s1 = b1.polys[t].ch(0);
    const auto s2 = b2.polys[t].ch(0);
    EXPECT_TRUE(std::equal(s1.begin(), s1.end(), s2.begin(), s2.end()));
  }
}

TEST(RnsBackend, ModDropReleasesDroppedChannelMemory) {
  // Regression: mod-switching must return the dropped residue channels to
  // the arena. A level-0 ciphertext holds exactly one channel's words per
  // polynomial — no stale top-level capacity.
  const RnsBackend be(small());
  const auto v = ramp(be.slot_count());
  auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  ct = be.mod_drop_to(ct, 0);
  const auto& body = *static_cast<const RnsCtBody*>(ct.impl().get());
  for (const auto& poly : body.polys) {
    EXPECT_EQ(poly.channels(), 1u);
    EXPECT_EQ(poly.buf.capacity_words(), small().degree);
  }
  // The ciphertext still decrypts at level 0.
  const auto got = be.decrypt_decode(ct);
  EXPECT_NEAR(got[5], v[5], 2e-3);
}

TEST(RnsBackend, EncodeAtLowerLevelHasFewerChannels) {
  const RnsBackend be(small());
  const auto pt = be.encode(ramp(be.slot_count()), small().scale, 1);
  const auto& body = *static_cast<const RnsPtBody*>(pt.impl().get());
  // level+1 ciphertext primes plus the key-switching prime: plaintexts carry
  // the special channel so the fused BSGS path can weight raised-basis
  // accumulators (ciphertext consumers truncate; serialization strips it).
  EXPECT_EQ(body.poly.channels(), 3u);
  EXPECT_TRUE(body.poly.has_special);
  const auto ct = be.encrypt(pt);
  EXPECT_EQ(ct.level(), 1);
  const auto got = be.decrypt_decode(ct);
  EXPECT_NEAR(got[3], ramp(be.slot_count())[3], 2e-3);
}

TEST(RnsBackend, EnsureGaloisKeysIsIdempotent) {
  RnsBackend be(small());
  be.ensure_galois_keys({4});
  be.ensure_galois_keys({4, 4});
  const auto v = ramp(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const auto got = be.decrypt_decode(be.rotate(ct, 4));
  EXPECT_NEAR(got[0], v[4], 5e-3);
}

TEST(RnsBackend, RotateBatchMatchesIndividualRotations) {
  RnsBackend be(small());
  const std::vector<int> steps{1, 3, 5, 17, 100};
  be.ensure_galois_keys(steps);
  const auto v = ramp(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const auto batch = be.rotate_batch(ct, steps);
  ASSERT_EQ(batch.size(), steps.size());
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const auto got = be.decrypt_decode(batch[s]);
    const auto ref = be.decrypt_decode(be.rotate(ct, steps[s]));
    for (std::size_t i = 0; i < be.slot_count(); i += 61) {
      const auto want = v[(i + static_cast<std::size_t>(steps[s])) %
                          be.slot_count()];
      ASSERT_NEAR(got[i], want, 8e-3) << "step " << steps[s] << " slot " << i;
      ASSERT_NEAR(got[i], ref[i], 8e-3);
    }
  }
}

TEST(RnsBackend, RotateBatchAliasesZeroAndDuplicateSteps) {
  RnsBackend be(small());
  be.ensure_galois_keys({3, 7});
  const auto slots = static_cast<int>(be.slot_count());
  const auto v = ramp(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  // Hoisted path (>= 2 unique nonzero steps): step 0 and the full-slot wrap
  // alias the input handle, a repeated step aliases its first occurrence —
  // no key switch, no copy.
  const std::vector<int> steps{0, 3, 3, slots, 7};
  const auto out = be.rotate_batch(ct, steps);
  ASSERT_EQ(out.size(), steps.size());
  EXPECT_EQ(out[0].impl().get(), ct.impl().get());
  EXPECT_EQ(out[3].impl().get(), ct.impl().get());
  EXPECT_EQ(out[2].impl().get(), out[1].impl().get());
  EXPECT_NE(out[1].impl().get(), out[4].impl().get());
  EXPECT_NEAR(be.decrypt_decode(out[1])[0], v[3], 8e-3);
  EXPECT_NEAR(be.decrypt_decode(out[4])[0], v[7], 8e-3);

  // Degenerate batch (<= 1 unique nonzero step) takes the default path and
  // must alias the same way.
  const std::vector<int> steps2{0, 7, 7};
  const auto out2 = be.rotate_batch(ct, steps2);
  ASSERT_EQ(out2.size(), steps2.size());
  EXPECT_EQ(out2[0].impl().get(), ct.impl().get());
  EXPECT_EQ(out2[2].impl().get(), out2[1].impl().get());
  EXPECT_NEAR(be.decrypt_decode(out2[1])[5], v[12], 8e-3);
}

TEST(RnsBackend, RotateSumMatchesRotateThenAdd) {
  RnsBackend be(small());
  be.ensure_galois_keys({2, 9});
  const auto n = be.slot_count();
  const auto va = ramp(n), vb = ramp(n, 0.5), vc = ramp(n, -0.25);
  const auto enc = [&](const std::vector<double>& v) {
    return be.encrypt(be.encode(v, small().scale, be.max_level()));
  };
  const std::vector<Ciphertext> cts{enc(va), enc(vb), enc(vc)};
  const std::vector<int> steps{2, 0, 9};
  // One shared raised-basis accumulator, one mod-down epilogue for the whole
  // sum — versus a key switch per rotation on the reference path. Same math,
  // different rounding points: equal within noise, not bitwise.
  const auto got = be.decrypt_decode(be.rotate_sum(cts, steps));
  const auto ref = be.decrypt_decode(be.add(
      be.add(be.rotate(cts[0], 2), cts[1]), be.rotate(cts[2], 9)));
  for (std::size_t i = 0; i < n; i += 47) {
    const double want = va[(i + 2) % n] + vb[i] + vc[(i + 9) % n];
    ASSERT_NEAR(got[i], want, 1e-2) << "slot " << i;
    ASSERT_NEAR(got[i], ref[i], 1e-2) << "slot " << i;
  }
}

TEST(RnsBackend, RotateBatchAtLowerLevel) {
  RnsBackend be(small());
  const std::vector<int> steps{2, 9};
  be.ensure_galois_keys(steps);
  const auto v = ramp(be.slot_count());
  auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  ct = be.mod_drop_to(ct, 1);
  const auto batch = be.rotate_batch(ct, steps);
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const auto got = be.decrypt_decode(batch[s]);
    for (std::size_t i = 0; i < 64; ++i) {
      ASSERT_NEAR(got[i],
                  v[(i + static_cast<std::size_t>(steps[s])) % be.slot_count()],
                  8e-3);
    }
  }
}

TEST(RnsBackend, MultiplyAccMatchesMultiplyAdd) {
  RnsBackend be(small());
  const auto va = ramp(be.slot_count(), 1.0);
  const auto vb = ramp(be.slot_count(), 0.7);
  const auto vc = ramp(be.slot_count(), -0.4);
  auto enc = [&](const std::vector<double>& v) {
    return be.encrypt(be.encode(v, small().scale, be.max_level()));
  };
  const auto ca = enc(va), cb = enc(vb), cc = enc(vc);
  // acc = ca*cb + cc*ca via the fused path.
  Ciphertext acc;
  be.multiply_acc(acc, ca, cb);
  be.multiply_acc(acc, cc, ca);
  const auto got = be.decrypt_decode(be.rescale(be.relinearize(acc)));
  for (std::size_t i = 0; i < be.slot_count(); i += 37) {
    ASSERT_NEAR(got[i], va[i] * vb[i] + vc[i] * va[i], 2e-2) << i;
  }
}

TEST(RnsBackend, MultiplyPlainAccMatches) {
  RnsBackend be(small());
  const auto va = ramp(be.slot_count(), 1.0);
  const auto vb = ramp(be.slot_count(), 0.7);
  const auto vc = ramp(be.slot_count(), -0.4);
  const auto ca = be.encrypt(be.encode(va, small().scale, be.max_level()));
  const auto pb = be.encode(vb, small().scale, be.max_level());
  const auto pc = be.encode(vc, small().scale, be.max_level());
  Ciphertext acc;
  be.multiply_plain_acc(acc, ca, pb);
  be.multiply_plain_acc(acc, ca, pc);
  const auto got = be.decrypt_decode(be.rescale(acc));
  for (std::size_t i = 0; i < be.slot_count(); i += 37) {
    ASSERT_NEAR(got[i], va[i] * (vb[i] + vc[i]), 2e-2) << i;
  }
}

TEST(RnsBackend, RotateFullCircleIsIdentity) {
  RnsBackend be(small());
  const int half = static_cast<int>(be.slot_count()) / 2;
  be.ensure_galois_keys({half});
  const auto v = ramp(be.slot_count());
  const auto ct = be.encrypt(be.encode(v, small().scale, be.max_level()));
  const auto twice = be.rotate(be.rotate(ct, half), half);
  const auto got = be.decrypt_decode(twice);
  for (std::size_t i = 0; i < v.size(); i += 97) {
    ASSERT_NEAR(got[i], v[i], 8e-3);
  }
}

}  // namespace
}  // namespace pphe
