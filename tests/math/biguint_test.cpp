#include "math/biguint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

BigUInt random_big(Prng& prng, std::size_t limbs) {
  BigUInt v;
  for (std::size_t i = 0; i < limbs; ++i) {
    v = (v << 64) + BigUInt(prng.next_u64());
  }
  return v;
}

TEST(BigUInt, ConstructionAndZero) {
  BigUInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_string(), "0");
  BigUInt one(1);
  EXPECT_FALSE(one.is_zero());
  EXPECT_EQ(one.bit_length(), 1u);
}

TEST(BigUInt, DecimalRoundTrip) {
  const std::string digits = "123456789012345678901234567890123456789";
  const BigUInt v = BigUInt::from_string(digits);
  EXPECT_EQ(v.to_string(), digits);
}

TEST(BigUInt, HexRoundTrip) {
  const BigUInt v = BigUInt::from_string("0xdeadbeefcafebabe0123456789");
  EXPECT_EQ(v.to_hex_string(), "deadbeefcafebabe0123456789");
}

TEST(BigUInt, ComparisonOrdering) {
  const BigUInt a(5), b(7);
  const BigUInt c = BigUInt::from_string("18446744073709551616");  // 2^64
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_GT(c, a);
  EXPECT_EQ(a, BigUInt(5));
  EXPECT_NE(a, b);
}

TEST(BigUInt, AdditionCarries) {
  const BigUInt max64(~0ull);
  const BigUInt sum = max64 + BigUInt(1);
  EXPECT_EQ(sum.to_hex_string(), "10000000000000000");
  EXPECT_EQ((sum - BigUInt(1)), max64);
}

TEST(BigUInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt(3) - BigUInt(5), Error);
}

TEST(BigUInt, MultiplicationKnownValue) {
  const BigUInt a = BigUInt::from_string("340282366920938463463374607431768211456");  // 2^128
  const BigUInt b(3);
  EXPECT_EQ((a * b).to_string(),
            "1020847100762815390390123822295304634368");
}

TEST(BigUInt, ShiftsAreInverse) {
  Prng prng(21);
  for (int i = 0; i < 50; ++i) {
    const BigUInt v = random_big(prng, 4);
    const std::size_t s = prng.uniform_below(130);
    EXPECT_EQ(((v << s) >> s), v);
  }
}

TEST(BigUInt, DivModInvariant) {
  Prng prng(22);
  for (int i = 0; i < 200; ++i) {
    const BigUInt a = random_big(prng, 1 + prng.uniform_below(6));
    BigUInt b = random_big(prng, 1 + prng.uniform_below(3));
    if (b.is_zero()) b = BigUInt(1);
    const auto dm = a.divmod(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
  }
}

TEST(BigUInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigUInt(5).divmod(BigUInt()), Error);
  EXPECT_THROW(BigUInt(5).divmod_u64(0), Error);
  EXPECT_THROW(BigUInt(5).mod_u64(0), Error);
}

TEST(BigUInt, DivModU64MatchesGeneral) {
  Prng prng(23);
  for (int i = 0; i < 200; ++i) {
    const BigUInt a = random_big(prng, 3);
    const std::uint64_t d = 1 + prng.next_u64() % ((1ull << 60) - 1);
    const auto fast = a.divmod_u64(d);
    const auto slow = a.divmod(BigUInt(d));
    EXPECT_EQ(fast.quotient, slow.quotient);
    EXPECT_EQ(BigUInt(fast.remainder), slow.remainder);
    EXPECT_EQ(a.mod_u64(d), fast.remainder);
  }
}

TEST(BigUInt, PowModMatchesFermat) {
  const BigUInt p = BigUInt::from_string("1000000000000000003");  // prime
  Prng prng(24);
  for (int i = 0; i < 20; ++i) {
    BigUInt a = random_big(prng, 2) % p;
    if (a.is_zero()) a = BigUInt(2);
    EXPECT_EQ(a.pow_mod(p - BigUInt(1), p), BigUInt(1));
  }
}

TEST(BigUInt, InvModRoundTrip) {
  const BigUInt m = BigUInt::from_string("170141183460469231731687303715884105727");  // 2^127-1
  Prng prng(25);
  for (int i = 0; i < 50; ++i) {
    BigUInt a = random_big(prng, 2) % m;
    if (a.is_zero()) a = BigUInt(7);
    const BigUInt inv = a.inv_mod(m);
    EXPECT_EQ((a * inv) % m, BigUInt(1));
  }
}

TEST(BigUInt, InvModNonCoprimeThrows) {
  EXPECT_THROW(BigUInt(6).inv_mod(BigUInt(9)), Error);
  EXPECT_THROW(BigUInt(0).inv_mod(BigUInt(9)), Error);
}

TEST(BigUInt, BitAccess) {
  const BigUInt v = BigUInt(1) << 100;
  EXPECT_TRUE(v.bit(100));
  EXPECT_FALSE(v.bit(99));
  EXPECT_FALSE(v.bit(101));
  EXPECT_EQ(v.bit_length(), 101u);
}

TEST(BigUInt, CapacityOverflowThrows) {
  // 14 limbs each: the 28-limb product exceeds the 26-limb capacity.
  const BigUInt big = BigUInt(1) << (64 * 13);
  EXPECT_THROW(big * big, Error);
  EXPECT_THROW(big << (64 * 13), Error);
  // At the boundary (13 + 13 = 26 limbs) multiplication still works.
  const BigUInt edge = BigUInt(1) << (64 * 12);
  EXPECT_NO_THROW(edge * edge);
}

TEST(BigUInt, ToDoubleApproximation) {
  const BigUInt v = BigUInt(1) << 100;
  EXPECT_NEAR(v.to_double() / std::pow(2.0, 100), 1.0, 1e-12);
}

}  // namespace
}  // namespace pphe
