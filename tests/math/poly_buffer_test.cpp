// Slab arena behaviour: alignment, exact-capacity free-listing, reuse
// accounting, value semantics of PolyBuffer, and thread-safe checkout.

#include "math/poly_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace pphe {
namespace {

std::shared_ptr<PolyPool> make_pool() { return std::make_shared<PolyPool>(); }

TEST(PolyPool, SlabsAre64ByteAligned) {
  auto pool = make_pool();
  for (const std::size_t words : {8u, 100u, 4096u}) {
    PolyBuffer buf(pool, 1, words);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                  PolyPool::kAlignment,
              0u);
  }
}

TEST(PolyPool, FirstCheckoutMissesThenHits) {
  auto pool = make_pool();
  { PolyBuffer buf(pool, 3, 64); }  // released to the free list
  MemStats s = pool->stats();
  EXPECT_EQ(s.pool_misses, 1u);
  EXPECT_EQ(s.pool_hits, 0u);
  EXPECT_EQ(s.bytes_in_use, 0u);
  EXPECT_EQ(s.bytes_cached, 3 * 64 * sizeof(std::uint64_t));

  { PolyBuffer buf(pool, 3, 64); }  // same capacity -> free-list hit
  s = pool->stats();
  EXPECT_EQ(s.pool_misses, 1u);
  EXPECT_EQ(s.pool_hits, 1u);
}

TEST(PolyPool, FreeListIsKeyedByExactCapacity) {
  auto pool = make_pool();
  { PolyBuffer buf(pool, 2, 64); }   // caches a 128-word slab
  { PolyBuffer buf(pool, 4, 64); }   // different capacity -> second miss
  EXPECT_EQ(pool->stats().pool_misses, 2u);
  { PolyBuffer buf(pool, 2, 64); }   // exact match -> hit
  { PolyBuffer buf(pool, 1, 128); }  // 128 words again, different shape, hit
  EXPECT_EQ(pool->stats().pool_hits, 2u);
  EXPECT_EQ(pool->stats().pool_misses, 2u);
}

TEST(PolyPool, PeakTracksHighWaterMark) {
  auto pool = make_pool();
  const std::uint64_t slab = 4 * 32 * sizeof(std::uint64_t);
  {
    PolyBuffer a(pool, 4, 32);
    PolyBuffer b(pool, 4, 32);
    EXPECT_EQ(pool->stats().bytes_in_use, 2 * slab);
  }
  EXPECT_EQ(pool->stats().peak_bytes, 2 * slab);
  pool->trim();
  EXPECT_EQ(pool->stats().bytes_cached, 0u);
  // reset_stats rebases the peak to the (now empty) footprint.
  pool->reset_stats();
  EXPECT_EQ(pool->stats().peak_bytes, 0u);
}

TEST(PolyBuffer, ChannelViewsAreDisjointAndOrdered) {
  auto pool = make_pool();
  PolyBuffer buf(pool, 3, 16);
  for (std::size_t c = 0; c < 3; ++c) {
    auto ch = buf[c];
    ASSERT_EQ(ch.size(), 16u);
    EXPECT_EQ(ch.data(), buf.data() + c * 16);
    std::iota(ch.begin(), ch.end(), c * 100);
  }
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(buf[c][0], c * 100);
    EXPECT_EQ(buf[c][15], c * 100 + 15);
  }
}

TEST(PolyBuffer, CopyIsDeepAndMoveSteals) {
  auto pool = make_pool();
  PolyBuffer a(pool, 2, 8);
  a[0][0] = 42;
  PolyBuffer b = a;
  EXPECT_NE(b.data(), a.data());
  EXPECT_EQ(b[0][0], 42u);
  b[0][0] = 7;
  EXPECT_EQ(a[0][0], 42u);

  const std::uint64_t* slab = b.data();
  PolyBuffer c = std::move(b);
  EXPECT_EQ(c.data(), slab);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): tested on purpose
}

TEST(PolyBuffer, ShrinkChannelsReturnsTailToPool) {
  auto pool = make_pool();
  PolyBuffer buf(pool, 5, 32);
  for (std::size_t c = 0; c < 5; ++c) buf[c][0] = c + 1;
  buf.shrink_channels(2);
  EXPECT_EQ(buf.channels(), 2u);
  EXPECT_EQ(buf.capacity_words(), 2 * 32u);
  EXPECT_EQ(buf[0][0], 1u);
  EXPECT_EQ(buf[1][0], 2u);
  // The 5-channel slab went back: cached bytes cover exactly that slab.
  EXPECT_EQ(pool->stats().bytes_cached, 5 * 32 * sizeof(std::uint64_t));
  EXPECT_EQ(pool->stats().bytes_in_use, 2 * 32 * sizeof(std::uint64_t));
}

TEST(PolyBuffer, SurvivesPoolHandleOutlivingNothing) {
  // The buffer holds the pool via shared_ptr: releasing the only external
  // handle must not invalidate the buffer or crash on release.
  PolyBuffer buf(make_pool(), 2, 16);
  buf[1][3] = 99;
  EXPECT_EQ(buf[1][3], 99u);
}

TEST(PolyPool, ConcurrentCheckoutFromThreadPool) {
  auto pool = make_pool();
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kRounds = 50;
  ThreadPool::global().parallel_for(kTasks, [&](std::size_t t) {
    for (std::size_t r = 0; r < kRounds; ++r) {
      PolyBuffer buf(pool, 1 + t % 3, 64, /*zero_fill=*/false);
      buf[0][0] = t;
      PPHE_CHECK(buf[0][0] == t, "slab not private to its owner");
    }
  });
  const MemStats s = pool->stats();
  EXPECT_EQ(s.pool_hits + s.pool_misses, kTasks * kRounds);
  EXPECT_EQ(s.bytes_in_use, 0u);
  // Steady state: far more hits than allocator trips.
  EXPECT_GT(s.pool_hits, s.pool_misses);
}

TEST(VecPoolTest, ReusesBuffersByElementCount) {
  auto pool = std::make_shared<VecPool<std::uint64_t>>();
  { PooledVec<std::uint64_t> v(pool, 100); }
  { PooledVec<std::uint64_t> v(pool, 100); }
  { PooledVec<std::uint64_t> v(pool, 50); }
  const MemStats s = pool->stats();
  EXPECT_EQ(s.pool_misses, 2u);
  EXPECT_EQ(s.pool_hits, 1u);
}

}  // namespace
}  // namespace pphe
