#include "math/rns.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

TEST(RnsBase, RejectsNonCoprimeModuli) {
  EXPECT_THROW(RnsBase({6, 10}), Error);
  EXPECT_THROW(RnsBase({7, 7}), Error);
  EXPECT_NO_THROW(RnsBase({7, 11, 13}));
}

TEST(RnsBase, RejectsEmptyOrTrivial) {
  EXPECT_THROW(RnsBase({}), Error);
  EXPECT_THROW(RnsBase({1}), Error);
}

TEST(RnsBase, ProductAndPunctured) {
  const RnsBase base({7, 11, 13});
  EXPECT_EQ(base.product(), BigUInt(1001));
  EXPECT_EQ(base.punctured_product(0), BigUInt(143));
  EXPECT_EQ(base.punctured_product(1), BigUInt(91));
  EXPECT_EQ(base.punctured_product(2), BigUInt(77));
  for (std::size_t i = 0; i < 3; ++i) {
    const std::uint64_t t = base.punctured_inverse(i);
    EXPECT_EQ(base.modulus(i).mul(
                  base.punctured_product(i).mod_u64(base.modulus_value(i)), t),
              1u);
  }
}

TEST(RnsBase, ComposeDecomposeRoundTripSmall) {
  const RnsBase base({7, 11, 13});
  for (std::uint64_t v = 0; v < 1001; ++v) {
    const auto residues = base.decompose(BigUInt(v));
    EXPECT_EQ(base.compose(residues), BigUInt(v));
  }
}

TEST(RnsBase, ComposeDecomposeRoundTripWide) {
  const auto primes = generate_ntt_primes(1024, 50, 8);
  const RnsBase base(primes);
  Prng prng(41);
  for (int i = 0; i < 200; ++i) {
    BigUInt v;
    for (int limb = 0; limb < 6; ++limb) {
      v = (v << 64) + BigUInt(prng.next_u64());
    }
    v = v % base.product();
    EXPECT_EQ(base.compose(base.decompose(v)), v);
  }
}

TEST(RnsBase, ComponentwiseAdditionHomomorphism) {
  // Fig. 2 of the paper: ops on the big integer == per-residue ops.
  const auto primes = generate_ntt_primes(256, 40, 4);
  const RnsBase base(primes);
  Prng prng(42);
  for (int i = 0; i < 100; ++i) {
    BigUInt a = (BigUInt(prng.next_u64()) << 64) + BigUInt(prng.next_u64());
    BigUInt b = (BigUInt(prng.next_u64()) << 64) + BigUInt(prng.next_u64());
    a = a % base.product();
    b = b % base.product();
    const auto ra = base.decompose(a);
    const auto rb = base.decompose(b);
    std::vector<std::uint64_t> sum(base.size()), prod(base.size());
    for (std::size_t j = 0; j < base.size(); ++j) {
      sum[j] = base.modulus(j).add(ra[j], rb[j]);
      prod[j] = base.modulus(j).mul(ra[j], rb[j]);
    }
    EXPECT_EQ(base.compose(sum), (a + b) % base.product());
    EXPECT_EQ(base.compose(prod), (a * b) % base.product());
  }
}

TEST(RnsBase, DecomposeReducesLargeInputs) {
  const RnsBase base({7, 11});
  const auto residues = base.decompose(BigUInt(1000));  // > 77
  EXPECT_EQ(residues[0], 1000 % 7);
  EXPECT_EQ(residues[1], 1000 % 11);
}

TEST(RnsBase, ComposeRejectsWrongCount) {
  const RnsBase base({7, 11});
  std::vector<std::uint64_t> wrong{1, 2, 3};
  EXPECT_THROW(base.compose(wrong), Error);
}

}  // namespace
}  // namespace pphe
