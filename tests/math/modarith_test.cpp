#include "math/modarith.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

TEST(Modulus, RejectsBadValues) {
  EXPECT_THROW(Modulus(0), Error);
  EXPECT_THROW(Modulus(1), Error);
  EXPECT_THROW(Modulus(1ull << 62), Error);
  EXPECT_NO_THROW(Modulus((1ull << 62) - 1));
}

TEST(Modulus, BasicOps) {
  const Modulus m(17);
  EXPECT_EQ(m.add(10, 10), 3u);
  EXPECT_EQ(m.sub(3, 10), 10u);
  EXPECT_EQ(m.neg(5), 12u);
  EXPECT_EQ(m.neg(0), 0u);
  EXPECT_EQ(m.mul(5, 7), 1u);
  EXPECT_EQ(m.reduce(34), 0u);
  EXPECT_EQ(m.bit_count(), 5);
}

TEST(Modulus, Reduce128MatchesNative) {
  Prng prng(3);
  const std::uint64_t p = generate_ntt_primes(1024, 50, 1)[0];
  const Modulus m(p);
  for (int i = 0; i < 2000; ++i) {
    const unsigned __int128 x =
        (static_cast<unsigned __int128>(prng.next_u64()) << 64) |
        prng.next_u64();
    EXPECT_EQ(m.reduce128(x), static_cast<std::uint64_t>(x % p));
  }
}

TEST(Modulus, MulMatchesNativeForRandomPrimes) {
  Prng prng(4);
  for (const int bits : {20, 30, 45, 59}) {
    const std::uint64_t p = generate_ntt_primes(256, bits, 1)[0];
    const Modulus m(p);
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t a = prng.uniform_below(p);
      const std::uint64_t b = prng.uniform_below(p);
      const auto expect = static_cast<std::uint64_t>(
          static_cast<unsigned __int128>(a) * b % p);
      EXPECT_EQ(m.mul(a, b), expect);
    }
  }
}

TEST(Modulus, PowAndInverse) {
  const std::uint64_t p = generate_ntt_primes(512, 40, 1)[0];
  const Modulus m(p);
  Prng prng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = 1 + prng.uniform_below(p - 1);
    // Fermat: a^(p-1) = 1.
    EXPECT_EQ(m.pow(a, p - 1), 1u);
    const std::uint64_t inv = m.inv(a);
    EXPECT_EQ(m.mul(a, inv), 1u);
  }
}

TEST(Modulus, InverseOfZeroThrows) {
  const Modulus m(17);
  EXPECT_THROW(m.inv(0), Error);
  EXPECT_THROW(m.inv(17), Error);  // reduces to zero
}

TEST(Modulus, InverseRequiresCoprime) {
  const Modulus m(15);
  EXPECT_THROW(m.inv(5), Error);
  EXPECT_EQ(m.mul(m.inv(7), 7), 1u);
}

TEST(ShoupMul, MatchesBarrett) {
  const std::uint64_t p = generate_ntt_primes(1024, 55, 1)[0];
  const Modulus m(p);
  Prng prng(6);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t w = prng.uniform_below(p);
    const ShoupMul shoup(w, m);
    for (int j = 0; j < 10; ++j) {
      const std::uint64_t x = prng.uniform_below(p);
      EXPECT_EQ(shoup.mul(x, p), m.mul(w, x));
    }
  }
}

TEST(ShoupMul, RejectsUnreducedOperand) {
  const Modulus m(17);
  EXPECT_THROW(ShoupMul(17, m), Error);
}

}  // namespace
}  // namespace pphe
