#include "math/modarith.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

TEST(Modulus, RejectsBadValues) {
  EXPECT_THROW(Modulus(0), Error);
  EXPECT_THROW(Modulus(1), Error);
  EXPECT_THROW(Modulus(1ull << 62), Error);
  EXPECT_NO_THROW(Modulus((1ull << 62) - 1));
}

TEST(Modulus, BasicOps) {
  const Modulus m(17);
  EXPECT_EQ(m.add(10, 10), 3u);
  EXPECT_EQ(m.sub(3, 10), 10u);
  EXPECT_EQ(m.neg(5), 12u);
  EXPECT_EQ(m.neg(0), 0u);
  EXPECT_EQ(m.mul(5, 7), 1u);
  EXPECT_EQ(m.reduce(34), 0u);
  EXPECT_EQ(m.bit_count(), 5);
}

TEST(Modulus, Reduce128MatchesNative) {
  Prng prng(3);
  const std::uint64_t p = generate_ntt_primes(1024, 50, 1)[0];
  const Modulus m(p);
  for (int i = 0; i < 2000; ++i) {
    const unsigned __int128 x =
        (static_cast<unsigned __int128>(prng.next_u64()) << 64) |
        prng.next_u64();
    EXPECT_EQ(m.reduce128(x), static_cast<std::uint64_t>(x % p));
  }
}

TEST(Modulus, MulMatchesNativeForRandomPrimes) {
  Prng prng(4);
  for (const int bits : {20, 30, 45, 59}) {
    const std::uint64_t p = generate_ntt_primes(256, bits, 1)[0];
    const Modulus m(p);
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t a = prng.uniform_below(p);
      const std::uint64_t b = prng.uniform_below(p);
      const auto expect = static_cast<std::uint64_t>(
          static_cast<unsigned __int128>(a) * b % p);
      EXPECT_EQ(m.mul(a, b), expect);
    }
  }
}

TEST(Modulus, PowAndInverse) {
  const std::uint64_t p = generate_ntt_primes(512, 40, 1)[0];
  const Modulus m(p);
  Prng prng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = 1 + prng.uniform_below(p - 1);
    // Fermat: a^(p-1) = 1.
    EXPECT_EQ(m.pow(a, p - 1), 1u);
    const std::uint64_t inv = m.inv(a);
    EXPECT_EQ(m.mul(a, inv), 1u);
  }
}

TEST(Modulus, InverseOfZeroThrows) {
  const Modulus m(17);
  EXPECT_THROW(m.inv(0), Error);
  EXPECT_THROW(m.inv(17), Error);  // reduces to zero
}

TEST(Modulus, InverseRequiresCoprime) {
  const Modulus m(15);
  EXPECT_THROW(m.inv(5), Error);
  EXPECT_EQ(m.mul(m.inv(7), 7), 1u);
}

TEST(ShoupMul, MatchesBarrett) {
  const std::uint64_t p = generate_ntt_primes(1024, 55, 1)[0];
  const Modulus m(p);
  Prng prng(6);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t w = prng.uniform_below(p);
    const ShoupMul shoup(w, m);
    for (int j = 0; j < 10; ++j) {
      const std::uint64_t x = prng.uniform_below(p);
      EXPECT_EQ(shoup.mul(x, p), m.mul(w, x));
    }
  }
}

TEST(ShoupMul, RejectsUnreducedOperand) {
  const Modulus m(17);
  EXPECT_THROW(ShoupMul(17, m), Error);
}

TEST(ShoupMul, QuotientMatchesExactDivision) {
  Prng prng(7);
  for (const int bits : {20, 40, 59}) {
    const std::uint64_t p = generate_ntt_primes(256, bits, 1)[0];
    const Modulus m(p);
    for (const std::uint64_t w :
         {std::uint64_t{0}, std::uint64_t{1}, p - 1, prng.uniform_below(p)}) {
      const auto expect = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(w) << 64) / p);
      EXPECT_EQ(m.shoup_quotient(w), expect) << "p=" << p << " w=" << w;
    }
  }
}

TEST(ShoupMul, LazyProductStaysBelowTwoPForAnyInput) {
  // mul_lazy accepts ANY 64-bit x (the lazy NTT feeds it values in [0, 4p))
  // and must return a value congruent to w*x that is < 2p.
  const std::uint64_t p = generate_ntt_primes(1024, 59, 1)[0];
  const Modulus m(p);
  Prng prng(8);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t w = i < 4 ? p - 1 - static_cast<std::uint64_t>(i)
                                  : prng.uniform_below(p);
    const ShoupMul shoup(w, m);
    for (const std::uint64_t x :
         {std::uint64_t{0}, p - 1, 2 * p - 1, 4 * p - 1, ~std::uint64_t{0},
          prng.next_u64()}) {
      const std::uint64_t r = shoup.mul_lazy(x, p);
      ASSERT_LT(r, 2 * p);
      ASSERT_EQ(m.reduce(r), m.mul(w, m.reduce(x)));
    }
  }
}

TEST(Dyadic, MulAndMulAccMatchReference) {
  const std::uint64_t p = generate_ntt_primes(1024, 50, 1)[0];
  const Modulus m(p);
  Prng prng(9);
  const std::size_t n = 257;  // odd length: no vector-width alignment luck
  std::vector<std::uint64_t> a(n), b(n), c(n), acc(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = i < 3 ? p - 1 : prng.uniform_below(p);
    b[i] = i < 3 ? p - 1 : prng.uniform_below(p);
    acc[i] = i < 3 ? p - 1 : prng.uniform_below(p);
  }
  dyadic::mul(a, b, c, m);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(c[i], m.mul(a[i], b[i]));
  auto acc2 = acc;
  dyadic::mul_acc(a, b, acc2, m);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(acc2[i], m.add(acc[i], m.mul(a[i], b[i])));
  }
}

TEST(Dyadic, ShoupKernelsMatchBarrettAtExtremes) {
  const std::uint64_t p = generate_ntt_primes(1024, 59, 1)[0];
  const Modulus m(p);
  Prng prng(10);
  const std::size_t n = 129;
  std::vector<std::uint64_t> a(n), w(n), wq(n), c(n), acc(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = i % 3 == 0 ? p - 1 : prng.uniform_below(p);
    w[i] = i % 5 == 0 ? p - 1 : prng.uniform_below(p);
    acc[i] = i % 7 == 0 ? p - 1 : prng.uniform_below(p);
  }
  dyadic::shoup_precompute(w, wq, m);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(wq[i], m.shoup_quotient(w[i]));
  }
  dyadic::mul_shoup(a, w, wq, c, m);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(c[i], m.mul(a[i], w[i]));
  auto acc2 = acc;
  dyadic::mul_acc_shoup(a, w, wq, acc2, m);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(acc2[i], m.add(acc[i], m.mul(a[i], w[i])));
  }
  // The scalar gather-loop variant agrees too.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(dyadic::mul_acc_shoup_scalar(acc[i], a[i], w[i], wq[i], p),
              m.add(acc[i], m.mul(a[i], w[i])));
  }
}

TEST(Dyadic, RejectsSizeMismatch) {
  const Modulus m(17);
  std::vector<std::uint64_t> a(4, 1), b(3, 1), c(4, 0);
  EXPECT_THROW(dyadic::mul(a, b, c, m), Error);
  EXPECT_THROW(dyadic::mul_acc(a, b, c, m), Error);
  EXPECT_THROW(dyadic::shoup_precompute(a, b, m), Error);
}

}  // namespace
}  // namespace pphe
