#include "math/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

using Cx = std::complex<double>;

TEST(Fft, RoundTripIsIdentity) {
  for (const std::size_t n : {1ul, 2ul, 8ul, 64ul, 1024ul}) {
    const Fft fft(n);
    Prng prng(n);
    std::vector<Cx> a(n);
    for (auto& x : a) x = {prng.uniform_double() - 0.5, prng.uniform_double() - 0.5};
    auto b = a;
    fft.forward(b);
    fft.inverse(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(a[i].real(), b[i].real(), 1e-12);
      EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-12);
    }
  }
}

TEST(Fft, MatchesNaiveDft) {
  const std::size_t n = 32;
  const Fft fft(n);
  Prng prng(3);
  std::vector<Cx> a(n);
  for (auto& x : a) x = {prng.uniform_double(), prng.uniform_double()};
  auto f = a;
  fft.forward(f);
  for (std::size_t k = 0; k < n; ++k) {
    Cx ref{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(j * k) / static_cast<double>(n);
      ref += a[j] * std::polar(1.0, angle);
    }
    EXPECT_NEAR(f[k].real(), ref.real(), 1e-9);
    EXPECT_NEAR(f[k].imag(), ref.imag(), 1e-9);
  }
}

TEST(Fft, DeltaTransformsToConstant) {
  const std::size_t n = 16;
  const Fft fft(n);
  std::vector<Cx> a(n, Cx{0.0, 0.0});
  a[0] = {1.0, 0.0};
  fft.forward(a);
  for (const auto& v : a) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConvolutionTheorem) {
  const std::size_t n = 64;
  const Fft fft(n);
  Prng prng(8);
  std::vector<Cx> a(n), b(n);
  for (auto& x : a) x = {prng.uniform_double(), 0.0};
  for (auto& x : b) x = {prng.uniform_double(), 0.0};
  // Cyclic convolution via FFT.
  auto fa = a, fb = b;
  fft.forward(fa);
  fft.forward(fb);
  std::vector<Cx> fc(n);
  for (std::size_t i = 0; i < n; ++i) fc[i] = fa[i] * fb[i];
  fft.inverse(fc);
  // Direct cyclic convolution.
  for (std::size_t k = 0; k < n; ++k) {
    Cx ref{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) ref += a[j] * b[(k + n - j) % n];
    EXPECT_NEAR(fc[k].real(), ref.real(), 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Fft(0), Error);
  EXPECT_THROW(Fft(12), Error);
}

TEST(Fft, RejectsWrongInputSize) {
  const Fft fft(8);
  std::vector<Cx> wrong(4);
  EXPECT_THROW(fft.forward(wrong), Error);
}

}  // namespace
}  // namespace pphe
