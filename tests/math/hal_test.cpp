// Differential bit-exactness suite for the math HAL (DESIGN.md §13): every
// SIMD kernel table compiled into this binary and supported by the CPU is
// driven against the scalar oracle over residue-extreme inputs (values at
// the p / 2p / 4p lazy bounds), every prime of a generated chain, and odd
// lengths that exercise the lane tails. Outputs must be BIT-identical —
// "close" is a miscompiled kernel here.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "math/hal/hal.hpp"
#include "math/modarith.hpp"
#include "math/ntt.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

using hal::Isa;

std::vector<Isa> simd_isas() {
  std::vector<Isa> isas;
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    if (hal::available(isa)) isas.push_back(isa);
  }
  return isas;
}

// Every prime of a Table II-shaped chain (plus the 50-bit bench prime), all
// ≡ 1 mod 2·4096 so a single list serves NTT sizes up to 4096.
std::vector<std::uint64_t> test_primes() {
  std::vector<std::uint64_t> primes =
      generate_moduli_chain(4096, {40, 26, 26, 26, 26, 26, 26, 40});
  const std::vector<std::uint64_t> extra = generate_ntt_primes(4096, 50, 1);
  primes.push_back(extra[0]);
  return primes;
}

// Lengths around the 4- and 8-lane widths: tails of every residue class,
// sub-lane lengths, and a big slab.
const std::size_t kLengths[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                15, 16, 17, 31, 33, 100, 1000, 4096};

// Fills `v` with draws that hammer the reduced-domain extremes: 0, 1, p-1
// and uniform values, deterministic per (seed).
std::vector<std::uint64_t> extreme_inputs(std::size_t n, std::uint64_t bound,
                                          Prng& prng) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (prng.uniform_below(5)) {
      case 0: v[i] = 0; break;
      case 1: v[i] = 1; break;
      case 2: v[i] = bound - 1; break;
      default: v[i] = prng.uniform_below(bound); break;
    }
  }
  return v;
}

TEST(HalDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(hal::available(Isa::kScalar));
  EXPECT_STREQ(hal::kernels(Isa::kScalar).name, "scalar");
  EXPECT_TRUE(hal::available(hal::best_available()));
}

TEST(HalDispatch, ParseIsaRoundTrips) {
  EXPECT_EQ(hal::parse_isa("scalar"), Isa::kScalar);
  EXPECT_EQ(hal::parse_isa("avx2"), Isa::kAvx2);
  EXPECT_EQ(hal::parse_isa("avx512"), Isa::kAvx512);
  EXPECT_THROW(hal::parse_isa("neon"), Error);
  EXPECT_THROW(hal::parse_isa(""), Error);
}

TEST(HalDispatch, ScopedForcePinsAndRestores) {
  const Isa before = hal::active_isa();
  {
    hal::ScopedForceIsa pin(Isa::kScalar);
    EXPECT_EQ(hal::active_isa(), Isa::kScalar);
    EXPECT_STREQ(hal::active().name, "scalar");
  }
  EXPECT_EQ(hal::active_isa(), before);
}

TEST(HalDispatch, ResetPicksAnAvailableIsa) {
  hal::reset();
  EXPECT_TRUE(hal::available(hal::active_isa()));
}

// --- Dyadic kernels: scalar vs each SIMD table, bitwise -------------------

TEST(HalDifferential, DyadicKernelsMatchScalar) {
  const auto& scalar = hal::kernels(Isa::kScalar);
  Prng prng(20260809);
  for (Isa isa : simd_isas()) {
    const auto& simd = hal::kernels(isa);
    for (const std::uint64_t p : test_primes()) {
      const Modulus mod(p);
      for (const std::size_t n : kLengths) {
        const auto a = extreme_inputs(n, p, prng);
        const auto b = extreme_inputs(n, p, prng);
        std::vector<std::uint64_t> wq(n);
        dyadic::shoup_precompute(b, wq, mod);

        std::vector<std::uint64_t> want(n), got(n);
        scalar.mul(a.data(), b.data(), want.data(), n, mod);
        simd.mul(a.data(), b.data(), got.data(), n, mod);
        ASSERT_EQ(want, got) << simd.name << " mul p=" << p << " n=" << n;

        const auto acc = extreme_inputs(n, p, prng);
        want = acc;
        got = acc;
        scalar.mul_acc(a.data(), b.data(), want.data(), n, mod);
        simd.mul_acc(a.data(), b.data(), got.data(), n, mod);
        ASSERT_EQ(want, got) << simd.name << " mul_acc p=" << p << " n=" << n;

        scalar.mul_shoup(a.data(), b.data(), wq.data(), want.data(), n, p);
        simd.mul_shoup(a.data(), b.data(), wq.data(), got.data(), n, p);
        ASSERT_EQ(want, got) << simd.name << " mul_shoup p=" << p
                             << " n=" << n;

        want = acc;
        got = acc;
        scalar.mul_acc_shoup(a.data(), b.data(), wq.data(), want.data(), n, p);
        simd.mul_acc_shoup(a.data(), b.data(), wq.data(), got.data(), n, p);
        ASSERT_EQ(want, got) << simd.name << " mul_acc_shoup p=" << p
                             << " n=" << n;

        scalar.add(a.data(), b.data(), want.data(), n, p);
        simd.add(a.data(), b.data(), got.data(), n, p);
        ASSERT_EQ(want, got) << simd.name << " add p=" << p << " n=" << n;

        scalar.sub(a.data(), b.data(), want.data(), n, p);
        simd.sub(a.data(), b.data(), got.data(), n, p);
        ASSERT_EQ(want, got) << simd.name << " sub p=" << p << " n=" << n;

        scalar.neg(a.data(), want.data(), n, p);
        simd.neg(a.data(), got.data(), n, p);
        ASSERT_EQ(want, got) << simd.name << " neg p=" << p << " n=" << n;
      }
    }
  }
}

// Naive __int128 reference on a SIMD table directly (not just scalar parity):
// guards against the oracle and a SIMD port sharing one arithmetic slip.
TEST(HalDifferential, SimdMulShoupMatchesNaiveReference) {
  Prng prng(77);
  const std::uint64_t p = test_primes().front();
  const Modulus mod(p);
  for (Isa isa : simd_isas()) {
    const auto& simd = hal::kernels(isa);
    const std::size_t n = 257;  // odd tail
    const auto a = extreme_inputs(n, p, prng);
    const auto w = extreme_inputs(n, p, prng);
    std::vector<std::uint64_t> wq(n), got(n);
    dyadic::shoup_precompute(w, wq, mod);
    simd.mul_shoup(a.data(), w.data(), wq.data(), got.data(), n, p);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t want = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(a[i]) * w[i]) % p);
      ASSERT_EQ(got[i], want) << simd.name << " i=" << i;
    }
  }
}

// --- NTT kernels: lazy-bound extremes, every prime, many sizes ------------

TEST(HalDifferential, NttForwardMatchesScalarOnLazyBounds) {
  Prng prng(987);
  for (Isa isa : simd_isas()) {
    const auto& simd = hal::kernels(isa);
    const auto& scalar = hal::kernels(Isa::kScalar);
    for (const std::uint64_t p : test_primes()) {
      const Modulus mod(p);
      for (const std::size_t n : {std::size_t{2}, std::size_t{4},
                                  std::size_t{8}, std::size_t{16},
                                  std::size_t{32}, std::size_t{256},
                                  std::size_t{4096}}) {
        const NttTable table(n, mod);
        // forward() accepts the full lazy domain [0, 4p): stress the 2p and
        // 4p boundaries explicitly, not just reduced inputs.
        const std::uint64_t four_p = 4 * p;
        std::vector<std::uint64_t> input(n);
        for (std::size_t i = 0; i < n; ++i) {
          switch (prng.uniform_below(8)) {
            case 0: input[i] = 0; break;
            case 1: input[i] = p - 1; break;
            case 2: input[i] = p; break;
            case 3: input[i] = 2 * p - 1; break;
            case 4: input[i] = 2 * p; break;
            case 5: input[i] = four_p - 1; break;
            default: input[i] = prng.uniform_below(four_p); break;
          }
        }
        std::vector<std::uint64_t> want = input, got = input;
        scalar.ntt_forward(want.data(), n, table.root_powers().data(), p);
        simd.ntt_forward(got.data(), n, table.root_powers().data(), p);
        ASSERT_EQ(want, got) << simd.name << " forward p=" << p
                             << " n=" << n;
        for (const std::uint64_t v : got) ASSERT_LT(v, p);
      }
    }
  }
}

TEST(HalDifferential, NttInverseMatchesScalarOnLazyBounds) {
  Prng prng(988);
  for (Isa isa : simd_isas()) {
    const auto& simd = hal::kernels(isa);
    const auto& scalar = hal::kernels(Isa::kScalar);
    for (const std::uint64_t p : test_primes()) {
      const Modulus mod(p);
      for (const std::size_t n : {std::size_t{2}, std::size_t{4},
                                  std::size_t{8}, std::size_t{16},
                                  std::size_t{64}, std::size_t{1024},
                                  std::size_t{4096}}) {
        const NttTable table(n, mod);
        // inverse() accepts [0, 2p) between stages; stress the 2p boundary.
        const std::uint64_t two_p = 2 * p;
        std::vector<std::uint64_t> input(n);
        for (std::size_t i = 0; i < n; ++i) {
          switch (prng.uniform_below(6)) {
            case 0: input[i] = 0; break;
            case 1: input[i] = p - 1; break;
            case 2: input[i] = p; break;
            case 3: input[i] = two_p - 1; break;
            default: input[i] = prng.uniform_below(two_p); break;
          }
        }
        std::vector<std::uint64_t> want = input, got = input;
        scalar.ntt_inverse(want.data(), n, table.inv_root_powers().data(),
                           table.inv_n(), table.inv_n_root(), p);
        simd.ntt_inverse(got.data(), n, table.inv_root_powers().data(),
                         table.inv_n(), table.inv_n_root(), p);
        ASSERT_EQ(want, got) << simd.name << " inverse p=" << p
                             << " n=" << n;
        for (const std::uint64_t v : got) ASSERT_LT(v, p);
      }
    }
  }
}

TEST(HalDifferential, ForcedIsaRoundTripsThroughNttTable) {
  // End-to-end through the public dispatch: forward+inverse under each ISA
  // recovers the input and matches the scalar-pinned transform bitwise.
  Prng prng(5150);
  const std::uint64_t p = test_primes().back();
  const Modulus mod(p);
  const std::size_t n = 1024;
  const NttTable table(n, mod);
  std::vector<std::uint64_t> input(n);
  for (auto& v : input) v = prng.uniform_below(p);

  std::vector<std::uint64_t> scalar_fwd = input;
  {
    hal::ScopedForceIsa pin(Isa::kScalar);
    table.forward(scalar_fwd);
  }
  for (Isa isa : simd_isas()) {
    hal::ScopedForceIsa pin(isa);
    std::vector<std::uint64_t> a = input;
    table.forward(a);
    EXPECT_EQ(a, scalar_fwd) << hal::isa_name(isa);
    table.inverse(a);
    EXPECT_EQ(a, input) << hal::isa_name(isa);
  }
}

}  // namespace
}  // namespace pphe
