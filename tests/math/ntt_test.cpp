#include "math/ntt.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

/// Schoolbook negacyclic convolution in Z_p[X]/(X^n + 1).
std::vector<std::uint64_t> negacyclic_reference(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b,
    const Modulus& mod) {
  const std::size_t n = a.size();
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t prod = mod.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n) {
        out[k] = mod.add(out[k], prod);
      } else {
        out[k - n] = mod.sub(out[k - n], prod);
      }
    }
  }
  return out;
}

class NttParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(NttParamTest, RoundTripIsIdentity) {
  const auto [n, bits] = GetParam();
  const Modulus mod(generate_ntt_primes(n, bits, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(n * 31 + static_cast<std::size_t>(bits));
  std::vector<std::uint64_t> a(n);
  for (auto& x : a) x = prng.uniform_below(mod.value());
  auto b = a;
  ntt.forward(b);
  ntt.inverse(b);
  EXPECT_EQ(a, b);
}

TEST_P(NttParamTest, ConvolutionMatchesSchoolbook) {
  const auto [n, bits] = GetParam();
  if (n > 256) GTEST_SKIP() << "schoolbook reference too slow";
  const Modulus mod(generate_ntt_primes(n, bits, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(n * 7 + static_cast<std::size_t>(bits));
  std::vector<std::uint64_t> a(n), b(n), c(n);
  for (auto& x : a) x = prng.uniform_below(mod.value());
  for (auto& x : b) x = prng.uniform_below(mod.value());
  const auto ref = negacyclic_reference(a, b, mod);
  ntt.forward(a);
  ntt.forward(b);
  ntt.pointwise(a, b, c);
  ntt.inverse(c);
  EXPECT_EQ(c, ref);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndWidths, NttParamTest,
    ::testing::Combine(::testing::Values(8, 64, 256, 2048),
                       ::testing::Values(20, 30, 50, 59)));

TEST(Ntt, LinearityOfForward) {
  const std::size_t n = 128;
  const Modulus mod(generate_ntt_primes(n, 40, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(9);
  std::vector<std::uint64_t> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = prng.uniform_below(mod.value());
    b[i] = prng.uniform_below(mod.value());
    sum[i] = mod.add(a[i], b[i]);
  }
  ntt.forward(a);
  ntt.forward(b);
  ntt.forward(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sum[i], mod.add(a[i], b[i]));
  }
}

TEST(Ntt, MultiplicationByXIsNegacyclicShift) {
  const std::size_t n = 64;
  const Modulus mod(generate_ntt_primes(n, 30, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(10);
  std::vector<std::uint64_t> a(n), x_poly(n, 0);
  for (auto& v : a) v = prng.uniform_below(mod.value());
  x_poly[1] = 1;  // the monomial X
  auto fa = a, fx = x_poly;
  std::vector<std::uint64_t> fc(n);
  ntt.forward(fa);
  ntt.forward(fx);
  ntt.pointwise(fa, fx, fc);
  ntt.inverse(fc);
  // X * a(X): coefficients shift up; the top one wraps with a sign flip.
  EXPECT_EQ(fc[0], mod.neg(a[n - 1]));
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(fc[i], a[i - 1]);
}

TEST(Ntt, RejectsWrongSizes) {
  const std::size_t n = 64;
  const Modulus mod(generate_ntt_primes(n, 30, 1)[0]);
  const NttTable ntt(n, mod);
  std::vector<std::uint64_t> wrong(32, 0);
  EXPECT_THROW(ntt.forward(wrong), Error);
  EXPECT_THROW(Modulus bad(17); NttTable(n, bad), Error);
}

}  // namespace
}  // namespace pphe
