#include "math/ntt.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "math/primes.hpp"

namespace pphe {
namespace {

/// Schoolbook negacyclic convolution in Z_p[X]/(X^n + 1).
std::vector<std::uint64_t> negacyclic_reference(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b,
    const Modulus& mod) {
  const std::size_t n = a.size();
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t prod = mod.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n) {
        out[k] = mod.add(out[k], prod);
      } else {
        out[k - n] = mod.sub(out[k - n], prod);
      }
    }
  }
  return out;
}

class NttParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(NttParamTest, RoundTripIsIdentity) {
  const auto [n, bits] = GetParam();
  const Modulus mod(generate_ntt_primes(n, bits, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(n * 31 + static_cast<std::size_t>(bits));
  std::vector<std::uint64_t> a(n);
  for (auto& x : a) x = prng.uniform_below(mod.value());
  auto b = a;
  ntt.forward(b);
  ntt.inverse(b);
  EXPECT_EQ(a, b);
}

TEST_P(NttParamTest, ConvolutionMatchesSchoolbook) {
  const auto [n, bits] = GetParam();
  if (n > 256) GTEST_SKIP() << "schoolbook reference too slow";
  const Modulus mod(generate_ntt_primes(n, bits, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(n * 7 + static_cast<std::size_t>(bits));
  std::vector<std::uint64_t> a(n), b(n), c(n);
  for (auto& x : a) x = prng.uniform_below(mod.value());
  for (auto& x : b) x = prng.uniform_below(mod.value());
  const auto ref = negacyclic_reference(a, b, mod);
  ntt.forward(a);
  ntt.forward(b);
  ntt.pointwise(a, b, c);
  ntt.inverse(c);
  EXPECT_EQ(c, ref);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndWidths, NttParamTest,
    ::testing::Combine(::testing::Values(8, 64, 256, 2048),
                       ::testing::Values(20, 30, 50, 59)));

/// Naive O(n^2) forward transform: output slot j of the merged-twist NTT is
/// the evaluation of a(X) at psi^(2*brv(j)+1). Pins the lazy-reduction
/// kernel's exact output layout, not just invertibility.
std::vector<std::uint64_t> naive_forward(const std::vector<std::uint64_t>& a,
                                         const NttTable& ntt,
                                         const Modulus& mod) {
  const std::size_t n = a.size();
  int bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t brv = 0, x = j;
    for (int b = 0; b < bits; ++b) {
      brv = (brv << 1) | (x & 1);
      x >>= 1;
    }
    const std::uint64_t root = mod.pow(ntt.psi(), 2 * brv + 1);
    std::uint64_t acc = 0, power = 1;
    for (std::size_t i = 0; i < n; ++i) {
      acc = mod.add(acc, mod.mul(a[i], power));
      power = mod.mul(power, root);
    }
    out[j] = acc;
  }
  return out;
}

TEST_P(NttParamTest, ForwardMatchesNaiveEvaluation) {
  const auto [n, bits] = GetParam();
  if (n > 256) GTEST_SKIP() << "naive reference too slow";
  const Modulus mod(generate_ntt_primes(n, bits, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(n * 13 + static_cast<std::size_t>(bits));
  std::vector<std::uint64_t> a(n);
  for (auto& x : a) x = prng.uniform_below(mod.value());
  const auto ref = naive_forward(a, ntt, mod);
  ntt.forward(a);
  EXPECT_EQ(a, ref);  // bit-identical, not merely congruent
}

TEST_P(NttParamTest, LazyBoundsAtResidueExtremes) {
  // The Harvey butterflies keep intermediates in [0, 4p) / [0, 2p); all-
  // (p-1) inputs (and a couple of adversarial mixes) drive every butterfly
  // to its maximum. Outputs must still come back fully reduced and the
  // round trip exact.
  const auto [n, bits] = GetParam();
  const Modulus mod(generate_ntt_primes(n, bits, 1)[0]);
  const NttTable ntt(n, mod);
  const std::uint64_t pm1 = mod.value() - 1;
  std::vector<std::vector<std::uint64_t>> extremes;
  extremes.emplace_back(n, pm1);  // every coefficient at p-1
  extremes.emplace_back(n, 0);
  std::vector<std::uint64_t> alt(n);
  for (std::size_t i = 0; i < n; ++i) alt[i] = (i % 2 == 0) ? pm1 : 0;
  extremes.push_back(std::move(alt));
  std::vector<std::uint64_t> half(n, pm1);
  for (std::size_t i = 0; i < n / 2; ++i) half[i] = 1;
  extremes.push_back(std::move(half));
  for (const auto& original : extremes) {
    auto v = original;
    ntt.forward(v);
    for (const auto x : v) ASSERT_LT(x, mod.value());
    ntt.inverse(v);
    for (const auto x : v) ASSERT_LT(x, mod.value());
    EXPECT_EQ(v, original);
  }
}

TEST(Ntt, RandomizedRoundTripsStayExactAndReduced) {
  const std::size_t n = 512;
  const Modulus mod(generate_ntt_primes(n, 59, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(321);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> a(n);
    for (auto& x : a) {
      // Bias toward the residue extremes to stress the lazy corrections.
      const std::uint64_t r = prng.uniform_below(10);
      if (r == 0) {
        x = mod.value() - 1;
      } else if (r == 1) {
        x = 0;
      } else {
        x = prng.uniform_below(mod.value());
      }
    }
    auto b = a;
    ntt.forward(b);
    for (const auto x : b) ASSERT_LT(x, mod.value());
    ntt.inverse(b);
    ASSERT_EQ(a, b) << "trial " << trial;
  }
}

TEST(Ntt, SmallestSizeHandlesFoldedFinalStage) {
  // n == 2 exercises the inverse path where the folded 1/n stage IS the
  // whole transform.
  const std::size_t n = 2;
  const Modulus mod(generate_ntt_primes(n, 30, 1)[0]);
  const NttTable ntt(n, mod);
  for (const std::uint64_t a0 : {std::uint64_t{0}, mod.value() - 1}) {
    for (const std::uint64_t a1 : {std::uint64_t{1}, mod.value() - 1}) {
      std::vector<std::uint64_t> v{a0, a1};
      const auto original = v;
      ntt.forward(v);
      ntt.inverse(v);
      EXPECT_EQ(v, original);
    }
  }
}

TEST(Ntt, LinearityOfForward) {
  const std::size_t n = 128;
  const Modulus mod(generate_ntt_primes(n, 40, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(9);
  std::vector<std::uint64_t> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = prng.uniform_below(mod.value());
    b[i] = prng.uniform_below(mod.value());
    sum[i] = mod.add(a[i], b[i]);
  }
  ntt.forward(a);
  ntt.forward(b);
  ntt.forward(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sum[i], mod.add(a[i], b[i]));
  }
}

TEST(Ntt, MultiplicationByXIsNegacyclicShift) {
  const std::size_t n = 64;
  const Modulus mod(generate_ntt_primes(n, 30, 1)[0]);
  const NttTable ntt(n, mod);
  Prng prng(10);
  std::vector<std::uint64_t> a(n), x_poly(n, 0);
  for (auto& v : a) v = prng.uniform_below(mod.value());
  x_poly[1] = 1;  // the monomial X
  auto fa = a, fx = x_poly;
  std::vector<std::uint64_t> fc(n);
  ntt.forward(fa);
  ntt.forward(fx);
  ntt.pointwise(fa, fx, fc);
  ntt.inverse(fc);
  // X * a(X): coefficients shift up; the top one wraps with a sign flip.
  EXPECT_EQ(fc[0], mod.neg(a[n - 1]));
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(fc[i], a[i - 1]);
}

TEST(Ntt, RejectsWrongSizes) {
  const std::size_t n = 64;
  const Modulus mod(generate_ntt_primes(n, 30, 1)[0]);
  const NttTable ntt(n, mod);
  std::vector<std::uint64_t> wrong(32, 0);
  EXPECT_THROW(ntt.forward(wrong), Error);
  EXPECT_THROW(Modulus bad(17); NttTable(n, bad), Error);
}

}  // namespace
}  // namespace pphe
