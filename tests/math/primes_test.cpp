#include "math/primes.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "common/check.hpp"
#include "math/modarith.hpp"

namespace pphe {
namespace {

TEST(IsPrime, SmallValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_FALSE(is_prime_u64(91));  // 7*13
}

TEST(IsPrime, KnownLargePrimes) {
  EXPECT_TRUE(is_prime_u64((1ull << 61) - 1));  // Mersenne prime M61
  EXPECT_FALSE(is_prime_u64((1ull << 59) - 1)); // composite Mersenne
  EXPECT_TRUE(is_prime_u64(0xffffffff00000001ull));  // Goldilocks prime
}

TEST(IsPrime, StrongPseudoprimesRejected) {
  // Carmichael numbers.
  for (const std::uint64_t n : {561ull, 1105ull, 1729ull, 2465ull, 6601ull}) {
    EXPECT_FALSE(is_prime_u64(n)) << n;
  }
}

TEST(GenerateNttPrimes, CongruenceAndSize) {
  const std::size_t degree = 4096;
  const auto primes = generate_ntt_primes(degree, 30, 5);
  ASSERT_EQ(primes.size(), 5u);
  std::set<std::uint64_t> unique(primes.begin(), primes.end());
  EXPECT_EQ(unique.size(), 5u);
  for (const auto p : primes) {
    EXPECT_TRUE(is_prime_u64(p));
    EXPECT_EQ(p % (2 * degree), 1u);
    EXPECT_GE(p, 1ull << 29);
    EXPECT_LT(p, 1ull << 30);
  }
}

TEST(GenerateNttPrimes, RejectsBadArguments) {
  EXPECT_THROW(generate_ntt_primes(1000, 30, 1), Error);  // not a power of 2
  EXPECT_THROW(generate_ntt_primes(1024, 5, 1), Error);   // too narrow
  EXPECT_THROW(generate_ntt_primes(1024, 62, 1), Error);  // too wide
}

TEST(GenerateModuliChain, OrderMatchesBitSizes) {
  // The paper's Table II shape: [40, 26, ..., 26, 40].
  std::vector<int> sizes{40, 26, 26, 26, 40};
  const auto chain = generate_moduli_chain(2048, sizes);
  ASSERT_EQ(chain.size(), sizes.size());
  std::set<std::uint64_t> unique(chain.begin(), chain.end());
  EXPECT_EQ(unique.size(), chain.size());  // repeats of a size are distinct
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(static_cast<int>(64 - std::countl_zero(chain[i])), sizes[i]);
    EXPECT_TRUE(is_prime_u64(chain[i]));
    EXPECT_EQ(chain[i] % 4096, 1u);
  }
}

TEST(FindPrimitiveRoot, HasOrder2N) {
  const std::size_t n = 1024;
  const auto p = generate_ntt_primes(n, 45, 1)[0];
  const Modulus mod(p);
  const std::uint64_t psi = find_primitive_2n_root(p, n);
  EXPECT_EQ(mod.pow(psi, n), p - 1);       // psi^n = -1
  EXPECT_EQ(mod.pow(psi, 2 * n), 1u);      // psi^2n = 1
  EXPECT_NE(mod.pow(psi, n / 2), p - 1);   // order exactly 2n
}

TEST(FindPrimitiveRoot, RequiresCompatiblePrime) {
  EXPECT_THROW(find_primitive_2n_root(17, 1024), Error);
}

}  // namespace
}  // namespace pphe
